//! Coverage analytics: after a day of crowd recording, where is the city
//! actually filmed — and where are the blind spots an incentive campaign
//! should target?
//!
//! Run with: `cargo run --release --example coverage_map`
//! Writes `experiments/coverage-heatmap.csv` (rows south→north).

use rand::rngs::StdRng;
use rand::SeedableRng;
use swag::prelude::*;
use swag_sensors::{generate_trace, scenarios, Mobility};

fn main() -> std::io::Result<()> {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();

    // Gather everyone's representative FoVs.
    let mut reps = Vec::new();
    for provider in 0..25u64 {
        let mobility = Mobility::random_waypoint(provider * 3 + 1, 400.0, 6, 1.4);
        let duration = mobility.natural_duration_s().unwrap().min(300.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, duration),
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        reps.extend(ClientPipeline::process_trace(cam, 0.5, &trace).reps);
    }
    println!("{} segments from 25 providers", reps.len());

    // Rasterise all view sectors onto a 20 m grid over the 1 km² area.
    let mut grid = CoverageGrid::new(origin, 500.0, 20.0);
    for rep in &reps {
        grid.add(rep, &cam);
    }

    for min_count in [1, 3, 10] {
        println!(
            "area covered by ≥{min_count} segments: {:>5.1} %",
            100.0 * grid.covered_fraction(min_count)
        );
    }
    let (hot, count) = grid.hottest();
    println!(
        "hottest cell: ({:.5}, {:.5}) with {count} overlapping segments",
        hot.lat, hot.lng
    );

    std::fs::create_dir_all("experiments")?;
    std::fs::write("experiments/coverage-heatmap.csv", grid.to_csv())?;
    println!(
        "wrote experiments/coverage-heatmap.csv ({0}x{0} cells)",
        grid.cells_per_side()
    );
    assert!(grid.covered_fraction(1) > 0.05);
    Ok(())
}
