//! Adaptive deployment (paper §VII): a city operator rolls SWAG out
//! across districts with very different sight lines, using **site
//! surveys** to pick each district's radius of view, **sensor smoothing**
//! to tame cheap phone sensors, and **server snapshots** to survive
//! restarts.
//!
//! Run with: `cargo run --release --example adaptive_deployment`

use rand::rngs::StdRng;
use rand::SeedableRng;
use swag::prelude::*;
use swag_sensors::{generate_trace, scenarios, Look, Mobility};

fn main() {
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise {
        gps_sigma_m: 5.0,
        compass_sigma_deg: 8.0,
        dropout_prob: 0.01,
    };

    // --- 1. Site surveys pick per-district camera profiles --------------
    println!("district surveys:");
    let districts = [
        ("riverside promenade", World::new(vec![])),
        ("residential blocks", World::random_city(2, 200.0, 600)),
        ("old town alleys", World::random_city(3, 80.0, 600)),
    ];
    let mut profiles = Vec::new();
    for (name, world) in &districts {
        let r = suggest_view_radius(world, Vec2::ZERO);
        let survey = site_survey(world, Vec2::ZERO, 144, 300.0);
        println!(
            "  {name:<22} median sight {:>4.0} m, open {:>3.0} % -> R = {r:.0} m",
            survey.median_visible_m,
            100.0 * survey.open_fraction
        );
        profiles.push(CameraProfile::new(25.0, r));
    }

    // --- 2. Providers record with noisy sensors + smoothing -------------
    let cam = profiles[1]; // deploy in the residential district
    let server = CloudServer::new(cam);
    let mut raw_segments = 0usize;
    let mut smooth_segments = 0usize;
    for provider in 0..12u64 {
        let mobility = Mobility::StraightLine {
            start: Vec2::new(provider as f64 * 15.0 - 90.0, -200.0),
            heading_deg: 0.0,
            speed_mps: 1.4,
            look: Look::Heading,
        };
        let cfg = TraceConfig::new(25.0, 180.0).starting_at(provider as f64 * 20.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &cfg,
            &noise,
            &DeviceClock::ntp_synced(40.0),
            &mut rng,
        );

        raw_segments += ClientPipeline::process_trace(cam, 0.5, &trace).segment_count();
        let result = ClientPipeline::process_trace_smoothed(cam, 0.5, 0.15, &trace);
        smooth_segments += result.segment_count();
        let mut uploader = Uploader::new(provider);
        let (_wire, batch) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");
        server.ingest_batch(&batch);
    }
    println!(
        "\nsmoothing: {raw_segments} raw segments -> {smooth_segments} smoothed \
         ({}x fewer uploads at identical coverage)",
        raw_segments / smooth_segments.max(1)
    );

    // --- 3. Snapshot, "restart", keep answering -------------------------
    let snapshot = save_snapshot(&server).expect("snapshot");
    println!(
        "snapshot: {} segments serialised into {} bytes",
        server.stats().segments,
        snapshot.len()
    );
    let restored = load_snapshot(snapshot, cam).expect("snapshot is well-formed");

    let spot = origin.offset(0.0, -100.0);
    let q = Query::new(0.0, 500.0, spot, cam.view_radius_m);
    let hits = restored.query(&q, &QueryOptions::default());
    println!(
        "\nafter restart, query at the promenade spot returns {} segments:",
        hits.len()
    );
    for hit in hits.iter().take(5) {
        println!(
            "  provider {:>2} seg {:>2}: {:>4.0} m away, t [{:>5.1}, {:>5.1}] s",
            hit.source.provider_id,
            hit.source.segment_idx,
            hit.distance_m,
            hit.rep.t_start,
            hit.rep.t_end
        );
    }
    assert!(!hits.is_empty());

    // --- 4. No-radius queries via k-nearest ------------------------------
    let nearest = restored.query_nearest(0.0, 500.0, spot, 3, &QueryOptions::default(), 10_000.0);
    println!(
        "\nk-nearest (k=3, no radius): distances {:?} m",
        nearest
            .iter()
            .map(|h| h.distance_m.round())
            .collect::<Vec<_>>()
    );
}
