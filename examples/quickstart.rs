//! Quickstart: one provider records a bike ride, the server indexes the
//! descriptors, a querier searches an area the ride passed through.
//!
//! Run with: `cargo run --release --example quickstart`

use swag::prelude::*;
use swag_sensors::scenarios;

fn main() {
    // --- Provider side -------------------------------------------------
    // A cyclist records for ~40 s riding 80 m north, turning right, and
    // riding 80 m east. Phone sensors are noisy.
    let cam = CameraProfile::smartphone();
    let noise = SensorNoise::smartphone();
    let trace = scenarios::bike_ride_with_turn(80.0, 4.0, &noise, 42);
    println!("recorded {} frame records", trace.len());

    // The background pipeline segments the video in real time.
    let result = ClientPipeline::process_trace(cam, 0.5, &trace);
    println!(
        "segmented into {} segments ({} frames total)",
        result.segment_count(),
        result.frames
    );

    // When recording stops, only representative FoVs are uploaded.
    let mut uploader = Uploader::new(1);
    let (wire, batch) = uploader
        .upload(result.reps)
        .expect("reps fit the codec range");
    let video_bytes = VideoProfile::P720.encoded_bytes(40.0);
    println!(
        "upload: {} descriptor bytes vs {} bytes of 720p video ({}x smaller)",
        wire.len(),
        video_bytes,
        video_bytes / wire.len() as u64
    );

    // --- Server side ----------------------------------------------------
    let server = CloudServer::new(cam);
    server.ingest_batch(&batch);

    // --- Querier side ---------------------------------------------------
    // "Show me video covering the 50 m around this point, t = 0..60 s."
    let somewhere_on_route = scenarios::default_origin().offset(0.0, 60.0);
    let query = Query::new(0.0, 60.0, somewhere_on_route, 50.0);
    let hits = server.query(&query, &QueryOptions::default());

    println!("\ntop-{} results:", hits.len());
    for (rank, hit) in hits.iter().enumerate() {
        println!(
            "  #{rank}: provider {} video {} segment {} — t [{:.1}, {:.1}] s, {:.0} m from query centre",
            hit.source.provider_id,
            hit.source.video_id,
            hit.source.segment_idx,
            hit.rep.t_start,
            hit.rep.t_end,
            hit.distance_m
        );
    }
    let stats = server.stats();
    println!(
        "\nserver: {} segments indexed, mean query latency {:.0} µs",
        stats.segments,
        stats.mean_query_micros()
    );
    assert!(!hits.is_empty(), "the ride passed the query area");
}
