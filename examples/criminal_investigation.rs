//! Criminal investigation scenario (the paper's §I motivation): an
//! incident happens at a known place and time; investigators ask the
//! crowd-sourced system which of the thousands of bystander videos
//! actually cover the scene — *before* any video is transmitted.
//!
//! 60 providers wander a 1 km² area recording for ~7 minutes each. We
//! query the incident location/time and validate the ranked hits against
//! geometric ground truth (does the segment's view sector really cover the
//! scene?).
//!
//! Run with: `cargo run --release --example criminal_investigation`

use swag::prelude::*;
use swag_core::sector_intersects_circle;
use swag_sensors::{generate_trace, scenarios, Mobility};

fn main() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();

    // The incident: 120 m north-east of the origin, t = 180..240 s.
    let incident = origin.offset(45.0, 170.0);
    let (t0, t1) = (180.0, 240.0);

    // --- Crowd: 60 providers with random-waypoint walks ---------------
    let server = CloudServer::new(cam);
    let mut total_wire_bytes = 0usize;
    let mut total_video_bytes = 0u64;
    for provider in 0..60u64 {
        let mobility = Mobility::random_waypoint(provider, 500.0, 8, 1.4);
        let duration = mobility.natural_duration_s().unwrap().min(420.0);
        let cfg = TraceConfig::new(25.0, duration);
        let mut rng = rand_seeded(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &cfg,
            &noise,
            &DeviceClock::ntp_synced(30.0),
            &mut rng,
        );

        let result = ClientPipeline::process_trace(cam, 0.5, &trace);
        let mut uploader = Uploader::new(provider);
        let (wire, batch) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");
        total_wire_bytes += wire.len();
        total_video_bytes += VideoProfile::P720.encoded_bytes(duration);
        server.ingest_batch(&batch);
    }

    let stats = server.stats();
    println!(
        "crowd ingested: {} segments from {} providers",
        stats.segments, stats.batches
    );
    println!(
        "network: {:.1} kB of descriptors vs {:.1} GB of raw video",
        total_wire_bytes as f64 / 1e3,
        total_video_bytes as f64 / 1e9
    );

    // --- Investigation query ------------------------------------------
    let query = Query::new(t0, t1, incident, 50.0);
    let opts = QueryOptions {
        top_n: 20,
        ..QueryOptions::default()
    };
    let hits = server.query(&query, &opts);
    println!("\n{} candidate segments returned:", hits.len());

    // Validate against geometric ground truth.
    let mut covering = 0;
    for hit in &hits {
        let covers = sector_intersects_circle(&hit.rep.fov, &cam, incident, query.radius_m);
        if covers {
            covering += 1;
        }
        println!(
            "  provider {:>2} seg {:>2}: {:>5.0} m away, t [{:>5.1}, {:>5.1}] — {}",
            hit.source.provider_id,
            hit.source.segment_idx,
            hit.distance_m,
            hit.rep.t_start,
            hit.rep.t_end,
            if covers { "covers scene" } else { "near miss" }
        );
    }
    if !hits.is_empty() {
        println!(
            "\nprecision of returned list: {:.0} % ({} of {} cover the scene geometrically)",
            100.0 * f64::from(covering) / hits.len() as f64,
            covering,
            hits.len()
        );
    }
    println!(
        "mean query latency: {:.0} µs over {} segments",
        server.stats().mean_query_micros(),
        stats.segments
    );
}

fn rand_seeded(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed.wrapping_mul(0x9e3779b97f4a7c15))
}
