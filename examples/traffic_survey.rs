//! Traffic surveillance scenario (cf. the paper's §VIII discussion of
//! crowd-sourced dash-cam systems): vehicles with dash-cams drive a
//! highway; an operator retrieves footage of a specific road section
//! during a specific window and compares the network bill against a
//! naive upload-everything design.
//!
//! Run with: `cargo run --release --example traffic_survey`

use swag::prelude::*;
use swag_geo::Vec2;
use swag_sensors::{generate_trace, scenarios, Look, Mobility};

fn main() {
    let cam = CameraProfile::new(25.0, 100.0); // highway radius of view
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();
    let link = NetworkLink::cellular_4g();
    let plan = DataPlan::metered();

    // --- 40 vehicles drive a 2 km north-south highway ------------------
    let server = CloudServer::new(cam);
    let mut descriptor_bytes = 0usize;
    let mut video_bytes = 0u64;
    let mut recording_seconds = 0.0f64;
    for vehicle in 0..40u64 {
        // Staggered departures in both directions at 60..90 km/h.
        let southbound = vehicle % 2 == 1;
        let speed = 17.0 + (vehicle % 5) as f64 * 2.0;
        let depart = vehicle as f64 * 11.0;
        let mobility = Mobility::StraightLine {
            start: Vec2::new(
                if southbound { 8.0 } else { -8.0 },
                if southbound { 1000.0 } else { -1000.0 },
            ),
            heading_deg: if southbound { 180.0 } else { 0.0 },
            speed_mps: speed,
            look: Look::Heading,
        };
        let duration = 2000.0 / speed;
        let cfg = TraceConfig::new(25.0, duration).starting_at(depart);
        let mut rng = seeded(vehicle);
        let trace = generate_trace(
            &mobility,
            &frame,
            &cfg,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );

        let result = ClientPipeline::process_trace(cam, 0.6, &trace);
        let mut uploader = Uploader::new(vehicle);
        let (wire, batch) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");
        descriptor_bytes += wire.len();
        video_bytes += VideoProfile::P1080.encoded_bytes(duration);
        recording_seconds += duration;
        server.ingest_batch(&batch);
    }

    println!(
        "fleet: 40 vehicles, {:.0} minutes of footage, {} segments indexed",
        recording_seconds / 60.0,
        server.stats().segments
    );

    // --- Operator query: accident site km 0.5, minutes 2-4 -------------
    let site = origin.offset(0.0, 500.0);
    let query = Query::new(120.0, 240.0, site, 100.0);
    let opts = QueryOptions {
        top_n: 15,
        require_coverage: true,
        ..QueryOptions::default()
    };
    let hits = server.query(&query, &opts);
    println!(
        "\n{} dash-cam segments cover the site in the window:",
        hits.len()
    );
    for hit in &hits {
        println!(
            "  vehicle {:>2} seg {:>2}: t [{:>6.1}, {:>6.1}] s, {:>4.0} m from site",
            hit.source.provider_id,
            hit.source.segment_idx,
            hit.rep.t_start,
            hit.rep.t_end,
            hit.distance_m
        );
    }

    // --- The bill -------------------------------------------------------
    // Content-free design: everyone uploads descriptors; only the hits'
    // video segments are fetched afterwards.
    let fetched_video: u64 = hits
        .iter()
        .map(|h| VideoProfile::P1080.encoded_bytes(h.rep.duration()))
        .sum();
    let swag_total = descriptor_bytes as u64 + fetched_video;
    println!("\nnetwork accounting:");
    println!(
        "  descriptors (all vehicles):     {:>12} bytes ({:.2} s on LTE, cost {:.4})",
        descriptor_bytes,
        link.transfer_time_s(descriptor_bytes),
        plan.cost(descriptor_bytes)
    );
    println!(
        "  fetched segments (hits only):   {:>12} bytes",
        fetched_video
    );
    println!(
        "  naive upload-everything:        {:>12} bytes (cost {:.2})",
        video_bytes,
        plan.cost(video_bytes as usize)
    );
    println!(
        "  traffic saved by content-free retrieval: {:.1}x",
        video_bytes as f64 / swag_total as f64
    );
    assert!(video_bytes > swag_total, "content-free must win");
}

fn seeded(seed: u64) -> impl rand::Rng {
    use rand::SeedableRng;
    rand::rngs::StdRng::seed_from_u64(seed ^ 0xabcdef)
}
