//! Map export: runs an investigation query and writes GeoJSON you can
//! drop into geojson.io / QGIS / Leaflet — the provider's trace, the
//! query area, and every ranked hit's view sector.
//!
//! Run with: `cargo run --release --example map_export`
//! Then open `experiments/map/*.geojson` in any GeoJSON viewer.

use std::fs;

use swag::geojson;
use swag::prelude::*;
use swag_sensors::scenarios;

fn main() -> std::io::Result<()> {
    let cam = CameraProfile::smartphone();
    let noise = SensorNoise::smartphone();
    let out = std::path::Path::new("experiments/map");
    fs::create_dir_all(out)?;

    // Three providers ride/walk around the origin.
    let server = CloudServer::new(cam);
    let mut traces = Vec::new();
    for (provider, seed) in [(0u64, 5u64), (1, 23), (2, 77)] {
        let trace = scenarios::bike_ride_with_turn(120.0, 4.0, &noise, seed);
        let result = ClientPipeline::process_trace_smoothed(cam, 0.5, 0.2, &trace);
        let mut uploader = Uploader::new(provider);
        let (_, batch) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");
        server.ingest_batch(&batch);
        traces.push(trace);
    }

    // Export each provider's raw trajectory.
    for (i, trace) in traces.iter().enumerate() {
        let path = out.join(format!("provider-{i}-trace.geojson"));
        fs::write(&path, geojson::trace_to_geojson(trace))?;
        println!("wrote {}", path.display());
    }

    // The query and its ranked hits as view-sector polygons.
    let spot = scenarios::default_origin().offset(0.0, 90.0);
    let query = Query::new(0.0, 60.0, spot, 80.0);
    let hits = server.query(
        &query,
        &QueryOptions {
            top_n: 10,
            rank: swag_server::RankMode::Quality,
            ..QueryOptions::default()
        },
    );
    println!("query returned {} hits", hits.len());
    let path = out.join("query-hits.geojson");
    fs::write(&path, geojson::hits_to_geojson(&hits, &cam, spot))?;
    println!("wrote {}", path.display());

    assert!(!hits.is_empty());
    Ok(())
}
