//! Render demo: writes PPM stills of the synthetic world from the three
//! Fig. 5 camera paths, so you can eyeball what the CV substrate actually
//! "films". Output lands in `experiments/renders/`.
//!
//! Run with: `cargo run --release --example render_demo`
//! View with e.g. `feh experiments/renders/*.ppm` or convert to PNG with
//! ImageMagick.

use std::fs::{self, File};
use std::io::BufWriter;

use swag::prelude::*;
use swag_sensors::scenarios;
use swag_vision::write_ppm;

fn main() -> std::io::Result<()> {
    let cam = CameraProfile::smartphone();
    let world = World::random_city(5, 400.0, 500);
    let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);
    let frame = LocalFrame::new(scenarios::default_origin());

    let out_dir = std::path::Path::new("experiments/renders");
    fs::create_dir_all(out_dir)?;

    let cases: Vec<(&str, Vec<swag_core::TimedFov>)> = vec![
        (
            "rotation",
            scenarios::rotate_in_place(36.0, 5.0, &SensorNoise::NONE, 1),
        ),
        (
            "drive",
            scenarios::drive_straight(30.0, 8.0, &SensorNoise::NONE, 2),
        ),
        (
            "bike-turn",
            scenarios::bike_ride_with_turn(100.0, 4.0, &SensorNoise::NONE, 3),
        ),
    ];
    let threads = std::thread::available_parallelism().map_or(4, |n| n.get());

    for (name, trace) in cases {
        // Five stills spread across the trace, rendered in parallel.
        let poses: Vec<(Vec2, f64)> = (0..5)
            .map(|k| {
                let tf = &trace[k * (trace.len() - 1) / 4];
                (frame.to_local(tf.fov.p), tf.fov.theta)
            })
            .collect();
        let frames = renderer.render_trace_par(&poses, Resolution::P480, threads);
        for (k, img) in frames.iter().enumerate() {
            let path = out_dir.join(format!("{name}-{k}.ppm"));
            let mut w = BufWriter::new(File::create(&path)?);
            write_ppm(&mut w, img)?;
            println!(
                "{:<22} pose {k}: az {:>5.1} deg -> {}",
                name,
                poses[k].1,
                path.display()
            );
        }
    }
    println!("\nwrote 15 stills to {}", out_dir.display());
    Ok(())
}
