//! Standing-query investigation: detectives register a watch on a scene
//! *before* all the footage has arrived; as bystanders upload over the
//! following hours, matching segments are pushed to the watch mailbox —
//! no re-querying, no content transfer.
//!
//! Run with: `cargo run --release --example investigation_watch`

use rand::rngs::StdRng;
use rand::SeedableRng;
use swag::prelude::*;
use swag_sensors::{generate_trace, scenarios, Mobility};

fn main() {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();
    let server = CloudServer::new(cam);

    // The incident scene and window.
    let scene = origin.offset(45.0, 150.0);
    let (t0, t1) = (120.0, 300.0);

    // The watch is registered immediately after the incident...
    let watch = server.subscribe(
        Query::new(t0, t1, scene, 60.0),
        QueryOptions {
            top_n: usize::MAX,
            ..QueryOptions::default()
        },
    );
    println!("watch registered on the scene; waiting for uploads...\n");

    // ...and bystander uploads trickle in afterwards.
    let mut alerts = 0;
    for provider in 0..40u64 {
        let mobility = Mobility::random_waypoint(provider, 400.0, 6, 1.4);
        let duration = mobility.natural_duration_s().unwrap().min(400.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, duration),
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let result = ClientPipeline::process_trace(cam, 0.5, &trace);
        let mut uploader = Uploader::new(provider);
        let (_, batch) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");
        server.ingest_batch(&batch);

        // The investigation team polls after each upload wave.
        let fresh = server.poll_subscription(watch);
        for hit in &fresh {
            alerts += 1;
            println!(
                "ALERT: provider {:>2} segment {:>2} covers the scene — t [{:>5.1}, {:>5.1}] s, {:>3.0} m away, quality {:.3}",
                hit.source.provider_id,
                hit.source.segment_idx,
                hit.rep.t_start,
                hit.rep.t_end,
                hit.distance_m,
                hit.quality
            );
        }
    }

    let stats = server.stats();
    println!(
        "\n{} segments ingested from 40 providers; the watch fired {alerts} alerts",
        stats.segments
    );
    println!("only those {alerts} video segments ever need to be fetched.");
    server.unsubscribe(watch);
    assert!(alerts > 0, "the crowd should have covered the scene");
}
