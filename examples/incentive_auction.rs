//! Incentive mechanism demo (paper §VII): an inquirer with a fixed budget
//! buys video segments from providers to maximise angular × temporal
//! coverage of an event, using the submodular greedy selection.
//!
//! Run with: `cargo run --release --example incentive_auction`

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag::prelude::*;
use swag_utility::{global_utility, random_select};

fn main() {
    let cam = CameraProfile::smartphone();
    let mut rng = StdRng::seed_from_u64(2015);

    // 40 providers offer segments filmed around the event (t = 0..120 s),
    // each with an asking price.
    let origin = swag_sensors::scenarios::default_origin();
    let offers: Vec<Priced> = (0..40)
        .map(|_| {
            let theta = rng.random_range(0.0..360.0);
            let t0 = rng.random_range(0.0..100.0);
            let dur = rng.random_range(5.0..30.0);
            let pos = origin.offset(rng.random_range(0.0..360.0), rng.random_range(10.0..80.0));
            Priced {
                rep: RepFov::new(t0, t0 + dur, swag_core::Fov::new(pos, theta)),
                price: rng.random_range(0.5..4.0),
            }
        })
        .collect();

    let (t0, t1) = (0.0, 120.0);
    let total = global_utility(t0, t1);
    println!("event window: {t0}..{t1} s — global utility {total} deg·s");
    println!("{} offers, prices 0.5..4.0\n", offers.len());

    println!(
        "{:>8} | {:>10} | {:>10} | {:>8} | {:>8}",
        "budget", "greedy", "random", "greedy%", "random%"
    );
    for budget in [2.0, 5.0, 10.0, 20.0, 40.0] {
        let greedy = greedy_select(&offers, &cam, t0, t1, budget);

        // Random baseline: average over 20 shuffles.
        let mut acc = 0.0;
        for s in 0..20u64 {
            let mut order: Vec<usize> = (0..offers.len()).collect();
            let mut r2 = StdRng::seed_from_u64(s);
            for i in (1..order.len()).rev() {
                order.swap(i, r2.random_range(0..=i));
            }
            acc += random_select(&offers, &order, &cam, t0, t1, budget).utility;
        }
        let random_avg = acc / 20.0;

        println!(
            "{:>8.1} | {:>10.0} | {:>10.0} | {:>7.1}% | {:>7.1}%",
            budget,
            greedy.utility,
            random_avg,
            100.0 * greedy.utility / total,
            100.0 * random_avg / total
        );
        assert!(
            greedy.utility + 1e-9 >= random_avg * 0.99,
            "greedy should not lose to random on average"
        );
    }
    println!("\ngreedy spends budget on complementary (non-overlapping) coverage;");
    println!("random pays repeatedly for the same popular viewing directions.");
}
