//! # SWAG — *Scan Without a Glance*
//!
//! A from-scratch Rust reproduction of **"Scan Without a Glance: Towards
//! Content-Free Crowd-Sourced Mobile Video Retrieval System"**
//! (ICPP 2015).
//!
//! Instead of comparing video *content* (pixels, SIFT features), SWAG
//! describes each video frame by its **Field of View** — the camera's GPS
//! position and compass azimuth — and builds the whole retrieval pipeline
//! on that 18-byte descriptor:
//!
//! 1. **Similarity** ([`swag_core::similarity`](mod@swag_core::similarity)): camera motion decomposed
//!    into rotation and translation, combined multiplicatively.
//! 2. **Real-time segmentation** ([`swag_core::Segmenter`]): videos are
//!    cut into segments of similar FoV in O(1) per frame on the device.
//! 3. **Abstraction** ([`swag_core::abstract_segment`]): one
//!    representative FoV per segment is uploaded — kilobytes instead of
//!    gigabytes.
//! 4. **Indexing** ([`swag_server::FovIndex`]): the server stores each
//!    representative FoV as a 3-D segment `[lng, lat, tₛ..tₑ]` in an
//!    R-tree built from scratch ([`swag_rtree`]).
//! 5. **Rank-based retrieval** ([`swag_server::CloudServer`]): a
//!    spatio-temporal query returns direction-filtered, distance-ranked
//!    top-N video segments in sub-millisecond time.
//!
//! The workspace also contains every substrate needed to reproduce the
//! paper's evaluation without phones or OpenCV: a sensor/mobility
//! simulator ([`swag_sensors`]), a synthetic-world renderer with CV
//! baselines ([`swag_vision`]), a network model ([`swag_net`]), and the
//! §VII utility/incentive mechanism ([`swag_utility`]).
//!
//! ## Quickstart
//!
//! ```
//! use swag::prelude::*;
//!
//! // 1. A provider records a video; sensors produce (t, p, θ) records.
//! let noise = SensorNoise::smartphone();
//! let trace = swag_sensors::scenarios::bike_ride_with_turn(80.0, 4.0, &noise, 7);
//!
//! // 2. The client pipeline segments in real time and uploads descriptors.
//! let cam = CameraProfile::smartphone();
//! let result = ClientPipeline::process_trace(cam, 0.5, &trace);
//! let mut uploader = Uploader::new(1001);
//! let (wire_bytes, batch) = uploader.upload(result.reps).expect("in range");
//! assert!(wire_bytes.len() < 1000); // descriptors, not video
//!
//! // 3. The server indexes the batch and answers a spatio-temporal query.
//! let server = CloudServer::new(cam);
//! server.ingest_batch(&batch);
//! // Search a spot the ride was filming (60 m up the road), t = 0..60 s.
//! let spot = swag_sensors::scenarios::default_origin().offset(0.0, 60.0);
//! let q = Query::new(0.0, 60.0, spot, 100.0);
//! let hits = server.query(&q, &QueryOptions::default());
//! assert!(!hits.is_empty());
//! ```

pub mod geojson;

pub use swag_client as client;
pub use swag_core as core;
pub use swag_geo as geo;
pub use swag_net as net;
pub use swag_rtree as rtree;
pub use swag_sensors as sensors;
pub use swag_server as server;
pub use swag_sim as sim;
pub use swag_utility as utility;
pub use swag_vision as vision;

/// The most commonly used types, re-exported flat.
pub mod prelude {
    pub use swag_client::{ClientPipeline, Uploader, VideoProfile};
    pub use swag_core::{
        abstract_segment, segment_video, similarity, similarity_parts, AveragingRule,
        CameraProfile, DescriptorCodec, Fov, FovSmoother, RepFov, Segment, Segmenter, TimedFov,
        UploadBatch,
    };
    pub use swag_geo::{LatLon, LocalFrame, Trajectory, Vec2};
    pub use swag_net::{Connectivity, DataPlan, NetworkLink, TrafficMeter, UploadPolicy};
    pub use swag_sensors::{DeviceClock, Mobility, SensorNoise, TraceConfig};
    pub use swag_server::{
        load_snapshot, save_snapshot, CloudServer, FovIndex, IndexKind, Query, QueryOptions,
        SearchHit, SegmentId, SegmentRef,
    };
    pub use swag_utility::{greedy_select, utility_of_set, CoverageGrid, OnlineSelector, Priced};
    pub use swag_vision::{site_survey, suggest_view_radius, Frame, Renderer, Resolution, World};
}
