//! GeoJSON export of traces, view sectors and search results.
//!
//! Everything SWAG manipulates is geographic, so the natural way to
//! inspect it is on a map. This module renders traces, FoV sectors and
//! ranked hits as GeoJSON `FeatureCollection`s that drop straight into
//! geojson.io, Leaflet or QGIS.
//!
//! The JSON is emitted by hand (the sanctioned dependency set has no JSON
//! serialiser); the structures involved are simple enough that this stays
//! readable, and round-trip tests guard the syntax.

use swag_core::{CameraProfile, Fov, TimedFov};
use swag_geo::LatLon;
use swag_server::SearchHit;

/// Number of arc points used to approximate a sector's curved edge.
const ARC_POINTS: usize = 16;

/// A `[lng, lat]` GeoJSON position.
fn position(p: LatLon) -> String {
    format!("[{:.7},{:.7}]", p.lng, p.lat)
}

fn feature(geometry: &str, properties: &str) -> String {
    format!("{{\"type\":\"Feature\",\"geometry\":{geometry},\"properties\":{{{properties}}}}}")
}

fn collection(features: &[String]) -> String {
    format!(
        "{{\"type\":\"FeatureCollection\",\"features\":[{}]}}",
        features.join(",")
    )
}

/// A recorded trace as a `LineString` feature (plus start/end markers).
pub fn trace_to_geojson(trace: &[TimedFov]) -> String {
    let coords: Vec<String> = trace.iter().map(|f| position(f.fov.p)).collect();
    let line = feature(
        &format!(
            "{{\"type\":\"LineString\",\"coordinates\":[{}]}}",
            coords.join(",")
        ),
        &format!(
            "\"kind\":\"trace\",\"frames\":{},\"t_start\":{:.3},\"t_end\":{:.3}",
            trace.len(),
            trace.first().map_or(0.0, |f| f.t),
            trace.last().map_or(0.0, |f| f.t)
        ),
    );
    let mut features = vec![line];
    if let (Some(first), Some(last)) = (trace.first(), trace.last()) {
        features.push(feature(
            &format!(
                "{{\"type\":\"Point\",\"coordinates\":{}}}",
                position(first.fov.p)
            ),
            "\"kind\":\"start\"",
        ));
        features.push(feature(
            &format!(
                "{{\"type\":\"Point\",\"coordinates\":{}}}",
                position(last.fov.p)
            ),
            "\"kind\":\"end\"",
        ));
    }
    collection(&features)
}

/// The view sector of an FoV as a `Polygon` ring (apex → arc → apex).
fn sector_ring(fov: &Fov, cam: &CameraProfile) -> String {
    let mut coords = vec![position(fov.p)];
    for i in 0..=ARC_POINTS {
        let az =
            fov.theta - cam.half_angle_deg + cam.viewing_angle_deg() * i as f64 / ARC_POINTS as f64;
        coords.push(position(fov.p.offset(az, cam.view_radius_m)));
    }
    coords.push(position(fov.p)); // close the ring
    format!("[[{}]]", coords.join(","))
}

/// One FoV's view sector as a standalone feature.
pub fn sector_to_geojson(fov: &Fov, cam: &CameraProfile) -> String {
    collection(&[feature(
        &format!(
            "{{\"type\":\"Polygon\",\"coordinates\":{}}}",
            sector_ring(fov, cam)
        ),
        &format!("\"kind\":\"sector\",\"theta\":{:.2}", fov.theta),
    )])
}

/// Ranked search hits as sector polygons with rank/provider/quality
/// properties, plus the query centre.
pub fn hits_to_geojson(hits: &[SearchHit], cam: &CameraProfile, query_center: LatLon) -> String {
    let mut features = vec![feature(
        &format!(
            "{{\"type\":\"Point\",\"coordinates\":{}}}",
            position(query_center)
        ),
        "\"kind\":\"query-center\"",
    )];
    for (rank, hit) in hits.iter().enumerate() {
        features.push(feature(
            &format!(
                "{{\"type\":\"Polygon\",\"coordinates\":{}}}",
                sector_ring(&hit.rep.fov, cam)
            ),
            &format!(
                "\"kind\":\"hit\",\"rank\":{rank},\"provider\":{},\"video\":{},\"segment\":{},\
                 \"distance_m\":{:.1},\"quality\":{:.4},\"t_start\":{:.3},\"t_end\":{:.3}",
                hit.source.provider_id,
                hit.source.video_id,
                hit.source.segment_idx,
                hit.distance_m,
                hit.quality,
                hit.rep.t_start,
                hit.rep.t_end
            ),
        ));
    }
    collection(&features)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::RepFov;
    use swag_server::{SegmentId, SegmentRef};

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// Minimal structural validation: balanced braces/brackets and no
    /// trailing commas (enough to catch hand-rolled JSON slips, without a
    /// JSON parser in the dependency set).
    fn check_json_shape(s: &str) {
        let mut depth_brace = 0i64;
        let mut depth_bracket = 0i64;
        let mut prev = ' ';
        for c in s.chars() {
            match c {
                '{' => depth_brace += 1,
                '}' => {
                    assert_ne!(prev, ',', "trailing comma before }}");
                    depth_brace -= 1;
                }
                '[' => depth_bracket += 1,
                ']' => {
                    assert_ne!(prev, ',', "trailing comma before ]");
                    depth_bracket -= 1;
                }
                _ => {}
            }
            assert!(depth_brace >= 0 && depth_bracket >= 0, "unbalanced");
            prev = c;
        }
        assert_eq!(depth_brace, 0, "unbalanced braces");
        assert_eq!(depth_bracket, 0, "unbalanced brackets");
    }

    #[test]
    fn trace_geojson_structure() {
        let trace: Vec<TimedFov> = (0..5)
            .map(|i| {
                TimedFov::new(
                    f64::from(i),
                    Fov::new(origin().offset(0.0, f64::from(i) * 10.0), 0.0),
                )
            })
            .collect();
        let json = trace_to_geojson(&trace);
        check_json_shape(&json);
        assert!(json.contains("\"type\":\"FeatureCollection\""));
        assert!(json.contains("\"type\":\"LineString\""));
        assert!(json.contains("\"frames\":5"));
        assert!(json.contains("\"kind\":\"start\""));
        assert!(json.contains("\"kind\":\"end\""));
    }

    #[test]
    fn empty_trace_is_valid() {
        let json = trace_to_geojson(&[]);
        check_json_shape(&json);
        assert!(json.contains("\"frames\":0"));
        assert!(!json.contains("\"kind\":\"start\""));
    }

    #[test]
    fn sector_ring_is_closed_and_sized() {
        let cam = CameraProfile::smartphone();
        let json = sector_to_geojson(&Fov::new(origin(), 45.0), &cam);
        check_json_shape(&json);
        assert!(json.contains("\"type\":\"Polygon\""));
        // apex + (ARC_POINTS + 1) arc points + closing apex
        let coords = json.matches("],[").count() + 1;
        assert_eq!(coords, ARC_POINTS + 3);
        // The ring closes on the apex coordinate.
        let apex = position(origin());
        assert!(json.starts_with("{\"type\":\"FeatureCollection\""));
        assert_eq!(json.matches(&apex).count(), 2);
    }

    #[test]
    fn hits_geojson_carries_rank_and_quality() {
        let cam = CameraProfile::smartphone();
        let hits = vec![SearchHit {
            id: SegmentId(3),
            source: SegmentRef {
                provider_id: 7,
                video_id: 1,
                segment_idx: 2,
            },
            rep: RepFov::new(10.0, 20.0, Fov::new(origin().offset(180.0, 30.0), 0.0)),
            distance_m: 30.0,
            quality: 0.5,
        }];
        let json = hits_to_geojson(&hits, &cam, origin());
        check_json_shape(&json);
        assert!(json.contains("\"kind\":\"query-center\""));
        assert!(json.contains("\"rank\":0"));
        assert!(json.contains("\"provider\":7"));
        assert!(json.contains("\"quality\":0.5000"));
        assert!(json.contains("\"distance_m\":30.0"));
    }
}
