//! End-to-end integration: provider recording → wire codec → server
//! ingest → spatio-temporal query, validated against brute force.

use rand::rngs::StdRng;
use rand::SeedableRng;
use swag::prelude::*;
use swag_core::DescriptorCodec;
use swag_sensors::{generate_trace, scenarios, Mobility};

fn build_crowd(n_providers: u64) -> (CloudServer, Vec<(SegmentRef, RepFov)>) {
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let noise = SensorNoise::smartphone();
    let server = CloudServer::new(cam);
    let mut all = Vec::new();

    for provider in 0..n_providers {
        let mobility = Mobility::random_waypoint(provider, 400.0, 5, 1.4);
        let duration = mobility.natural_duration_s().unwrap().min(240.0);
        let cfg = TraceConfig::new(25.0, duration).starting_at(provider as f64 * 30.0);
        let mut rng = StdRng::seed_from_u64(provider);
        let trace = generate_trace(
            &mobility,
            &frame,
            &cfg,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let result = ClientPipeline::process_trace(cam, 0.5, &trace);
        let mut uploader = Uploader::new(provider);
        let (wire, _) = uploader
            .upload(result.reps)
            .expect("reps fit the codec range");

        // Ship the actual wire bytes: decode on the "server side".
        let batch = DescriptorCodec::decode_batch(wire).expect("valid wire message");
        let ids = server.ingest_batch(&batch);
        for (i, rep) in batch.reps.iter().enumerate() {
            all.push((
                SegmentRef {
                    provider_id: provider,
                    video_id: batch.video_id,
                    segment_idx: i as u32,
                },
                *rep,
            ));
        }
        assert_eq!(ids.len(), batch.reps.len());
    }
    (server, all)
}

#[test]
fn query_results_match_brute_force() {
    let (server, all) = build_crowd(20);
    let origin = scenarios::default_origin();

    for (qi, (bearing, dist, t0, t1, radius)) in [
        (0.0, 100.0, 0.0, 300.0, 80.0),
        (90.0, 250.0, 100.0, 400.0, 150.0),
        (200.0, 50.0, 0.0, 50.0, 40.0),
    ]
    .iter()
    .enumerate()
    {
        let center = origin.offset(*bearing, *dist);
        let query = Query::new(*t0, *t1, center, *radius);
        let opts = QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        };
        let hits = server.query(&query, &opts);

        // Brute force over every uploaded rep with the paper's semantics:
        // spatial box overlap + temporal overlap.
        let r_lat = radius / swag_geo::METERS_PER_DEG;
        let r_lng = radius / (swag_geo::METERS_PER_DEG * center.lat.to_radians().cos());
        let expected: Vec<SegmentRef> = all
            .iter()
            .filter(|(_, rep)| {
                (rep.fov.p.lat - center.lat).abs() <= r_lat
                    && (rep.fov.p.lng - center.lng).abs() <= r_lng
                    && rep.overlaps_time(*t0, *t1)
            })
            .map(|(sref, _)| *sref)
            .collect();

        let mut got: Vec<SegmentRef> = hits.iter().map(|h| h.source).collect();
        let mut want = expected;
        got.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        want.sort_by_key(|s| (s.provider_id, s.video_id, s.segment_idx));
        assert_eq!(got, want, "query {qi} disagreed with brute force");
    }
}

#[test]
fn ranking_is_by_distance_and_respects_top_n() {
    let (server, _) = build_crowd(10);
    let origin = scenarios::default_origin();
    let query = Query::new(0.0, 400.0, origin, 300.0);
    let opts = QueryOptions {
        top_n: 7,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&query, &opts);
    assert!(hits.len() <= 7);
    assert!(hits.windows(2).all(|w| w[0].distance_m <= w[1].distance_m));
}

#[test]
fn direction_filter_only_removes_hits() {
    let (server, _) = build_crowd(12);
    let origin = scenarios::default_origin();
    let query = Query::new(0.0, 400.0, origin.offset(30.0, 120.0), 100.0);
    let all = server.query(
        &query,
        &QueryOptions {
            top_n: usize::MAX,
            direction_filter: false,
            ..QueryOptions::default()
        },
    );
    let filtered = server.query(
        &query,
        &QueryOptions {
            top_n: usize::MAX,
            direction_filter: true,
            direction_tolerance_deg: 0.0,
            ..QueryOptions::default()
        },
    );
    assert!(filtered.len() <= all.len());
    // Every filtered hit is present in the unfiltered list.
    for hit in &filtered {
        assert!(all.iter().any(|h| h.source == hit.source));
    }
}

#[test]
fn concurrent_queries_while_ingesting() {
    let cam = CameraProfile::smartphone();
    let server = CloudServer::new(cam);
    let origin = scenarios::default_origin();
    let reps = swag_sensors::scenarios::citywide_rep_fovs(
        2000,
        &swag_sensors::scenarios::CitywideConfig::default(),
        99,
    );
    crossbeam_scope(&server, &reps, origin);
    assert_eq!(server.stats().segments, 2000);
    assert!(server.stats().queries >= 64);
}

fn crossbeam_scope(server: &CloudServer, reps: &[RepFov], origin: LatLon) {
    std::thread::scope(|s| {
        for chunk in reps.chunks(250) {
            s.spawn(move || {
                for (i, rep) in chunk.iter().enumerate() {
                    server.ingest_one(
                        *rep,
                        SegmentRef {
                            provider_id: i as u64,
                            video_id: 0,
                            segment_idx: i as u32,
                        },
                    );
                }
            });
        }
        for t in 0..4 {
            s.spawn(move || {
                let q = Query::new(0.0, 86_400.0, origin, 5_000.0);
                for _ in 0..16 {
                    let _ = server.query(
                        &q,
                        &QueryOptions {
                            top_n: 10 + t,
                            ..QueryOptions::default()
                        },
                    );
                }
            });
        }
    });
}
