//! Accuracy integration: the content-free FoV pipeline must agree with
//! content-based ground truth — the abstract's "comparable search
//! accuracy with the content-based method" claim, at test scale.

use swag::prelude::*;
use swag_geo::Vec2;
use swag_sensors::scenarios;
use swag_vision::frame_diff_similarity;

/// Pearson correlation coefficient.
fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

#[test]
fn fov_similarity_correlates_with_content_ground_truth() {
    // Pairs of poses across rotations and translations; content ground
    // truth is Jaccard overlap of visible landmark sets.
    let cam = CameraProfile::smartphone();
    let world = World::random_city(7, 400.0, 800);
    let frame = LocalFrame::new(scenarios::default_origin());

    let mut fov_sims = Vec::new();
    let mut content_sims = Vec::new();
    let base = Vec2::ZERO;
    for d_theta in [0.0, 10.0, 20.0, 35.0, 60.0] {
        for (dx, dy) in [
            (0.0, 0.0),
            (10.0, 0.0),
            (0.0, 25.0),
            (30.0, 30.0),
            (60.0, 0.0),
        ] {
            let p2 = Vec2::new(dx, dy);
            let f1 = Fov::new(frame.from_local(base), 0.0);
            let f2 = Fov::new(frame.from_local(p2), d_theta);
            fov_sims.push(similarity(&f1, &f2, &cam));
            content_sims.push(world.content_similarity(
                (base, 0.0),
                (p2, d_theta),
                cam.half_angle_deg,
                cam.view_radius_m,
            ));
        }
    }
    let r = pearson(&fov_sims, &content_sims);
    assert!(r > 0.8, "FoV vs content correlation only {r:.3}");
}

#[test]
fn fov_similarity_correlates_with_frame_differencing() {
    // The paper's Fig. 4: FoV similarity tracks CV (frame differencing)
    // similarity along camera paths. Pixel-aligned differencing saturates
    // to a scene-dependent baseline once views decorrelate, so we average
    // the CV curve over several worlds (the claim is about scenes in
    // general, not one synthetic city) and sample the informative regime:
    // forward translation plus small rotations.
    let cam = CameraProfile::smartphone();
    let frame = LocalFrame::new(scenarios::default_origin());

    // Pose pairs: (start pose fixed) × (translations along view dir,
    // small rotations).
    let mut deltas: Vec<(Vec2, f64)> = (1..=12)
        .map(|i| (Vec2::new(0.0, f64::from(i) * 5.0), 0.0))
        .collect();
    deltas.extend((1..=5).map(|i| (Vec2::ZERO, f64::from(i) * 4.0)));

    let mut fov_sims = vec![0.0f64; deltas.len()];
    let mut cv_sims = vec![0.0f64; deltas.len()];
    let seeds = [11u64, 23, 37, 51];
    for &seed in &seeds {
        let world = World::random_city(seed, 300.0, 400);
        let renderer = Renderer::new(&world, cam.half_angle_deg, cam.view_radius_m);
        let base_frame = renderer.render(Vec2::ZERO, 0.0, Resolution::P240);
        let f0 = Fov::new(frame.from_local(Vec2::ZERO), 0.0);
        for (k, &(dp, dth)) in deltas.iter().enumerate() {
            let fi = Fov::new(frame.from_local(dp), dth);
            fov_sims[k] += similarity(&f0, &fi, &cam) / seeds.len() as f64;
            let img = renderer.render(dp, dth, Resolution::P240);
            cv_sims[k] += frame_diff_similarity(&base_frame, &img) / seeds.len() as f64;
        }
    }
    let r = pearson(&fov_sims, &cv_sims);
    assert!(r > 0.6, "FoV vs frame-diff correlation only {r:.3}");
}

#[test]
fn retrieval_matches_content_based_retrieval() {
    // Ground truth: a segment is relevant iff its view sector contains
    // landmarks near the query point. Compare the FoV server's results
    // against that content-based relevance set.
    let cam = CameraProfile::smartphone();
    let origin = scenarios::default_origin();
    let frame = LocalFrame::new(origin);
    let world = World::random_city(3, 600.0, 2000);
    let server = CloudServer::new(cam);

    // 400 random segments scattered over the area.
    let reps = scenarios::citywide_rep_fovs(
        400,
        &scenarios::CitywideConfig {
            extent_m: 500.0,
            time_window_s: 600.0,
            min_segment_s: 5.0,
            max_segment_s: 30.0,
        },
        21,
    );
    for (i, rep) in reps.iter().enumerate() {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            },
        );
    }

    let target_local = Vec2::new(50.0, 80.0);
    let target = frame.from_local(target_local);
    let query = Query::new(0.0, 600.0, target, 100.0);
    // Geometric covering test only: the strict point-at-the-exact-centre
    // direction filter trades recall for precision (a camera can film
    // content inside the disc without aiming at its centre).
    let opts = QueryOptions {
        top_n: usize::MAX,
        require_coverage: true,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let hits = server.query(&query, &opts);

    // Content-based relevance: the segment's sector sees at least one
    // landmark within the query disc.
    let near_target: Vec<usize> = world
        .landmarks()
        .iter()
        .enumerate()
        .filter(|(_, lm)| (lm.position - target_local).norm() <= query.radius_m)
        .map(|(i, _)| i)
        .collect();
    assert!(!near_target.is_empty(), "test world too sparse");

    let relevant: Vec<u64> = reps
        .iter()
        .enumerate()
        .filter(|(_, rep)| {
            let visible = world.visible_landmarks(
                frame.to_local(rep.fov.p),
                rep.fov.theta,
                cam.half_angle_deg,
                cam.view_radius_m,
            );
            visible.iter().any(|i| near_target.contains(i))
        })
        .map(|(i, _)| i as u64)
        .collect();

    let got: Vec<u64> = hits.iter().map(|h| h.source.provider_id).collect();
    let tp = got.iter().filter(|id| relevant.contains(id)).count();
    if !got.is_empty() {
        let precision = tp as f64 / got.len() as f64;
        assert!(
            precision > 0.6,
            "precision {precision:.2} ({tp}/{} content-relevant)",
            got.len()
        );
    }
    // Recall against relevant segments close enough to be retrievable.
    let retrievable: Vec<u64> = relevant
        .iter()
        .copied()
        .filter(|&i| {
            (frame.to_local(reps[i as usize].fov.p) - target_local).norm() <= query.radius_m
        })
        .collect();
    if !retrievable.is_empty() {
        let found = retrievable.iter().filter(|id| got.contains(id)).count();
        let recall = found as f64 / retrievable.len() as f64;
        assert!(recall > 0.9, "recall {recall:.2}");
    }
}
