//! Full system lifecycle: record → CSV interchange → segment → ingest →
//! snapshot → restore → query → retract. This is the CLI's workflow
//! exercised at the library level.

use swag::prelude::*;
use swag_core::{read_reps_csv, read_trace_csv, write_reps_csv, write_trace_csv};
use swag_sensors::scenarios;

#[test]
fn record_to_retraction_lifecycle() {
    let cam = CameraProfile::smartphone();
    let noise = SensorNoise::smartphone();

    // --- Record two providers and push their traces through the CSV
    // interchange format (what the CLI does with files).
    let mut batches = Vec::new();
    for (provider, seed) in [(0u64, 11u64), (1, 12)] {
        let trace = scenarios::bike_ride_with_turn(80.0, 4.0, &noise, seed);
        let mut csv = Vec::new();
        write_trace_csv(&mut csv, &trace).unwrap();
        let parsed = read_trace_csv(&csv[..]).unwrap();
        assert_eq!(parsed.len(), trace.len());

        let result = ClientPipeline::process_trace_smoothed(cam, 0.5, 0.2, &parsed);
        assert!(result.segment_count() >= 2);

        // Representative FoVs also survive their CSV format.
        let mut reps_csv = Vec::new();
        write_reps_csv(&mut reps_csv, &result.reps).unwrap();
        let reps = read_reps_csv(&reps_csv[..]).unwrap();
        assert_eq!(reps.len(), result.reps.len());

        let mut uploader = Uploader::new(provider);
        let (_, batch) = uploader.upload(reps).expect("reps fit the codec range");
        batches.push(batch);
    }

    // --- Ingest, snapshot, restore.
    let server = CloudServer::new(cam);
    for b in &batches {
        server.ingest_batch(b);
    }
    let total = server.stats().segments;
    assert!(total >= 4);

    let snap = save_snapshot(&server).unwrap();
    let restored = load_snapshot(snap, cam).unwrap();
    assert_eq!(restored.stats().segments, total);

    // --- Query the restored server: a point on the shared route.
    let spot = scenarios::default_origin().offset(0.0, 60.0);
    let q = Query::new(0.0, 60.0, spot, 100.0);
    let opts = QueryOptions {
        top_n: usize::MAX,
        ..QueryOptions::default()
    };
    let hits = restored.query(&q, &opts);
    assert!(!hits.is_empty());
    let providers: std::collections::HashSet<u64> =
        hits.iter().map(|h| h.source.provider_id).collect();
    assert_eq!(providers.len(), 2, "both providers filmed the route");

    // --- Provider 0 retracts; snapshot round trip preserves that.
    let removed = restored.retract_provider(0);
    assert!(removed >= 2);
    let after = load_snapshot(save_snapshot(&restored).unwrap(), cam).unwrap();
    let hits = after.query(&q, &opts);
    assert!(!hits.is_empty());
    assert!(hits.iter().all(|h| h.source.provider_id == 1));
}

#[test]
fn quality_and_distance_rankings_agree_on_membership() {
    let cam = CameraProfile::smartphone();
    let server = CloudServer::new(cam);
    let reps = scenarios::citywide_rep_fovs(
        300,
        &scenarios::CitywideConfig {
            extent_m: 400.0,
            time_window_s: 600.0,
            min_segment_s: 5.0,
            max_segment_s: 30.0,
        },
        5,
    );
    for (i, rep) in reps.iter().enumerate() {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            },
        );
    }
    let q = Query::new(0.0, 600.0, scenarios::default_origin(), 150.0);
    let base = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let by_distance = server.query(&q, &base);
    let by_quality = server.query(
        &q,
        &QueryOptions {
            rank: swag_server::RankMode::Quality,
            ..base
        },
    );
    // Same candidate set, different order.
    let mut a: Vec<_> = by_distance.iter().map(|h| h.id).collect();
    let mut b: Vec<_> = by_quality.iter().map(|h| h.id).collect();
    a.sort();
    b.sort();
    assert_eq!(a, b);
    // Quality ordering is non-increasing.
    assert!(by_quality.windows(2).all(|w| w[0].quality >= w[1].quality));
}

#[test]
fn batch_queries_scale_with_threads() {
    let cam = CameraProfile::smartphone();
    let server = CloudServer::new(cam);
    for (i, rep) in scenarios::citywide_rep_fovs(5000, &scenarios::CitywideConfig::default(), 9)
        .iter()
        .enumerate()
    {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: i as u64,
                video_id: 0,
                segment_idx: 0,
            },
        );
    }
    let queries: Vec<Query> = (0..64)
        .map(|i| {
            Query::new(
                f64::from(i) * 100.0,
                f64::from(i) * 100.0 + 3600.0,
                scenarios::default_origin().offset(f64::from(i) * 5.0, 2000.0),
                500.0,
            )
        })
        .collect();
    let opts = QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    };
    let seq: Vec<usize> = queries
        .iter()
        .map(|q| server.query(q, &opts).len())
        .collect();
    let par = server.query_batch(&queries, &opts, 8);
    let par_counts: Vec<usize> = par.iter().map(Vec::len).collect();
    assert_eq!(seq, par_counts);
}
