//! Counting completion latch.
//!
//! Coordinating callers spin-help on the pool while the latch is open and
//! park briefly when no work is available; the final decrement notifies
//! under the lock so a parked waiter cannot miss it.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Condvar, PoisonError};
use std::time::Duration;

use parking_lot::Mutex;

/// Counts outstanding jobs; "set" when the count reaches zero.
pub(crate) struct CountLatch {
    count: AtomicUsize,
    lock: Mutex<()>,
    cvar: Condvar,
}

impl CountLatch {
    /// A latch with `count` outstanding jobs.
    pub(crate) fn new(count: usize) -> Self {
        CountLatch {
            count: AtomicUsize::new(count),
            lock: Mutex::new(()),
            cvar: Condvar::new(),
        }
    }

    /// Adds one outstanding job. Must happen-before the matching
    /// [`Self::set_one`] (callers increment before submitting).
    pub(crate) fn increment(&self) {
        self.count.fetch_add(1, Ordering::Relaxed);
    }

    /// Marks one job done. The `Release` pairs with the waiter's
    /// `Acquire` load so the job's writes are visible once the latch
    /// reads zero.
    pub(crate) fn set_one(&self) {
        if self.count.fetch_sub(1, Ordering::Release) == 1 {
            let _guard = self.lock.lock();
            self.cvar.notify_all();
        }
    }

    /// Whether every job has finished.
    pub(crate) fn is_set(&self) -> bool {
        self.count.load(Ordering::Acquire) == 0
    }

    /// Parks the caller until notified or `timeout` elapses. The timeout
    /// bounds the missed-wakeup window for *pool* work arriving while we
    /// sleep on the latch (latch completion itself is never missed: the
    /// zero check below happens under the same lock as `set_one`'s
    /// notification).
    pub(crate) fn park(&self, timeout: Duration) {
        let guard = self.lock.lock();
        if self.is_set() {
            return;
        }
        let _ = self
            .cvar
            .wait_timeout(guard, timeout)
            .unwrap_or_else(PoisonError::into_inner);
    }
}
