//! # swag-exec — work-stealing executor
//!
//! A small, dependency-free thread pool built for the retrieval
//! pipeline's three hot loops: per-query shard fan-out, publish-time STR
//! rebuilds, and batched query execution. The API is deliberately tiny:
//!
//! - [`Executor::par_map`] / [`Executor::par_map_owned`] — order-
//!   preserving parallel map over a slice / owned items.
//! - [`Executor::join`] — run two closures, potentially in parallel.
//! - [`Executor::scope`] — structured spawns borrowing the environment.
//!
//! ## Determinism
//!
//! Every primitive preserves *result order*: `par_map` returns outputs
//! at their input index, `join` returns `(a, b)`, and the serial
//! executor ([`ExecConfig::serial`], or `SWAG_EXEC_THREADS=1`) degrades
//! each primitive to plain in-order execution. Callers that merge
//! parallel partial results deterministically (as the server's shard
//! fan-out does) therefore produce byte-identical output in serial and
//! parallel mode — a property the test suite checks by proptest.
//!
//! ## Blocking and nesting
//!
//! A caller blocked on a parallel call *helps*: it executes pool work
//! while it waits, so nested parallelism from inside a worker cannot
//! deadlock even on a single-thread pool.

mod job;
mod latch;
mod par;
mod pool;

use std::sync::{Arc, OnceLock};

pub use par::Scope;
use pool::{Pool, PoolHandle};
use swag_obs::Registry;

/// How many worker threads an [`Executor`] should run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecConfig {
    threads: usize,
}

impl ExecConfig {
    /// Deterministic single-threaded execution (no pool at all).
    pub fn serial() -> ExecConfig {
        ExecConfig { threads: 1 }
    }

    /// A pool with `threads` workers (clamped to at least 1).
    pub fn with_threads(threads: usize) -> ExecConfig {
        ExecConfig {
            threads: threads.max(1),
        }
    }

    /// Reads `SWAG_EXEC_THREADS` (any positive integer; `1` means
    /// serial), falling back to the machine's available parallelism.
    pub fn from_env() -> ExecConfig {
        let threads = std::env::var("SWAG_EXEC_THREADS")
            .ok()
            .and_then(|s| s.trim().parse::<usize>().ok())
            .filter(|&n| n >= 1)
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()));
        ExecConfig::with_threads(threads)
    }

    /// The configured worker count.
    pub fn threads(&self) -> usize {
        self.threads
    }
}

impl Default for ExecConfig {
    fn default() -> Self {
        ExecConfig::from_env()
    }
}

/// Point-in-time executor counters (see [`Executor::stats`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ExecStats {
    /// Worker threads (1 for the serial executor).
    pub threads: usize,
    /// Jobs submitted over the executor's lifetime.
    pub tasks: u64,
    /// Jobs taken from another worker's deque.
    pub steals: u64,
}

/// Handle to a work-stealing pool (or the serial fallback). Cheap to
/// clone; clones share the same workers.
#[derive(Clone, Default)]
pub struct Executor {
    inner: Option<Arc<PoolHandle>>,
}

impl Executor {
    /// Builds an executor; `threads <= 1` yields the serial executor.
    pub fn new(config: ExecConfig) -> Executor {
        if config.threads <= 1 {
            return Executor::serial();
        }
        Executor {
            inner: Some(Arc::new(PoolHandle::spawn(config.threads))),
        }
    }

    /// The deterministic no-pool executor.
    pub fn serial() -> Executor {
        Executor { inner: None }
    }

    /// The process-wide executor, built from [`ExecConfig::from_env`] on
    /// first use.
    pub fn global() -> &'static Executor {
        static GLOBAL: OnceLock<Executor> = OnceLock::new();
        GLOBAL.get_or_init(|| Executor::new(ExecConfig::from_env()))
    }

    /// Worker count (1 when serial).
    pub fn threads(&self) -> usize {
        self.inner.as_ref().map_or(1, |h| h.pool().threads())
    }

    /// Whether this executor runs everything inline on the caller.
    pub fn is_serial(&self) -> bool {
        self.inner.is_none()
    }

    /// Resolves the pool's metric handles (`swag_exec_tasks_total`,
    /// `swag_exec_steals_total`, `swag_exec_queue_depth`) against
    /// `registry`. First call wins; later calls are no-ops.
    pub fn attach_observability(&self, registry: &Registry) {
        if let Some(handle) = &self.inner {
            handle.pool().attach_observability(registry);
        }
    }

    /// Lifetime counters for this executor's pool.
    pub fn stats(&self) -> ExecStats {
        match &self.inner {
            None => ExecStats {
                threads: 1,
                tasks: 0,
                steals: 0,
            },
            Some(handle) => ExecStats {
                threads: handle.pool().threads(),
                tasks: handle.pool().tasks_submitted(),
                steals: handle.pool().steals(),
            },
        }
    }

    pub(crate) fn pool(&self) -> Option<&Pool> {
        self.inner.as_deref().map(|h| h.pool().as_ref())
    }
}

impl std::fmt::Debug for Executor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Executor")
            .field("threads", &self.threads())
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn serial_par_map_is_in_order() {
        let exec = Executor::serial();
        let out = exec.par_map(&[1, 2, 3], |x| x * 2);
        assert_eq!(out, vec![2, 4, 6]);
    }

    #[test]
    fn parallel_par_map_preserves_order() {
        let exec = Executor::new(ExecConfig::with_threads(4));
        let items: Vec<u64> = (0..1000).collect();
        let out = exec.par_map(&items, |x| x * x);
        let expected: Vec<u64> = items.iter().map(|x| x * x).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_owned_moves_items() {
        let exec = Executor::new(ExecConfig::with_threads(3));
        let items: Vec<String> = (0..64).map(|i| i.to_string()).collect();
        let out = exec.par_map_owned(items, |s| s.len());
        let expected: Vec<usize> = (0..64).map(|i| i.to_string().len()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn join_returns_both() {
        let exec = Executor::new(ExecConfig::with_threads(2));
        let (a, b) = exec.join(|| 1 + 1, || "two");
        assert_eq!((a, b), (2, "two"));
    }

    #[test]
    fn join_serial_runs_in_order() {
        let exec = Executor::serial();
        let order = std::sync::Mutex::new(Vec::new());
        let (_, _) = exec.join(
            || order.lock().unwrap().push('a'),
            || order.lock().unwrap().push('b'),
        );
        assert_eq!(*order.lock().unwrap(), vec!['a', 'b']);
    }

    #[test]
    fn scope_runs_all_spawns() {
        let exec = Executor::new(ExecConfig::with_threads(4));
        let counter = AtomicUsize::new(0);
        exec.scope(|s| {
            for _ in 0..100 {
                s.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 100);
    }

    #[test]
    fn nested_par_map_completes() {
        let exec = Executor::new(ExecConfig::with_threads(2));
        let outer: Vec<usize> = (0..8).collect();
        let out = exec.par_map(&outer, |&i| {
            let inner: Vec<usize> = (0..16).collect();
            exec.par_map(&inner, |&j| i * 100 + j).iter().sum::<usize>()
        });
        let expected: Vec<usize> = (0..8).map(|i| (0..16).map(|j| i * 100 + j).sum()).collect();
        assert_eq!(out, expected);
    }

    #[test]
    fn par_map_propagates_panic() {
        let exec = Executor::new(ExecConfig::with_threads(2));
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.par_map(&items, |&i| {
                if i == 17 {
                    panic!("boom at {i}");
                }
                i
            })
        }));
        assert!(result.is_err());
        // Pool stays usable after a panic.
        let out = exec.par_map(&items, |&i| i + 1);
        assert_eq!(out.len(), 32);
    }

    #[test]
    fn join_propagates_a_panic_after_b_finishes() {
        let exec = Executor::new(ExecConfig::with_threads(2));
        let b_ran = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.join(
                || panic!("a failed"),
                || b_ran.fetch_add(1, Ordering::SeqCst),
            )
        }));
        assert!(result.is_err());
        assert_eq!(b_ran.load(Ordering::SeqCst), 1);
    }

    #[test]
    fn env_config_parses() {
        assert_eq!(ExecConfig::with_threads(0).threads(), 1);
        assert_eq!(ExecConfig::serial().threads(), 1);
        assert!(ExecConfig::from_env().threads() >= 1);
    }

    #[test]
    fn par_map_carries_ambient_trace_ctx_into_stolen_jobs() {
        use swag_obs::TraceCtx;
        let exec = Executor::new(ExecConfig::with_threads(4));
        let root = TraceCtx::new_root();
        let prev = TraceCtx::set_current(root);
        let items: Vec<usize> = (0..256).collect();
        let out = exec.par_map(&items, |_| TraceCtx::current());
        TraceCtx::set_current(prev);
        assert!(out.iter().all(|c| *c == root), "ctx lost in flight");
        // Workers must restore their previous (absent) context: a map
        // submitted with no ambient ctx sees none, even on warm workers.
        let out = exec.par_map(&items, |_| TraceCtx::current());
        assert!(out.iter().all(|c| c.is_none()), "ctx leaked to next job");
    }

    #[test]
    fn join_and_scope_carry_ambient_trace_ctx() {
        use swag_obs::TraceCtx;
        let exec = Executor::new(ExecConfig::with_threads(2));
        let root = TraceCtx::new_root();
        let prev = TraceCtx::set_current(root);
        let (a, b) = exec.join(TraceCtx::current, TraceCtx::current);
        assert_eq!((a, b), (root, root));
        let seen = std::sync::Mutex::new(Vec::new());
        exec.scope(|s| {
            for _ in 0..32 {
                s.spawn(|| seen.lock().unwrap().push(TraceCtx::current()));
            }
        });
        TraceCtx::set_current(prev);
        let seen = seen.into_inner().unwrap();
        assert_eq!(seen.len(), 32);
        assert!(seen.iter().all(|c| *c == root));
    }

    #[test]
    fn serial_executor_preserves_ambient_trace_ctx() {
        use swag_obs::TraceCtx;
        let exec = Executor::serial();
        let root = TraceCtx::new_root();
        let prev = TraceCtx::set_current(root);
        let out = exec.par_map(&[1, 2, 3], |_| TraceCtx::current());
        let (a, b) = exec.join(TraceCtx::current, TraceCtx::current);
        TraceCtx::set_current(prev);
        assert!(out.iter().all(|c| *c == root));
        assert_eq!((a, b), (root, root));
    }

    #[test]
    fn stats_count_tasks() {
        let exec = Executor::new(ExecConfig::with_threads(2));
        let items: Vec<usize> = (0..100).collect();
        let _ = exec.par_map(&items, |&i| i);
        let stats = exec.stats();
        assert_eq!(stats.threads, 2);
        assert!(stats.tasks > 0);
    }
}
