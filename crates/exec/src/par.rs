//! Parallel primitives: indexed map over slices, binary `join`, and a
//! spawn scope. All of them fall back to plain in-order serial execution
//! when the executor has no pool, so `ExecConfig::serial()` reproduces
//! byte-identical results.

use std::cell::UnsafeCell;
use std::panic::{catch_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};

use swag_obs::TraceCtx;

use crate::job::{JobRef, PanicStore};
use crate::latch::CountLatch;
use crate::pool::Pool;
use crate::Executor;

/// A write-once output cell; workers write disjoint indices, the
/// coordinator reads only after the latch proves all writes finished.
struct Slot<R>(UnsafeCell<Option<R>>);

// SAFETY: access is partitioned by index (each worker chunk writes its
// own slots exactly once) and ordered by the CountLatch release/acquire
// pair before the coordinator reads.
unsafe impl<R: Send> Sync for Slot<R> {}

/// A take-once input cell for owned items, mirroring [`Slot`].
struct TakeCell<T>(UnsafeCell<Option<T>>);

// SAFETY: same partitioning argument as `Slot` — each index is taken by
// exactly one worker chunk.
unsafe impl<T: Send> Sync for TakeCell<T> {}

/// Shared descriptor for one `par_map` invocation; lives on the
/// coordinator's stack for the duration of the call.
struct ParJob<'a, R, F> {
    f: &'a F,
    get_len: usize,
    chunk: usize,
    next: AtomicUsize,
    slots: &'a [Slot<R>],
    latch: CountLatch,
    panic: PanicStore,
    /// The submitter's ambient trace context, re-installed in whichever
    /// worker steals a chunk so span trees survive work stealing.
    ctx: TraceCtx,
}

/// Runs one chunk claim: grabs the next chunk index and maps its items.
unsafe fn execute_par_job<R, F: Fn(usize) -> R + Sync>(data: *const ()) {
    let job = unsafe { &*data.cast::<ParJob<'_, R, F>>() };
    let c = job.next.fetch_add(1, Ordering::Relaxed);
    let start = c * job.chunk;
    let end = (start + job.chunk).min(job.get_len);
    let prev = TraceCtx::set_current(job.ctx);
    let result = catch_unwind(AssertUnwindSafe(|| {
        for i in start..end {
            let value = (job.f)(i);
            // SAFETY: index `i` belongs exclusively to chunk `c`.
            unsafe { *job.slots[i].0.get() = Some(value) };
        }
    }));
    TraceCtx::set_current(prev);
    if let Err(payload) = result {
        job.panic.store(payload);
    }
    job.latch.set_one();
}

/// Maps `f` over `0..len` on the pool, returning results in index order.
fn par_collect_indexed<R, F>(pool: &Pool, len: usize, f: F) -> Vec<R>
where
    R: Send,
    F: Fn(usize) -> R + Sync,
{
    let threads = pool.threads();
    // ~4 chunks per worker balances steal granularity against per-chunk
    // submit overhead.
    let chunk = len.div_ceil(threads * 4).max(1);
    let n_chunks = len.div_ceil(chunk);
    let slots: Vec<Slot<R>> = (0..len).map(|_| Slot(UnsafeCell::new(None))).collect();
    let job = ParJob {
        f: &f,
        get_len: len,
        chunk,
        next: AtomicUsize::new(0),
        slots: &slots,
        latch: CountLatch::new(n_chunks),
        panic: PanicStore::default(),
        ctx: TraceCtx::current(),
    };
    for _ in 0..n_chunks {
        // SAFETY: `job` outlives the wait below, and exactly `n_chunks`
        // refs are submitted for `n_chunks` chunk claims.
        pool.submit(unsafe { JobRef::new(&job as *const _, execute_par_job::<R, F>) });
    }
    pool.wait(&job.latch);
    job.panic.resume_if_any();
    slots
        .into_iter()
        .map(|s| s.0.into_inner().expect("par_map slot filled"))
        .collect()
}

/// Descriptor for `join`'s second arm.
struct JoinJob<B, RB> {
    b: UnsafeCell<Option<B>>,
    result: UnsafeCell<Option<RB>>,
    latch: CountLatch,
    panic: PanicStore,
    /// Submitter's ambient trace context; see [`ParJob::ctx`].
    ctx: TraceCtx,
}

// SAFETY: the closure is taken exactly once (by the worker that executes
// the submitted ref, or by the coordinator after reclaiming it via
// `pop_if`); the result is read only after the latch is set.
unsafe impl<B: Send, RB: Send> Sync for JoinJob<B, RB> {}

unsafe fn execute_join_job<B: FnOnce() -> RB, RB>(data: *const ()) {
    let job = unsafe { &*data.cast::<JoinJob<B, RB>>() };
    // SAFETY: single taker, see JoinJob's Sync justification.
    let b = unsafe { (*job.b.get()).take().expect("join arm taken once") };
    let prev = TraceCtx::set_current(job.ctx);
    match catch_unwind(AssertUnwindSafe(b)) {
        Ok(rb) => unsafe { *job.result.get() = Some(rb) },
        Err(payload) => job.panic.store(payload),
    }
    TraceCtx::set_current(prev);
    job.latch.set_one();
}

/// Heap-allocated job for scope spawns; frees itself on execution.
struct HeapJob<F> {
    f: F,
    core: *const ScopeCore,
    /// Spawner's ambient trace context; see [`ParJob::ctx`].
    ctx: TraceCtx,
}

unsafe fn execute_heap_job<F: FnOnce() + Send>(data: *const ()) {
    // SAFETY: exactly one ref was created from this Box in `Scope::spawn`.
    let job = unsafe { Box::from_raw(data.cast::<HeapJob<F>>().cast_mut()) };
    // SAFETY: the ScopeCore outlives all spawns (scope() blocks on the
    // latch before returning).
    let core = unsafe { &*job.core };
    let prev = TraceCtx::set_current(job.ctx);
    if let Err(payload) = catch_unwind(AssertUnwindSafe(job.f)) {
        core.panic.store(payload);
    }
    TraceCtx::set_current(prev);
    core.latch.set_one();
}

/// Non-generic heart of a scope: completion latch plus panic store.
pub(crate) struct ScopeCore {
    latch: CountLatch,
    panic: PanicStore,
}

/// Spawn handle passed to the closure given to [`Executor::scope`].
///
/// `'scope` is the lifetime of the scope itself; spawned closures must
/// outlive it (`'env`: borrows from outside the scope are fine, borrows
/// of scope-local data are not — same shape as `std::thread::scope`).
pub struct Scope<'scope, 'env: 'scope> {
    pool: Option<&'scope Pool>,
    core: &'scope ScopeCore,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

impl<'scope, 'env> Scope<'scope, 'env> {
    /// Runs `f` on the pool (or inline in serial mode). Completion is
    /// awaited — and any panic re-raised — when the enclosing
    /// [`Executor::scope`] call returns.
    pub fn spawn<F>(&self, f: F)
    where
        F: FnOnce() + Send + 'env,
    {
        match self.pool {
            None => {
                if let Err(payload) = catch_unwind(AssertUnwindSafe(f)) {
                    self.core.panic.store(payload);
                }
            }
            Some(pool) => {
                self.core.latch.increment();
                let job = Box::new(HeapJob {
                    f,
                    core: self.core as *const ScopeCore,
                    ctx: TraceCtx::current(),
                });
                let data = Box::into_raw(job);
                // SAFETY: `data` is a fresh heap allocation consumed
                // exactly once by `execute_heap_job`.
                pool.submit(unsafe { JobRef::new(data, execute_heap_job::<F>) });
            }
        }
    }
}

impl Executor {
    /// Maps `f` over `items` on the pool, preserving input order. Serial
    /// executors (and trivial inputs) map in-place in order, so results
    /// are identical in both modes.
    pub fn par_map<T, R, F>(&self, items: &[T], f: F) -> Vec<R>
    where
        T: Sync,
        R: Send,
        F: Fn(&T) -> R + Sync,
    {
        match self.pool() {
            Some(pool) if items.len() > 1 => {
                par_collect_indexed(pool, items.len(), |i| f(&items[i]))
            }
            _ => items.iter().map(f).collect(),
        }
    }

    /// [`Executor::par_map`] over owned items.
    pub fn par_map_owned<T, R, F>(&self, items: Vec<T>, f: F) -> Vec<R>
    where
        T: Send,
        R: Send,
        F: Fn(T) -> R + Sync,
    {
        match self.pool() {
            Some(pool) if items.len() > 1 => {
                let cells: Vec<TakeCell<T>> = items
                    .into_iter()
                    .map(|t| TakeCell(UnsafeCell::new(Some(t))))
                    .collect();
                par_collect_indexed(pool, cells.len(), |i| {
                    // SAFETY: index `i` is visited by exactly one chunk.
                    let item = unsafe { (*cells[i].0.get()).take() };
                    f(item.expect("par_map_owned item taken once"))
                })
            }
            _ => items.into_iter().map(f).collect(),
        }
    }

    /// Runs `a` and `b`, potentially in parallel, returning both results.
    /// Serial executors run `a` then `b` in order.
    pub fn join<A, B, RA, RB>(&self, a: A, b: B) -> (RA, RB)
    where
        A: FnOnce() -> RA,
        B: FnOnce() -> RB + Send,
        RA: Send,
        RB: Send,
    {
        let Some(pool) = self.pool() else {
            return (a(), b());
        };
        let job = JoinJob {
            b: UnsafeCell::new(Some(b)),
            result: UnsafeCell::new(None),
            latch: CountLatch::new(1),
            panic: PanicStore::default(),
            ctx: TraceCtx::current(),
        };
        let data = &job as *const JoinJob<B, RB>;
        // SAFETY: `job` outlives the wait below; the ref is executed at
        // most once (by a thief, or reclaimed via pop_if and run inline).
        pool.submit(unsafe { JobRef::new(data, execute_join_job::<B, RB>) });
        let ra = catch_unwind(AssertUnwindSafe(a));
        if let Some(reclaimed) = pool.pop_if(data.cast()) {
            // SAFETY: reclaiming removed the queued ref, so this is the
            // single execution.
            unsafe { reclaimed.execute() };
        }
        // Wait for `b` before re-raising `a`'s panic: `job` lives on this
        // stack frame and a thief may still be running it.
        pool.wait(&job.latch);
        let ra = match ra {
            Ok(ra) => ra,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        job.panic.resume_if_any();
        // SAFETY: latch set → the arm finished and its write is visible.
        let rb = unsafe { (*job.result.get()).take() };
        (ra, rb.expect("join arm produced a result"))
    }

    /// Structured-concurrency scope: `f` may `spawn` tasks borrowing
    /// `'env` data; all spawns complete (and panics re-raise) before
    /// `scope` returns. Serial executors run spawns inline in call order.
    pub fn scope<'env, R>(
        &self,
        f: impl for<'scope> FnOnce(&'scope Scope<'scope, 'env>) -> R,
    ) -> R {
        let core = ScopeCore {
            latch: CountLatch::new(0),
            panic: PanicStore::default(),
        };
        let scope = Scope {
            pool: self.pool(),
            core: &core,
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Even if `f` panicked, spawned tasks may still borrow `'env`
        // data reachable through `core` — drain them before unwinding.
        if let Some(pool) = self.pool() {
            pool.wait(&core.latch);
        }
        let result = match result {
            Ok(r) => r,
            Err(payload) => std::panic::resume_unwind(payload),
        };
        core.panic.resume_if_any();
        result
    }
}
