//! Work-stealing thread pool.
//!
//! Each worker owns a LIFO deque (newest-first keeps hot data in cache
//! and bounds live task count under nested parallelism); a shared FIFO
//! injector receives work submitted from outside the pool. Idle workers
//! steal from the *front* of siblings' deques — the oldest, typically
//! largest pending work. Callers that block on a [`CountLatch`] help
//! execute pool work while they wait, so nested `par_map`/`join` from
//! inside a worker can never deadlock the pool.

use std::cell::Cell;
use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Condvar, OnceLock, PoisonError};
use std::thread::JoinHandle;
use std::time::Duration;

use parking_lot::Mutex;
use swag_obs::{Counter, Histogram, MonotonicClock, Registry, WallClock};

use crate::job::JobRef;
use crate::latch::CountLatch;

/// How long a blocked coordinator naps between help attempts.
const PARK_INTERVAL: Duration = Duration::from_micros(200);
/// How long an idle worker sleeps before re-polling local deques (backstop
/// for wakeups pushed to a sibling's local deque, which only
/// `notify_one`s the injector condvar).
const IDLE_INTERVAL: Duration = Duration::from_micros(500);

thread_local! {
    /// (pool identity, worker index) for the current thread; identity 0
    /// means "not a pool worker".
    static CURRENT_WORKER: Cell<(usize, usize)> = const { Cell::new((0, usize::MAX)) };
}

/// Metric handles resolved once when observability is attached.
pub(crate) struct ExecObs {
    tasks: Arc<Counter>,
    steals: Arc<Counter>,
    queue_depth: Arc<Histogram>,
    /// Submit-to-dequeue latency for every task that left a queue.
    queue_wait: Arc<Histogram>,
    /// Same latency, but only for tasks dequeued by stealing — how stale
    /// cross-worker work is when it finally runs.
    steal_wait: Arc<Histogram>,
}

impl ExecObs {
    pub(crate) fn new(registry: &Registry) -> Self {
        registry.set_help(
            "swag_exec_queue_wait_micros",
            "Submit-to-dequeue latency per executor task.",
        );
        registry.set_help(
            "swag_exec_steal_wait_micros",
            "Submit-to-dequeue latency for stolen tasks only.",
        );
        ExecObs {
            tasks: registry.counter("swag_exec_tasks_total"),
            steals: registry.counter("swag_exec_steals_total"),
            queue_depth: registry.histogram("swag_exec_queue_depth"),
            queue_wait: registry.histogram("swag_exec_queue_wait_micros"),
            steal_wait: registry.histogram("swag_exec_steal_wait_micros"),
        }
    }
}

/// Shared pool state; workers and coordinating callers both hold an
/// `Arc` to it.
pub(crate) struct Pool {
    /// FIFO queue for work submitted from non-worker threads.
    injector: Mutex<VecDeque<JobRef>>,
    /// Wakes idle workers when the injector receives work or on shutdown.
    idle: Condvar,
    /// Per-worker LIFO deques.
    locals: Vec<Mutex<VecDeque<JobRef>>>,
    shutdown: AtomicBool,
    tasks: AtomicU64,
    steals: AtomicU64,
    obs: OnceLock<ExecObs>,
}

impl Pool {
    fn new(threads: usize) -> Pool {
        Pool {
            injector: Mutex::new(VecDeque::new()),
            idle: Condvar::new(),
            locals: (0..threads).map(|_| Mutex::new(VecDeque::new())).collect(),
            shutdown: AtomicBool::new(false),
            tasks: AtomicU64::new(0),
            steals: AtomicU64::new(0),
            obs: OnceLock::new(),
        }
    }

    fn identity(&self) -> usize {
        self as *const Pool as usize
    }

    /// The current thread's worker index in *this* pool, if any.
    fn me(&self) -> Option<usize> {
        let (pool, idx) = CURRENT_WORKER.get();
        (pool == self.identity()).then_some(idx)
    }

    pub(crate) fn threads(&self) -> usize {
        self.locals.len()
    }

    pub(crate) fn attach_observability(&self, registry: &Registry) {
        let _ = self.obs.set(ExecObs::new(registry));
    }

    pub(crate) fn tasks_submitted(&self) -> u64 {
        self.tasks.load(Ordering::Relaxed)
    }

    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }

    /// Enqueues a job: onto the submitting worker's own deque when called
    /// from inside the pool, else onto the shared injector.
    pub(crate) fn submit(&self, mut job: JobRef) {
        self.tasks.fetch_add(1, Ordering::Relaxed);
        // Stamp only when instrumented: the disabled path never reads
        // the clock. Clamped to ≥1 so a stamp of 0 always means
        // "submitted before observability was attached".
        if self.obs.get().is_some() {
            job.stamp_enqueued(WallClock.now_micros().max(1));
        }
        let depth = match self.me() {
            Some(idx) => {
                let mut q = self.locals[idx].lock();
                q.push_back(job);
                q.len()
            }
            None => {
                let mut q = self.injector.lock();
                q.push_back(job);
                q.len()
            }
        };
        if let Some(obs) = self.obs.get() {
            obs.tasks.inc();
            obs.queue_depth.record(depth as u64);
        }
        self.idle.notify_one();
    }

    /// Pops the job at the back of the current worker's deque, but only
    /// if it is the one identified by `data` — used by `join` to reclaim
    /// its pending arm before helping elsewhere.
    pub(crate) fn pop_if(&self, data: *const ()) -> Option<JobRef> {
        let idx = self.me()?;
        let mut q = self.locals[idx].lock();
        if q.back().is_some_and(|j| j.data() == data) {
            q.pop_back()
        } else {
            None
        }
    }

    /// Finds one runnable job: own deque (LIFO), then injector (FIFO),
    /// then steal from siblings (FIFO — the coldest work).
    fn find_work(&self, me: Option<usize>) -> Option<JobRef> {
        if let Some(idx) = me {
            if let Some(job) = self.locals[idx].lock().pop_back() {
                return Some(self.note_dequeue(job, false));
            }
        }
        if let Some(job) = self.injector.lock().pop_front() {
            return Some(self.note_dequeue(job, false));
        }
        let n = self.locals.len();
        let start = me.map_or(0, |idx| idx + 1);
        for off in 0..n {
            let victim = (start + off) % n;
            if Some(victim) == me {
                continue;
            }
            if let Some(job) = self.locals[victim].lock().pop_front() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                if let Some(obs) = self.obs.get() {
                    obs.steals.inc();
                }
                return Some(self.note_dequeue(job, true));
            }
        }
        None
    }

    /// Records queue-wait (and, for steals, steal-wait) for a dequeued
    /// job. Jobs submitted before observability was attached carry no
    /// stamp and are skipped.
    fn note_dequeue(&self, job: JobRef, stolen: bool) -> JobRef {
        if let Some(obs) = self.obs.get() {
            if job.enqueued_micros() > 0 {
                let wait = WallClock.now_micros().saturating_sub(job.enqueued_micros());
                obs.queue_wait.record(wait);
                if stolen {
                    obs.steal_wait.record(wait);
                }
            }
        }
        job
    }

    /// Blocks until `latch` is set, executing pool work while waiting.
    pub(crate) fn wait(&self, latch: &CountLatch) {
        let me = self.me();
        while !latch.is_set() {
            match self.find_work(me) {
                // SAFETY: every JobRef in a queue was submitted exactly
                // once and its descriptor is kept alive by a blocked
                // coordinator (stack jobs) or owns itself (heap jobs).
                Some(job) => unsafe { job.execute() },
                None => latch.park(PARK_INTERVAL),
            }
        }
    }

    fn worker_main(self: Arc<Pool>, idx: usize) {
        CURRENT_WORKER.set((self.identity(), idx));
        loop {
            if let Some(job) = self.find_work(Some(idx)) {
                // SAFETY: as in `wait` — queued refs are live and
                // execute-once by construction.
                unsafe { job.execute() };
                continue;
            }
            let guard = self.injector.lock();
            if self.shutdown.load(Ordering::Acquire) {
                return;
            }
            if !guard.is_empty() {
                continue;
            }
            let _ = self
                .idle
                .wait_timeout(guard, IDLE_INTERVAL)
                .unwrap_or_else(PoisonError::into_inner);
        }
    }
}

/// Owns the worker threads; dropping it shuts the pool down and joins
/// them.
pub(crate) struct PoolHandle {
    pool: Arc<Pool>,
    handles: Mutex<Vec<JoinHandle<()>>>,
}

impl PoolHandle {
    pub(crate) fn spawn(threads: usize) -> PoolHandle {
        let pool = Arc::new(Pool::new(threads));
        let handles = (0..threads)
            .map(|idx| {
                let pool = Arc::clone(&pool);
                std::thread::Builder::new()
                    .name(format!("swag-exec-{idx}"))
                    .spawn(move || pool.worker_main(idx))
                    .expect("spawn swag-exec worker")
            })
            .collect();
        PoolHandle {
            pool,
            handles: Mutex::new(handles),
        }
    }

    pub(crate) fn pool(&self) -> &Arc<Pool> {
        &self.pool
    }
}

impl Drop for PoolHandle {
    fn drop(&mut self) {
        self.pool.shutdown.store(true, Ordering::Release);
        {
            let _guard = self.pool.injector.lock();
            self.pool.idle.notify_all();
        }
        for handle in self.handles.get_mut().drain(..) {
            let _ = handle.join();
        }
    }
}
