//! Type-erased executable units and panic capture.
//!
//! A [`JobRef`] is the executor's internal currency: a raw pointer to a
//! job descriptor plus a monomorphized `execute` function. Stack jobs
//! ([`crate::par`], `join`) point into the submitting caller's frame and
//! are sound because the caller blocks on a latch until every reference
//! has been executed; heap jobs (scope spawns) own their closure and free
//! themselves on execution.

use std::any::Any;

use parking_lot::Mutex;

/// A pointer to a job plus the function that runs it. The executor moves
/// these freely between worker queues.
pub(crate) struct JobRef {
    data: *const (),
    execute_fn: unsafe fn(*const ()),
    /// Submission timestamp for queue-wait accounting; 0 when the pool
    /// has no observability attached (the disabled path never reads the
    /// clock).
    enqueued_micros: u64,
}

// SAFETY: a JobRef is only ever created for job types whose execute
// function is safe to run from another thread (the job data is Sync or
// uniquely claimed), and the creator guarantees the pointee outlives
// execution.
unsafe impl Send for JobRef {}

impl JobRef {
    /// Wraps a job descriptor.
    ///
    /// # Safety
    /// `data` must stay valid until [`JobRef::execute`] has returned, and
    /// `execute_fn` must be executed at most once per submitted ref.
    pub(crate) unsafe fn new<T>(data: *const T, execute_fn: unsafe fn(*const ())) -> JobRef {
        JobRef {
            data: data.cast(),
            execute_fn,
            enqueued_micros: 0,
        }
    }

    /// The raw descriptor pointer (identity for `join`'s un-steal check).
    pub(crate) fn data(&self) -> *const () {
        self.data
    }

    /// Stamps the submission time (instrumented pools only).
    pub(crate) fn stamp_enqueued(&mut self, micros: u64) {
        self.enqueued_micros = micros;
    }

    /// The submission timestamp, or 0 when never stamped.
    pub(crate) fn enqueued_micros(&self) -> u64 {
        self.enqueued_micros
    }

    /// Runs the job.
    ///
    /// # Safety
    /// Must be called exactly once, while the descriptor is still alive.
    pub(crate) unsafe fn execute(self) {
        (self.execute_fn)(self.data)
    }
}

/// First-panic-wins capture: parallel arms run under `catch_unwind`, the
/// coordinating caller re-raises after every arm has finished (so stack
/// borrows stay sound even when a sibling panics).
#[derive(Default)]
pub(crate) struct PanicStore(Mutex<Option<Box<dyn Any + Send>>>);

impl PanicStore {
    /// Records a payload unless one is already stored.
    pub(crate) fn store(&self, payload: Box<dyn Any + Send>) {
        let mut slot = self.0.lock();
        if slot.is_none() {
            *slot = Some(payload);
        }
    }

    /// Re-raises the stored panic, if any, on the calling thread.
    pub(crate) fn resume_if_any(&self) {
        let payload = self.0.lock().take();
        if let Some(payload) = payload {
            std::panic::resume_unwind(payload);
        }
    }
}
