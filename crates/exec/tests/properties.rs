//! Property tests: parallel primitives agree exactly with serial
//! execution across random inputs and thread counts.

use proptest::prelude::*;
use swag_exec::{ExecConfig, Executor};

proptest! {
    #[test]
    fn par_map_matches_serial(
        items in proptest::collection::vec(any::<i64>(), 0..500),
        threads in 2usize..6,
    ) {
        let serial = Executor::serial();
        let parallel = Executor::new(ExecConfig::with_threads(threads));
        let f = |x: &i64| x.wrapping_mul(31).wrapping_add(7);
        prop_assert_eq!(serial.par_map(&items, f), parallel.par_map(&items, f));
    }

    #[test]
    fn par_map_owned_matches_serial(
        items in proptest::collection::vec(any::<u32>(), 0..300),
        threads in 2usize..6,
    ) {
        let serial = Executor::serial();
        let parallel = Executor::new(ExecConfig::with_threads(threads));
        let f = |x: u32| format!("{x:08x}");
        prop_assert_eq!(
            serial.par_map_owned(items.clone(), f),
            parallel.par_map_owned(items, f)
        );
    }

    #[test]
    fn join_matches_serial(a in any::<i32>(), b in any::<i32>()) {
        let serial = Executor::serial();
        let parallel = Executor::new(ExecConfig::with_threads(3));
        let run = |e: &Executor| e.join(move || a.wrapping_add(1), move || b.wrapping_sub(1));
        prop_assert_eq!(run(&serial), run(&parallel));
    }

    #[test]
    fn scope_collects_every_spawn(
        n in 0usize..200,
        threads in 2usize..6,
    ) {
        let exec = Executor::new(ExecConfig::with_threads(threads));
        let done = std::sync::Mutex::new(vec![false; n]);
        exec.scope(|s| {
            for i in 0..n {
                let done = &done;
                s.spawn(move || {
                    done.lock().unwrap()[i] = true;
                });
            }
        });
        prop_assert!(done.into_inner().unwrap().into_iter().all(|b| b));
    }
}
