//! Stress tests: many external submitters hammering one shared pool,
//! nesting, and shutdown-while-busy.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;

use swag_exec::{ExecConfig, Executor};

/// Several OS threads share one executor and issue overlapping par_maps.
#[test]
fn concurrent_external_par_maps() {
    let exec = Executor::new(ExecConfig::with_threads(4));
    let total = Arc::new(AtomicUsize::new(0));
    crossbeam::thread::scope(|s| {
        for t in 0..6 {
            let exec = exec.clone();
            let total = Arc::clone(&total);
            s.spawn(move |_| {
                for round in 0..20 {
                    let items: Vec<usize> = (0..64).map(|i| i + t * 1000 + round).collect();
                    let out = exec.par_map(&items, |&x| x * 2);
                    assert_eq!(out.len(), items.len());
                    for (o, i) in out.iter().zip(&items) {
                        assert_eq!(*o, i * 2);
                    }
                    total.fetch_add(out.len(), Ordering::Relaxed);
                }
            });
        }
    })
    .unwrap();
    assert_eq!(total.load(Ordering::Relaxed), 6 * 20 * 64);
}

/// Deep nesting (par_map inside par_map inside join) on a tiny pool —
/// exercises the help-while-waiting path that prevents deadlock.
#[test]
fn deeply_nested_on_small_pool() {
    let exec = Executor::new(ExecConfig::with_threads(2));
    let outer: Vec<usize> = (0..6).collect();
    let out = exec.par_map(&outer, |&i| {
        let (left, right) = exec.join(
            || {
                let inner: Vec<usize> = (0..8).collect();
                exec.par_map(&inner, |&j| i * 10 + j).iter().sum::<usize>()
            },
            || i * 1000,
        );
        left + right
    });
    let expected: Vec<usize> = (0..6)
        .map(|i| (0..8).map(|j| i * 10 + j).sum::<usize>() + i * 1000)
        .collect();
    assert_eq!(out, expected);
}

/// Spawning a storm of scope tasks from multiple submitters.
#[test]
fn scope_storm() {
    let exec = Executor::new(ExecConfig::with_threads(3));
    let counter = Arc::new(AtomicUsize::new(0));
    crossbeam::thread::scope(|s| {
        for _ in 0..4 {
            let exec = exec.clone();
            let counter = Arc::clone(&counter);
            s.spawn(move |_| {
                for _ in 0..10 {
                    exec.scope(|scope| {
                        for _ in 0..50 {
                            let counter = &counter;
                            scope.spawn(move || {
                                counter.fetch_add(1, Ordering::Relaxed);
                            });
                        }
                    });
                }
            });
        }
    })
    .unwrap();
    assert_eq!(counter.load(Ordering::Relaxed), 4 * 10 * 50);
}

/// Dropping the last executor clone joins the workers without hanging.
#[test]
fn drop_shuts_down_cleanly() {
    for _ in 0..10 {
        let exec = Executor::new(ExecConfig::with_threads(4));
        let items: Vec<usize> = (0..256).collect();
        let out = exec.par_map(&items, |&x| x + 1);
        assert_eq!(out.len(), 256);
        drop(exec);
    }
}

/// A panicking task does not poison the pool for subsequent work.
#[test]
fn pool_survives_repeated_panics() {
    let exec = Executor::new(ExecConfig::with_threads(2));
    for round in 0..5 {
        let items: Vec<usize> = (0..32).collect();
        let result = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            exec.par_map(&items, |&i| {
                if i == round * 3 {
                    panic!("round {round}");
                }
                i
            })
        }));
        assert!(result.is_err());
        let ok = exec.par_map(&items, |&i| i + round);
        assert_eq!(ok.len(), 32);
    }
}

/// Queue-wait instrumentation: once observability is attached, every
/// task that crosses a queue records its submit-to-dequeue latency, and
/// stolen tasks additionally land in the steal-wait histogram.
#[test]
fn queue_wait_metrics_record_per_task_latency() {
    let reg = swag_obs::Registry::new();
    let exec = Executor::new(ExecConfig::with_threads(3));
    exec.attach_observability(&reg);
    let items: Vec<usize> = (0..512).collect();
    for _ in 0..4 {
        let out = exec.par_map(&items, |&x| x.wrapping_mul(3));
        assert_eq!(out.len(), 512);
    }
    let wait = reg.histogram("swag_exec_queue_wait_micros").snapshot();
    assert!(wait.count > 0, "no queue waits recorded");
    // Every stolen task's wait is also a queue wait.
    let steal = reg.histogram("swag_exec_steal_wait_micros").snapshot();
    assert!(steal.count <= wait.count);
    assert_eq!(steal.count, reg.counter("swag_exec_steals_total").get());
}

/// The serial executor records no queue metrics: nothing is enqueued.
#[test]
fn serial_executor_records_no_queue_waits() {
    let reg = swag_obs::Registry::new();
    let exec = Executor::serial();
    exec.attach_observability(&reg);
    let items: Vec<usize> = (0..64).collect();
    exec.par_map(&items, |&x| x + 1);
    assert!(reg.get("swag_exec_queue_wait_micros").is_none());
}
