//! Cold tier: immutable on-disk runs of aged-out time shards.
//!
//! When retention expires a time-shard bucket, its records no longer
//! belong in the R-tree or the snapshot — but deleting them forecloses
//! month-scale workloads (POI hotspot mining, common-view joins over old
//! footage). Instead the engine demotes them to a `cold-<bucket>-<n>.run`
//! file (a v2 snapshot container) and registers a [`ColdRun`] here. The
//! query path reaches them through the `cold_scan` operator, which prunes
//! by bucket time range and lazily materialises a run's records on first
//! touch.

use std::path::{Path, PathBuf};
use std::sync::{Arc, OnceLock};

use parking_lot::RwLock;
use swag_core::RepFov;

use crate::container::decode_container;
use crate::segment::SegmentRef;

/// One immutable cold run: an expired bucket's records on disk.
#[derive(Debug)]
pub struct ColdRun {
    /// Home time-shard bucket the records came from.
    pub bucket: i64,
    /// Records in the run.
    pub count: u64,
    path: PathBuf,
    cache: OnceLock<Arc<Vec<(RepFov, SegmentRef)>>>,
}

impl ColdRun {
    /// Describes a run backed by `path` (no I/O until first read).
    pub fn new(bucket: i64, count: u64, path: PathBuf) -> ColdRun {
        ColdRun {
            bucket,
            count,
            path,
            cache: OnceLock::new(),
        }
    }

    /// File backing this run.
    pub fn path(&self) -> &Path {
        &self.path
    }

    /// The run's records, read and verified on first access.
    ///
    /// A run that fails to read or checksum resolves to empty — cold
    /// data is best-effort historical reach, never a reason to fail a
    /// live query.
    pub fn records(&self) -> Arc<Vec<(RepFov, SegmentRef)>> {
        Arc::clone(self.cache.get_or_init(|| {
            let records = std::fs::read(&self.path)
                .ok()
                .and_then(|raw| decode_container(&raw[..]).ok())
                .map(|c| c.records)
                .unwrap_or_default();
            Arc::new(records)
        }))
    }
}

fn parse_cold_name(name: &str) -> Option<(i64, u64)> {
    // cold-<bucket>-<seq>.run, bucket may be negative.
    let stem = name.strip_prefix("cold-")?.strip_suffix(".run")?;
    let (bucket_s, seq_s) = stem.rsplit_once('-')?;
    Some((bucket_s.parse().ok()?, seq_s.parse().ok()?))
}

/// File name for a cold run.
pub(crate) fn cold_file_name(bucket: i64, seq: u64) -> String {
    format!("cold-{bucket}-{seq}.run")
}

/// The set of cold runs currently reachable by queries.
#[derive(Debug, Default)]
pub struct ColdCatalog {
    runs: RwLock<Vec<Arc<ColdRun>>>,
}

impl ColdCatalog {
    /// An empty catalog.
    pub fn new() -> ColdCatalog {
        ColdCatalog::default()
    }

    /// Scans a cold directory, registering every parseable run.
    ///
    /// Returns the catalog and the next free run sequence number.
    pub fn load(dir: &Path) -> std::io::Result<(ColdCatalog, u64)> {
        let catalog = ColdCatalog::new();
        let mut next_seq = 0u64;
        if dir.exists() {
            let mut found: Vec<(i64, u64, PathBuf)> = Vec::new();
            for entry in std::fs::read_dir(dir)? {
                let entry = entry?;
                if let Some((bucket, seq)) = entry.file_name().to_str().and_then(parse_cold_name) {
                    next_seq = next_seq.max(seq + 1);
                    found.push((bucket, seq, entry.path()));
                }
            }
            found.sort_by_key(|(bucket, seq, _)| (*bucket, *seq));
            let mut runs = catalog.runs.write();
            for (bucket, _, path) in found {
                // Count comes from the container header on first read;
                // use the eager record read so stats are right even for
                // catalogs loaded at recovery.
                let run = ColdRun::new(bucket, 0, path);
                let count = run.records().len() as u64;
                runs.push(Arc::new(ColdRun { count, ..run }));
            }
        }
        Ok((catalog, next_seq))
    }

    /// Registers a freshly written run.
    pub fn push(&self, run: ColdRun) {
        self.runs.write().push(Arc::new(run));
    }

    /// Runs whose bucket could hold a rep overlapping a window ending at
    /// `t1`: reps in bucket `b` have `t_start ∈ [b·w, (b+1)·w)`, so only
    /// `b·w ≤ t1` can overlap (no upper bound on `t_end`, so the lower
    /// side cannot prune).
    pub fn overlapping(&self, t1: f64, width_s: f64) -> Vec<Arc<ColdRun>> {
        self.runs
            .read()
            .iter()
            .filter(|r| (r.bucket as f64) * width_s <= t1)
            .cloned()
            .collect()
    }

    /// Number of cold runs.
    pub fn runs(&self) -> usize {
        self.runs.read().len()
    }

    /// Total records across all runs.
    pub fn segments(&self) -> u64 {
        self.runs.read().iter().map(|r| r.count).sum()
    }

    /// Whether the catalog is empty (the common, hot-path case).
    pub fn is_empty(&self) -> bool {
        self.runs.read().is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::container::encode_records;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn rep(t: f64) -> (RepFov, SegmentRef) {
        (
            RepFov::new(t, t + 5.0, Fov::new(LatLon::new(40.0, 116.32), 90.0)),
            SegmentRef {
                provider_id: 1,
                video_id: 2,
                segment_idx: t as u32,
            },
        )
    }

    fn tmp_dir() -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "swag-cold-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn write_load_and_prune() {
        let dir = tmp_dir();
        for (bucket, t) in [(0i64, 10.0), (1, 650.0)] {
            let recs = vec![rep(t), rep(t + 1.0)];
            let path = dir.join(cold_file_name(bucket, bucket as u64));
            std::fs::write(&path, encode_records(&recs).unwrap()).unwrap();
        }
        let (catalog, next_seq) = ColdCatalog::load(&dir).unwrap();
        assert_eq!(catalog.runs(), 2);
        assert_eq!(catalog.segments(), 4);
        assert_eq!(next_seq, 2);
        // Window ending before bucket 1 starts (width 600) prunes it.
        assert_eq!(catalog.overlapping(500.0, 600.0).len(), 1);
        assert_eq!(catalog.overlapping(1200.0, 600.0).len(), 2);
        let run = &catalog.overlapping(500.0, 600.0)[0];
        assert_eq!(run.records().len(), 2);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn corrupt_run_reads_as_empty() {
        let dir = tmp_dir();
        std::fs::write(dir.join(cold_file_name(5, 0)), b"garbage").unwrap();
        let (catalog, _) = ColdCatalog::load(&dir).unwrap();
        assert_eq!(catalog.runs(), 1);
        assert_eq!(catalog.segments(), 0);
        assert!(catalog.overlapping(f64::INFINITY, 600.0)[0]
            .records()
            .is_empty());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn negative_bucket_names_parse() {
        assert_eq!(parse_cold_name("cold--3-7.run"), Some((-3, 7)));
        assert_eq!(parse_cold_name("cold-12-0.run"), Some((12, 0)));
        assert_eq!(parse_cold_name("cold-x.run"), None);
    }
}
