//! The durability orchestrator: one object tying WAL, incremental
//! snapshots, and the cold tier to a data directory.
//!
//! Layout under the data dir:
//!
//! ```text
//! <dir>/wal/wal-<startseq>.log        append-only segments
//! <dir>/snapshots/MANIFEST            atomic bucket-set descriptor
//! <dir>/snapshots/bucket-<b>-f<floor>-v<ver>.run
//! <dir>/cold/cold-<bucket>-<n>.run    demoted expired shards
//! ```
//!
//! The engine calls [`Durability::append`] under its writer lock before
//! staging a mutation, [`Durability::on_publish`] right after installing
//! a folded epoch (handing over a COW store clone plus the epoch's
//! per-bucket stamp versions), and [`Durability::demote`] when retention
//! expires a bucket. Snapshots happen on a background worker so fold
//! latency never includes bucket-file I/O; jobs are coalesced, and each
//! completed snapshot retires the WAL segments it covers.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{mpsc, Arc, OnceLock};
use std::thread::JoinHandle;

use parking_lot::Mutex;
use swag_core::RepFov;
use swag_obs::{Counter, Histogram, MonotonicClock, Registry};

use crate::cold::{cold_file_name, ColdCatalog, ColdRun};
use crate::container::encode_records;
use crate::home_bucket;
use crate::manifest::{BucketEntry, Manifest};
use crate::segment::{SegmentRef, SegmentStore};
use crate::wal::{recover_wal_dir, WalOp, WalWriter};

/// WAL segment subdirectory.
pub const WAL_DIR: &str = "wal";
/// Snapshot subdirectory (bucket files + MANIFEST).
pub const SNAPSHOT_DIR: &str = "snapshots";
/// Cold-run subdirectory.
pub const COLD_DIR: &str = "cold";

/// Tuning knob for the durability subsystem (off by default, like the
/// cache and admission knobs). The data directory itself is not part of
/// the config — it is the argument to `CloudServer::open`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DurabilityConfig {
    /// Master switch; `false` keeps the server memory-only.
    pub enabled: bool,
    /// Group-commit window: a background flusher fsyncs the WAL tail
    /// every this many microseconds, off the ingest path (0 = strict
    /// mode, every append fsyncs inline before returning).
    pub fsync_interval_micros: u64,
    /// Rotate the active WAL segment once it exceeds this many bytes
    /// (snapshots also rotate, so this only bounds quiet periods).
    pub wal_rotate_bytes: u64,
    /// Skip the snapshot an epoch publish would trigger until at least
    /// this many WAL bytes have accumulated since the last one (0 =
    /// snapshot on every publish). Publishes are frequent and cheap;
    /// snapshots rewrite bucket files and fsync — this keeps checkpoint
    /// cost proportional to ingested bytes, not to publish cadence.
    pub snapshot_min_wal_bytes: u64,
    /// Demote expired shards to cold runs instead of dropping them.
    pub cold_tier: bool,
}

impl Default for DurabilityConfig {
    fn default() -> Self {
        DurabilityConfig {
            enabled: false,
            fsync_interval_micros: 2_000,
            wal_rotate_bytes: 4 << 20,
            snapshot_min_wal_bytes: 1 << 20,
            cold_tier: true,
        }
    }
}

impl DurabilityConfig {
    /// The default tuning with the master switch on.
    pub fn enabled() -> Self {
        DurabilityConfig {
            enabled: true,
            ..DurabilityConfig::default()
        }
    }
}

/// Errors opening or operating a data directory.
#[derive(Debug, Clone)]
pub enum StoreError {
    /// An I/O operation failed.
    Io(String),
    /// On-disk state failed to parse or checksum.
    Corrupt(String),
}

impl std::fmt::Display for StoreError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            StoreError::Io(e) => write!(f, "store i/o error: {e}"),
            StoreError::Corrupt(e) => write!(f, "store corrupt: {e}"),
        }
    }
}

impl std::error::Error for StoreError {}

fn io_err(context: &str, e: std::io::Error) -> StoreError {
    StoreError::Io(format!("{context}: {e}"))
}

/// What recovery found in a data directory.
#[derive(Debug)]
pub struct Recovery {
    /// Folded records from the latest snapshot, bucket-major.
    pub records: Vec<(RepFov, SegmentRef)>,
    /// Durable WAL ops past the snapshot's floor, in log order.
    pub ops: Vec<WalOp>,
    /// Records that came from snapshot bucket files.
    pub snapshot_records: usize,
    /// Bytes dropped repairing torn WAL tails.
    pub wal_truncated_bytes: u64,
}

/// Point-in-time durability counters for `swag stats` / `swag top`.
#[derive(Debug, Clone, Copy, Default)]
pub struct DurabilityStats {
    /// Ops ever appended to the WAL this process.
    pub wal_records: u64,
    /// Frame bytes ever appended this process.
    pub wal_appended_bytes: u64,
    /// Bytes written but not yet fsynced (durability lag).
    pub wal_lag_bytes: u64,
    /// Next WAL sequence number.
    pub wal_seq: u64,
    /// Completed background snapshots this process.
    pub snapshots_written: u64,
    /// Bucket files rewritten across those snapshots.
    pub snapshot_buckets_written: u64,
    /// Microseconds since the last completed snapshot (`None` = never).
    pub last_snapshot_age_micros: Option<u64>,
    /// Cold runs on disk.
    pub cold_runs: usize,
    /// Records across all cold runs.
    pub cold_segments: u64,
}

/// Metric handles, resolved once when a registry is attached.
struct Obs {
    wal_fsync_micros: Arc<Histogram>,
    wal_bytes: Arc<Counter>,
    wal_records: Arc<Counter>,
    snapshots: Arc<Counter>,
    snapshot_micros: Arc<Histogram>,
    snapshot_buckets: Arc<Counter>,
    cold_demoted: Arc<Counter>,
}

/// State shared between the front end and the snapshot worker.
struct Shared {
    clock: Arc<dyn MonotonicClock>,
    wal_records: AtomicU64,
    wal_appended_bytes: AtomicU64,
    snapshots_written: AtomicU64,
    snapshot_buckets_written: AtomicU64,
    /// `clock` micros of the last completed snapshot + 1 (0 = never).
    last_snapshot_at: AtomicU64,
    obs: OnceLock<Obs>,
}

struct WalState {
    writer: WalWriter,
    /// Closed segments not yet covered by a snapshot.
    closed: Vec<(u64, u64, PathBuf)>,
    /// Bytes appended since the last dispatched snapshot, gating
    /// `on_publish` against `snapshot_min_wal_bytes`.
    bytes_since_snapshot: u64,
}

enum Job {
    Snapshot {
        store: SegmentStore,
        versions: Arc<BTreeMap<i64, u64>>,
        wal_floor: u64,
        retire: Vec<PathBuf>,
    },
    Quiesce(Sender<()>),
}

/// Handle to a data directory's durability machinery.
pub struct Durability {
    config: DurabilityConfig,
    width_s: f64,
    snap_dir: PathBuf,
    cold_dir: PathBuf,
    wal: Arc<Mutex<WalState>>,
    cold: ColdCatalog,
    cold_seq: AtomicU64,
    shared: Arc<Shared>,
    tx: Mutex<Option<Sender<Job>>>,
    worker: Mutex<Option<JoinHandle<()>>>,
    flusher_stop: Arc<AtomicBool>,
    flusher: Mutex<Option<JoinHandle<()>>>,
}

impl std::fmt::Debug for Durability {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Durability")
            .field("config", &self.config)
            .field("snap_dir", &self.snap_dir)
            .finish()
    }
}

impl Durability {
    /// Opens (creating if empty) a data directory and recovers its
    /// durable state: latest snapshot records plus WAL ops past the
    /// manifest's floor. The caller replays both through the normal
    /// ingest path, then starts appending.
    pub fn open(
        dir: &Path,
        width_s: f64,
        config: DurabilityConfig,
        clock: Arc<dyn MonotonicClock>,
    ) -> Result<(Arc<Durability>, Recovery), StoreError> {
        let wal_dir = dir.join(WAL_DIR);
        let snap_dir = dir.join(SNAPSHOT_DIR);
        let cold_dir = dir.join(COLD_DIR);
        for d in [&wal_dir, &snap_dir, &cold_dir] {
            std::fs::create_dir_all(d).map_err(|e| io_err("create data dir", e))?;
        }

        let manifest = Manifest::load(&snap_dir)
            .map_err(StoreError::Corrupt)?
            .unwrap_or_default();
        // Sweep bucket files a crashed snapshot left unreferenced.
        let referenced: std::collections::BTreeSet<&str> =
            manifest.buckets.values().map(|e| e.file.as_str()).collect();
        if let Ok(entries) = std::fs::read_dir(&snap_dir) {
            for entry in entries.flatten() {
                let name = entry.file_name();
                let Some(name) = name.to_str() else { continue };
                if name.starts_with("bucket-") && !referenced.contains(name) {
                    let _ = std::fs::remove_file(entry.path());
                }
            }
        }

        let mut records = Vec::new();
        for (bucket, entry) in &manifest.buckets {
            let path = snap_dir.join(&entry.file);
            let raw = std::fs::read(&path)
                .map_err(|e| io_err(&format!("read snapshot bucket {bucket}"), e))?;
            if crate::crc::crc32(&raw) != entry.crc {
                return Err(StoreError::Corrupt(format!(
                    "snapshot bucket {bucket} file {} fails manifest crc",
                    entry.file
                )));
            }
            let decoded = crate::container::decode_container(&raw[..])
                .map_err(|e| StoreError::Corrupt(format!("snapshot bucket {bucket}: {e}")))?;
            records.extend(decoded.records);
        }
        let snapshot_records = records.len();

        let (cold, cold_next) =
            ColdCatalog::load(&cold_dir).map_err(|e| io_err("scan cold dir", e))?;

        let wal_rec = recover_wal_dir(&wal_dir).map_err(|e| io_err("recover wal", e))?;
        // Segments the snapshot already covers are dead weight.
        for (_, end, path) in &wal_rec.segments {
            if *end <= manifest.wal_floor {
                let _ = std::fs::remove_file(path);
            }
        }
        let ops: Vec<WalOp> = wal_rec
            .ops
            .into_iter()
            .filter(|(seq, _)| *seq >= manifest.wal_floor)
            .map(|(_, op)| op)
            .collect();

        let next_seq = wal_rec.next_seq.max(manifest.wal_floor);
        let writer = WalWriter::open(
            &wal_dir,
            next_seq,
            config.fsync_interval_micros,
            Arc::clone(&clock),
        )
        .map_err(|e| io_err("open wal writer", e))?;
        let closed: Vec<(u64, u64, PathBuf)> = wal_rec
            .segments
            .iter()
            .filter(|(start, end, _)| *end > manifest.wal_floor && *start < next_seq)
            .cloned()
            .collect();

        let shared = Arc::new(Shared {
            clock,
            wal_records: AtomicU64::new(0),
            wal_appended_bytes: AtomicU64::new(0),
            snapshots_written: AtomicU64::new(0),
            snapshot_buckets_written: AtomicU64::new(0),
            last_snapshot_at: AtomicU64::new(0),
            obs: OnceLock::new(),
        });
        let (tx, rx) = mpsc::channel::<Job>();
        let worker =
            spawn_snapshot_worker(rx, snap_dir.clone(), manifest, width_s, Arc::clone(&shared));

        let wal = Arc::new(Mutex::new(WalState {
            writer,
            closed,
            // If uncovered WAL survives from the previous run, let the
            // first publish snapshot it regardless of the byte gate.
            bytes_since_snapshot: if ops.is_empty() { 0 } else { u64::MAX / 2 },
        }));
        let flusher_stop = Arc::new(AtomicBool::new(false));
        let flusher = (config.fsync_interval_micros > 0).then(|| {
            spawn_wal_flusher(
                Arc::clone(&wal),
                Arc::clone(&shared),
                config.fsync_interval_micros,
                Arc::clone(&flusher_stop),
            )
        });

        let durability = Arc::new(Durability {
            config,
            width_s,
            snap_dir,
            cold_dir,
            wal,
            cold,
            cold_seq: AtomicU64::new(cold_next),
            shared,
            tx: Mutex::new(Some(tx)),
            worker: Mutex::new(Some(worker)),
            flusher_stop,
            flusher: Mutex::new(flusher),
        });
        Ok((
            durability,
            Recovery {
                records,
                ops,
                snapshot_records,
                wal_truncated_bytes: wal_rec.truncated_bytes,
            },
        ))
    }

    /// The tuning this directory was opened with.
    pub fn config(&self) -> &DurabilityConfig {
        &self.config
    }

    /// The cold-run catalog (for `cold_scan`).
    pub fn cold(&self) -> &ColdCatalog {
        &self.cold
    }

    /// Shard width the store was opened with.
    pub fn width_s(&self) -> f64 {
        self.width_s
    }

    /// Appends one op to the WAL. Called under the engine's writer lock,
    /// *before* the op mutates in-memory state. The write lands in the
    /// page cache; the background flusher group-commits the fsync within
    /// `fsync_interval_micros` (interval 0 syncs inline here).
    pub fn append(&self, op: &WalOp) -> Result<(), StoreError> {
        let mut wal = self.wal.lock();
        let info = wal.writer.append(op).map_err(|e| io_err("wal append", e))?;
        wal.bytes_since_snapshot = wal.bytes_since_snapshot.saturating_add(info.bytes);
        self.shared.wal_records.fetch_add(1, Ordering::Relaxed);
        self.shared
            .wal_appended_bytes
            .fetch_add(info.bytes, Ordering::Relaxed);
        if let Some(obs) = self.shared.obs.get() {
            obs.wal_records.inc();
            obs.wal_bytes.add(info.bytes);
            if let Some(micros) = info.fsync_micros {
                obs.wal_fsync_micros.record(micros);
            }
        }
        if wal.writer.segment_bytes() >= self.config.wal_rotate_bytes {
            if let Some(seg) = wal.writer.rotate().map_err(|e| io_err("wal rotate", e))? {
                wal.closed.push(seg);
            }
        }
        Ok(())
    }

    /// Hands a freshly folded epoch to the background snapshot worker.
    ///
    /// `store` is a COW clone of the folded segment store and `versions`
    /// the epoch stamp's per-bucket versions; both are O(1)-ish to hand
    /// over. The active WAL segment is rotated so the snapshot, once
    /// written, covers (and retires) every closed segment.
    pub fn on_publish(&self, store: SegmentStore, versions: Arc<BTreeMap<i64, u64>>) {
        let (wal_floor, retire) = {
            let mut wal = self.wal.lock();
            if wal.bytes_since_snapshot < self.config.snapshot_min_wal_bytes {
                // Not enough new WAL to be worth a checkpoint; the next
                // publish (or quiesce) will catch everything up.
                return;
            }
            wal.bytes_since_snapshot = 0;
            match wal.writer.rotate() {
                Ok(Some(seg)) => wal.closed.push(seg),
                Ok(None) => {}
                Err(_) => return, // keep the WAL; skip this snapshot
            }
            let floor = wal.writer.next_seq();
            let retire = std::mem::take(&mut wal.closed)
                .into_iter()
                .map(|(_, _, path)| path)
                .collect();
            (floor, retire)
        };
        if let Some(tx) = self.tx.lock().as_ref() {
            let _ = tx.send(Job::Snapshot {
                store,
                versions,
                wal_floor,
                retire,
            });
        }
    }

    /// Writes an expired bucket's records to an immutable cold run.
    pub fn demote(&self, bucket: i64, records: &[(RepFov, SegmentRef)]) -> Result<(), StoreError> {
        if records.is_empty() || !self.config.cold_tier {
            return Ok(());
        }
        let seq = self.cold_seq.fetch_add(1, Ordering::Relaxed);
        let path = self.cold_dir.join(cold_file_name(bucket, seq));
        let bytes = encode_records(records)
            .map_err(|e| StoreError::Corrupt(format!("encode cold: {e}")))?;
        std::fs::write(&path, &bytes).map_err(|e| io_err("write cold run", e))?;
        if let Ok(f) = std::fs::File::open(&path) {
            let _ = f.sync_data();
        }
        self.cold
            .push(ColdRun::new(bucket, records.len() as u64, path));
        if let Some(obs) = self.shared.obs.get() {
            obs.cold_demoted.add(records.len() as u64);
        }
        Ok(())
    }

    /// Fsyncs the WAL tail and blocks until the snapshot worker has
    /// drained every queued job. For tests, benches and clean shutdown.
    pub fn quiesce(&self) {
        {
            let mut wal = self.wal.lock();
            let _ = wal.writer.sync();
        }
        let (ack_tx, ack_rx) = mpsc::channel();
        let sent = match self.tx.lock().as_ref() {
            Some(tx) => tx.send(Job::Quiesce(ack_tx)).is_ok(),
            None => false,
        };
        if sent {
            let _ = ack_rx.recv();
        }
    }

    /// Point-in-time counters.
    pub fn stats(&self) -> DurabilityStats {
        let (lag, seq) = {
            let wal = self.wal.lock();
            (wal.writer.unsynced_bytes(), wal.writer.next_seq())
        };
        let last = self.shared.last_snapshot_at.load(Ordering::Relaxed);
        DurabilityStats {
            wal_records: self.shared.wal_records.load(Ordering::Relaxed),
            wal_appended_bytes: self.shared.wal_appended_bytes.load(Ordering::Relaxed),
            wal_lag_bytes: lag,
            wal_seq: seq,
            snapshots_written: self.shared.snapshots_written.load(Ordering::Relaxed),
            snapshot_buckets_written: self.shared.snapshot_buckets_written.load(Ordering::Relaxed),
            last_snapshot_age_micros: if last == 0 {
                None
            } else {
                Some(self.shared.clock.now_micros().saturating_sub(last - 1))
            },
            cold_runs: self.cold.runs(),
            cold_segments: self.cold.segments(),
        }
    }

    /// Resolves metric handles against a registry. Until called, the
    /// subsystem records into process-local atomics only.
    pub fn attach_observability(&self, registry: &Registry) {
        registry.set_help(
            "swag_store_wal_fsync_micros",
            "Group-commit fsync latency of the segment WAL",
        );
        registry.set_help(
            "swag_store_wal_bytes_total",
            "Frame bytes appended to the WAL",
        );
        registry.set_help("swag_store_wal_records_total", "Ops appended to the WAL");
        registry.set_help(
            "swag_store_snapshots_total",
            "Incremental snapshots completed by the background worker",
        );
        registry.set_help(
            "swag_store_snapshot_micros",
            "Wall time of each incremental snapshot",
        );
        registry.set_help(
            "swag_store_snapshot_buckets_total",
            "Time-shard bucket files rewritten by snapshots",
        );
        registry.set_help(
            "swag_store_cold_demoted_total",
            "Records demoted to cold runs by retention",
        );
        let _ = self.shared.obs.set(Obs {
            wal_fsync_micros: registry.histogram("swag_store_wal_fsync_micros"),
            wal_bytes: registry.counter("swag_store_wal_bytes_total"),
            wal_records: registry.counter("swag_store_wal_records_total"),
            snapshots: registry.counter("swag_store_snapshots_total"),
            snapshot_micros: registry.histogram("swag_store_snapshot_micros"),
            snapshot_buckets: registry.counter("swag_store_snapshot_buckets_total"),
            cold_demoted: registry.counter("swag_store_cold_demoted_total"),
        });
    }
}

impl Drop for Durability {
    fn drop(&mut self) {
        // Stop the flusher first (unpark so it notices immediately),
        // close the channel so the snapshot worker drains and exits,
        // then sync whatever tail is left.
        self.flusher_stop.store(true, Ordering::Relaxed);
        if let Some(handle) = self.flusher.lock().take() {
            handle.thread().unpark();
            let _ = handle.join();
        }
        *self.tx.lock() = None;
        if let Some(handle) = self.worker.lock().take() {
            let _ = handle.join();
        }
        let mut wal = self.wal.lock();
        let _ = wal.writer.sync();
    }
}

/// The group-commit flusher: wakes every `interval_micros`, fsyncs the
/// WAL tail if any appends landed since the last flush. Keeping the
/// fsync here (instead of inline in [`Durability::append`]) means ingest
/// threads never wait on the disk — and the `sync_data` itself runs on a
/// cloned fd *outside* the writer lock, so appends keep flowing while
/// the disk works. The durability lag is bounded by the interval plus
/// one flush.
fn spawn_wal_flusher(
    wal: Arc<Mutex<WalState>>,
    shared: Arc<Shared>,
    interval_micros: u64,
    stop: Arc<AtomicBool>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("swag-wal-sync".into())
        .spawn(move || loop {
            std::thread::park_timeout(std::time::Duration::from_micros(interval_micros));
            if stop.load(Ordering::Relaxed) {
                return;
            }
            let job = wal.lock().writer.begin_background_sync();
            if let Some((file, covered, epoch)) = job {
                let t0 = shared.clock.now_micros();
                if file.sync_data().is_ok() {
                    let micros = shared.clock.now_micros().saturating_sub(t0);
                    wal.lock().writer.finish_background_sync(covered, epoch);
                    if let Some(obs) = shared.obs.get() {
                        obs.wal_fsync_micros.record(micros);
                    }
                }
            }
        })
        .expect("spawn wal flusher")
}

/// Newest coalesced snapshot job: store clone, per-bucket stamp
/// versions, and the WAL floor the snapshot will cover.
type PendingSnapshot = (SegmentStore, Arc<BTreeMap<i64, u64>>, u64);

fn spawn_snapshot_worker(
    rx: Receiver<Job>,
    snap_dir: PathBuf,
    mut manifest: Manifest,
    width_s: f64,
    shared: Arc<Shared>,
) -> JoinHandle<()> {
    std::thread::Builder::new()
        .name("swag-snapshot".into())
        .spawn(move || {
            while let Ok(first) = rx.recv() {
                // Coalesce the queue: only the newest store clone matters,
                // retirements and quiesce acks accumulate.
                let mut snapshot: Option<PendingSnapshot> = None;
                let mut retire_all: Vec<PathBuf> = Vec::new();
                let mut acks: Vec<Sender<()>> = Vec::new();
                let mut absorb = |job: Job| match job {
                    Job::Snapshot {
                        store,
                        versions,
                        wal_floor,
                        mut retire,
                    } => {
                        retire_all.append(&mut retire);
                        if snapshot
                            .as_ref()
                            .is_none_or(|(_, _, floor)| *floor <= wal_floor)
                        {
                            snapshot = Some((store, versions, wal_floor));
                        }
                    }
                    Job::Quiesce(ack) => acks.push(ack),
                };
                absorb(first);
                while let Ok(job) = rx.try_recv() {
                    absorb(job);
                }
                if let Some((store, versions, wal_floor)) = snapshot {
                    let t0 = shared.clock.now_micros();
                    match write_incremental_snapshot(
                        &snap_dir, &manifest, &store, &versions, wal_floor, width_s,
                    ) {
                        Ok((next, old_files, rewritten)) => {
                            for path in old_files.into_iter().chain(retire_all.drain(..)) {
                                let _ = std::fs::remove_file(path);
                            }
                            manifest = next;
                            let now = shared.clock.now_micros();
                            shared.snapshots_written.fetch_add(1, Ordering::Relaxed);
                            shared
                                .snapshot_buckets_written
                                .fetch_add(rewritten, Ordering::Relaxed);
                            shared.last_snapshot_at.store(now + 1, Ordering::Relaxed);
                            if let Some(obs) = shared.obs.get() {
                                obs.snapshots.inc();
                                obs.snapshot_buckets.add(rewritten);
                                obs.snapshot_micros.record(now.saturating_sub(t0));
                            }
                        }
                        Err(_) => {
                            // Leave manifest and WAL segments in place; the
                            // next publish retries with a newer store.
                        }
                    }
                }
                for ack in acks {
                    let _ = ack.send(());
                }
            }
        })
        .expect("spawn snapshot worker")
}

/// Writes the changed bucket files plus the new manifest; returns the
/// new manifest, the superseded files to delete, and how many bucket
/// files were rewritten.
fn write_incremental_snapshot(
    snap_dir: &Path,
    prev: &Manifest,
    store: &SegmentStore,
    versions: &BTreeMap<i64, u64>,
    wal_floor: u64,
    width_s: f64,
) -> std::io::Result<(Manifest, Vec<PathBuf>, u64)> {
    use std::io::Write;
    // Buckets whose stamp version moved since the manifest was written.
    let changed: BTreeMap<i64, u64> = versions
        .iter()
        .filter(|(b, v)| prev.buckets.get(b).map(|e| e.version) != Some(**v))
        .map(|(b, v)| (*b, *v))
        .collect();

    let mut grouped: BTreeMap<i64, Vec<(RepFov, SegmentRef)>> =
        changed.keys().map(|b| (*b, Vec::new())).collect();
    if !changed.is_empty() {
        for rec in store.iter() {
            let b = home_bucket(rec.rep.t_start, width_s);
            if let Some(bucket_records) = grouped.get_mut(&b) {
                bucket_records.push((rec.rep, rec.source));
            }
        }
    }

    let mut next = prev.clone();
    next.wal_floor = wal_floor;
    let mut old_files = Vec::new();
    let mut rewritten = 0u64;
    for (bucket, records) in &grouped {
        let version = changed[bucket];
        let old = next.buckets.remove(bucket);
        if !records.is_empty() {
            let file = format!("bucket-{bucket}-f{wal_floor}-v{version}.run");
            let path = snap_dir.join(&file);
            let bytes = encode_records(records)
                .map_err(|e| std::io::Error::other(format!("encode bucket {bucket}: {e}")))?;
            let mut f = std::fs::File::create(&path)?;
            f.write_all(&bytes)?;
            f.sync_data()?;
            next.buckets.insert(
                *bucket,
                BucketEntry {
                    version,
                    file,
                    count: records.len() as u64,
                    crc: crate::crc::crc32(&bytes),
                },
            );
            rewritten += 1;
        }
        if let Some(old_entry) = old {
            if next.buckets.get(bucket).map(|e| &e.file) != Some(&old_entry.file) {
                old_files.push(snap_dir.join(old_entry.file));
            }
        }
    }
    next.store(snap_dir)?;
    Ok((next, old_files, rewritten))
}
