//! CRC-32 (IEEE 802.3, reflected, polynomial `0xEDB88320`) — the same
//! checksum gzip and PNG use. Table-driven, one lookup per byte; built at
//! compile time so there is no startup cost and no external crate.

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `data`.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in data {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_vectors() {
        // Standard check value for "123456789".
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"a"), 0xE8B7_BE43);
    }

    #[test]
    fn sensitive_to_single_bit_flips() {
        let base = crc32(b"swag wal frame");
        let mut flipped = b"swag wal frame".to_vec();
        for byte in 0..flipped.len() {
            for bit in 0..8 {
                flipped[byte] ^= 1 << bit;
                assert_ne!(crc32(&flipped), base, "flip at {byte}:{bit} undetected");
                flipped[byte] ^= 1 << bit;
            }
        }
    }
}
