//! # swag-store — durable storage layer for the SWAG cloud server
//!
//! The server's queryable state is exactly its representative-FoV records
//! (the R-tree is derived data), which makes durability a record-stream
//! problem. This crate layers three mechanisms on top of the in-memory
//! [`SegmentStore`] (which also lives here so background workers can hold
//! cheap copy-on-write clones of it):
//!
//! 1. **Segment WAL** ([`wal`]): every mutation on the ingest path is
//!    appended as a crc32-framed record before it touches the in-memory
//!    engine. Fsyncs are group-committed on an injectable clock; opening a
//!    WAL directory truncates any torn tail back to the last whole frame.
//! 2. **Incremental snapshots** ([`durability`], [`manifest`]): each epoch
//!    publish hands a COW store clone plus the epoch's per-bucket
//!    `CacheStamp` versions to a background worker, which rewrites only
//!    the time-shard buckets whose version moved since the last manifest,
//!    then atomically swaps the manifest and retires WAL segments the new
//!    snapshot covers.
//! 3. **Cold tier** ([`cold`]): retention no longer deletes aged-out
//!    shards outright — their records are demoted to immutable on-disk
//!    runs that the query path can still reach through a `cold_scan`
//!    operator.
//!
//! Recovery ([`Durability::open`]) is "latest snapshot + WAL replay": the
//! manifest's bucket files rebuild the folded state, and WAL frames at or
//! above the manifest's `wal_floor` sequence are re-applied through the
//! server's normal ingest path, so caches, admission and forensic stamps
//! stay consistent with a never-crashed server.

mod cold;
mod container;
mod crc;
mod durability;
mod manifest;
mod segment;
mod wal;

pub use cold::{ColdCatalog, ColdRun};
pub use container::{
    decode_container, encode_records, encode_records_v1, DecodedContainer, SnapshotError,
    CONTAINER_VERSION, MAGIC, REF_SIZE,
};
pub use crc::crc32;
pub use durability::{
    Durability, DurabilityConfig, DurabilityStats, Recovery, StoreError, COLD_DIR, SNAPSHOT_DIR,
    WAL_DIR,
};
pub use manifest::{BucketEntry, Manifest, MANIFEST_FILE};
pub use segment::{SegmentId, SegmentRecord, SegmentRef, SegmentStore};
pub use wal::{
    check_frame, encode_frame, recover_wal_dir, FrameCheck, WalOp, WalRecovery, WalWriter,
    MAX_FRAME_PAYLOAD,
};

/// Home time-shard bucket of a record: `floor(t_start / width)`.
///
/// Matches `ShardedFovIndex::bucket_of` in `swag-server` — bucket versions
/// in the epoch `CacheStamp` are keyed by this value, and incremental
/// snapshots group records by it.
#[inline]
pub fn home_bucket(t_start: f64, width_s: f64) -> i64 {
    (t_start / width_s).floor() as i64
}
