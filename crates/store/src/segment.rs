//! Segment metadata storage.
//!
//! The server never holds video content — only representative FoVs plus a
//! reference telling the querier *which provider's video, which segment* to
//! fetch afterwards (the content-free design of §I).

use std::sync::Arc;

use serde::{Deserialize, Serialize};
use swag_core::RepFov;

/// Server-assigned dense identifier of a stored segment.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SegmentId(pub u32);

/// Where a segment's actual video bytes live on the client side.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct SegmentRef {
    /// Contributing provider.
    pub provider_id: u64,
    /// Video on the provider's device.
    pub video_id: u64,
    /// Segment index within that video.
    pub segment_idx: u32,
}

/// A stored segment: its representative FoV and its source reference.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SegmentRecord {
    /// Server-assigned id.
    pub id: SegmentId,
    /// The uploaded representative FoV.
    pub rep: RepFov,
    /// Source video segment.
    pub source: SegmentRef,
}

/// Records per chunk (see [`SegmentStore`]). A power of two so the
/// id → (chunk, offset) split is a shift and a mask.
const CHUNK: usize = 1024;

#[derive(Debug, Clone, Default)]
struct Chunk {
    records: Vec<SegmentRecord>,
    retired: Vec<bool>,
}

/// Append-only segment store with tombstones; `SegmentId` is the index.
///
/// Ids stay stable across retraction: [`SegmentStore::retire`] marks a
/// record dead instead of reusing its slot, so references held by queriers
/// never dangle. (Ids are *server-internal* — they may be re-assigned
/// wholesale when the store compacts or a snapshot is reloaded; the
/// durable external handle is [`SegmentRef`].)
///
/// Records live in fixed-size chunks behind `Arc`s, so cloning the store —
/// which the snapshot-publishing server does on every epoch — is
/// `O(n / CHUNK)` pointer bumps, and a clone shares all chunk memory with
/// its parent until one side writes (copy-on-write via [`Arc::make_mut`]).
#[derive(Debug, Clone, Default)]
pub struct SegmentStore {
    chunks: Vec<Arc<Chunk>>,
    total: usize,
    live: usize,
}

impl SegmentStore {
    /// Creates an empty store.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a record, assigning its id.
    pub fn push(&mut self, rep: RepFov, source: SegmentRef) -> SegmentId {
        let id = SegmentId(u32::try_from(self.total).expect("store capacity exceeded"));
        if self.total.is_multiple_of(CHUNK) {
            self.chunks.push(Arc::new(Chunk {
                records: Vec::with_capacity(CHUNK),
                retired: Vec::with_capacity(CHUNK),
            }));
        }
        let chunk = Arc::make_mut(self.chunks.last_mut().expect("chunk just ensured"));
        chunk.records.push(SegmentRecord { id, rep, source });
        chunk.retired.push(false);
        self.total += 1;
        self.live += 1;
        id
    }

    /// Looks up a record (live or retired — ids never dangle).
    #[inline]
    pub fn get(&self, id: SegmentId) -> &SegmentRecord {
        let i = id.0 as usize;
        &self.chunks[i / CHUNK].records[i % CHUNK]
    }

    /// Marks a record retired. Returns `false` if it already was.
    pub fn retire(&mut self, id: SegmentId) -> bool {
        let i = id.0 as usize;
        let chunk = Arc::make_mut(&mut self.chunks[i / CHUNK]);
        let slot = &mut chunk.retired[i % CHUNK];
        if *slot {
            false
        } else {
            *slot = true;
            self.live -= 1;
            true
        }
    }

    /// Whether a record has been retired.
    #[inline]
    pub fn is_retired(&self, id: SegmentId) -> bool {
        let i = id.0 as usize;
        self.chunks[i / CHUNK].retired[i % CHUNK]
    }

    /// Number of live (non-retired) segments.
    #[inline]
    pub fn len(&self) -> usize {
        self.live
    }

    /// Total slots ever allocated, retired included — also the id the next
    /// [`Self::push`] will be assigned.
    #[inline]
    pub fn total(&self) -> usize {
        self.total
    }

    /// Number of retired (tombstoned) slots.
    #[inline]
    pub fn dead(&self) -> usize {
        self.total - self.live
    }

    /// Whether the store has no live segments.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.live == 0
    }

    /// Iterates over the live records.
    pub fn iter(&self) -> impl Iterator<Item = &SegmentRecord> {
        self.chunks
            .iter()
            .flat_map(|c| c.records.iter().zip(&c.retired))
            .filter(|(_, &dead)| !dead)
            .map(|(r, _)| r)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn rep(t: f64) -> RepFov {
        RepFov::new(t, t + 1.0, Fov::new(LatLon::new(40.0, 116.0), 0.0))
    }

    fn src(p: u64) -> SegmentRef {
        SegmentRef {
            provider_id: p,
            video_id: 0,
            segment_idx: 0,
        }
    }

    #[test]
    fn push_assigns_sequential_ids() {
        let mut s = SegmentStore::new();
        assert!(s.is_empty());
        let a = s.push(rep(0.0), src(1));
        let b = s.push(rep(1.0), src(2));
        assert_eq!((a, b), (SegmentId(0), SegmentId(1)));
        assert_eq!(s.len(), 2);
        assert_eq!(s.get(b).source.provider_id, 2);
    }

    #[test]
    fn iter_preserves_order() {
        let mut s = SegmentStore::new();
        for i in 0..5 {
            s.push(rep(i as f64), src(i));
        }
        let providers: Vec<u64> = s.iter().map(|r| r.source.provider_id).collect();
        assert_eq!(providers, vec![0, 1, 2, 3, 4]);
    }

    #[test]
    fn clone_is_independent_snapshot() {
        let mut s = SegmentStore::new();
        for i in 0..(CHUNK as u64 + 50) {
            s.push(rep(i as f64), src(i));
        }
        let snap = s.clone();
        // Mutations after the clone are invisible to the snapshot...
        let late = s.push(rep(9999.0), src(777));
        s.retire(SegmentId(0));
        assert_eq!(snap.len(), CHUNK + 50);
        assert_eq!(snap.total(), CHUNK + 50);
        assert!(!snap.is_retired(SegmentId(0)));
        // ...and both sides keep resolving every id they know about.
        assert_eq!(s.get(late).source.provider_id, 777);
        assert_eq!(snap.get(SegmentId(0)).source.provider_id, 0);
        assert_eq!(s.len(), CHUNK + 50); // +1 push, -1 retire
        assert_eq!(s.dead(), 1);
    }

    #[test]
    fn ids_stay_dense_across_chunk_boundaries() {
        let mut s = SegmentStore::new();
        let n = 3 * CHUNK + 7;
        for i in 0..n {
            let id = s.push(rep(i as f64), src(i as u64));
            assert_eq!(id, SegmentId(i as u32));
        }
        assert_eq!(s.total(), n);
        assert_eq!(s.iter().count(), n);
        assert_eq!(
            s.get(SegmentId((2 * CHUNK) as u32)).id.0 as usize,
            2 * CHUNK
        );
    }

    #[test]
    fn retire_hides_but_keeps_ids_valid() {
        let mut s = SegmentStore::new();
        let a = s.push(rep(0.0), src(1));
        let b = s.push(rep(1.0), src(2));
        assert!(s.retire(a));
        assert!(!s.retire(a), "double retire must be a no-op");
        assert_eq!(s.len(), 1);
        assert!(s.is_retired(a) && !s.is_retired(b));
        // The slot still resolves (no dangling ids).
        assert_eq!(s.get(a).source.provider_id, 1);
        let live: Vec<u64> = s.iter().map(|r| r.source.provider_id).collect();
        assert_eq!(live, vec![2]);
    }
}
