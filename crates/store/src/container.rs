//! Versioned snapshot container for `(RepFov, SegmentRef)` record streams.
//!
//! Two formats share the magic and version byte:
//!
//! * **v1** (legacy, still readable): `magic u32 | version u8 | count u32 |
//!   records…` — the original whole-server snapshot written by
//!   `swag-server`'s `save_snapshot` before the durability refactor.
//! * **v2** (current): `magic u32 | version u8 | header_len u16 |
//!   header (count u64, …) | records… | crc32 u32`. The header is
//!   self-describing — `header_len` counts the bytes between it and the
//!   first record, so future versions can append header fields without
//!   breaking old readers, the count is 64-bit (v1 silently truncated
//!   `len as u32`), and the crc32 footer covers everything before it.
//!
//! Each record is a 20-byte [`SegmentRef`] frame followed by the 22-byte
//! `DescriptorCodec` representative-FoV encoding.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use swag_core::descriptor::CodecError;
use swag_core::{DescriptorCodec, RepFov};

use crate::crc::crc32;
use crate::segment::SegmentRef;

/// Container magic: "SWAG".
pub const MAGIC: u32 = 0x5357_4147;
/// Current container version.
pub const CONTAINER_VERSION: u8 = 2;
/// Per-record [`SegmentRef`] framing on top of the descriptor codec.
pub const REF_SIZE: usize = 8 + 8 + 4;
/// v2 header payload this writer emits: `count u64`.
const HEADER_LEN_V2: usize = 8;

/// Errors produced while encoding or decoding snapshot containers.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum SnapshotError {
    /// The buffer ended before a complete header/record/footer.
    Truncated,
    /// Bad magic bytes.
    BadMagic(u32),
    /// Unknown snapshot version.
    BadVersion(u8),
    /// A representative-FoV record failed to decode.
    BadRecord(CodecError),
    /// More records than the container's count field can carry.
    TooManyRecords(usize),
    /// The buffer held this many bytes past the end of the container.
    TrailingBytes(usize),
    /// The crc32 footer did not match the container contents.
    BadCrc {
        /// Checksum stored in the footer.
        expected: u32,
        /// Checksum computed over the container bytes.
        found: u32,
    },
}

impl std::fmt::Display for SnapshotError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            SnapshotError::Truncated => write!(f, "snapshot truncated"),
            SnapshotError::BadMagic(m) => write!(f, "bad snapshot magic 0x{m:08x}"),
            SnapshotError::BadVersion(v) => write!(f, "unsupported snapshot version {v}"),
            SnapshotError::BadRecord(e) => write!(f, "bad record: {e}"),
            SnapshotError::TooManyRecords(n) => {
                write!(f, "{n} records exceed the container count field")
            }
            SnapshotError::TrailingBytes(n) => {
                write!(f, "{n} trailing bytes after snapshot container")
            }
            SnapshotError::BadCrc { expected, found } => {
                write!(
                    f,
                    "snapshot crc mismatch: footer 0x{expected:08x}, computed 0x{found:08x}"
                )
            }
        }
    }
}

impl std::error::Error for SnapshotError {}

/// A decoded container: which format it was, its records, and how many
/// bytes trailed the container (callers decide whether that is an error).
#[derive(Debug, Clone)]
pub struct DecodedContainer {
    /// Format version the bytes were in (1 or 2).
    pub version: u8,
    /// The record stream.
    pub records: Vec<(RepFov, SegmentRef)>,
    /// Bytes remaining after the container — zero for a well-framed file.
    pub trailing: usize,
}

fn put_record(buf: &mut BytesMut, rep: &RepFov, source: &SegmentRef) -> Result<(), SnapshotError> {
    buf.put_u64_le(source.provider_id);
    buf.put_u64_le(source.video_id);
    buf.put_u32_le(source.segment_idx);
    DescriptorCodec::encode_rep(rep, buf).map_err(SnapshotError::BadRecord)
}

/// Encodes records into the current (v2) container.
pub fn encode_records(records: &[(RepFov, SegmentRef)]) -> Result<Bytes, SnapshotError> {
    let count =
        u64::try_from(records.len()).map_err(|_| SnapshotError::TooManyRecords(records.len()))?;
    let mut buf = BytesMut::with_capacity(
        4 + 1 + 2 + HEADER_LEN_V2 + records.len() * (REF_SIZE + DescriptorCodec::RECORD_SIZE) + 4,
    );
    buf.put_u32_le(MAGIC);
    buf.put_u8(CONTAINER_VERSION);
    buf.put_u16_le(HEADER_LEN_V2 as u16);
    buf.put_u64_le(count);
    for (rep, source) in records {
        put_record(&mut buf, rep, source)?;
    }
    let crc = crc32(&buf);
    buf.put_u32_le(crc);
    Ok(buf.freeze())
}

/// Encodes records in the legacy v1 layout (no crc, 32-bit count).
///
/// Kept for compatibility tests and external tooling that still speaks
/// v1; unlike the original implementation the count conversion is
/// checked instead of silently truncating.
pub fn encode_records_v1(records: &[(RepFov, SegmentRef)]) -> Result<Bytes, SnapshotError> {
    let count =
        u32::try_from(records.len()).map_err(|_| SnapshotError::TooManyRecords(records.len()))?;
    let mut buf = BytesMut::with_capacity(
        4 + 1 + 4 + records.len() * (REF_SIZE + DescriptorCodec::RECORD_SIZE),
    );
    buf.put_u32_le(MAGIC);
    buf.put_u8(1);
    buf.put_u32_le(count);
    for (rep, source) in records {
        put_record(&mut buf, rep, source)?;
    }
    Ok(buf.freeze())
}

fn decode_record(buf: &mut &[u8]) -> Result<(RepFov, SegmentRef), SnapshotError> {
    let source = SegmentRef {
        provider_id: buf.get_u64_le(),
        video_id: buf.get_u64_le(),
        segment_idx: buf.get_u32_le(),
    };
    let rep = DescriptorCodec::decode_rep(buf).map_err(SnapshotError::BadRecord)?;
    Ok((rep, source))
}

/// Decodes a v1 or v2 container, tolerating (but counting) trailing bytes
/// so the stream can be embedded in larger framed files. Strict callers
/// map `trailing > 0` to [`SnapshotError::TrailingBytes`].
pub fn decode_container(mut input: impl Buf) -> Result<DecodedContainer, SnapshotError> {
    let mut raw = vec![0u8; input.remaining()];
    input.copy_to_slice(&mut raw);
    decode_container_bytes(&raw)
}

fn decode_container_bytes(raw: &[u8]) -> Result<DecodedContainer, SnapshotError> {
    let record_size = REF_SIZE + DescriptorCodec::RECORD_SIZE;
    let mut buf = raw;
    if buf.remaining() < 4 + 1 {
        return Err(SnapshotError::Truncated);
    }
    let magic = buf.get_u32_le();
    if magic != MAGIC {
        return Err(SnapshotError::BadMagic(magic));
    }
    let version = buf.get_u8();
    match version {
        1 => {
            if buf.remaining() < 4 {
                return Err(SnapshotError::Truncated);
            }
            let count = buf.get_u32_le() as usize;
            if buf.remaining() < count * record_size {
                return Err(SnapshotError::Truncated);
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(decode_record(&mut buf)?);
            }
            Ok(DecodedContainer {
                version,
                records,
                trailing: buf.remaining(),
            })
        }
        2 => {
            if buf.remaining() < 2 {
                return Err(SnapshotError::Truncated);
            }
            let header_len = buf.get_u16_le() as usize;
            if header_len < HEADER_LEN_V2 || buf.remaining() < header_len {
                return Err(SnapshotError::Truncated);
            }
            let count_u64 = buf.get_u64_le();
            buf.advance(header_len - HEADER_LEN_V2);
            let count = usize::try_from(count_u64)
                .map_err(|_| SnapshotError::TooManyRecords(usize::MAX))?;
            let Some(body) = count.checked_mul(record_size) else {
                return Err(SnapshotError::Truncated);
            };
            if buf.remaining() < body + 4 {
                return Err(SnapshotError::Truncated);
            }
            let mut records = Vec::with_capacity(count);
            for _ in 0..count {
                records.push(decode_record(&mut buf)?);
            }
            let crc_offset = raw.len() - buf.remaining();
            let expected = buf.get_u32_le();
            let found = crc32(&raw[..crc_offset]);
            if expected != found {
                return Err(SnapshotError::BadCrc { expected, found });
            }
            Ok(DecodedContainer {
                version,
                records,
                trailing: buf.remaining(),
            })
        }
        v => Err(SnapshotError::BadVersion(v)),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn records(n: usize) -> Vec<(RepFov, SegmentRef)> {
        (0..n)
            .map(|i| {
                let p = LatLon::new(40.0, 116.32).offset(i as f64 * 7.0, 10.0 + i as f64 * 3.0);
                (
                    RepFov::new(i as f64, i as f64 + 5.0, Fov::new(p, i as f64 * 11.0)),
                    SegmentRef {
                        provider_id: i as u64 % 7,
                        video_id: i as u64 / 7,
                        segment_idx: i as u32,
                    },
                )
            })
            .collect()
    }

    #[test]
    fn v2_round_trips_and_is_framed() {
        let recs = records(37);
        let bytes = encode_records(&recs).unwrap();
        let out = decode_container(bytes).unwrap();
        assert_eq!(out.version, 2);
        assert_eq!(out.trailing, 0);
        assert_eq!(out.records.len(), 37);
        for ((a_rep, a_src), (b_rep, b_src)) in recs.iter().zip(&out.records) {
            assert_eq!(a_src, b_src);
            assert!((a_rep.t_start - b_rep.t_start).abs() < 1e-6);
        }
    }

    #[test]
    fn v1_still_decodes() {
        let recs = records(5);
        let bytes = encode_records_v1(&recs).unwrap();
        let out = decode_container(bytes).unwrap();
        assert_eq!(out.version, 1);
        assert_eq!(out.records.len(), 5);
        assert_eq!(out.trailing, 0);
    }

    #[test]
    fn trailing_bytes_are_counted_not_fatal() {
        let recs = records(3);
        for encoded in [
            encode_records(&recs).unwrap(),
            encode_records_v1(&recs).unwrap(),
        ] {
            let mut padded = encoded.to_vec();
            padded.extend_from_slice(b"footer!");
            let out = decode_container(&padded[..]).unwrap();
            assert_eq!(out.records.len(), 3);
            assert_eq!(out.trailing, 7);
        }
    }

    #[test]
    fn v2_detects_corruption_via_crc() {
        let bytes = encode_records(&records(8)).unwrap();
        let mut raw = bytes.to_vec();
        // Flip one bit in the middle of the record stream; v1 would
        // silently return garbage coordinates, v2 refuses.
        let mid = raw.len() / 2;
        raw[mid] ^= 0x10;
        assert!(matches!(
            decode_container(&raw[..]).unwrap_err(),
            SnapshotError::BadCrc { .. }
        ));
    }

    #[test]
    fn v2_truncation_is_reported() {
        let bytes = encode_records(&records(4)).unwrap();
        for cut in [1, 5, 20, bytes.len() - 1] {
            assert_eq!(
                decode_container(bytes.slice(0..cut)).unwrap_err(),
                SnapshotError::Truncated,
                "cut at {cut}"
            );
        }
    }

    #[test]
    fn self_describing_header_skips_unknown_fields() {
        // A future writer extends the v2 header; this reader must skip
        // the extra bytes it does not understand.
        let recs = records(2);
        let bytes = encode_records(&recs).unwrap();
        let raw = bytes.to_vec();
        let mut extended = BytesMut::new();
        extended.put_u32_le(MAGIC);
        extended.put_u8(2);
        extended.put_u16_le((HEADER_LEN_V2 + 4) as u16);
        extended.put_u64_le(recs.len() as u64);
        extended.put_u32_le(0xAAAA_AAAA); // unknown future header field
        extended.extend_from_slice(&raw[4 + 1 + 2 + HEADER_LEN_V2..raw.len() - 4]);
        let crc = crc32(&extended);
        extended.put_u32_le(crc);
        let out = decode_container(extended.freeze()).unwrap();
        assert_eq!(out.records.len(), 2);
        assert_eq!(out.trailing, 0);
    }

    #[test]
    fn unknown_version_rejected() {
        let bytes = encode_records(&records(1)).unwrap();
        let mut raw = bytes.to_vec();
        raw[4] = 99;
        assert_eq!(
            decode_container(&raw[..]).unwrap_err(),
            SnapshotError::BadVersion(99)
        );
    }

    #[test]
    fn empty_stream_round_trips() {
        let out = decode_container(encode_records(&[]).unwrap()).unwrap();
        assert!(out.records.is_empty());
        assert_eq!(out.trailing, 0);
    }
}
