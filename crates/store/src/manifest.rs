//! Snapshot manifest: the single small file that makes incremental
//! snapshots atomic.
//!
//! A snapshot is a set of per-bucket container files plus this manifest
//! naming the current version of each. Writers produce bucket files
//! first, then swap the manifest in with write-temp → fsync → rename, so
//! a reader (or a recovery) always sees a complete, internally consistent
//! bucket set. `wal_floor` records the WAL sequence number the snapshot
//! covers: replay skips frames below it, which also makes it safe to
//! crash between writing the manifest and deleting superseded files.
//!
//! The format is line-oriented text — trivially inspectable with `cat`:
//!
//! ```text
//! swag-manifest v1
//! wal_floor 1042
//! bucket 2760 7 bucket-2760-v7.run 118 3203334065
//! ```

use std::collections::BTreeMap;
use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::Path;

/// Manifest file name inside the snapshot directory.
pub const MANIFEST_FILE: &str = "MANIFEST";

/// One bucket's current snapshot file.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct BucketEntry {
    /// `CacheStamp` bucket version the file was written at.
    pub version: u64,
    /// File name inside the snapshot directory.
    pub file: String,
    /// Records in the file.
    pub count: u64,
    /// crc32 of the file bytes (container crc re-checked on load too).
    pub crc: u32,
}

/// The durable snapshot state: bucket files plus the WAL floor.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// First WAL sequence number NOT covered by this snapshot.
    pub wal_floor: u64,
    /// Live bucket files, keyed by home bucket.
    pub buckets: BTreeMap<i64, BucketEntry>,
}

impl Manifest {
    /// Renders the manifest text.
    pub fn encode(&self) -> String {
        let mut out = String::from("swag-manifest v1\n");
        out.push_str(&format!("wal_floor {}\n", self.wal_floor));
        for (bucket, e) in &self.buckets {
            out.push_str(&format!(
                "bucket {bucket} {} {} {} {}\n",
                e.version, e.file, e.count, e.crc
            ));
        }
        out
    }

    /// Parses manifest text.
    pub fn decode(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("swag-manifest v1") => {}
            other => return Err(format!("bad manifest header: {other:?}")),
        }
        let mut manifest = Manifest::default();
        let mut saw_floor = false;
        for line in lines {
            if line.is_empty() {
                continue;
            }
            let fields: Vec<&str> = line.split_whitespace().collect();
            match fields.as_slice() {
                ["wal_floor", floor] => {
                    manifest.wal_floor = floor
                        .parse()
                        .map_err(|_| format!("bad wal_floor: {line}"))?;
                    saw_floor = true;
                }
                ["bucket", bucket, version, file, count, crc] => {
                    let bucket: i64 = bucket
                        .parse()
                        .map_err(|_| format!("bad bucket id: {line}"))?;
                    manifest.buckets.insert(
                        bucket,
                        BucketEntry {
                            version: version
                                .parse()
                                .map_err(|_| format!("bad bucket version: {line}"))?,
                            file: (*file).to_string(),
                            count: count.parse().map_err(|_| format!("bad count: {line}"))?,
                            crc: crc.parse().map_err(|_| format!("bad crc: {line}"))?,
                        },
                    );
                }
                _ => return Err(format!("bad manifest line: {line}")),
            }
        }
        if !saw_floor {
            return Err("manifest missing wal_floor".to_string());
        }
        Ok(manifest)
    }

    /// Atomically replaces the manifest in `dir` (tmp + fsync + rename).
    pub fn store(&self, dir: &Path) -> std::io::Result<()> {
        let tmp = dir.join("MANIFEST.tmp");
        let dst = dir.join(MANIFEST_FILE);
        let mut f = OpenOptions::new()
            .create(true)
            .write(true)
            .truncate(true)
            .open(&tmp)?;
        f.write_all(self.encode().as_bytes())?;
        f.sync_data()?;
        drop(f);
        std::fs::rename(&tmp, &dst)?;
        if let Ok(d) = File::open(dir) {
            // Persist the rename itself; best-effort on filesystems that
            // do not support directory fsync.
            let _ = d.sync_data();
        }
        Ok(())
    }

    /// Loads the manifest from `dir`; `Ok(None)` if none exists yet.
    pub fn load(dir: &Path) -> Result<Option<Manifest>, String> {
        let path = dir.join(MANIFEST_FILE);
        if !path.exists() {
            return Ok(None);
        }
        let mut text = String::new();
        File::open(&path)
            .and_then(|mut f| f.read_to_string(&mut text))
            .map_err(|e| format!("read {}: {e}", path.display()))?;
        Manifest::decode(&text).map(Some)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample() -> Manifest {
        let mut m = Manifest {
            wal_floor: 1042,
            buckets: BTreeMap::new(),
        };
        m.buckets.insert(
            -3,
            BucketEntry {
                version: 2,
                file: "bucket--3-v2.run".into(),
                count: 9,
                crc: 0xDEAD_BEEF,
            },
        );
        m.buckets.insert(
            2760,
            BucketEntry {
                version: 7,
                file: "bucket-2760-v7.run".into(),
                count: 118,
                crc: 123,
            },
        );
        m
    }

    #[test]
    fn text_round_trip() {
        let m = sample();
        let decoded = Manifest::decode(&m.encode()).unwrap();
        assert_eq!(decoded, m);
    }

    #[test]
    fn atomic_store_and_load() {
        let dir = std::env::temp_dir().join(format!("swag-manifest-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), None);
        let m = sample();
        m.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m.clone()));
        // Overwrite with fewer buckets; rename replaces wholesale.
        let mut m2 = m;
        m2.buckets.remove(&-3);
        m2.wal_floor = 2000;
        m2.store(&dir).unwrap();
        assert_eq!(Manifest::load(&dir).unwrap(), Some(m2));
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rejects_malformed_text() {
        assert!(Manifest::decode("not a manifest").is_err());
        assert!(
            Manifest::decode("swag-manifest v1\n").is_err(),
            "missing floor"
        );
        assert!(Manifest::decode("swag-manifest v1\nwal_floor x\n").is_err());
        assert!(
            Manifest::decode("swag-manifest v1\nwal_floor 0\nbucket 1 2\n").is_err(),
            "short bucket line"
        );
    }
}
