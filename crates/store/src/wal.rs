//! Append-only segment WAL with crc32-framed records.
//!
//! Every mutation on the server's ingest path becomes one frame:
//!
//! ```text
//! | payload_len u32 | crc32(payload) u32 | payload |
//! payload = tag u8 + body
//!   tag 1 Append  : SegmentRef (20 B) + DescriptorCodec rep (22 B)
//!   tag 2 Retract : provider_id u64
//!   tag 3 Expire  : horizon_s f64 bits
//! ```
//!
//! Frames are written immediately (page cache); fsync is group-committed
//! *off the ingest path*: with a nonzero `fsync_interval_micros` the
//! writer never syncs inline — the owner runs a flusher that calls
//! [`WalWriter::sync`] on that cadence, so a burst of appends shares one
//! disk flush and no append ever waits on the disk. Interval 0 is the
//! strict mode: every append syncs before returning. Opening a WAL
//! directory scans frames in sequence order and truncates the first
//! incomplete or corrupt frame — the classic torn-tail rule: everything
//! before the tear is the durable prefix, everything after never happened.

use std::fs::{File, OpenOptions};
use std::io::{Read, Write};
use std::path::{Path, PathBuf};
use std::sync::Arc;

use bytes::{Buf, BufMut, BytesMut};
use swag_core::{DescriptorCodec, RepFov};
use swag_obs::MonotonicClock;

use crate::crc::crc32;
use crate::segment::SegmentRef;

/// Upper bound on a frame payload; anything larger is treated as
/// corruption rather than an allocation request.
pub const MAX_FRAME_PAYLOAD: usize = 1 << 20;

/// Pending appends are batched in memory and written to the file in
/// chunks of at most this size, so the ingest path pays one `write`
/// syscall per ~1400 frames instead of one per frame. `sync`, `rotate`
/// and segment-size accounting all see through the buffer.
const WRITE_BUF_BYTES: usize = 64 << 10;

const TAG_APPEND: u8 = 1;
const TAG_RETRACT: u8 = 2;
const TAG_EXPIRE: u8 = 3;

/// One logged mutation.
#[derive(Debug, Clone, PartialEq)]
pub enum WalOp {
    /// A representative FoV was ingested.
    Append {
        /// The uploaded representative FoV.
        rep: RepFov,
        /// Source video segment reference.
        source: SegmentRef,
    },
    /// All of a provider's segments were retracted.
    Retract {
        /// The provider being forgotten.
        provider_id: u64,
    },
    /// Retention advanced: segments ending before the horizon dropped.
    Expire {
        /// Absolute horizon in seconds.
        horizon_s: f64,
    },
}

/// Encodes one op as a framed WAL record.
pub fn encode_frame(op: &WalOp, out: &mut BytesMut) {
    let mut payload = BytesMut::with_capacity(64);
    match op {
        WalOp::Append { rep, source } => {
            payload.put_u8(TAG_APPEND);
            payload.put_u64_le(source.provider_id);
            payload.put_u64_le(source.video_id);
            payload.put_u32_le(source.segment_idx);
            DescriptorCodec::encode_rep(rep, &mut payload)
                .expect("ingested rep is inside the codec domain");
        }
        WalOp::Retract { provider_id } => {
            payload.put_u8(TAG_RETRACT);
            payload.put_u64_le(*provider_id);
        }
        WalOp::Expire { horizon_s } => {
            payload.put_u8(TAG_EXPIRE);
            payload.put_u64_le(horizon_s.to_bits());
        }
    }
    out.put_u32_le(payload.len() as u32);
    out.put_u32_le(crc32(&payload));
    out.extend_from_slice(&payload);
}

/// Outcome of inspecting the bytes at a frame boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum FrameCheck {
    /// A whole, checksummed frame: the op and its total encoded size.
    Complete(WalOp, usize),
    /// The buffer ends mid-frame (torn tail).
    Incomplete,
    /// The frame is whole but fails its crc or carries a bad payload.
    Corrupt,
}

/// Checks the frame starting at `buf[0]`.
pub fn check_frame(buf: &[u8]) -> FrameCheck {
    if buf.len() < 8 {
        return FrameCheck::Incomplete;
    }
    let mut head = buf;
    let len = head.get_u32_le() as usize;
    let crc = head.get_u32_le();
    if len == 0 || len > MAX_FRAME_PAYLOAD {
        return FrameCheck::Corrupt;
    }
    if head.len() < len {
        return FrameCheck::Incomplete;
    }
    let payload = &head[..len];
    if crc32(payload) != crc {
        return FrameCheck::Corrupt;
    }
    match decode_payload(payload) {
        Some(op) => FrameCheck::Complete(op, 8 + len),
        None => FrameCheck::Corrupt,
    }
}

fn decode_payload(payload: &[u8]) -> Option<WalOp> {
    let mut buf = payload;
    if buf.is_empty() {
        return None;
    }
    let tag = buf.get_u8();
    match tag {
        TAG_APPEND => {
            if buf.len() != 8 + 8 + 4 + DescriptorCodec::RECORD_SIZE {
                return None;
            }
            let source = SegmentRef {
                provider_id: buf.get_u64_le(),
                video_id: buf.get_u64_le(),
                segment_idx: buf.get_u32_le(),
            };
            let rep = DescriptorCodec::decode_rep(&mut buf).ok()?;
            Some(WalOp::Append { rep, source })
        }
        TAG_RETRACT => {
            if buf.len() != 8 {
                return None;
            }
            Some(WalOp::Retract {
                provider_id: buf.get_u64_le(),
            })
        }
        TAG_EXPIRE => {
            if buf.len() != 8 {
                return None;
            }
            Some(WalOp::Expire {
                horizon_s: f64::from_bits(buf.get_u64_le()),
            })
        }
        _ => None,
    }
}

fn segment_file_name(start_seq: u64) -> String {
    format!("wal-{start_seq:020}.log")
}

fn parse_segment_name(name: &str) -> Option<u64> {
    name.strip_prefix("wal-")?
        .strip_suffix(".log")?
        .parse()
        .ok()
}

/// Result of scanning (and repairing) a WAL directory.
#[derive(Debug)]
pub struct WalRecovery {
    /// Durable ops in sequence order, each with its sequence number.
    pub ops: Vec<(u64, WalOp)>,
    /// The sequence number the next append will get.
    pub next_seq: u64,
    /// Bytes truncated from torn tails (0 on a clean shutdown).
    pub truncated_bytes: u64,
    /// Surviving segment files as `(start_seq, end_seq, path)`.
    pub segments: Vec<(u64, u64, PathBuf)>,
}

/// Scans a WAL directory, truncating torn tails in place.
///
/// Segments are read in start-sequence order. The first incomplete or
/// corrupt frame ends the durable prefix: its file is truncated at that
/// offset and any later segment files are removed (they lie beyond the
/// tear and their sequence numbers would collide with re-appends).
pub fn recover_wal_dir(dir: &Path) -> std::io::Result<WalRecovery> {
    let mut segments: Vec<(u64, PathBuf)> = Vec::new();
    if dir.exists() {
        for entry in std::fs::read_dir(dir)? {
            let entry = entry?;
            if let Some(seq) = entry.file_name().to_str().and_then(parse_segment_name) {
                segments.push((seq, entry.path()));
            }
        }
    }
    segments.sort_by_key(|(seq, _)| *seq);

    let mut ops = Vec::new();
    let mut next_seq = 0u64;
    let mut truncated_bytes = 0u64;
    let mut surviving = Vec::new();
    let mut torn = false;
    for (i, (start_seq, path)) in segments.iter().enumerate() {
        if torn {
            truncated_bytes += std::fs::metadata(path).map(|m| m.len()).unwrap_or(0);
            std::fs::remove_file(path)?;
            continue;
        }
        let mut raw = Vec::new();
        File::open(path)?.read_to_end(&mut raw)?;
        let mut offset = 0usize;
        let mut seq = *start_seq;
        while offset < raw.len() {
            match check_frame(&raw[offset..]) {
                FrameCheck::Complete(op, size) => {
                    ops.push((seq, op));
                    seq += 1;
                    offset += size;
                }
                FrameCheck::Incomplete | FrameCheck::Corrupt => {
                    truncated_bytes += (raw.len() - offset) as u64;
                    let f = OpenOptions::new().write(true).open(path)?;
                    f.set_len(offset as u64)?;
                    f.sync_data()?;
                    torn = true;
                    break;
                }
            }
        }
        next_seq = seq;
        surviving.push((*start_seq, seq, path.clone()));
        if !torn && i + 1 < segments.len() && segments[i + 1].0 != seq {
            // A gap between segments means the later file predates a
            // truncation we did not finish; treat it like a tear.
            torn = true;
        }
    }
    Ok(WalRecovery {
        ops,
        next_seq,
        truncated_bytes,
        segments: surviving,
    })
}

/// What one append did, for the caller's metrics.
#[derive(Debug, Clone, Copy)]
pub struct AppendInfo {
    /// Sequence number the op was assigned.
    pub seq: u64,
    /// Frame bytes written.
    pub bytes: u64,
    /// If this append triggered a group-commit fsync, its duration.
    pub fsync_micros: Option<u64>,
}

/// The active WAL segment writer.
pub struct WalWriter {
    dir: PathBuf,
    file: File,
    path: PathBuf,
    segment_start: u64,
    next_seq: u64,
    segment_bytes: u64,
    unsynced_bytes: u64,
    fsync_interval_micros: u64,
    /// Bumped on rotation so an in-flight background sync of the old
    /// file cannot be credited against the new one.
    file_epoch: u64,
    clock: Arc<dyn MonotonicClock>,
    scratch: BytesMut,
    /// Frames accepted but not yet handed to the kernel.
    buf: Vec<u8>,
}

impl std::fmt::Debug for WalWriter {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WalWriter")
            .field("path", &self.path)
            .field("next_seq", &self.next_seq)
            .field("segment_bytes", &self.segment_bytes)
            .finish()
    }
}

impl Drop for WalWriter {
    fn drop(&mut self) {
        // Buffered frames were accepted; hand them to the kernel (no
        // fsync — that is the owner's call) rather than losing them.
        let _ = self.flush_buf();
    }
}

impl WalWriter {
    /// Opens (creating if needed) the segment whose first record is
    /// `start_seq`. Appending to an existing clean segment is fine — the
    /// caller derives `start_seq` from [`recover_wal_dir`].
    pub fn open(
        dir: &Path,
        start_seq: u64,
        fsync_interval_micros: u64,
        clock: Arc<dyn MonotonicClock>,
    ) -> std::io::Result<WalWriter> {
        std::fs::create_dir_all(dir)?;
        let path = dir.join(segment_file_name(start_seq));
        let existing = std::fs::metadata(&path).map(|m| m.len()).unwrap_or(0);
        let file = OpenOptions::new().create(true).append(true).open(&path)?;
        Ok(WalWriter {
            dir: dir.to_path_buf(),
            file,
            path,
            segment_start: start_seq,
            next_seq: start_seq,
            segment_bytes: existing,
            unsynced_bytes: 0,
            fsync_interval_micros,
            file_epoch: 0,
            clock,
            scratch: BytesMut::with_capacity(64),
            buf: Vec::with_capacity(WRITE_BUF_BYTES),
        })
    }

    /// Sequence number the next append will get.
    pub fn next_seq(&self) -> u64 {
        self.next_seq
    }

    /// Bytes in the active segment.
    pub fn segment_bytes(&self) -> u64 {
        self.segment_bytes
    }

    /// Bytes written but not yet fsynced (the durability lag).
    pub fn unsynced_bytes(&self) -> u64 {
        self.unsynced_bytes
    }

    /// Appends one op. In strict mode (interval 0) the frame is fsynced
    /// before returning; otherwise the write lands in the page cache and
    /// the owner's flusher group-commits it within the interval.
    pub fn append(&mut self, op: &WalOp) -> std::io::Result<AppendInfo> {
        self.scratch.clear();
        encode_frame(op, &mut self.scratch);
        self.buf.extend_from_slice(&self.scratch);
        if self.buf.len() >= WRITE_BUF_BYTES {
            self.flush_buf()?;
        }
        let bytes = self.scratch.len() as u64;
        let seq = self.next_seq;
        self.next_seq += 1;
        self.segment_bytes += bytes;
        self.unsynced_bytes += bytes;
        let fsync_micros = if self.fsync_interval_micros == 0 {
            Some(self.sync()?)
        } else {
            None
        };
        Ok(AppendInfo {
            seq,
            bytes,
            fsync_micros,
        })
    }

    /// Hands buffered frames to the kernel.
    fn flush_buf(&mut self) -> std::io::Result<()> {
        if !self.buf.is_empty() {
            self.file.write_all(&self.buf)?;
            self.buf.clear();
        }
        Ok(())
    }

    /// Flushes buffered frames and fsyncs the active segment; returns
    /// the fsync duration.
    pub fn sync(&mut self) -> std::io::Result<u64> {
        self.flush_buf()?;
        let t0 = self.clock.now_micros();
        self.file.sync_data()?;
        self.unsynced_bytes = 0;
        Ok(self.clock.now_micros() - t0)
    }

    /// First half of a lock-free-ish background sync: flushes buffered
    /// frames and hands back a cloned fd plus the lag it will cover.
    /// The caller drops the writer lock, runs `sync_data` on the clone,
    /// then reports back via [`WalWriter::finish_background_sync`] —
    /// appends keep flowing while the disk works. `None` when there is
    /// nothing to sync or the fd cannot be cloned.
    pub fn begin_background_sync(&mut self) -> Option<(File, u64, u64)> {
        if self.unsynced_bytes == 0 {
            return None;
        }
        self.flush_buf().ok()?;
        let file = self.file.try_clone().ok()?;
        Some((file, self.unsynced_bytes, self.file_epoch))
    }

    /// Credits a completed background sync. Ignored if the segment
    /// rotated meanwhile (rotation syncs the old file itself).
    pub fn finish_background_sync(&mut self, covered: u64, epoch: u64) {
        if epoch == self.file_epoch {
            self.unsynced_bytes = self.unsynced_bytes.saturating_sub(covered);
        }
    }

    /// Closes the active segment (fsyncing it) and starts a fresh one.
    ///
    /// Returns the closed segment's `(start_seq, end_seq, path)`, or
    /// `None` if the active segment held no records.
    pub fn rotate(&mut self) -> std::io::Result<Option<(u64, u64, PathBuf)>> {
        if self.next_seq == self.segment_start {
            return Ok(None);
        }
        self.sync()?;
        let closed = (self.segment_start, self.next_seq, self.path.clone());
        let path = self.dir.join(segment_file_name(self.next_seq));
        self.file = OpenOptions::new().create(true).append(true).open(&path)?;
        self.path = path;
        self.segment_start = self.next_seq;
        self.segment_bytes = 0;
        self.unsynced_bytes = 0;
        self.file_epoch += 1;
        Ok(Some(closed))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;
    use swag_obs::ManualClock;

    fn op(i: u64) -> WalOp {
        WalOp::Append {
            rep: RepFov::new(
                i as f64,
                i as f64 + 1.0,
                Fov::new(LatLon::new(40.0, 116.0), (i % 360) as f64),
            ),
            source: SegmentRef {
                provider_id: i,
                video_id: i * 2,
                segment_idx: i as u32,
            },
        }
    }

    fn tmp_dir(tag: &str) -> PathBuf {
        use std::sync::atomic::{AtomicU64, Ordering};
        static N: AtomicU64 = AtomicU64::new(0);
        let d = std::env::temp_dir().join(format!(
            "swag-wal-{tag}-{}-{}",
            std::process::id(),
            N.fetch_add(1, Ordering::Relaxed)
        ));
        std::fs::create_dir_all(&d).unwrap();
        d
    }

    #[test]
    fn append_and_recover_round_trip() {
        let dir = tmp_dir("rt");
        let clock = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 0, clock).unwrap();
        for i in 0..10 {
            w.append(&op(i)).unwrap();
        }
        w.append(&WalOp::Retract { provider_id: 3 }).unwrap();
        w.append(&WalOp::Expire { horizon_s: 42.5 }).unwrap();
        drop(w);
        let rec = recover_wal_dir(&dir).unwrap();
        assert_eq!(rec.ops.len(), 12);
        assert_eq!(rec.next_seq, 12);
        assert_eq!(rec.truncated_bytes, 0);
        assert_eq!(rec.ops[0], (0, op(0)));
        assert_eq!(rec.ops[10].1, WalOp::Retract { provider_id: 3 });
        assert_eq!(rec.ops[11].1, WalOp::Expire { horizon_s: 42.5 });
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn group_commit_defers_fsync_to_the_flusher() {
        let dir = tmp_dir("gc");
        let clock = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 1000, Arc::clone(&clock) as _).unwrap();
        // Nonzero interval: appends never fsync inline; the lag grows
        // until the owner's flusher (or an explicit sync) drains it.
        assert!(w.append(&op(0)).unwrap().fsync_micros.is_none());
        assert!(w.append(&op(1)).unwrap().fsync_micros.is_none());
        assert!(w.unsynced_bytes() > 0);
        w.sync().unwrap();
        assert_eq!(w.unsynced_bytes(), 0);
        // Strict mode: every append pays its own fsync.
        let mut strict = WalWriter::open(&dir, 10, 0, Arc::new(ManualClock::new())).unwrap();
        assert!(strict.append(&op(2)).unwrap().fsync_micros.is_some());
        assert_eq!(strict.unsynced_bytes(), 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn rotation_splits_segments_and_recovery_merges_them() {
        let dir = tmp_dir("rot");
        let clock = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 0, clock).unwrap();
        for i in 0..4 {
            w.append(&op(i)).unwrap();
        }
        let closed = w.rotate().unwrap().unwrap();
        assert_eq!((closed.0, closed.1), (0, 4));
        assert!(
            w.rotate().unwrap().is_none(),
            "empty segment does not rotate"
        );
        for i in 4..7 {
            w.append(&op(i)).unwrap();
        }
        drop(w);
        let rec = recover_wal_dir(&dir).unwrap();
        assert_eq!(rec.ops.len(), 7);
        assert_eq!(rec.next_seq, 7);
        let seqs: Vec<u64> = rec.ops.iter().map(|(s, _)| *s).collect();
        assert_eq!(seqs, (0..7).collect::<Vec<_>>());
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_frame() {
        let dir = tmp_dir("torn");
        let clock = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 0, clock).unwrap();
        for i in 0..5 {
            w.append(&op(i)).unwrap();
        }
        drop(w);
        let path = dir.join(segment_file_name(0));
        let len = std::fs::metadata(&path).unwrap().len();
        // Chop mid-frame.
        let f = OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(len - 10).unwrap();
        drop(f);
        let rec = recover_wal_dir(&dir).unwrap();
        assert_eq!(rec.ops.len(), 4);
        assert_eq!(rec.next_seq, 4);
        assert!(rec.truncated_bytes > 0);
        // The file was repaired in place: a second recovery is clean.
        let rec2 = recover_wal_dir(&dir).unwrap();
        assert_eq!(rec2.ops.len(), 4);
        assert_eq!(rec2.truncated_bytes, 0);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn reopen_continues_sequence_in_same_segment() {
        let dir = tmp_dir("reopen");
        let clock: Arc<dyn MonotonicClock> = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 0, Arc::clone(&clock)).unwrap();
        for i in 0..3 {
            w.append(&op(i)).unwrap();
        }
        drop(w);
        let rec = recover_wal_dir(&dir).unwrap();
        let mut w = WalWriter::open(&dir, rec.next_seq, 0, clock).unwrap();
        // next_seq=3 names a new segment file; both merge on recovery.
        w.append(&op(3)).unwrap();
        drop(w);
        let rec = recover_wal_dir(&dir).unwrap();
        assert_eq!(rec.ops.len(), 4);
        std::fs::remove_dir_all(&dir).ok();
    }
}
