//! Property tests for WAL framing: round-trips, torn-tail truncation to
//! the last whole record, and crc-flip rejection (ISSUE 10 satellite).

use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use bytes::BytesMut;
use proptest::prelude::*;
use swag_core::{Fov, RepFov};
use swag_geo::LatLon;
use swag_obs::ManualClock;
use swag_store::{
    check_frame, encode_frame, recover_wal_dir, FrameCheck, SegmentRef, WalOp, WalWriter,
};

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "swag-walprop-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (
        0.0f64..1.0e6,
        0.1f64..600.0,
        -80.0f64..80.0,
        -179.0f64..179.0,
        0.0f64..360.0,
    )
        .prop_map(|(t, dur, lat, lng, theta)| {
            RepFov::new(t, t + dur, Fov::new(LatLon::new(lat, lng), theta))
        })
}

fn arb_op() -> impl Strategy<Value = WalOp> {
    prop_oneof![
        (arb_rep(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(rep, provider_id, video_id, segment_idx)| WalOp::Append {
                rep,
                source: SegmentRef {
                    provider_id,
                    video_id,
                    segment_idx
                },
            }
        ),
        (arb_rep(), any::<u64>(), any::<u64>(), any::<u32>()).prop_map(
            |(rep, provider_id, video_id, segment_idx)| WalOp::Append {
                rep,
                source: SegmentRef {
                    provider_id,
                    video_id,
                    segment_idx
                },
            }
        ),
        any::<u64>().prop_map(|provider_id| WalOp::Retract { provider_id }),
        (0.0f64..1.0e6).prop_map(|horizon_s| WalOp::Expire { horizon_s }),
    ]
}

/// The codec quantises reps (fixed-point lat/lng, coarse theta), so a
/// round-tripped Append is codec-equal rather than bit-equal.
fn ops_equivalent(a: &WalOp, b: &WalOp) -> bool {
    match (a, b) {
        (
            WalOp::Append {
                rep: ra,
                source: sa,
            },
            WalOp::Append {
                rep: rb,
                source: sb,
            },
        ) => sa == sb && (ra.t_start - rb.t_start).abs() < 0.5 && (ra.t_end - rb.t_end).abs() < 0.5,
        (x, y) => x == y,
    }
}

proptest! {
    #[test]
    fn frame_round_trip(ops in prop::collection::vec(arb_op(), 1..40)) {
        let mut buf = BytesMut::new();
        for op in &ops {
            encode_frame(op, &mut buf);
        }
        let raw = buf.freeze();
        let mut offset = 0;
        let mut decoded = Vec::new();
        while offset < raw.len() {
            match check_frame(&raw[offset..]) {
                FrameCheck::Complete(op, size) => {
                    decoded.push(op);
                    offset += size;
                }
                other => prop_assert!(false, "unexpected {other:?} at {offset}"),
            }
        }
        prop_assert_eq!(decoded.len(), ops.len());
        for (a, b) in ops.iter().zip(&decoded) {
            prop_assert!(ops_equivalent(a, b), "{:?} != {:?}", a, b);
        }
    }

    #[test]
    fn torn_tail_truncates_to_last_whole_record(
        ops in prop::collection::vec(arb_op(), 1..30),
        cut_frac in 0.0f64..1.0,
    ) {
        let dir = tmp_dir();
        let clock = Arc::new(ManualClock::new());
        let mut w = WalWriter::open(&dir, 0, 0, clock).unwrap();
        let mut sizes = Vec::new();
        for op in &ops {
            let mut frame = BytesMut::new();
            encode_frame(op, &mut frame);
            sizes.push(frame.len());
            w.append(op).unwrap();
        }
        drop(w);
        let total: usize = sizes.iter().sum();
        let cut = ((total as f64) * cut_frac) as u64;

        // Chop the file at an arbitrary byte offset, as a crash would.
        let path = std::fs::read_dir(&dir).unwrap().next().unwrap().unwrap().path();
        let f = std::fs::OpenOptions::new().write(true).open(&path).unwrap();
        f.set_len(cut).unwrap();
        drop(f);

        // Expected surviving prefix: whole frames that fit under the cut.
        let mut survive = 0usize;
        let mut acc = 0u64;
        for s in &sizes {
            if acc + *s as u64 <= cut {
                survive += 1;
                acc += *s as u64;
            } else {
                break;
            }
        }

        let rec = recover_wal_dir(&dir).unwrap();
        prop_assert_eq!(rec.ops.len(), survive);
        prop_assert_eq!(rec.next_seq, survive as u64);
        for ((_, got), want) in rec.ops.iter().zip(&ops) {
            prop_assert!(ops_equivalent(want, got));
        }
        // Recovery repaired the file: a second pass truncates nothing.
        let rec2 = recover_wal_dir(&dir).unwrap();
        prop_assert_eq!(rec2.truncated_bytes, 0);
        prop_assert_eq!(rec2.ops.len(), survive);
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn crc_flips_are_rejected(
        ops in prop::collection::vec(arb_op(), 1..10),
        byte_frac in 0.0f64..1.0,
        bit in 0u8..8,
    ) {
        let mut buf = BytesMut::new();
        for op in &ops {
            encode_frame(op, &mut buf);
        }
        let mut raw = buf.to_vec();
        let idx = ((raw.len() - 1) as f64 * byte_frac) as usize;
        raw[idx] ^= 1 << bit;

        // Walk frames; the flipped frame must not decode as a silently
        // different op — it is either Corrupt, Incomplete (flipped length
        // pointing past the end), or re-framed such that the walk ends
        // early. What must never happen: all frames Complete AND equal
        // to the originals in count but not content without a crc error.
        let mut offset = 0;
        let mut decoded = Vec::new();
        let mut clean = true;
        while offset < raw.len() {
            match check_frame(&raw[offset..]) {
                FrameCheck::Complete(op, size) => {
                    decoded.push(op);
                    offset += size;
                }
                _ => { clean = false; break; }
            }
        }
        // Every byte of the stream is covered by a length, crc, or
        // crc-checked payload field, so a full clean decode after a flip
        // means the corruption went undetected.
        prop_assert!(
            !(clean && decoded.len() == ops.len()),
            "bit flip at byte {} went undetected",
            idx
        );
    }
}
