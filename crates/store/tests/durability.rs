//! Durability façade tests: WAL-only recovery, snapshot coverage,
//! incremental bucket rewrites, cold-run reload, and lag/age stats.

use std::collections::BTreeMap;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use swag_core::{Fov, RepFov};
use swag_geo::LatLon;
use swag_obs::{ManualClock, MonotonicClock};
use swag_store::{
    home_bucket, Durability, DurabilityConfig, Recovery, SegmentRef, SegmentStore, WalOp,
};

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "swag-dur-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).unwrap();
    d
}

fn rec(t: f64, provider: u64) -> (RepFov, SegmentRef) {
    (
        RepFov::new(t, t + 5.0, Fov::new(LatLon::new(40.0, 116.32), 90.0)),
        SegmentRef {
            provider_id: provider,
            video_id: 0,
            segment_idx: t as u32,
        },
    )
}

fn open(dir: &Path) -> (Arc<Durability>, Recovery) {
    Durability::open(
        dir,
        600.0,
        DurabilityConfig {
            enabled: true,
            fsync_interval_micros: 0,
            snapshot_min_wal_bytes: 0,
            ..DurabilityConfig::default()
        },
        Arc::new(ManualClock::new()),
    )
    .unwrap()
}

#[test]
fn wal_only_recovery_returns_ops() {
    let dir = tmp_dir();
    {
        let (d, recovery) = open(&dir);
        assert!(recovery.records.is_empty() && recovery.ops.is_empty());
        for i in 0..5 {
            let (rep, source) = rec(i as f64 * 10.0, i);
            d.append(&WalOp::Append { rep, source }).unwrap();
        }
        d.append(&WalOp::Retract { provider_id: 2 }).unwrap();
    }
    let (_d, recovery) = open(&dir);
    assert!(recovery.records.is_empty(), "no snapshot was published");
    assert_eq!(recovery.ops.len(), 6);
    assert!(matches!(recovery.ops[5], WalOp::Retract { provider_id: 2 }));
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn snapshot_covers_and_retires_wal() {
    let dir = tmp_dir();
    {
        let (d, _) = open(&dir);
        let mut store = SegmentStore::new();
        let mut versions = BTreeMap::new();
        for i in 0..10u64 {
            let (rep, source) = rec(i as f64 * 100.0, i);
            d.append(&WalOp::Append { rep, source }).unwrap();
            store.push(rep, source);
            *versions.entry(home_bucket(rep.t_start, 600.0)).or_insert(0) += 1;
        }
        d.on_publish(store, Arc::new(versions));
        d.quiesce();
        let stats = d.stats();
        assert_eq!(stats.snapshots_written, 1);
        assert!(stats.snapshot_buckets_written >= 2);
    }
    // WAL fully covered: recovery is snapshot-only.
    let (_d, recovery) = open(&dir);
    assert_eq!(recovery.records.len(), 10);
    assert_eq!(recovery.snapshot_records, 10);
    assert!(recovery.ops.is_empty(), "covered WAL replays nothing");
    // Bucket-major load keeps monotone-t ingest order.
    let providers: Vec<u64> = recovery
        .records
        .iter()
        .map(|(_, s)| s.provider_id)
        .collect();
    assert_eq!(providers, (0..10).collect::<Vec<_>>());
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn incremental_snapshot_rewrites_only_touched_buckets() {
    let dir = tmp_dir();
    let (d, _) = open(&dir);
    let mut store = SegmentStore::new();
    let mut versions: BTreeMap<i64, u64> = BTreeMap::new();
    for i in 0..4u64 {
        let (rep, source) = rec(i as f64 * 700.0, i); // four distinct buckets
        d.append(&WalOp::Append { rep, source }).unwrap();
        store.push(rep, source);
        *versions.entry(home_bucket(rep.t_start, 600.0)).or_insert(0) += 1;
    }
    d.on_publish(store.clone(), Arc::new(versions.clone()));
    d.quiesce();
    assert!(d.stats().snapshot_buckets_written >= 4);
    let before = d.stats().snapshot_buckets_written;
    // Touch one bucket only.
    let (rep, source) = rec(0.0, 99);
    d.append(&WalOp::Append { rep, source }).unwrap();
    store.push(rep, source);
    *versions.entry(0).or_insert(0) += 1;
    d.on_publish(store, Arc::new(versions));
    d.quiesce();
    assert_eq!(
        d.stats().snapshot_buckets_written - before,
        1,
        "only the touched bucket is rewritten"
    );
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn demote_and_reload_cold_runs() {
    let dir = tmp_dir();
    {
        let (d, _) = open(&dir);
        d.demote(0, &[rec(1.0, 1), rec(2.0, 2)]).unwrap();
        d.demote(3, &[rec(1900.0, 3)]).unwrap();
        let stats = d.stats();
        assert_eq!((stats.cold_runs, stats.cold_segments), (2, 3));
    }
    let (d, _) = open(&dir);
    assert_eq!(d.cold().runs(), 2);
    assert_eq!(d.cold().segments(), 3);
    assert_eq!(d.cold().overlapping(f64::INFINITY, 600.0).len(), 2);
    std::fs::remove_dir_all(&dir).ok();
}

#[test]
fn stats_track_lag_and_snapshot_age() {
    let dir = tmp_dir();
    let clock = Arc::new(ManualClock::new());
    let (d, _) = Durability::open(
        &dir,
        600.0,
        DurabilityConfig {
            enabled: true,
            fsync_interval_micros: 1_000_000, // never within this test
            ..DurabilityConfig::default()
        },
        Arc::clone(&clock) as Arc<dyn MonotonicClock>,
    )
    .unwrap();
    let (rep, source) = rec(5.0, 1);
    d.append(&WalOp::Append { rep, source }).unwrap();
    let stats = d.stats();
    assert!(stats.wal_lag_bytes > 0, "append not yet fsynced");
    assert_eq!(stats.wal_records, 1);
    assert_eq!(stats.last_snapshot_age_micros, None);
    d.quiesce();
    assert_eq!(d.stats().wal_lag_bytes, 0);
    std::fs::remove_dir_all(&dir).ok();
}
