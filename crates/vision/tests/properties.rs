//! Property tests for the CV substrate: similarity bounds, descriptor
//! invariants, raycast geometry, renderer determinism.

use proptest::prelude::*;
use swag_geo::Vec2;
use swag_vision::{
    frame_diff_similarity, ColorHistogram, GridDescriptor, Renderer, Resolution, World,
};

fn arb_pose() -> impl Strategy<Value = (Vec2, f64)> {
    (-150.0f64..150.0, -150.0f64..150.0, 0.0f64..360.0).prop_map(|(x, y, az)| (Vec2::new(x, y), az))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn frame_diff_is_bounded_symmetric_reflexive(
        seed in 0u64..1000,
        a in arb_pose(),
        b in arb_pose(),
    ) {
        let world = World::random_city(seed, 200.0, 60);
        let r = Renderer::new(&world, 25.0, 100.0);
        let fa = r.render(a.0, a.1, Resolution::P240);
        let fb = r.render(b.0, b.1, Resolution::P240);
        let s = frame_diff_similarity(&fa, &fb);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - frame_diff_similarity(&fb, &fa)).abs() < 1e-12);
        prop_assert_eq!(frame_diff_similarity(&fa, &fa), 1.0);
    }

    #[test]
    fn raycast_hits_are_within_range_and_on_the_circle(
        seed in 0u64..1000,
        origin in arb_pose(),
    ) {
        let world = World::random_city(seed, 200.0, 80);
        for i in 0..24 {
            let az = f64::from(i) * 15.0;
            if let Some(hit) = world.raycast(origin.0, az, 120.0) {
                prop_assert!(hit.distance_m > 0.0 && hit.distance_m <= 120.0);
                // The hit point lies on the landmark's circle boundary.
                let lm = world.landmarks()[hit.landmark];
                let point = origin.0 + Vec2::from_azimuth_deg(az) * hit.distance_m;
                prop_assert!(((point - lm.position).norm() - lm.radius_m).abs() < 1e-6);
            }
        }
    }

    #[test]
    fn visible_landmarks_shrink_with_radius(seed in 0u64..1000, pose in arb_pose()) {
        let world = World::random_city(seed, 200.0, 100);
        let near = world.visible_landmarks(pose.0, pose.1, 25.0, 50.0);
        let far = world.visible_landmarks(pose.0, pose.1, 25.0, 150.0);
        prop_assert!(near.len() <= far.len());
        for lm in &near {
            prop_assert!(far.contains(lm));
        }
    }

    #[test]
    fn content_similarity_bounded_and_symmetric(
        seed in 0u64..1000,
        a in arb_pose(),
        b in arb_pose(),
    ) {
        let world = World::random_city(seed, 200.0, 100);
        let s = world.content_similarity(a, b, 25.0, 100.0);
        prop_assert!((0.0..=1.0).contains(&s));
        prop_assert!((s - world.content_similarity(b, a, 25.0, 100.0)).abs() < 1e-12);
        prop_assert_eq!(world.content_similarity(a, a, 25.0, 100.0), 1.0);
    }

    #[test]
    fn histogram_sums_to_one_and_self_matches(
        seed in 0u64..1000,
        pose in arb_pose(),
        bins in 2usize..8,
    ) {
        let world = World::random_city(seed, 200.0, 60);
        let r = Renderer::new(&world, 25.0, 100.0);
        let f = r.render(pose.0, pose.1, Resolution::P240);
        let h = ColorHistogram::from_frame(&f, bins);
        prop_assert_eq!(h.len(), bins * bins * bins);
        prop_assert!((h.intersection_similarity(&h) - 1.0).abs() < 1e-4);
    }

    #[test]
    fn grid_descriptor_cells_are_unit_or_zero(seed in 0u64..1000, pose in arb_pose()) {
        let world = World::random_city(seed, 200.0, 60);
        let r = Renderer::new(&world, 25.0, 100.0);
        let f = r.render(pose.0, pose.1, Resolution::P240);
        let d = GridDescriptor::extract(&f, 4);
        prop_assert_eq!(d.dims(), 128);
        // Self matching similarity is bounded.
        let sim = d.matching_similarity(&d, 0.8);
        prop_assert!((0.0..=1.0).contains(&sim));
    }

    #[test]
    fn ppm_round_trip_any_frame(seed in 0u64..1000, pose in arb_pose()) {
        let world = World::random_city(seed, 150.0, 40);
        let r = Renderer::new(&world, 25.0, 100.0);
        let f = r.render(pose.0, pose.1, Resolution::P240);
        let mut buf = Vec::new();
        swag_vision::write_ppm(&mut buf, &f).unwrap();
        prop_assert_eq!(swag_vision::read_ppm(&buf).unwrap(), f);
    }

    #[test]
    fn renderer_deterministic_and_pixels_initialized(seed in 0u64..100, pose in arb_pose()) {
        let world = World::random_city(seed, 150.0, 40);
        let r = Renderer::new(&world, 25.0, 100.0);
        let a = r.render(pose.0, pose.1, Resolution::P240);
        let b = r.render_par(pose.0, pose.1, Resolution::P240, 4);
        prop_assert_eq!(&a, &b);
        // Every pixel was written: sky, ground, skyline and landmark
        // shaders all emit colours with a max channel of at least 5
        // (a close-up landmark may legitimately fill the whole frame,
        // so do not demand visible sky).
        let all_lit = a
            .pixels()
            .chunks_exact(3)
            .all(|px| px.iter().copied().max().unwrap_or(0) >= 5);
        prop_assert!(all_lit, "unwritten pixel found");
    }
}
