//! Computer-vision substrate for SWAG.
//!
//! The paper compares FoV-based similarity and segmentation against
//! content-based (CV) methods applied to real footage with OpenCV. This
//! crate replaces both the footage and OpenCV with a fully self-contained
//! pipeline:
//!
//! * a **synthetic world** of coloured landmarks ([`world`]) standing in
//!   for the street scene;
//! * a **ray-casting renderer** ([`camera`]) that produces real `W×H` RGB
//!   frame buffers from a camera pose, so CV costs are genuinely
//!   resolution-dependent (the property the paper's Fig. 6(a) measures);
//! * **frame differencing** ([`diff`]) — the paper's representative CV
//!   similarity;
//! * a **colour-histogram** global descriptor ([`hist`]) and a SIFT-like
//!   **grid gradient descriptor** ([`keypoints`]) as content-descriptor
//!   baselines for the size/extract/match cost comparison;
//! * **CV-based video segmentation** ([`segmentation`]) mirroring the
//!   paper's Algorithm 1 with frame-diff similarity, for the cost and
//!   agreement experiments.
//!
//! Rendering parallelises across rows with `crossbeam::scope`.

pub mod camera;
pub mod diff;
pub mod frame;
pub mod hist;
pub mod keypoints;
pub mod motion;
pub mod ppm;
pub mod segmentation;
pub mod survey;
pub mod world;

pub use camera::Renderer;
pub use diff::frame_diff_similarity;
pub use frame::{Frame, Resolution};
pub use hist::ColorHistogram;
pub use keypoints::GridDescriptor;
pub use motion::{estimate_rotation_deg, estimate_shift_px};
pub use ppm::{read_ppm, write_ppm};
pub use survey::{site_survey, suggest_view_radius, SurveyResult};
pub use world::{Landmark, World};
