//! RGB frame buffers and standard video resolutions.

/// A packed 8-bit RGB frame, row-major.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Frame {
    width: usize,
    height: usize,
    pixels: Vec<u8>,
}

impl Frame {
    /// Allocates a black frame.
    pub fn new(width: usize, height: usize) -> Self {
        assert!(width > 0 && height > 0, "frame dimensions must be positive");
        Frame {
            width,
            height,
            pixels: vec![0; width * height * 3],
        }
    }

    /// Frame width in pixels.
    #[inline]
    pub fn width(&self) -> usize {
        self.width
    }

    /// Frame height in pixels.
    #[inline]
    pub fn height(&self) -> usize {
        self.height
    }

    /// Raw RGB bytes, row-major.
    #[inline]
    pub fn pixels(&self) -> &[u8] {
        &self.pixels
    }

    /// Mutable raw RGB bytes.
    #[inline]
    pub fn pixels_mut(&mut self) -> &mut [u8] {
        &mut self.pixels
    }

    /// Number of pixels.
    #[inline]
    pub fn pixel_count(&self) -> usize {
        self.width * self.height
    }

    /// Reads one pixel.
    #[inline]
    pub fn get(&self, x: usize, y: usize) -> [u8; 3] {
        let i = (y * self.width + x) * 3;
        [self.pixels[i], self.pixels[i + 1], self.pixels[i + 2]]
    }

    /// Writes one pixel.
    #[inline]
    pub fn set(&mut self, x: usize, y: usize, rgb: [u8; 3]) {
        let i = (y * self.width + x) * 3;
        self.pixels[i] = rgb[0];
        self.pixels[i + 1] = rgb[1];
        self.pixels[i + 2] = rgb[2];
    }

    /// Luma (Rec. 601 luminance) of a pixel, `0.0..=255.0`.
    #[inline]
    pub fn luma(&self, x: usize, y: usize) -> f32 {
        let [r, g, b] = self.get(x, y);
        0.299 * f32::from(r) + 0.587 * f32::from(g) + 0.114 * f32::from(b)
    }

    /// Uncompressed size in bytes.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.pixels.len()
    }
}

/// Standard 16:9-ish video resolutions used by the paper's
/// segmentation-cost experiment (Fig. 6(a)).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Resolution {
    /// 426 × 240.
    P240,
    /// 640 × 360.
    P360,
    /// 854 × 480.
    P480,
    /// 1280 × 720.
    P720,
    /// 1920 × 1080.
    P1080,
}

impl Resolution {
    /// All presets, ascending.
    pub const ALL: [Resolution; 5] = [
        Resolution::P240,
        Resolution::P360,
        Resolution::P480,
        Resolution::P720,
        Resolution::P1080,
    ];

    /// `(width, height)` in pixels.
    pub fn dims(self) -> (usize, usize) {
        match self {
            Resolution::P240 => (426, 240),
            Resolution::P360 => (640, 360),
            Resolution::P480 => (854, 480),
            Resolution::P720 => (1280, 720),
            Resolution::P1080 => (1920, 1080),
        }
    }

    /// Pixel count.
    pub fn pixel_count(self) -> usize {
        let (w, h) = self.dims();
        w * h
    }

    /// Short label, e.g. `"720p"`.
    pub fn label(self) -> &'static str {
        match self {
            Resolution::P240 => "240p",
            Resolution::P360 => "360p",
            Resolution::P480 => "480p",
            Resolution::P720 => "720p",
            Resolution::P1080 => "1080p",
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_frame_is_black() {
        let f = Frame::new(4, 3);
        assert_eq!(f.byte_size(), 36);
        assert_eq!(f.get(3, 2), [0, 0, 0]);
    }

    #[test]
    fn set_get_round_trip() {
        let mut f = Frame::new(10, 10);
        f.set(7, 3, [1, 2, 3]);
        assert_eq!(f.get(7, 3), [1, 2, 3]);
        assert_eq!(f.get(3, 7), [0, 0, 0]);
    }

    #[test]
    fn luma_of_white_is_255() {
        let mut f = Frame::new(1, 1);
        f.set(0, 0, [255, 255, 255]);
        assert!((f.luma(0, 0) - 255.0).abs() < 0.5);
    }

    #[test]
    fn resolutions_ascend() {
        let counts: Vec<usize> = Resolution::ALL.iter().map(|r| r.pixel_count()).collect();
        assert!(counts.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(Resolution::P720.dims(), (1280, 720));
        assert_eq!(Resolution::P1080.label(), "1080p");
    }

    #[test]
    #[should_panic(expected = "dimensions")]
    fn zero_size_rejected() {
        Frame::new(0, 10);
    }
}
