//! A SIFT-like grid gradient descriptor ("GLOH-lite").
//!
//! Stands in for the local-feature baselines (SIFT and variants,
//! paper §VIII) in the descriptor cost comparison: per-pixel gradient
//! extraction, high-dimensional float descriptors, and O(n·m)
//! nearest-neighbour matching with Lowe's ratio test. The asymptotic cost
//! shape — not feature-detection fidelity — is what the experiment needs.
//!
//! The frame is divided into a `grid × grid` array of cells; each cell
//! accumulates a magnitude-weighted histogram over `ORIENTATIONS` gradient
//! directions of the luma image. With the default `grid = 4` this yields a
//! 128-dimensional descriptor per cell block, matching SIFT's
//! dimensionality.

use crate::frame::Frame;

/// Gradient orientation bins per cell.
pub const ORIENTATIONS: usize = 8;

/// One cell's orientation histogram.
pub type CellDescriptor = [f32; ORIENTATIONS];

/// A dense grid of gradient-orientation histograms over a frame.
#[derive(Debug, Clone, PartialEq)]
pub struct GridDescriptor {
    grid: usize,
    /// `grid²` cell histograms, row-major, each L2-normalised.
    cells: Vec<CellDescriptor>,
}

impl GridDescriptor {
    /// Extracts the descriptor with a `grid × grid` cell layout
    /// (`grid ∈ [2, 16]`).
    ///
    /// Cost: one gradient evaluation per interior pixel.
    pub fn extract(frame: &Frame, grid: usize) -> Self {
        assert!((2..=16).contains(&grid), "grid must be in [2, 16]");
        let (w, h) = (frame.width(), frame.height());
        let mut cells = vec![[0.0f32; ORIENTATIONS]; grid * grid];

        for y in 1..h - 1 {
            let cy = (y * grid) / h;
            for x in 1..w - 1 {
                let gx = frame.luma(x + 1, y) - frame.luma(x - 1, y);
                let gy = frame.luma(x, y + 1) - frame.luma(x, y - 1);
                let mag = gx.hypot(gy);
                if mag < 1.0 {
                    continue; // flat region
                }
                let angle = gy.atan2(gx); // (-π, π]
                let bin = (((angle + std::f32::consts::PI) / (2.0 * std::f32::consts::PI))
                    * ORIENTATIONS as f32) as usize
                    % ORIENTATIONS;
                let cx = (x * grid) / w;
                cells[cy * grid + cx][bin] += mag;
            }
        }

        // L2-normalise each cell (SIFT-style illumination invariance).
        for cell in &mut cells {
            let norm: f32 = cell.iter().map(|v| v * v).sum::<f32>().sqrt();
            if norm > 1e-6 {
                for v in cell.iter_mut() {
                    *v /= norm;
                }
            }
        }
        GridDescriptor { grid, cells }
    }

    /// Total dimensionality (`grid² × 8`).
    #[inline]
    pub fn dims(&self) -> usize {
        self.cells.len() * ORIENTATIONS
    }

    /// Descriptor size in bytes when stored as `f32`s.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.dims() * std::mem::size_of::<f32>()
    }

    /// Squared L2 distance between two cell histograms.
    fn cell_dist_sq(a: &CellDescriptor, b: &CellDescriptor) -> f32 {
        a.iter()
            .zip(b)
            .map(|(x, y)| {
                let d = x - y;
                d * d
            })
            .sum()
    }

    /// Counts cells of `self` whose nearest cell in `other` passes Lowe's
    /// ratio test (`nearest < ratio × second_nearest`) — the SIFT matching
    /// procedure, O(cells²) like descriptor matching in practice.
    pub fn matches(&self, other: &GridDescriptor, ratio: f32) -> usize {
        assert_eq!(self.grid, other.grid, "grid sizes differ");
        let mut count = 0;
        for a in &self.cells {
            let (mut best, mut second) = (f32::INFINITY, f32::INFINITY);
            for b in &other.cells {
                let d = Self::cell_dist_sq(a, b);
                if d < best {
                    second = best;
                    best = d;
                } else if d < second {
                    second = d;
                }
            }
            if best < ratio * ratio * second {
                count += 1;
            }
        }
        count
    }

    /// Matching similarity in `[0, 1]`: fraction of cells with a
    /// ratio-test match.
    pub fn matching_similarity(&self, other: &GridDescriptor, ratio: f32) -> f64 {
        self.matches(other, ratio) as f64 / self.cells.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A frame with vertical stripes (strong horizontal gradients).
    fn striped(w: usize, h: usize, period: usize) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let v = if (x / period).is_multiple_of(2) {
                    230
                } else {
                    20
                };
                f.set(x, y, [v, v, v]);
            }
        }
        f
    }

    #[test]
    fn dimensionality_matches_sift_at_grid_4() {
        let f = striped(64, 64, 4);
        let d = GridDescriptor::extract(&f, 4);
        assert_eq!(d.dims(), 128);
        assert_eq!(d.byte_size(), 512);
    }

    #[test]
    fn cells_are_normalised() {
        let f = striped(64, 64, 4);
        let d = GridDescriptor::extract(&f, 4);
        for cell in &d.cells {
            let norm: f32 = cell.iter().map(|v| v * v).sum::<f32>().sqrt();
            assert!(norm < 1.001, "norm {norm}");
        }
    }

    #[test]
    fn flat_frame_has_zero_cells() {
        let f = Frame::new(32, 32); // all black → no gradients
        let d = GridDescriptor::extract(&f, 4);
        assert!(d.cells.iter().all(|c| c.iter().all(|&v| v == 0.0)));
    }

    /// A frame whose 16×16 blocks carry stripes at per-block angles, so
    /// each descriptor cell is distinctive (the ratio test rejects matches
    /// on repetitive texture by design, exactly like SIFT).
    fn oriented_blocks(w: usize, h: usize, angle_step_deg: f64) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                let block = (y / 16) * (w / 16) + x / 16;
                let angle = (block as f64 * angle_step_deg).to_radians();
                let phase = x as f64 * angle.cos() + y as f64 * angle.sin();
                let v = if (phase / 3.0).floor() as i64 % 2 == 0 {
                    230
                } else {
                    20
                };
                f.set(x, y, [v, v, v]);
            }
        }
        f
    }

    #[test]
    fn self_matching_is_high_on_distinctive_texture() {
        let f = oriented_blocks(64, 64, 23.0);
        let d = GridDescriptor::extract(&f, 4);
        let sim = d.matching_similarity(&d, 0.8);
        assert!(sim > 0.8, "self-similarity {sim}");
    }

    #[test]
    fn repetitive_texture_fails_ratio_test() {
        // Uniform stripes make every cell identical: the ratio test must
        // reject all matches (ambiguous correspondences), like SIFT does.
        let f = striped(64, 64, 4);
        let d = GridDescriptor::extract(&f, 4);
        assert_eq!(d.matches(&d, 0.8), 0);
    }

    #[test]
    fn different_textures_match_poorly() {
        let a = GridDescriptor::extract(&oriented_blocks(64, 64, 23.0), 4);
        let b = GridDescriptor::extract(&oriented_blocks(64, 64, 41.0), 4);
        let cross = a.matching_similarity(&b, 0.8);
        let auto = a.matching_similarity(&a, 0.8);
        assert!(cross < auto, "cross {cross} !< auto {auto}");
    }

    #[test]
    #[should_panic(expected = "grid sizes differ")]
    fn mismatched_grids_panic() {
        let a = GridDescriptor::extract(&striped(32, 32, 4), 4);
        let b = GridDescriptor::extract(&striped(32, 32, 4), 8);
        a.matches(&b, 0.8);
    }
}
