//! Colour-histogram global descriptor (a Gist/HLAC-class baseline,
//! paper §VIII "global features").
//!
//! The frame is reduced to a normalised joint RGB histogram with
//! `bins³` cells. Extraction is linear in the pixel count; matching is
//! linear in the descriptor size. Used by the descriptor cost/size
//! comparison (`tab-desc`).

use crate::frame::Frame;

/// A normalised joint colour histogram.
#[derive(Debug, Clone, PartialEq)]
pub struct ColorHistogram {
    bins_per_channel: usize,
    /// `bins³` weights summing to 1 (for non-empty frames).
    weights: Vec<f32>,
}

impl ColorHistogram {
    /// Extracts a histogram with `bins_per_channel ∈ [2, 16]` bins per
    /// colour channel (so `bins³` cells total).
    pub fn from_frame(frame: &Frame, bins_per_channel: usize) -> Self {
        assert!(
            (2..=16).contains(&bins_per_channel),
            "bins_per_channel must be in [2, 16]"
        );
        let b = bins_per_channel;
        let mut counts = vec![0u32; b * b * b];
        let bin = |v: u8| (v as usize * b) / 256;
        for px in frame.pixels().chunks_exact(3) {
            let idx = (bin(px[0]) * b + bin(px[1])) * b + bin(px[2]);
            counts[idx] += 1;
        }
        let total = frame.pixel_count() as f32;
        ColorHistogram {
            bins_per_channel: b,
            weights: counts.iter().map(|&c| c as f32 / total).collect(),
        }
    }

    /// Number of cells (`bins³`).
    #[inline]
    pub fn len(&self) -> usize {
        self.weights.len()
    }

    /// Whether the histogram is empty (never true for extracted ones).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.weights.is_empty()
    }

    /// Descriptor size in bytes when stored as `f32`s.
    #[inline]
    pub fn byte_size(&self) -> usize {
        self.weights.len() * std::mem::size_of::<f32>()
    }

    /// Histogram-intersection similarity in `[0, 1]`:
    /// `Σ min(aᵢ, bᵢ)`. 1 for identical colour distributions.
    pub fn intersection_similarity(&self, other: &ColorHistogram) -> f64 {
        assert_eq!(
            self.bins_per_channel, other.bins_per_channel,
            "histogram bin counts differ"
        );
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(&a, &b)| f64::from(a.min(b)))
            .sum()
    }

    /// Euclidean distance between the weight vectors.
    pub fn l2_distance(&self, other: &ColorHistogram) -> f64 {
        assert_eq!(self.bins_per_channel, other.bins_per_channel);
        self.weights
            .iter()
            .zip(&other.weights)
            .map(|(&a, &b)| {
                let d = f64::from(a) - f64::from(b);
                d * d
            })
            .sum::<f64>()
            .sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(w: usize, h: usize, rgb: [u8; 3]) -> Frame {
        let mut f = Frame::new(w, h);
        for y in 0..h {
            for x in 0..w {
                f.set(x, y, rgb);
            }
        }
        f
    }

    #[test]
    fn histogram_sums_to_one() {
        let f = solid(8, 8, [200, 30, 90]);
        let h = ColorHistogram::from_frame(&f, 4);
        let sum: f32 = h.weights.iter().sum();
        assert!((sum - 1.0).abs() < 1e-5);
        assert_eq!(h.len(), 64);
        assert_eq!(h.byte_size(), 256);
    }

    #[test]
    fn identical_frames_intersect_fully() {
        let f = solid(8, 8, [10, 20, 30]);
        let h1 = ColorHistogram::from_frame(&f, 8);
        let h2 = ColorHistogram::from_frame(&f, 8);
        assert!((h1.intersection_similarity(&h2) - 1.0).abs() < 1e-6);
        assert!(h1.l2_distance(&h2) < 1e-6);
    }

    #[test]
    fn disjoint_colors_intersect_zero() {
        let a = ColorHistogram::from_frame(&solid(8, 8, [0, 0, 0]), 4);
        let b = ColorHistogram::from_frame(&solid(8, 8, [255, 255, 255]), 4);
        assert!(a.intersection_similarity(&b) < 1e-9);
        assert!(b.l2_distance(&a) > 1.0);
    }

    #[test]
    fn intersection_is_symmetric() {
        let mut f1 = solid(8, 8, [10, 20, 30]);
        f1.set(0, 0, [250, 250, 250]);
        let f2 = solid(8, 8, [10, 20, 30]);
        let h1 = ColorHistogram::from_frame(&f1, 4);
        let h2 = ColorHistogram::from_frame(&f2, 4);
        let s = h1.intersection_similarity(&h2);
        assert_eq!(s, h2.intersection_similarity(&h1));
        // 63 of 64 pixels identical.
        assert!((s - 63.0 / 64.0).abs() < 1e-5);
    }

    #[test]
    #[should_panic(expected = "bins_per_channel")]
    fn bad_bin_count_rejected() {
        ColorHistogram::from_frame(&solid(2, 2, [0, 0, 0]), 1);
    }
}
