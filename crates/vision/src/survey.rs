//! Site survey: estimating the empirical radius of view from the
//! environment (paper §VII).
//!
//! The paper sets the radius of view `R` "by empirical observation"
//! (20 m residential, 100 m highway) and suggests that map data "can help
//! us do the site survey … radius of view and segmentation threshold could
//! be estimated". This module implements that idea against the synthetic
//! world: cast rays in all directions and measure how far vision actually
//! reaches before an obstruction.

use swag_geo::Vec2;

use crate::world::World;

/// Visibility statistics around a position.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SurveyResult {
    /// Median unobstructed sight distance over the sampled rays, metres.
    pub median_visible_m: f64,
    /// 90th-percentile sight distance, metres.
    pub p90_visible_m: f64,
    /// Fraction of rays that reached the probe limit without hitting
    /// anything (1.0 = open field).
    pub open_fraction: f64,
}

/// Probes visibility by casting `n_rays` evenly spaced rays up to
/// `probe_limit_m`.
///
/// # Panics
/// Panics if `n_rays == 0` or `probe_limit_m <= 0`.
pub fn site_survey(
    world: &World,
    position: Vec2,
    n_rays: usize,
    probe_limit_m: f64,
) -> SurveyResult {
    assert!(n_rays > 0, "need at least one ray");
    assert!(probe_limit_m > 0.0, "probe limit must be positive");
    let mut dists: Vec<f64> = (0..n_rays)
        .map(|i| {
            let az = 360.0 * i as f64 / n_rays as f64;
            world
                .raycast(position, az, probe_limit_m)
                .map_or(probe_limit_m, |hit| hit.distance_m)
        })
        .collect();
    let open = dists.iter().filter(|&&d| d >= probe_limit_m).count();
    dists.sort_by(f64::total_cmp);
    let pick = |q: f64| dists[((dists.len() - 1) as f64 * q).round() as usize];
    SurveyResult {
        median_visible_m: pick(0.5),
        p90_visible_m: pick(0.9),
        open_fraction: open as f64 / n_rays as f64,
    }
}

/// Suggests an empirical radius of view for a site: the median sight
/// distance, clamped to the paper's residential/highway band
/// `[20 m, 300 m]`.
pub fn suggest_view_radius(world: &World, position: Vec2) -> f64 {
    site_survey(world, position, 72, 300.0)
        .median_visible_m
        .clamp(20.0, 300.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::Landmark;

    fn dense_world() -> World {
        // A tight ring of obstructions ~15 m out.
        let landmarks = (0..36)
            .map(|i| {
                let az = f64::from(i) * 10.0;
                Landmark {
                    position: Vec2::from_azimuth_deg(az) * 15.0,
                    radius_m: 2.0,
                    height_m: 10.0,
                    color: [100, 100, 100],
                }
            })
            .collect();
        World::new(landmarks)
    }

    #[test]
    fn open_field_reports_probe_limit() {
        let world = World::new(vec![]);
        let r = site_survey(&world, Vec2::ZERO, 36, 250.0);
        assert_eq!(r.median_visible_m, 250.0);
        assert_eq!(r.p90_visible_m, 250.0);
        assert_eq!(r.open_fraction, 1.0);
        // suggest_view_radius probes to 300 m and clamps there.
        assert_eq!(suggest_view_radius(&world, Vec2::ZERO), 300.0);
    }

    #[test]
    fn dense_ring_reports_short_sight() {
        let r = site_survey(&dense_world(), Vec2::ZERO, 72, 300.0);
        assert!(r.median_visible_m < 16.0, "median {}", r.median_visible_m);
        assert!(r.open_fraction < 0.5);
        // Suggested radius is clamped up to the residential floor.
        assert_eq!(suggest_view_radius(&dense_world(), Vec2::ZERO), 20.0);
    }

    #[test]
    fn survey_depends_on_position() {
        // Standing outside the ring looking across open space.
        let r_inside = site_survey(&dense_world(), Vec2::ZERO, 72, 300.0);
        let r_outside = site_survey(&dense_world(), Vec2::new(150.0, 0.0), 72, 300.0);
        assert!(r_outside.median_visible_m > r_inside.median_visible_m);
    }

    #[test]
    fn percentiles_are_ordered() {
        let world = World::random_city(5, 200.0, 150);
        let r = site_survey(&world, Vec2::ZERO, 144, 300.0);
        assert!(r.median_visible_m <= r.p90_visible_m);
        assert!((0.0..=1.0).contains(&r.open_fraction));
    }

    #[test]
    #[should_panic(expected = "at least one ray")]
    fn zero_rays_rejected() {
        site_survey(&World::new(vec![]), Vec2::ZERO, 0, 100.0);
    }
}
