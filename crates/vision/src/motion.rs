//! Image-based rotation estimation — what CV must compute to recover the
//! information a compass gives for free.
//!
//! A pure camera rotation shifts the image horizontally. This module
//! estimates that shift by cross-correlating the column-mean luma profiles
//! of two frames (a classic 1-D block-matching scheme) and converts it to
//! degrees via the camera's angular resolution. The comparison with the
//! direct sensor readout quantifies the paper's core argument: the
//! content-free descriptor contains the motion information the CV pipeline
//! has to work hard to extract.

use crate::frame::Frame;

/// Mean luma per pixel column.
pub fn column_profile(frame: &Frame) -> Vec<f32> {
    let (w, h) = (frame.width(), frame.height());
    let mut profile = vec![0.0f32; w];
    for y in 0..h {
        for (x, p) in profile.iter_mut().enumerate() {
            *p += frame.luma(x, y);
        }
    }
    for p in &mut profile {
        *p /= h as f32;
    }
    profile
}

/// Estimates the horizontal shift (in pixels) that best aligns frame `b`
/// to frame `a`, searching `-max_shift..=max_shift`. Positive means the
/// content of `a` appears `shift` pixels further left in `b` (camera
/// rotated clockwise).
///
/// Returns the shift minimising the mean absolute profile difference over
/// the overlapping columns.
pub fn estimate_shift_px(a: &Frame, b: &Frame, max_shift: usize) -> isize {
    assert_eq!(a.width(), b.width(), "frame widths differ");
    let pa = column_profile(a);
    let pb = column_profile(b);
    let w = pa.len() as isize;
    let max_shift = (max_shift as isize).min(w - 1);

    let mut best_shift = 0isize;
    let mut best_cost = f32::INFINITY;
    for shift in -max_shift..=max_shift {
        // Column x of `a` matches column x - shift of `b`.
        let (mut cost, mut count) = (0.0f32, 0u32);
        for x in 0..w {
            let xb = x - shift;
            if xb < 0 || xb >= w {
                continue;
            }
            cost += (pa[x as usize] - pb[xb as usize]).abs();
            count += 1;
        }
        if count == 0 {
            continue;
        }
        // Penalise tiny overlaps slightly so degenerate shifts don't win
        // on a handful of lucky columns.
        let mean = cost / count as f32 + 0.05 * (w - count as isize) as f32 / w as f32;
        if mean < best_cost {
            best_cost = mean;
            best_shift = shift;
        }
    }
    best_shift
}

/// Estimates the camera rotation between two frames, in degrees
/// (positive = clockwise), given the camera half viewing angle.
pub fn estimate_rotation_deg(a: &Frame, b: &Frame, half_angle_deg: f64) -> f64 {
    let max_shift = a.width(); // full frame
    let shift = estimate_shift_px(a, b, max_shift);
    // The frame spans 2α over `width` pixels.
    shift as f64 * (2.0 * half_angle_deg) / a.width() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::camera::Renderer;
    use crate::frame::Resolution;
    use crate::world::World;
    use swag_geo::Vec2;

    #[test]
    fn zero_shift_for_identical_frames() {
        let world = World::random_city(1, 200.0, 100);
        let r = Renderer::new(&world, 25.0, 150.0);
        let f = r.render(Vec2::ZERO, 0.0, Resolution::P240);
        assert_eq!(estimate_shift_px(&f, &f, 100), 0);
        assert_eq!(estimate_rotation_deg(&f, &f, 25.0), 0.0);
    }

    #[test]
    fn estimates_small_rotations_from_pixels() {
        let world = World::random_city(7, 250.0, 200);
        let r = Renderer::new(&world, 25.0, 150.0);
        let base = r.render(Vec2::ZERO, 0.0, Resolution::P240);
        for true_rot in [2.0f64, 5.0, 10.0, -4.0] {
            let turned = r.render(Vec2::ZERO, true_rot, Resolution::P240);
            let est = estimate_rotation_deg(&base, &turned, 25.0);
            assert!(
                (est - true_rot).abs() < 1.5,
                "true {true_rot}° estimated {est:.2}°"
            );
        }
    }

    #[test]
    fn profile_has_frame_width() {
        let world = World::random_city(2, 100.0, 40);
        let r = Renderer::new(&world, 25.0, 100.0);
        let f = r.render(Vec2::ZERO, 90.0, Resolution::P240);
        assert_eq!(column_profile(&f).len(), 426);
    }

    #[test]
    #[should_panic(expected = "widths differ")]
    fn mismatched_widths_panic() {
        let a = Frame::new(10, 10);
        let b = Frame::new(12, 10);
        estimate_shift_px(&a, &b, 5);
    }
}
