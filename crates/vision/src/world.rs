//! A synthetic 2-D world of coloured landmarks.
//!
//! Landmarks are vertical cylinders (circles in plan view with a height),
//! standing in for buildings, trees and street furniture. The renderer ray
//! casts against them; the accuracy experiments use
//! [`World::visible_landmarks`] as the *content ground truth* — two videos
//! share content exactly when they see the same landmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag_geo::{angle_diff_deg, Vec2};

/// A cylindrical landmark.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Landmark {
    /// Plan-view centre, local metres.
    pub position: Vec2,
    /// Plan-view radius, metres.
    pub radius_m: f64,
    /// Height above ground, metres (controls apparent size).
    pub height_m: f64,
    /// Base colour.
    pub color: [u8; 3],
}

/// The result of a ray-cast.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Hit {
    /// Index of the hit landmark.
    pub landmark: usize,
    /// Distance from the ray origin, metres.
    pub distance_m: f64,
}

/// A set of landmarks.
#[derive(Debug, Clone, PartialEq)]
pub struct World {
    landmarks: Vec<Landmark>,
}

impl World {
    /// Creates a world from explicit landmarks.
    pub fn new(landmarks: Vec<Landmark>) -> Self {
        World { landmarks }
    }

    /// A deterministic random "city": `n` landmarks uniformly placed in the
    /// square `[-extent_m, extent_m]²` with varied sizes and colours.
    pub fn random_city(seed: u64, extent_m: f64, n: usize) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let palette: [[u8; 3]; 8] = [
            [180, 60, 60],
            [60, 140, 70],
            [70, 90, 170],
            [200, 160, 60],
            [150, 80, 160],
            [90, 170, 170],
            [170, 120, 80],
            [120, 120, 130],
        ];
        let landmarks = (0..n)
            .map(|_| Landmark {
                position: Vec2::new(
                    rng.random_range(-extent_m..=extent_m),
                    rng.random_range(-extent_m..=extent_m),
                ),
                radius_m: rng.random_range(1.0..6.0),
                height_m: rng.random_range(4.0..30.0),
                color: palette[rng.random_range(0..palette.len())],
            })
            .collect();
        World { landmarks }
    }

    /// The landmark list.
    #[inline]
    pub fn landmarks(&self) -> &[Landmark] {
        &self.landmarks
    }

    /// Casts a ray from `origin` along compass azimuth `azimuth_deg`,
    /// returning the nearest landmark hit within `max_dist_m`.
    pub fn raycast(&self, origin: Vec2, azimuth_deg: f64, max_dist_m: f64) -> Option<Hit> {
        let dir = Vec2::from_azimuth_deg(azimuth_deg);
        let mut best: Option<Hit> = None;
        for (i, lm) in self.landmarks.iter().enumerate() {
            if let Some(t) = ray_circle(origin, dir, lm.position, lm.radius_m) {
                if t <= max_dist_m && best.is_none_or(|b| t < b.distance_m) {
                    best = Some(Hit {
                        landmark: i,
                        distance_m: t,
                    });
                }
            }
        }
        best
    }

    /// Indices of the landmarks whose centre falls inside the view sector
    /// (apex `origin`, axis `azimuth_deg`, half-angle `half_angle_deg`,
    /// radius `radius_m`) — the content ground truth for one camera pose.
    pub fn visible_landmarks(
        &self,
        origin: Vec2,
        azimuth_deg: f64,
        half_angle_deg: f64,
        radius_m: f64,
    ) -> Vec<usize> {
        self.landmarks
            .iter()
            .enumerate()
            .filter(|(_, lm)| {
                let d = lm.position - origin;
                let dist = d.norm();
                dist <= radius_m
                    && (dist < 1e-9
                        || angle_diff_deg(d.azimuth_deg(), azimuth_deg) <= half_angle_deg)
            })
            .map(|(i, _)| i)
            .collect()
    }

    /// Like [`Self::visible_landmarks`], but additionally requires a clear
    /// line of sight: a landmark is dropped if a ray towards its centre
    /// hits some *other* landmark first (occlusion). Stricter — and more
    /// faithful to what a camera records — than the sector test alone.
    pub fn visible_landmarks_occluded(
        &self,
        origin: Vec2,
        azimuth_deg: f64,
        half_angle_deg: f64,
        radius_m: f64,
    ) -> Vec<usize> {
        self.visible_landmarks(origin, azimuth_deg, half_angle_deg, radius_m)
            .into_iter()
            .filter(|&i| {
                let target = self.landmarks[i];
                let d = target.position - origin;
                let dist = d.norm();
                if dist < 1e-9 {
                    return true; // standing inside it
                }
                match self.raycast(origin, d.azimuth_deg(), radius_m) {
                    // The first thing the ray hits must be the landmark
                    // itself (the hit lands on its near surface).
                    Some(hit) => hit.landmark == i,
                    // Ray misses everything? Numerically possible when the
                    // centre is beyond `radius_m` but the test above let it
                    // through; treat as visible.
                    None => true,
                }
            })
            .collect()
    }

    /// Jaccard similarity of the landmark sets visible from two poses — the
    /// content-based similarity used as ground truth by the accuracy
    /// experiment.
    pub fn content_similarity(
        &self,
        a: (Vec2, f64),
        b: (Vec2, f64),
        half_angle_deg: f64,
        radius_m: f64,
    ) -> f64 {
        let va = self.visible_landmarks(a.0, a.1, half_angle_deg, radius_m);
        let vb = self.visible_landmarks(b.0, b.1, half_angle_deg, radius_m);
        if va.is_empty() && vb.is_empty() {
            return 1.0;
        }
        let set_a: std::collections::HashSet<usize> = va.into_iter().collect();
        let set_b: std::collections::HashSet<usize> = vb.into_iter().collect();
        let inter = set_a.intersection(&set_b).count();
        let union = set_a.union(&set_b).count();
        inter as f64 / union as f64
    }
}

/// Smallest positive ray parameter `t` with `|o + t·d − c| = r`, if any
/// (`d` must be unit length).
fn ray_circle(o: Vec2, d: Vec2, c: Vec2, r: f64) -> Option<f64> {
    let oc = o - c;
    let b = oc.dot(d);
    let disc = b * b - (oc.norm_sq() - r * r);
    if disc < 0.0 {
        return None;
    }
    let sq = disc.sqrt();
    let t1 = -b - sq;
    if t1 > 1e-9 {
        return Some(t1);
    }
    let t2 = -b + sq;
    if t2 > 1e-9 {
        return Some(t2); // origin inside the circle
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    fn single_landmark_world() -> World {
        World::new(vec![Landmark {
            position: Vec2::new(0.0, 50.0),
            radius_m: 5.0,
            height_m: 10.0,
            color: [200, 0, 0],
        }])
    }

    #[test]
    fn raycast_hits_straight_ahead() {
        let w = single_landmark_world();
        let hit = w.raycast(Vec2::ZERO, 0.0, 100.0).unwrap();
        assert_eq!(hit.landmark, 0);
        assert!((hit.distance_m - 45.0).abs() < 1e-9);
    }

    #[test]
    fn raycast_misses_sideways_and_beyond_range() {
        let w = single_landmark_world();
        assert!(w.raycast(Vec2::ZERO, 90.0, 100.0).is_none());
        assert!(w.raycast(Vec2::ZERO, 0.0, 40.0).is_none());
    }

    #[test]
    fn raycast_from_inside_circle_hits_exit() {
        let w = single_landmark_world();
        let hit = w.raycast(Vec2::new(0.0, 50.0), 0.0, 100.0).unwrap();
        assert!((hit.distance_m - 5.0).abs() < 1e-9);
    }

    #[test]
    fn raycast_picks_nearest_of_two() {
        let w = World::new(vec![
            Landmark {
                position: Vec2::new(0.0, 80.0),
                radius_m: 5.0,
                height_m: 10.0,
                color: [0, 0, 0],
            },
            Landmark {
                position: Vec2::new(0.0, 30.0),
                radius_m: 5.0,
                height_m: 10.0,
                color: [0, 0, 0],
            },
        ]);
        let hit = w.raycast(Vec2::ZERO, 0.0, 200.0).unwrap();
        assert_eq!(hit.landmark, 1);
    }

    #[test]
    fn visible_landmarks_respects_sector() {
        let w = single_landmark_world();
        assert_eq!(w.visible_landmarks(Vec2::ZERO, 0.0, 25.0, 100.0), vec![0]);
        // Looking away.
        assert!(w
            .visible_landmarks(Vec2::ZERO, 180.0, 25.0, 100.0)
            .is_empty());
        // Too short a radius.
        assert!(w.visible_landmarks(Vec2::ZERO, 0.0, 25.0, 30.0).is_empty());
    }

    #[test]
    fn occlusion_hides_landmarks_behind_others() {
        // A small blocker directly in front of a big target.
        let w = World::new(vec![
            Landmark {
                position: Vec2::new(0.0, 30.0),
                radius_m: 4.0,
                height_m: 10.0,
                color: [255, 0, 0],
            },
            Landmark {
                position: Vec2::new(0.0, 80.0),
                radius_m: 4.0,
                height_m: 10.0,
                color: [0, 255, 0],
            },
        ]);
        // The plain sector test sees both...
        assert_eq!(
            w.visible_landmarks(Vec2::ZERO, 0.0, 25.0, 100.0),
            vec![0, 1]
        );
        // ...the occlusion-aware test only the blocker.
        assert_eq!(
            w.visible_landmarks_occluded(Vec2::ZERO, 0.0, 25.0, 100.0),
            vec![0]
        );
        // Step aside and both are visible again (bearings from (30, 0)
        // are ~315° and ~339°; aim the camera between them).
        let side = Vec2::new(30.0, 0.0);
        let vis = w.visible_landmarks_occluded(side, 335.0, 25.0, 120.0);
        assert!(vis.contains(&0) && vis.contains(&1), "{vis:?}");
    }

    #[test]
    fn occluded_is_a_subset_of_sector_visibility() {
        let w = World::random_city(9, 200.0, 150);
        for az in [0.0, 90.0, 200.0] {
            let plain = w.visible_landmarks(Vec2::ZERO, az, 25.0, 100.0);
            let strict = w.visible_landmarks_occluded(Vec2::ZERO, az, 25.0, 100.0);
            assert!(strict.iter().all(|i| plain.contains(i)));
        }
    }

    #[test]
    fn content_similarity_extremes() {
        let w = World::random_city(1, 200.0, 100);
        let pose = (Vec2::ZERO, 0.0);
        assert_eq!(w.content_similarity(pose, pose, 25.0, 100.0), 1.0);
        let opposite = (Vec2::ZERO, 180.0);
        let s = w.content_similarity(pose, opposite, 25.0, 100.0);
        assert!(s < 0.2, "opposite views should share little content: {s}");
    }

    #[test]
    fn random_city_is_deterministic() {
        assert_eq!(
            World::random_city(5, 100.0, 50),
            World::random_city(5, 100.0, 50)
        );
        assert_ne!(
            World::random_city(5, 100.0, 50),
            World::random_city(6, 100.0, 50)
        );
    }
}
