//! PPM (portable pixmap) export of rendered frames.
//!
//! Binary `P6` PPM is the simplest self-contained RGB image format; every
//! common viewer and converter reads it. Used by the render-demo example
//! and for eyeballing the synthetic world.

use std::io::{self, Write};

use crate::frame::Frame;

/// Writes a frame as binary PPM (`P6`).
pub fn write_ppm(w: &mut impl Write, frame: &Frame) -> io::Result<()> {
    write!(w, "P6\n{} {}\n255\n", frame.width(), frame.height())?;
    w.write_all(frame.pixels())
}

/// Parses a binary PPM (`P6`) produced by [`write_ppm`].
///
/// Supports the exact subset this crate writes (single whitespace
/// separators, maxval 255); good enough for round-trip tests and reading
/// back our own artifacts.
pub fn read_ppm(data: &[u8]) -> io::Result<Frame> {
    let err = |m: &str| io::Error::new(io::ErrorKind::InvalidData, m.to_string());
    let mut parts = data.splitn(4, |&b| b == b'\n');
    let magic = parts.next().ok_or_else(|| err("missing magic"))?;
    if magic != b"P6" {
        return Err(err("not a P6 PPM"));
    }
    let dims = parts.next().ok_or_else(|| err("missing dimensions"))?;
    let dims = std::str::from_utf8(dims).map_err(|_| err("bad dimension encoding"))?;
    let mut it = dims.split_whitespace();
    let w: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad width"))?;
    let h: usize = it
        .next()
        .and_then(|s| s.parse().ok())
        .ok_or_else(|| err("bad height"))?;
    let maxval = parts.next().ok_or_else(|| err("missing maxval"))?;
    if maxval != b"255" {
        return Err(err("unsupported maxval"));
    }
    let pixels = parts.next().ok_or_else(|| err("missing pixel data"))?;
    if pixels.len() != w * h * 3 {
        return Err(err("pixel payload size mismatch"));
    }
    let mut frame = Frame::new(w, h);
    frame.pixels_mut().copy_from_slice(pixels);
    Ok(frame)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip() {
        let mut f = Frame::new(5, 3);
        f.set(0, 0, [255, 0, 0]);
        f.set(4, 2, [0, 255, 128]);
        let mut buf = Vec::new();
        write_ppm(&mut buf, &f).unwrap();
        let back = read_ppm(&buf).unwrap();
        assert_eq!(back, f);
    }

    #[test]
    fn header_is_canonical() {
        let f = Frame::new(2, 2);
        let mut buf = Vec::new();
        write_ppm(&mut buf, &f).unwrap();
        assert!(buf.starts_with(b"P6\n2 2\n255\n"));
        assert_eq!(buf.len(), 11 + 12);
    }

    #[test]
    fn rejects_garbage() {
        assert!(read_ppm(b"P5\n2 2\n255\n....").is_err());
        assert!(read_ppm(b"P6\n2 2\n255\nxx").is_err()); // short payload
        assert!(read_ppm(b"").is_err());
    }
}
