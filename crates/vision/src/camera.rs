//! Ray-casting column renderer.
//!
//! Produces real RGB frame buffers from a camera pose: one ray per pixel
//! column, perspective-scaled landmark sprites, world-anchored surface
//! stripes (so frame differencing sees texture move), sky and ground
//! gradients. Per-pixel cost scales with resolution — the property the
//! paper's segmentation-cost experiment (Fig. 6(a)) depends on.

use swag_geo::Vec2;

use crate::frame::{Frame, Resolution};
use crate::world::World;

/// Camera height above ground, metres (controls how far object bases dip
/// below the horizon).
const CAMERA_HEIGHT_M: f64 = 1.7;

/// Deterministic brightness for a world-space texture cell: aperiodic, so
/// camera motion never re-aligns the texture with a previous frame.
#[inline]
fn cell_brightness(cx: i64, cy: i64) -> f64 {
    let mut h = (cx as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15)
        ^ (cy as u64).wrapping_mul(0xc2b2_ae3d_27d4_eb4f);
    h ^= h >> 33;
    h = h.wrapping_mul(0xff51_afd7_ed55_8ccd);
    h ^= h >> 33;
    // Map to [0.65, 1.0].
    0.65 + 0.35 * (h % 1024) as f64 / 1023.0
}

/// What one pixel column sees.
#[derive(Debug, Clone, Copy)]
struct ColumnSample {
    /// Hit colour after distance shading and world-anchored striping.
    color: Option<[u8; 3]>,
    /// Rows [top, bottom) covered by the hit object, in pixels.
    top: usize,
    bottom: usize,
    /// First row of the distant skyline backdrop (azimuth-dependent,
    /// parallax-free), ending at the horizon.
    skyline_top: usize,
    /// Unit direction of this column's ray (for ground-plane texturing).
    dir: Vec2,
}

/// Shared per-frame context handed to the row-filling workers.
#[derive(Debug, Clone, Copy)]
struct FrameCtx {
    horizon: usize,
    focal: f64,
    position: Vec2,
    max_dist_m: f64,
}

/// Renders frames of a [`World`] from camera poses.
#[derive(Debug, Clone)]
pub struct Renderer<'w> {
    world: &'w World,
    half_angle_deg: f64,
    max_dist_m: f64,
}

impl<'w> Renderer<'w> {
    /// Creates a renderer with the camera's half viewing angle `α` and
    /// maximum render distance (the radius of view `R`).
    pub fn new(world: &'w World, half_angle_deg: f64, max_dist_m: f64) -> Self {
        assert!(half_angle_deg > 0.0 && half_angle_deg < 90.0);
        assert!(max_dist_m > 0.0);
        Renderer {
            world,
            half_angle_deg,
            max_dist_m,
        }
    }

    /// Renders one frame sequentially.
    pub fn render(&self, position: Vec2, azimuth_deg: f64, res: Resolution) -> Frame {
        let (w, h) = res.dims();
        let mut frame = Frame::new(w, h);
        let cols = self.sample_columns(position, azimuth_deg, w, h);
        let ctx = self.frame_ctx(position, h);
        fill_rows(frame.pixels_mut(), 0, h, w, ctx, &cols);
        frame
    }

    fn frame_ctx(&self, position: Vec2, h: usize) -> FrameCtx {
        FrameCtx {
            horizon: h / 2,
            focal: h as f64 * 0.8,
            position,
            max_dist_m: self.max_dist_m,
        }
    }

    /// Renders one frame using `threads` worker threads over row bands
    /// (crossbeam scoped threads; falls back to sequential for 1).
    pub fn render_par(
        &self,
        position: Vec2,
        azimuth_deg: f64,
        res: Resolution,
        threads: usize,
    ) -> Frame {
        if threads <= 1 {
            return self.render(position, azimuth_deg, res);
        }
        let (w, h) = res.dims();
        let mut frame = Frame::new(w, h);
        let cols = self.sample_columns(position, azimuth_deg, w, h);
        let ctx = self.frame_ctx(position, h);
        let rows_per_band = h.div_ceil(threads);
        let band_bytes = rows_per_band * w * 3;
        let width = w;
        let cols_ref = &cols;
        crossbeam::thread::scope(|s| {
            for (band, chunk) in frame.pixels_mut().chunks_mut(band_bytes).enumerate() {
                s.spawn(move |_| {
                    let y0 = band * rows_per_band;
                    let y1 = (y0 + chunk.len() / (width * 3)).min(h);
                    fill_rows(chunk, y0, y1, width, ctx, cols_ref);
                });
            }
        })
        .expect("render worker panicked");
        frame
    }

    /// Renders a whole pose sequence (a video) sequentially.
    pub fn render_trace(&self, poses: &[(Vec2, f64)], res: Resolution) -> Vec<Frame> {
        poses
            .iter()
            .map(|&(p, az)| self.render(p, az, res))
            .collect()
    }

    /// Renders a pose sequence with `threads` workers, one frame per task
    /// (crossbeam scoped threads over chunks). Output order matches input.
    pub fn render_trace_par(
        &self,
        poses: &[(Vec2, f64)],
        res: Resolution,
        threads: usize,
    ) -> Vec<Frame> {
        let threads = threads.max(1);
        if threads == 1 || poses.len() < 2 {
            return self.render_trace(poses, res);
        }
        let (w, h) = res.dims();
        let mut frames: Vec<Frame> = (0..poses.len()).map(|_| Frame::new(w, h)).collect();
        let chunk = poses.len().div_ceil(threads);
        crossbeam::thread::scope(|s| {
            for (ps, out) in poses.chunks(chunk).zip(frames.chunks_mut(chunk)) {
                s.spawn(move |_| {
                    for (&(p, az), slot) in ps.iter().zip(out.iter_mut()) {
                        *slot = self.render(p, az, res);
                    }
                });
            }
        })
        .expect("render worker panicked");
        frames
    }

    /// One ray cast per column; precomputes shading and vertical extents.
    fn sample_columns(
        &self,
        position: Vec2,
        azimuth_deg: f64,
        w: usize,
        h: usize,
    ) -> Vec<ColumnSample> {
        let horizon = h / 2;
        // Vertical focal length in pixels: a landmark of height `x` metres
        // at distance `d` spans `focal · x / d` pixels above the horizon.
        let focal = h as f64 * 0.8;
        (0..w)
            .map(|x| {
                // Column azimuth spans [θ − α, θ + α].
                let frac = (x as f64 + 0.5) / w as f64;
                let az = azimuth_deg + self.half_angle_deg * (2.0 * frac - 1.0);
                // Distant skyline: a smooth pseudo-random ridge profile as
                // a function of absolute azimuth. Being at infinity it
                // rotates with the camera but shows no parallax under
                // translation — exactly how a real city backdrop behaves.
                let azr = az.to_radians();
                let ridge = 0.16
                    + 0.09 * (3.0 * azr).sin()
                    + 0.05 * (7.0 * azr + 1.3).sin()
                    + 0.03 * (13.0 * azr + 4.1).sin();
                let skyline_top = horizon - ((ridge.max(0.02)) * h as f64) as usize;
                let dir = Vec2::from_azimuth_deg(az);
                match self.world.raycast(position, az, self.max_dist_m) {
                    None => ColumnSample {
                        color: None,
                        top: horizon,
                        bottom: horizon,
                        skyline_top,
                        dir,
                    },
                    Some(hit) => {
                        let lm = self.world.landmarks()[hit.landmark];
                        let dist = hit.distance_m.max(1.0);
                        let above = (focal * lm.height_m / dist).round() as usize;
                        let below = (focal * CAMERA_HEIGHT_M / dist).round() as usize;
                        let top = horizon.saturating_sub(above);
                        let bottom = (horizon + below).min(h);

                        // Distance shading.
                        let shade = (1.0 - dist / (self.max_dist_m * 1.2)).clamp(0.2, 1.0);
                        // World-anchored stripe texture: brightness bands
                        // fixed to the surface point, so they move across
                        // the image as the camera moves.
                        let hit_point = position + Vec2::from_azimuth_deg(az) * hit.distance_m;
                        let tex = cell_brightness(
                            (hit_point.x * 1.5).floor() as i64,
                            (hit_point.y * 1.5).floor() as i64,
                        );
                        let scale = shade * tex;
                        let color = [
                            (f64::from(lm.color[0]) * scale) as u8,
                            (f64::from(lm.color[1]) * scale) as u8,
                            (f64::from(lm.color[2]) * scale) as u8,
                        ];
                        ColumnSample {
                            color: Some(color),
                            top,
                            bottom,
                            skyline_top,
                            dir,
                        }
                    }
                }
            })
            .collect()
    }
}

/// Fills rows `[y0, y1)` of a pixel buffer from the column samples.
fn fill_rows(
    buf: &mut [u8],
    y0: usize,
    y1: usize,
    width: usize,
    ctx: FrameCtx,
    cols: &[ColumnSample],
) {
    for y in y0..y1 {
        let row = &mut buf[(y - y0) * width * 3..(y - y0 + 1) * width * 3];
        for (x, col) in cols.iter().enumerate() {
            let rgb = if let (Some(c), true) = (col.color, y >= col.top && y < col.bottom) {
                c
            } else if y >= col.skyline_top && y < ctx.horizon {
                // Distant ridge, hazier towards the horizon.
                let t =
                    (y - col.skyline_top) as f64 / (ctx.horizon - col.skyline_top).max(1) as f64;
                [
                    (60.0 + 50.0 * t) as u8,
                    (70.0 + 60.0 * t) as u8,
                    (95.0 + 65.0 * t) as u8,
                ]
            } else {
                background(y, ctx, col)
            };
            let i = x * 3;
            row[i] = rgb[0];
            row[i + 1] = rgb[1];
            row[i + 2] = rgb[2];
        }
    }
}

/// Sky above the horizon; world-anchored textured ground below.
#[inline]
fn background(y: usize, ctx: FrameCtx, col: &ColumnSample) -> [u8; 3] {
    if y < ctx.horizon {
        // Sky: darker at the top.
        let t = y as f64 / ctx.horizon.max(1) as f64;
        [
            (90.0 + 60.0 * t) as u8,
            (140.0 + 60.0 * t) as u8,
            (200.0 + 40.0 * t) as u8,
        ]
    } else {
        // Ground plane: invert the perspective projection to find the
        // world point this pixel shows, then apply a world-anchored
        // pavement texture. This makes the ground — like real footage —
        // change under both rotation and translation.
        let drop = (y - ctx.horizon).max(1) as f64;
        let dist = (ctx.focal * CAMERA_HEIGHT_M / drop).min(ctx.max_dist_m * 4.0);
        let point = ctx.position + col.dir * dist;
        let tex = cell_brightness(
            (point.x * 0.8).floor() as i64,
            (point.y * 0.8).floor() as i64,
        );
        // Haze: darker towards the horizon (large dist).
        let t = (1.0 - dist / (ctx.max_dist_m * 4.0)).clamp(0.3, 1.0);
        let g = (50.0 + 75.0 * t) * tex;
        [g as u8, g as u8, (g * 0.9) as u8]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::world::{Landmark, World};

    fn world() -> World {
        World::new(vec![Landmark {
            position: Vec2::new(0.0, 40.0),
            radius_m: 6.0,
            height_m: 15.0,
            color: [200, 40, 40],
        }])
    }

    #[test]
    fn landmark_appears_in_center_of_frame() {
        let w = world();
        let r = Renderer::new(&w, 25.0, 100.0);
        let f = r.render(Vec2::ZERO, 0.0, Resolution::P240);
        let (fw, fh) = Resolution::P240.dims();
        // Centre pixel shows the (shaded) red landmark.
        let c = f.get(fw / 2, fh / 2);
        assert!(c[0] > c[1] && c[0] > c[2], "centre pixel {c:?} not reddish");
        // A corner pixel is sky.
        let sky = f.get(0, 0);
        assert!(sky[2] > sky[0], "corner {sky:?} not sky-ish");
    }

    #[test]
    fn looking_away_shows_no_landmark() {
        let w = world();
        let r = Renderer::new(&w, 25.0, 100.0);
        let f = r.render(Vec2::ZERO, 180.0, Resolution::P240);
        let (fw, fh) = Resolution::P240.dims();
        let c = f.get(fw / 2, fh / 2);
        // Horizon row when empty shows ground/sky, not red.
        assert!(!(c[0] > 150 && c[1] < 100), "unexpected landmark {c:?}");
    }

    #[test]
    fn parallel_render_matches_sequential() {
        let w = World::random_city(3, 300.0, 60);
        let r = Renderer::new(&w, 25.0, 150.0);
        for threads in [2, 3, 8] {
            let seq = r.render(Vec2::new(5.0, -3.0), 72.0, Resolution::P360);
            let par = r.render_par(Vec2::new(5.0, -3.0), 72.0, Resolution::P360, threads);
            assert_eq!(seq, par, "threads = {threads}");
        }
    }

    #[test]
    fn closer_objects_appear_larger() {
        let w = world();
        let r = Renderer::new(&w, 25.0, 200.0);
        let near = r.render(Vec2::new(0.0, 10.0), 0.0, Resolution::P240);
        let far = r.render(Vec2::new(0.0, -40.0), 0.0, Resolution::P240);
        let count_red = |f: &Frame| {
            let mut n = 0;
            for y in 0..f.height() {
                for x in 0..f.width() {
                    let c = f.get(x, y);
                    if c[0] > c[1] + 20 && c[0] > c[2] + 20 {
                        n += 1;
                    }
                }
            }
            n
        };
        assert!(count_red(&near) > 2 * count_red(&far));
    }

    #[test]
    fn render_trace_length() {
        let w = world();
        let r = Renderer::new(&w, 25.0, 100.0);
        let poses: Vec<(Vec2, f64)> = (0..5).map(|i| (Vec2::ZERO, f64::from(i) * 10.0)).collect();
        assert_eq!(r.render_trace(&poses, Resolution::P240).len(), 5);
    }

    #[test]
    fn parallel_trace_matches_sequential() {
        let w = World::random_city(4, 200.0, 80);
        let r = Renderer::new(&w, 25.0, 120.0);
        let poses: Vec<(Vec2, f64)> = (0..9)
            .map(|i| (Vec2::new(f64::from(i), 0.0), f64::from(i) * 7.0))
            .collect();
        let seq = r.render_trace(&poses, Resolution::P240);
        for threads in [2, 4] {
            assert_eq!(r.render_trace_par(&poses, Resolution::P240, threads), seq);
        }
    }

    #[test]
    fn rendering_is_deterministic() {
        let w = World::random_city(9, 200.0, 40);
        let r = Renderer::new(&w, 25.0, 120.0);
        let a = r.render(Vec2::new(1.0, 2.0), 33.0, Resolution::P240);
        let b = r.render(Vec2::new(1.0, 2.0), 33.0, Resolution::P240);
        assert_eq!(a, b);
    }
}
