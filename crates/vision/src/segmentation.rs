//! CV-based video segmentation — the content-based baseline the paper's
//! Fig. 6(a) compares against.
//!
//! Mirrors the structure of the paper's Algorithm 1 exactly, but with
//! frame-differencing similarity instead of FoV similarity: the video is
//! cut whenever the current frame's pixel similarity to the segment's
//! anchor frame drops below the threshold. Identical control flow means
//! the measured cost difference is purely the descriptor's.

use crate::diff::frame_diff_similarity;
use crate::frame::Frame;

/// A CV-detected segment: frame index range `[start, end]` (inclusive).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CvSegment {
    /// Index of the first frame.
    pub start: usize,
    /// Index of the last frame.
    pub end: usize,
}

impl CvSegment {
    /// Number of frames.
    pub fn len(&self) -> usize {
        self.end - self.start + 1
    }

    /// Always false: segments contain at least one frame.
    pub fn is_empty(&self) -> bool {
        false
    }
}

/// Segments a frame sequence by anchor-frame differencing (Algorithm 1
/// with CV similarity). Returns an empty vector for an empty input.
pub fn cv_segment_video(frames: &[Frame], thresh: f64) -> Vec<CvSegment> {
    let mut out = Vec::new();
    if frames.is_empty() {
        return out;
    }
    let mut start = 0usize;
    for i in 1..frames.len() {
        if frame_diff_similarity(&frames[start], &frames[i]) < thresh {
            out.push(CvSegment { start, end: i - 1 });
            start = i;
        }
    }
    out.push(CvSegment {
        start,
        end: frames.len() - 1,
    });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn solid(rgb: [u8; 3]) -> Frame {
        let mut f = Frame::new(16, 16);
        for y in 0..16 {
            for x in 0..16 {
                f.set(x, y, rgb);
            }
        }
        f
    }

    #[test]
    fn empty_input() {
        assert!(cv_segment_video(&[], 0.5).is_empty());
    }

    #[test]
    fn constant_video_is_one_segment() {
        let frames = vec![solid([100, 100, 100]); 20];
        let segs = cv_segment_video(&frames, 0.99);
        assert_eq!(segs, vec![CvSegment { start: 0, end: 19 }]);
        assert_eq!(segs[0].len(), 20);
    }

    #[test]
    fn scene_change_cuts() {
        let mut frames = vec![solid([0, 0, 0]); 10];
        frames.extend(vec![solid([255, 255, 255]); 10]);
        let segs = cv_segment_video(&frames, 0.5);
        assert_eq!(
            segs,
            vec![
                CvSegment { start: 0, end: 9 },
                CvSegment { start: 10, end: 19 }
            ]
        );
    }

    #[test]
    fn segments_partition_frames() {
        // Gradually brightening video with an abrupt jump in the middle.
        let mut frames: Vec<Frame> = (0..30u8).map(|i| solid([i * 2, i * 2, i * 2])).collect();
        frames[15] = solid([255, 0, 0]);
        let segs = cv_segment_video(&frames, 0.8);
        assert_eq!(segs[0].start, 0);
        assert_eq!(segs.last().unwrap().end, 29);
        for w in segs.windows(2) {
            assert_eq!(w[0].end + 1, w[1].start);
        }
        let total: usize = segs.iter().map(CvSegment::len).sum();
        assert_eq!(total, 30);
    }

    #[test]
    fn threshold_zero_never_cuts() {
        let mut frames = vec![solid([0, 0, 0]); 5];
        frames.push(solid([255, 255, 255]));
        assert_eq!(cv_segment_video(&frames, 0.0).len(), 1);
    }
}
