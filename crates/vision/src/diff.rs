//! Frame differencing — the paper's representative CV similarity (§VI-B-1).
//!
//! The similarity of two frames is `1 − mean(|a − b|)/255` over all RGB
//! bytes: identical frames score 1, inverted frames score 0. The cost is
//! linear in the pixel count, which is what makes content-based comparison
//! three orders of magnitude slower than FoV comparison at video
//! resolutions.

use crate::frame::Frame;

/// Normalised frame-differencing similarity in `[0, 1]`.
///
/// # Panics
/// Panics if the frames have different dimensions.
pub fn frame_diff_similarity(a: &Frame, b: &Frame) -> f64 {
    assert_eq!(
        (a.width(), a.height()),
        (b.width(), b.height()),
        "frame dimensions differ"
    );
    let pa = a.pixels();
    let pb = b.pixels();
    // Accumulate in u64; 255 · len fits easily.
    let total: u64 = pa
        .iter()
        .zip(pb)
        .map(|(&x, &y)| u64::from(x.abs_diff(y)))
        .sum();
    1.0 - total as f64 / (pa.len() as f64 * 255.0)
}

/// Mean absolute per-byte difference in `[0, 255]` (the raw distance, for
/// diagnostics).
pub fn mean_abs_diff(a: &Frame, b: &Frame) -> f64 {
    255.0 * (1.0 - frame_diff_similarity(a, b))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identical_frames_score_one() {
        let mut f = Frame::new(8, 8);
        f.set(3, 3, [10, 200, 30]);
        assert_eq!(frame_diff_similarity(&f, &f), 1.0);
    }

    #[test]
    fn opposite_frames_score_zero() {
        let w = Frame::new(4, 4);
        let mut b = Frame::new(4, 4);
        for y in 0..4 {
            for x in 0..4 {
                b.set(x, y, [255, 255, 255]);
            }
        }
        assert_eq!(frame_diff_similarity(&w, &b), 0.0);
    }

    #[test]
    fn similarity_is_symmetric_and_bounded() {
        let mut a = Frame::new(6, 6);
        let mut b = Frame::new(6, 6);
        for i in 0..6 {
            a.set(i, i, [100, 50, 25]);
            b.set(i, 5 - i, [25, 50, 100]);
        }
        let s1 = frame_diff_similarity(&a, &b);
        let s2 = frame_diff_similarity(&b, &a);
        assert_eq!(s1, s2);
        assert!((0.0..=1.0).contains(&s1));
        assert!(s1 < 1.0);
    }

    #[test]
    fn mean_abs_diff_matches() {
        let a = Frame::new(2, 2);
        let mut b = Frame::new(2, 2);
        for y in 0..2 {
            for x in 0..2 {
                b.set(x, y, [51, 51, 51]);
            }
        }
        assert!((mean_abs_diff(&a, &b) - 51.0).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "dimensions differ")]
    fn mismatched_sizes_panic() {
        frame_diff_similarity(&Frame::new(2, 2), &Frame::new(3, 2));
    }
}
