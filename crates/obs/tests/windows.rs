//! Windowed-metrics laws: the rotation/merge commutation the module doc
//! promises, plus deterministic window-boundary behaviour on a manual
//! clock.

use std::sync::Arc;

use proptest::prelude::*;
use swag_obs::{
    labeled_name, Histogram, ManualClock, MetricWindows, Registry, Sample, WindowRing, WindowSpec,
};

/// Values spanning many log₂ buckets, including zero and huge outliers.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..16).boxed(),
            (0u64..100_000).boxed(),
            (0u64..(1u64 << 50)).boxed(),
        ],
        0..60,
    )
}

/// Up to four recording phases, each a batch of values.
fn arb_phases() -> impl Strategy<Value = Vec<Vec<u64>>> {
    prop::collection::vec(arb_values(), 1..4)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Rotating after every phase and merging the windows equals merging
    /// the phases and rotating once: `Δ(c₀,c₁) ⊕ Δ(c₁,c₂) … == Δ(c₀,cₙ)`.
    /// This is what lets per-shard rings combine like per-shard
    /// snapshots.
    #[test]
    fn rotate_then_merge_equals_merge_then_rotate(phases in arb_phases()) {
        let n = phases.len() as u64;
        let h = Histogram::new();

        // Rotate-then-merge: one window per phase.
        let mut fine = WindowRing::new(phases.len(), Sample::Histogram(h.snapshot()));
        // Merge-then-rotate: one window over all phases.
        let mut coarse = WindowRing::new(1, Sample::Histogram(h.snapshot()));

        for (i, phase) in phases.iter().enumerate() {
            for &v in phase {
                h.record(v);
            }
            let t = (i as u64 + 1) * 10;
            fine.rotate(t - 10, t, Sample::Histogram(h.snapshot()));
        }
        coarse.rotate(0, n * 10, Sample::Histogram(h.snapshot()));

        let fine_view = fine.merged(usize::MAX).unwrap();
        let coarse_view = coarse.merged(usize::MAX).unwrap();
        prop_assert_eq!(fine_view.sample, coarse_view.sample);
        prop_assert_eq!(fine_view.span_micros, coarse_view.span_micros);
    }

    /// Counter rings obey the same law: window deltas sum to the total.
    #[test]
    fn counter_windows_sum_to_total_delta(increments in prop::collection::vec(0u64..1_000, 1..8)) {
        let mut ring = WindowRing::new(increments.len(), Sample::Counter(0));
        let mut cumulative = 0u64;
        for (i, inc) in increments.iter().enumerate() {
            cumulative += inc;
            let t = (i as u64 + 1) * 10;
            ring.rotate(t - 10, t, Sample::Counter(cumulative));
        }
        prop_assert_eq!(
            ring.merged(usize::MAX).unwrap().sample,
            Sample::Counter(increments.iter().sum())
        );
    }

    /// Two metrics windowed over shared boundaries merge exactly like
    /// one metric that recorded both streams.
    #[test]
    fn per_ring_views_combine_like_merged_streams(a in arb_phases(), b in arb_phases()) {
        let (ha, hb, hboth) = (Histogram::new(), Histogram::new(), Histogram::new());
        let mut ring_a = WindowRing::new(8, Sample::Histogram(ha.snapshot()));
        let mut ring_b = WindowRing::new(8, Sample::Histogram(hb.snapshot()));
        let mut ring_both = WindowRing::new(8, Sample::Histogram(hboth.snapshot()));
        let rounds = a.len().max(b.len());
        for i in 0..rounds {
            for &v in a.get(i).map_or(&[][..], Vec::as_slice) {
                ha.record(v);
                hboth.record(v);
            }
            for &v in b.get(i).map_or(&[][..], Vec::as_slice) {
                hb.record(v);
                hboth.record(v);
            }
            let t = (i as u64 + 1) * 10;
            ring_a.rotate(t - 10, t, Sample::Histogram(ha.snapshot()));
            ring_b.rotate(t - 10, t, Sample::Histogram(hb.snapshot()));
            ring_both.rotate(t - 10, t, Sample::Histogram(hboth.snapshot()));
        }
        let merged = ring_a
            .merged(usize::MAX)
            .unwrap()
            .sample
            .histogram()
            .unwrap()
            .merge(ring_b.merged(usize::MAX).unwrap().sample.histogram().unwrap());
        let direct = ring_both.merged(usize::MAX).unwrap();
        prop_assert_eq!(&merged, direct.sample.histogram().unwrap());
    }
}

#[test]
fn boundaries_are_exact_on_a_manual_clock() {
    let clock = Arc::new(ManualClock::new());
    let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 3));
    let reg = Registry::new();
    let c = reg.counter("swag_ticks_total");

    // Strictly inside the first window: no rotation, however often asked.
    for _ in 0..10 {
        assert!(!windows.maybe_rotate(&reg));
    }
    clock.advance_micros(999);
    assert!(!windows.maybe_rotate(&reg));

    // Exactly on the boundary: rotates once (baselining the counter).
    clock.advance_micros(1);
    assert!(windows.maybe_rotate(&reg));
    assert!(!windows.maybe_rotate(&reg));

    // Three more boundaries; each window sees its own increments.
    for round in 1u64..=3 {
        c.add(round);
        clock.advance_micros(1_000);
        assert!(windows.maybe_rotate(&reg));
    }
    assert_eq!(windows.rotations(), 4);
    let all = windows.view("swag_ticks_total", usize::MAX).unwrap();
    assert_eq!(all.windows, 3);
    assert_eq!(all.sample, Sample::Counter(1 + 2 + 3));
    assert_eq!(all.span_micros, 3_000);
    // Last-N views subset from the newest edge.
    let newest = windows.view("swag_ticks_total", 1).unwrap();
    assert_eq!(newest.sample, Sample::Counter(3));
    assert_eq!(newest.span_micros, 1_000);
}

#[test]
fn capacity_evicts_oldest_windows_registry_wide() {
    let clock = Arc::new(ManualClock::new());
    let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 2));
    let reg = Registry::new();
    let c = reg.counter("swag_ticks_total");
    clock.advance_micros(1_000);
    windows.maybe_rotate(&reg); // baseline
    for round in [100u64, 10, 1] {
        c.add(round);
        clock.advance_micros(1_000);
        assert!(windows.maybe_rotate(&reg));
    }
    // Capacity 2: the 100-burst window aged out.
    let view = windows.view("swag_ticks_total", usize::MAX).unwrap();
    assert_eq!(view.windows, 2);
    assert_eq!(view.sample, Sample::Counter(11));
}

#[test]
fn labeled_families_window_independently_and_export_quantiles() {
    let clock = Arc::new(ManualClock::new());
    let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 4));
    let reg = Registry::new();
    let fast = reg.histogram(&labeled_name("swag_op_micros", &[("op", "index_scan")]));
    let slow = reg.histogram(&labeled_name("swag_op_micros", &[("op", "ranking")]));
    clock.advance_micros(1_000);
    windows.rotate_now(&reg); // baseline both families
    for _ in 0..100 {
        fast.record(10);
        slow.record(4_000);
    }
    clock.advance_micros(1_000);
    windows.rotate_now(&reg);
    windows.export_gauges(&reg);

    let p99_fast = reg.gauge("swag_op_micros_w_p99{op=\"index_scan\"}").get();
    let p99_slow = reg.gauge("swag_op_micros_w_p99{op=\"ranking\"}").get();
    assert!(p99_fast <= 15, "fast family p99 {p99_fast}");
    assert!(p99_slow >= 2_048, "slow family p99 {p99_slow}");

    // The exported gauges are real registry members: a Prometheus render
    // carries them, spliced with the family's labels.
    let text = reg.render_prometheus();
    assert!(
        text.contains("swag_op_micros_w_p99{op=\"index_scan\"}"),
        "{text}"
    );
    assert!(
        text.contains("swag_op_micros_w_p99{op=\"ranking\"}"),
        "{text}"
    );
}
