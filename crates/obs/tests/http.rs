//! Integration test of the embedded ops endpoint: a real [`OpsSurface`]
//! served over a real TCP socket, scraped with a hand-rolled HTTP client,
//! and the `/metrics` body checked against the Prometheus text
//! exposition rules (single HELP/TYPE per family, headers before series,
//! label escaping preserved, histogram bucket/sum/count triplets).

use std::collections::HashSet;
use std::io::{Read as _, Write as _};
use std::net::TcpStream;
use std::sync::Arc;

use swag_obs::{labeled_name, ManualClock, OpsSurface, Registry, SloSpec, WindowSpec};

/// One blocking HTTP/1.0 GET; returns (status line, headers, body).
fn get_full(addr: &str, path: &str) -> (String, Vec<String>, String) {
    let mut stream = TcpStream::connect(addr).expect("connect");
    write!(stream, "GET {path} HTTP/1.0\r\nHost: test\r\n\r\n").expect("send");
    let mut raw = String::new();
    stream.read_to_string(&mut raw).expect("read");
    let (head, body) = raw.split_once("\r\n\r\n").expect("header/body split");
    let mut lines = head.lines();
    let status = lines.next().unwrap_or_default().to_string();
    (
        status,
        lines.map(str::to_string).collect(),
        body.to_string(),
    )
}

/// [`get_full`] without the headers.
fn get(addr: &str, path: &str) -> (String, String) {
    let (status, _, body) = get_full(addr, path);
    (status, body)
}

/// The value of `name:` among response headers (case-insensitive name).
fn header<'a>(headers: &'a [String], name: &str) -> &'a str {
    headers
        .iter()
        .find_map(|h| {
            let (k, v) = h.split_once(':')?;
            k.eq_ignore_ascii_case(name).then(|| v.trim())
        })
        .unwrap_or_else(|| panic!("missing header {name}: {headers:?}"))
}

/// Builds a surface with labeled histograms (one value deliberately
/// nasty), counters, an SLO, and two closed windows of traffic.
fn surface_with_traffic() -> (Arc<OpsSurface>, Arc<ManualClock>) {
    let registry = Arc::new(Registry::new());
    let clock = Arc::new(ManualClock::new());
    let surface = Arc::new(OpsSurface::new(
        registry.clone(),
        clock.clone(),
        WindowSpec::new(1_000, 4),
    ));
    surface.add_slo(SloSpec::latency("query", "swag_query_micros", 1_000, 0.99));

    let reg = surface.registry();
    reg.set_help("swag_query_micros", "End-to-end query latency.");
    reg.set_help("swag_op_micros", "Per-operator wall time.");
    let q = reg.histogram("swag_query_micros");
    let scan = reg.histogram(&labeled_name("swag_op_micros", &[("op", "index_scan")]));
    let nasty = reg.counter(&labeled_name(
        "swag_hits_total",
        &[("src", "de\"lta\\n\npath")],
    ));
    clock.advance_micros(1_000);
    surface.refresh(true); // baseline
    for i in 0..200u64 {
        q.record(10 + i % 7);
        scan.record(3 + i % 5);
        nasty.inc();
    }
    clock.advance_micros(1_000);
    surface.refresh(true); // first closed window + exports
    (surface, clock)
}

/// Checks Prometheus text-format structure: every series line belongs to
/// a family whose `# TYPE` header appeared first, HELP/TYPE appear at
/// most once per family, histogram families expose bucket/sum/count.
fn assert_valid_exposition(body: &str) {
    let mut helped: HashSet<&str> = HashSet::new();
    let mut typed: HashSet<&str> = HashSet::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# HELP ") {
            let fam = rest.split(' ').next().expect("family after HELP");
            assert!(helped.insert(fam), "duplicate HELP for {fam}:\n{body}");
            assert!(!typed.contains(fam), "HELP after TYPE for {fam}");
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split(' ');
            let fam = parts.next().expect("family after TYPE");
            let kind = parts.next().expect("kind after family");
            assert!(
                ["counter", "gauge", "histogram"].contains(&kind),
                "bad TYPE kind {kind}"
            );
            assert!(typed.insert(fam), "duplicate TYPE for {fam}:\n{body}");
            continue;
        }
        assert!(!line.starts_with('#'), "unknown comment line {line:?}");
        // A series line: `name value` or `name{labels} value`.
        let name_end = line.find('{').unwrap_or_else(|| {
            line.find(' ')
                .unwrap_or_else(|| panic!("no value on {line:?}"))
        });
        let name = &line[..name_end];
        let family = name
            .strip_suffix("_bucket")
            .or_else(|| name.strip_suffix("_sum"))
            .or_else(|| name.strip_suffix("_count"))
            .filter(|f| typed.contains(f))
            .unwrap_or(name);
        assert!(
            typed.contains(family),
            "series {name} precedes its TYPE header:\n{body}"
        );
        let value = line.rsplit(' ').next().expect("value field");
        assert!(
            value.parse::<f64>().is_ok() || value == "+Inf",
            "unparseable sample value {value:?} on {line:?}"
        );
    }
    assert!(!typed.is_empty(), "no families rendered");
}

#[test]
fn metrics_endpoint_serves_valid_prometheus_exposition() {
    let (surface, _clock) = surface_with_traffic();
    let server = surface.serve("127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    let (status, headers, body) = get_full(&addr, "/metrics");
    assert!(status.contains("200"), "{status}");
    // Prometheus scrapers negotiate on the exposition-format version.
    assert_eq!(
        header(&headers, "Content-Type"),
        "text/plain; version=0.0.4; charset=utf-8"
    );
    assert_valid_exposition(&body);

    // Histogram triplets under one family header.
    assert_eq!(
        body.matches("# TYPE swag_query_micros histogram").count(),
        1
    );
    assert!(body.contains("swag_query_micros_bucket{le=\"+Inf\"} 200"));
    assert!(body.contains("swag_query_micros_count 200"));
    // Labeled family: le spliced after the base labels.
    assert!(body.contains("swag_op_micros_bucket{op=\"index_scan\",le=\"+Inf\"} 200"));
    // HELP text made it through.
    assert!(body.contains("# HELP swag_query_micros End-to-end query latency."));
    // The nasty label value survives exactly as escaped at registration.
    assert!(
        body.contains("swag_hits_total{src=\"de\\\"lta\\\\n\\npath\"} 200"),
        "escaping mangled:\n{body}"
    );
    // Windowed exports rode along as gauges.
    assert!(body.contains("swag_query_micros_w_p99"), "{body}");
    // SLO gauges are exported with state and burn.
    assert!(body.contains("swag_slo_state{slo=\"query\"} 0"), "{body}");
}

#[test]
fn vars_slo_and_healthz_routes_respond() {
    let (surface, _clock) = surface_with_traffic();
    let server = surface.serve("127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    let (status, headers, body) = get_full(&addr, "/vars");
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        header(&headers, "Content-Type"),
        "application/json; charset=utf-8"
    );
    assert!(body.trim_start().starts_with('{'), "{body}");
    assert!(body.contains("swag_query_micros"), "{body}");

    let (status, body) = get(&addr, "/slo");
    assert!(status.contains("200"), "{status}");
    assert!(body.contains("\"slo\":\"query\""), "{body}");
    assert!(body.contains("\"state\":\"ok\""), "{body}");

    let (status, headers, body) = get_full(&addr, "/healthz");
    assert!(status.contains("200"), "{status}");
    assert_eq!(
        header(&headers, "Content-Type"),
        "text/plain; charset=utf-8"
    );
    assert!(body.starts_with("ok uptime_micros="), "{body}");

    let (status, _) = get(&addr, "/nope");
    assert!(status.contains("404"), "{status}");

    // Query strings are routing-transparent.
    let (status, _) = get(&addr, "/metrics?format=text");
    assert!(status.contains("200"), "{status}");
}

#[test]
fn scrapes_rotate_windows_on_schedule() {
    let (surface, clock) = surface_with_traffic();
    let server = surface.serve("127.0.0.1:0").expect("bind");
    let addr = server.addr().to_string();

    let before = surface.windows().rotations();
    // Same window: a scrape must not rotate.
    let _ = get(&addr, "/metrics");
    assert_eq!(surface.windows().rotations(), before);
    // Past the boundary: the next scrape rotates exactly once.
    clock.advance_micros(1_000);
    let _ = get(&addr, "/metrics");
    assert_eq!(surface.windows().rotations(), before + 1);
}
