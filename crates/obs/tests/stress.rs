//! Multi-threaded stress tests: after joining all writers, counters and
//! histograms must hold exact totals — lock-free recording may be
//! relaxed, but it must never drop or double-count an event.

use std::sync::Arc;
use std::thread;

use swag_obs::{Gauge, Histogram, Registry};

const THREADS: usize = 8;
const OPS_PER_THREAD: u64 = 10_000;

#[test]
fn counter_is_exact_under_contention() {
    let reg = Registry::new();
    let counter = reg.counter("swag_stress_events_total");
    thread::scope(|s| {
        for _ in 0..THREADS {
            let counter = Arc::clone(&counter);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    counter.inc();
                }
            });
        }
    });
    assert_eq!(counter.get(), THREADS as u64 * OPS_PER_THREAD);
}

#[test]
fn histogram_is_exact_under_contention() {
    let hist = Arc::new(Histogram::new());
    // Every thread records the same deterministic value sequence, so the
    // final per-bucket counts, sum and max are all exactly computable.
    let values: Vec<u64> = (0..OPS_PER_THREAD).map(|i| i % 2048).collect();
    thread::scope(|s| {
        for _ in 0..THREADS {
            let hist = Arc::clone(&hist);
            let values = values.clone();
            s.spawn(move || {
                for &v in &values {
                    hist.record(v);
                }
            });
        }
    });

    let snap = hist.snapshot();
    let expected_count = THREADS as u64 * OPS_PER_THREAD;
    let expected_sum = THREADS as u64 * values.iter().sum::<u64>();
    assert_eq!(snap.count, expected_count);
    assert_eq!(snap.sum, expected_sum);
    assert_eq!(snap.max, 2047);
    assert_eq!(snap.buckets.iter().sum::<u64>(), expected_count);

    // Per-bucket counts match a single-threaded reference run.
    let reference = Histogram::new();
    for _ in 0..THREADS {
        for &v in &values {
            reference.record(v);
        }
    }
    assert_eq!(snap, reference.snapshot());
}

#[test]
fn gauge_balances_out() {
    let gauge = Arc::new(Gauge::new());
    thread::scope(|s| {
        for t in 0..THREADS {
            let gauge = Arc::clone(&gauge);
            s.spawn(move || {
                for _ in 0..OPS_PER_THREAD {
                    if t % 2 == 0 {
                        gauge.add(1);
                    } else {
                        gauge.add(-1);
                    }
                }
            });
        }
    });
    assert_eq!(gauge.get(), 0);
}

#[test]
fn registry_handles_concurrent_get_or_create() {
    let reg = Arc::new(Registry::new());
    thread::scope(|s| {
        for _ in 0..THREADS {
            let reg = Arc::clone(&reg);
            s.spawn(move || {
                for i in 0..100 {
                    reg.counter(&format!("swag_stress_shared_{}", i % 10)).inc();
                }
            });
        }
    });
    assert_eq!(reg.len(), 10);
    for i in 0..10 {
        let c = reg.counter(&format!("swag_stress_shared_{i}"));
        assert_eq!(c.get(), THREADS as u64 * 10);
    }
}

#[test]
fn per_thread_histograms_merge_to_global_truth() {
    // The sharded pattern: each worker records into its own histogram,
    // snapshots merge afterwards.
    let snapshots: Vec<_> = thread::scope(|s| {
        (0..THREADS)
            .map(|t| {
                s.spawn(move || {
                    let local = Histogram::new();
                    for i in 0..OPS_PER_THREAD {
                        local.record((t as u64 + 1) * (i % 100));
                    }
                    local.snapshot()
                })
            })
            .collect::<Vec<_>>()
            .into_iter()
            .map(|h| h.join().expect("worker panicked"))
            .collect()
    });

    let merged = snapshots
        .iter()
        .fold(swag_obs::HistogramSnapshot::empty(), |acc, s| acc.merge(s));
    assert_eq!(merged.count, THREADS as u64 * OPS_PER_THREAD);
    let expected_sum: u64 = (0..THREADS as u64)
        .map(|t| (t + 1) * (0..OPS_PER_THREAD).map(|i| i % 100).sum::<u64>())
        .sum();
    assert_eq!(merged.sum, expected_sum);
    assert_eq!(merged.max, THREADS as u64 * 99);
}
