//! Property tests for histogram snapshot algebra and quantile sanity.

use proptest::prelude::*;
use swag_obs::{Histogram, HistogramSnapshot, Percentiles};

/// Builds a snapshot from recorded values.
fn snap_of(values: &[u64]) -> HistogramSnapshot {
    let h = Histogram::new();
    for &v in values {
        h.record(v);
    }
    h.snapshot()
}

/// Values spanning many buckets, including zero and huge magnitudes.
fn arb_values() -> impl Strategy<Value = Vec<u64>> {
    prop::collection::vec(
        prop_oneof![
            (0u64..16).boxed(),
            (0u64..100_000).boxed(),
            (0u64..(1u64 << 50)).boxed(),
        ],
        0..120,
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn merge_is_commutative(a in arb_values(), b in arb_values()) {
        let (sa, sb) = (snap_of(&a), snap_of(&b));
        prop_assert_eq!(sa.merge(&sb), sb.merge(&sa));
    }

    #[test]
    fn merge_is_associative(a in arb_values(), b in arb_values(), c in arb_values()) {
        let (sa, sb, sc) = (snap_of(&a), snap_of(&b), snap_of(&c));
        prop_assert_eq!(sa.merge(&sb).merge(&sc), sa.merge(&sb.merge(&sc)));
    }

    #[test]
    fn merge_preserves_counts_and_sums(a in arb_values(), b in arb_values()) {
        let merged = snap_of(&a).merge(&snap_of(&b));
        prop_assert_eq!(merged.count, (a.len() + b.len()) as u64);
        prop_assert_eq!(merged.sum, a.iter().sum::<u64>() + b.iter().sum::<u64>());
        prop_assert_eq!(merged.buckets.iter().sum::<u64>(), merged.count);
        // Merging equals recording everything into one histogram.
        let mut all = a.clone();
        all.extend_from_slice(&b);
        prop_assert_eq!(merged, snap_of(&all));
    }

    #[test]
    fn empty_is_merge_identity(a in arb_values()) {
        let s = snap_of(&a);
        prop_assert_eq!(s.merge(&HistogramSnapshot::empty()), s);
        prop_assert_eq!(HistogramSnapshot::empty().merge(&s), s);
    }

    #[test]
    fn quantiles_are_monotone_and_bounded(a in arb_values()) {
        let s = snap_of(&a);
        let (p50, p90, p99) = (s.p50(), s.p90(), s.p99());
        prop_assert!(p50 <= p90 && p90 <= p99);
        prop_assert!(p99 <= s.max);
    }

    #[test]
    fn bucket_quantile_brackets_true_quantile(a in prop::collection::vec(1u64..1_000_000, 1..200)) {
        // The bucket upper bound is always >= the true nearest-rank
        // value and < 2x it (log2 buckets halve at worst).
        let s = snap_of(&a);
        let mut sorted = a.clone();
        sorted.sort_unstable();
        let true_p50 = sorted[((0.5 * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len()) - 1];
        let bucket_p50 = s.p50();
        prop_assert!(bucket_p50 >= true_p50, "{} < {}", bucket_p50, true_p50);
        prop_assert!(bucket_p50 < true_p50.saturating_mul(2).max(1), "{} vs {}", bucket_p50, true_p50);
    }

    #[test]
    fn percentiles_agree_with_sort_oracle(samples in prop::collection::vec(-1e9f64..1e9, 0..300)) {
        let p = Percentiles::of(&samples);
        prop_assert_eq!(p.count, samples.len());
        if samples.is_empty() {
            // The empty summary is all zeros, never NaN.
            prop_assert_eq!((p.min, p.p50, p.p90, p.p99, p.max, p.mean),
                            (0.0, 0.0, 0.0, 0.0, 0.0, 0.0));
        } else {
            let mut sorted = samples.clone();
            sorted.sort_by(f64::total_cmp);
            let oracle = |q: f64| {
                let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
                sorted[rank - 1]
            };
            // p0 and p100 are the extremes; interior quantiles hit the
            // exact nearest-rank sample.
            prop_assert_eq!(p.min, sorted[0]);
            prop_assert_eq!(p.max, sorted[sorted.len() - 1]);
            prop_assert_eq!(p.p50, oracle(0.5));
            prop_assert_eq!(p.p90, oracle(0.9));
            prop_assert_eq!(p.p99, oracle(0.99));
        }
    }

    #[test]
    fn all_duplicates_collapse_every_percentile(v in -1e9f64..1e9, n in 1usize..200) {
        let p = Percentiles::of(&vec![v; n]);
        prop_assert_eq!((p.min, p.p50, p.p90, p.p99, p.max), (v, v, v, v, v));
        prop_assert!((p.mean - v).abs() <= v.abs() * 1e-12);
    }

    #[test]
    fn single_sample_is_every_quantile(v in -1e300f64..1e300) {
        let p = Percentiles::of(&[v]);
        prop_assert_eq!((p.count, p.min, p.p50, p.p90, p.p99, p.max, p.mean),
                        (1, v, v, v, v, v, v));
    }

    #[test]
    fn never_panics_on_hostile_floats(samples in prop::collection::vec(
        prop_oneof![
            Just(f64::NAN),
            Just(f64::INFINITY),
            Just(f64::NEG_INFINITY),
            Just(0.0),
            Just(-0.0),
            any::<f64>(),
        ],
        0..100,
    )) {
        // NaN and infinities must never panic the summary (total_cmp
        // gives them a defined order); count is always faithful.
        let p = Percentiles::of(&samples);
        prop_assert_eq!(p.count, samples.len());
    }

    #[test]
    fn percentiles_pick_real_samples(samples in prop::collection::vec(-1e6f64..1e6, 1..300)) {
        let p = Percentiles::of(&samples);
        prop_assert!(samples.contains(&p.p50));
        prop_assert!(samples.contains(&p.p90));
        prop_assert!(samples.contains(&p.p99));
        prop_assert!(p.min <= p.p50 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
    }
}
