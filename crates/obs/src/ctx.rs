//! Trace-context propagation: the causal identity of the work a thread
//! is currently doing.
//!
//! A [`TraceCtx`] names one span inside one trace. Every thread carries
//! an *ambient* context in a thread-local cell; span guards (see
//! [`crate::FlightRecorder`]) push their own context on entry and
//! restore the previous one on exit, so nested spans form a tree. The
//! executor (`swag-exec`) captures the ambient context when a job is
//! submitted and re-installs it inside the worker that ultimately runs
//! the job — a span tree therefore survives work stealing: a shard probe
//! executed on a stolen thread is still parented to the query span that
//! scheduled it.
//!
//! The context is three `u64`s and a `Cell` access; capturing and
//! restoring it is branch-and-copy cheap, which is why the executor can
//! afford to do it unconditionally.

use std::cell::Cell;
use std::sync::atomic::{AtomicU64, Ordering};

/// Identity of the current span: which trace it belongs to, which span
/// it is, and which span caused it. `trace_id == 0` means "no ambient
/// trace" and `parent == 0` marks a root span.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct TraceCtx {
    /// The request this work belongs to (0 = none).
    pub trace_id: u64,
    /// This span's id, unique across threads and recorders.
    pub span_id: u64,
    /// The causing span's id (0 = root of its trace).
    pub parent: u64,
}

thread_local! {
    /// The ambient context of the current thread.
    static CURRENT: Cell<TraceCtx> = const { Cell::new(TraceCtx::NONE) };
}

/// Trace ids are allocated process-wide so traces from different
/// recorders never collide.
static NEXT_TRACE: AtomicU64 = AtomicU64::new(1);
/// Span ids share one process-wide sequence for the same reason.
static NEXT_SPAN: AtomicU64 = AtomicU64::new(1);

impl TraceCtx {
    /// The absent context (no trace, no span).
    pub const NONE: TraceCtx = TraceCtx {
        trace_id: 0,
        span_id: 0,
        parent: 0,
    };

    /// Whether this is the absent context.
    pub fn is_none(&self) -> bool {
        self.trace_id == 0
    }

    /// Whether this names a real span.
    pub fn is_some(&self) -> bool {
        !self.is_none()
    }

    /// The calling thread's ambient context ([`TraceCtx::NONE`] outside
    /// any span).
    pub fn current() -> TraceCtx {
        CURRENT.get()
    }

    /// Installs `ctx` as the ambient context, returning the previous one
    /// so the caller can restore it. The executor brackets every job
    /// with a set/restore pair; span guards do the same.
    pub fn set_current(ctx: TraceCtx) -> TraceCtx {
        CURRENT.replace(ctx)
    }

    /// A fresh root context in a brand-new trace.
    pub fn new_root() -> TraceCtx {
        TraceCtx {
            trace_id: NEXT_TRACE.fetch_add(1, Ordering::Relaxed),
            span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
            parent: 0,
        }
    }

    /// A fresh child context of `self` (same trace, new span id).
    pub fn child(&self) -> TraceCtx {
        TraceCtx {
            trace_id: self.trace_id,
            span_id: NEXT_SPAN.fetch_add(1, Ordering::Relaxed),
            parent: self.span_id,
        }
    }

    /// A child of the ambient context, or a fresh root when there is
    /// none — the context a new span should run under.
    pub fn next() -> TraceCtx {
        let ambient = TraceCtx::current();
        if ambient.is_none() {
            TraceCtx::new_root()
        } else {
            ambient.child()
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ambient_defaults_to_none() {
        std::thread::spawn(|| {
            assert!(TraceCtx::current().is_none());
        })
        .join()
        .unwrap();
    }

    #[test]
    fn set_current_returns_previous() {
        let prev = TraceCtx::set_current(TraceCtx::NONE);
        let root = TraceCtx::new_root();
        assert_eq!(TraceCtx::set_current(root), TraceCtx::NONE);
        assert_eq!(TraceCtx::current(), root);
        let child = TraceCtx::next();
        assert_eq!(child.trace_id, root.trace_id);
        assert_eq!(child.parent, root.span_id);
        assert_ne!(child.span_id, root.span_id);
        TraceCtx::set_current(prev);
    }

    #[test]
    fn next_without_ambient_is_a_root() {
        std::thread::spawn(|| {
            let ctx = TraceCtx::next();
            assert!(ctx.is_some());
            assert_eq!(ctx.parent, 0);
        })
        .join()
        .unwrap();
    }

    #[test]
    fn ids_are_unique_across_threads() {
        let handles: Vec<_> = (0..4)
            .map(|_| {
                std::thread::spawn(|| (0..256).map(|_| TraceCtx::new_root()).collect::<Vec<_>>())
            })
            .collect();
        let ctxs: Vec<TraceCtx> = handles
            .into_iter()
            .flat_map(|h| h.join().unwrap())
            .collect();
        let n = ctxs.len();
        for ids in [
            ctxs.iter().map(|c| c.trace_id).collect::<Vec<u64>>(),
            ctxs.iter().map(|c| c.span_id).collect::<Vec<u64>>(),
        ] {
            let mut sorted = ids;
            sorted.sort_unstable();
            sorted.dedup();
            assert_eq!(sorted.len(), n, "ids collided within a sequence");
        }
    }
}
