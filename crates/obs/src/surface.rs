//! The live ops surface: one object bundling a [`Registry`], its
//! [`MetricWindows`], an [`SloSet`], and gauge refreshers, exposed over
//! the embedded HTTP server and reused verbatim by `swag top`.
//!
//! Everything is pull-driven: a scrape (or a `swag top` tick) calls
//! [`OpsSurface::refresh`], which runs the registered refresher
//! callbacks (for gauges that must be *computed* at observation time —
//! epoch snapshot age, staged-delta size), rotates the window rings if a
//! window width has elapsed, re-exports windowed p50/p99/rate gauges,
//! and re-evaluates SLO burn rates. Between scrapes the hot path pays
//! nothing beyond its ordinary cumulative recording.
//!
//! Routes:
//!
//! | path       | body                                            |
//! |------------|-------------------------------------------------|
//! | `/metrics` | Prometheus text exposition (incl. `_w_*` gauges)|
//! | `/vars`    | JSON lines, one object per metric               |
//! | `/slo`     | JSON array of SLO evaluations                   |
//! | `/healthz` | `ok` + uptime (always 200 while the thread lives)|

use std::io;
use std::sync::{Arc, Mutex};

use crate::clock::MonotonicClock;
use crate::http::{Handler, HttpServer, Response};
use crate::registry::Registry;
use crate::slo::{SloSet, SloSpec, SloStatus};
use crate::window::{MetricWindows, WindowSpec};

/// A gauge refresher: computes point-in-time values into the registry.
pub type Refresher = Box<dyn Fn(&Registry) + Send + Sync>;

/// Live ops surface over one registry. Cheap to share (`Arc`) between
/// the HTTP server and a dashboard loop.
pub struct OpsSurface {
    registry: Arc<Registry>,
    clock: Arc<dyn MonotonicClock>,
    windows: MetricWindows,
    slos: Mutex<SloSet>,
    refreshers: Mutex<Vec<Refresher>>,
    started_micros: u64,
}

impl std::fmt::Debug for OpsSurface {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("OpsSurface")
            .field("windows", &self.windows)
            .field("metrics", &self.registry.len())
            .finish()
    }
}

impl OpsSurface {
    /// An ops surface over `registry`, windowing on `clock` with `spec`
    /// geometry.
    pub fn new(registry: Arc<Registry>, clock: Arc<dyn MonotonicClock>, spec: WindowSpec) -> Self {
        let started_micros = clock.now_micros();
        OpsSurface {
            windows: MetricWindows::new(clock.clone(), spec),
            registry,
            clock,
            slos: Mutex::new(SloSet::new()),
            refreshers: Mutex::new(Vec::new()),
            started_micros,
        }
    }

    /// The underlying registry.
    pub fn registry(&self) -> &Arc<Registry> {
        &self.registry
    }

    /// The window rings (for dashboards that want raw views).
    pub fn windows(&self) -> &MetricWindows {
        &self.windows
    }

    /// Registers a latency objective.
    pub fn add_slo(&self, spec: SloSpec) {
        self.slos
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(spec);
    }

    /// Registers a callback that computes point-in-time gauges (epoch
    /// age, staged-delta size, ...) right before each rotation/scrape.
    pub fn add_refresher(&self, f: impl Fn(&Registry) + Send + Sync + 'static) {
        self.refreshers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(Box::new(f));
    }

    /// Pull-driven update: refreshers → (maybe) window rotation →
    /// windowed-gauge export → SLO evaluation + export. `force` rotates
    /// even mid-window (deterministic tests, `swag top --once`). Returns
    /// the SLO evaluations.
    pub fn refresh(&self, force: bool) -> Vec<SloStatus> {
        for f in self
            .refreshers
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
        {
            f(&self.registry);
        }
        let rotated = if force {
            self.windows.rotate_now(&self.registry);
            true
        } else {
            self.windows.maybe_rotate(&self.registry)
        };
        if rotated {
            self.windows.export_gauges(&self.registry);
        }
        let slos = self.slos.lock().unwrap_or_else(|e| e.into_inner());
        let statuses = slos.evaluate(&self.windows);
        slos.export_gauges(&self.registry, &statuses);
        statuses
    }

    /// Routes one request path. Refreshes before rendering so scrapes
    /// always see current windows.
    pub fn handle(&self, path: &str) -> Option<Response> {
        match path {
            "/metrics" => {
                self.refresh(false);
                Some(Response::ok(
                    "text/plain; version=0.0.4; charset=utf-8",
                    self.registry.render_prometheus(),
                ))
            }
            "/vars" => {
                self.refresh(false);
                Some(Response::ok(
                    "application/json; charset=utf-8",
                    self.registry.render_json(),
                ))
            }
            "/slo" => {
                let statuses = self.refresh(false);
                Some(Response::ok(
                    "application/json; charset=utf-8",
                    SloSet::render_json(&statuses),
                ))
            }
            "/healthz" => {
                let uptime = self.clock.now_micros().saturating_sub(self.started_micros);
                Some(Response::ok(
                    "text/plain; charset=utf-8",
                    format!("ok uptime_micros={uptime}\n"),
                ))
            }
            _ => None,
        }
    }

    /// Starts the embedded HTTP server for this surface on `addr`
    /// (`127.0.0.1:0` picks an ephemeral port; read it back from
    /// [`HttpServer::addr`]).
    pub fn serve(self: &Arc<Self>, addr: &str) -> io::Result<HttpServer> {
        let surface = self.clone();
        let handler: Handler = Arc::new(move |path| surface.handle(path));
        HttpServer::serve(addr, handler)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn surface() -> (Arc<OpsSurface>, Arc<ManualClock>) {
        let clock = Arc::new(ManualClock::new());
        let surface = Arc::new(OpsSurface::new(
            Arc::new(Registry::new()),
            clock.clone(),
            WindowSpec::new(1_000, 4),
        ));
        (surface, clock)
    }

    #[test]
    fn refresh_runs_refreshers_then_rotates() {
        let (surface, clock) = surface();
        surface.add_refresher(|reg: &Registry| {
            reg.gauge("swag_refreshed").add(1);
        });
        clock.advance_micros(1_000);
        surface.refresh(false);
        assert_eq!(surface.registry().gauge("swag_refreshed").get(), 1);
        assert_eq!(surface.windows().rotations(), 1);
        // Mid-window: refreshers still run, rotation does not.
        surface.refresh(false);
        assert_eq!(surface.registry().gauge("swag_refreshed").get(), 2);
        assert_eq!(surface.windows().rotations(), 1);
        // Forced: rotates regardless.
        surface.refresh(true);
        assert_eq!(surface.windows().rotations(), 2);
    }

    #[test]
    fn metrics_route_exports_windowed_gauges() {
        let (surface, clock) = surface();
        let h = surface.registry().histogram("swag_q_micros");
        clock.advance_micros(1_000);
        surface.refresh(false); // baseline
        for _ in 0..50 {
            h.record(200);
        }
        clock.advance_micros(1_000);
        let resp = surface.handle("/metrics").unwrap();
        assert_eq!(resp.status, 200);
        assert!(resp.content_type.starts_with("text/plain"));
        assert!(
            resp.body.contains("swag_q_micros_count 50"),
            "{}",
            resp.body
        );
        assert!(resp.body.contains("swag_q_micros_w_p99 "), "{}", resp.body);
        assert!(resp.body.contains("swag_q_micros_w_rate_milli "));
    }

    #[test]
    fn slo_route_reports_state() {
        let (surface, clock) = surface();
        surface.add_slo(SloSpec::latency("q", "swag_q_micros", 1_000, 0.99));
        let h = surface.registry().histogram("swag_q_micros");
        clock.advance_micros(1_000);
        surface.refresh(false); // baseline
        for _ in 0..10 {
            h.record(100_000); // all bad
        }
        clock.advance_micros(1_000);
        let resp = surface.handle("/slo").unwrap();
        assert!(resp.body.contains("\"slo\":\"q\""), "{}", resp.body);
        assert!(resp.body.contains("\"state\":\"page\""), "{}", resp.body);
        assert_eq!(
            surface.registry().gauge("swag_slo_state{slo=\"q\"}").get(),
            2
        );
    }

    #[test]
    fn healthz_and_unknown_routes() {
        let (surface, clock) = surface();
        clock.advance_micros(123);
        let resp = surface.handle("/healthz").unwrap();
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body, "ok uptime_micros=123\n");
        assert!(surface.handle("/nope").is_none());
    }
}
