//! Cheap sampled per-query tracing.
//!
//! A [`Trace`] keeps the last N sampled events in a bounded ring. It is
//! globally off by default: when disabled, [`Trace::try_sample`] is a
//! single relaxed atomic load and branch, so leaving trace hooks on the
//! query hot path is free in production.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Mutex;

/// One sampled event.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceEvent {
    /// What happened (static so recording never allocates for labels).
    pub label: &'static str,
    /// Duration or timestamp in microseconds, as the site chooses.
    pub micros: u64,
    /// Free-form payload (candidate count, byte size, ...).
    pub detail: u64,
}

/// A sampled, bounded event ring.
#[derive(Debug)]
pub struct Trace {
    enabled: AtomicBool,
    /// Keep 1 of every `sample_every` offered samples.
    sample_every: AtomicU64,
    offered: AtomicU64,
    capacity: usize,
    ring: Mutex<VecDeque<TraceEvent>>,
}

impl Trace {
    /// A disabled trace retaining at most `capacity` events.
    pub fn new(capacity: usize) -> Self {
        Trace {
            enabled: AtomicBool::new(false),
            sample_every: AtomicU64::new(1),
            offered: AtomicU64::new(0),
            capacity: capacity.max(1),
            ring: Mutex::new(VecDeque::with_capacity(capacity.max(1))),
        }
    }

    /// Turns sampling on, keeping 1 of every `sample_every` queries.
    pub fn enable(&self, sample_every: u64) {
        self.sample_every
            .store(sample_every.max(1), Ordering::Relaxed);
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns sampling off; recorded events remain readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether this query should be traced. One load + branch when
    /// disabled — the only cost the hot path ever pays.
    #[inline]
    pub fn try_sample(&self) -> bool {
        if !self.enabled.load(Ordering::Relaxed) {
            return false;
        }
        let n = self.offered.fetch_add(1, Ordering::Relaxed);
        n.is_multiple_of(self.sample_every.load(Ordering::Relaxed))
    }

    /// Appends an event, evicting the oldest beyond capacity. Call only
    /// when [`Trace::try_sample`] returned true.
    pub fn record(&self, label: &'static str, micros: u64, detail: u64) {
        let mut ring = self.ring.lock().unwrap_or_else(|e| e.into_inner());
        if ring.len() == self.capacity {
            ring.pop_front();
        }
        ring.push_back(TraceEvent {
            label,
            micros,
            detail,
        });
    }

    /// Copies out the retained events, oldest first.
    pub fn events(&self) -> Vec<TraceEvent> {
        self.ring
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .copied()
            .collect()
    }

    /// Drops all retained events.
    pub fn clear(&self) {
        self.ring.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn disabled_by_default_and_never_samples() {
        let t = Trace::new(8);
        assert!(!t.try_sample());
        assert!(t.events().is_empty());
    }

    #[test]
    fn sampling_rate_is_respected() {
        let t = Trace::new(64);
        t.enable(4);
        let kept = (0..16).filter(|_| t.try_sample()).count();
        assert_eq!(kept, 4);
    }

    #[test]
    fn ring_evicts_oldest() {
        let t = Trace::new(3);
        t.enable(1);
        for i in 0..5u64 {
            t.record("q", i, 0);
        }
        let got: Vec<u64> = t.events().iter().map(|e| e.micros).collect();
        assert_eq!(got, vec![2, 3, 4]);
    }

    #[test]
    fn disable_stops_sampling_but_keeps_events() {
        let t = Trace::new(4);
        t.enable(1);
        assert!(t.try_sample());
        t.record("q", 1, 2);
        t.disable();
        assert!(!t.try_sample());
        assert_eq!(t.events().len(), 1);
    }
}
