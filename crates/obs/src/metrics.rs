//! Lock-free metric primitives: [`Counter`], [`Gauge`], [`Histogram`].

use std::sync::atomic::{AtomicI64, AtomicU64, Ordering};

/// Number of log₂ buckets in a [`Histogram`]; bucket `i` holds values in
/// `[2^(i-1), 2^i)` (bucket 0 holds exactly zero), so 64 buckets cover
/// the full `u64` range.
pub const HISTOGRAM_BUCKETS: usize = 64;

/// A monotonically increasing event count.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    /// A counter at zero.
    pub const fn new() -> Self {
        Counter(AtomicU64::new(0))
    }

    /// Adds one.
    pub fn inc(&self) {
        self.add(1);
    }

    /// Adds `n`.
    pub fn add(&self, n: u64) {
        self.0.fetch_add(n, Ordering::Relaxed);
    }

    /// Current value.
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// A signed instantaneous level (queue depth, open handles, ...).
#[derive(Debug, Default)]
pub struct Gauge(AtomicI64);

impl Gauge {
    /// A gauge at zero.
    pub const fn new() -> Self {
        Gauge(AtomicI64::new(0))
    }

    /// Adds `delta` (may be negative).
    pub fn add(&self, delta: i64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    /// Overwrites the level.
    pub fn set(&self, value: i64) {
        self.0.store(value, Ordering::Relaxed);
    }

    /// Current level.
    pub fn get(&self) -> i64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Fixed-bucket log₂ latency/size histogram.
///
/// `record` is lock-free (four relaxed RMWs) and allocation-free, so it
/// is safe on query hot paths and from concurrent threads. Values are
/// whatever unit the call site chooses — the pipeline records
/// microseconds for spans and bytes for sizes.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Histogram::new()
    }
}

impl Histogram {
    /// An empty histogram.
    pub const fn new() -> Self {
        #[allow(clippy::declare_interior_mutable_const)]
        const ZERO: AtomicU64 = AtomicU64::new(0);
        Histogram {
            buckets: [ZERO; HISTOGRAM_BUCKETS],
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    /// Bucket index for `value`: 0 for zero, else `floor(log2(value))+1`,
    /// with the top bucket absorbing values of 2^63 and above.
    #[inline]
    pub fn bucket_index(value: u64) -> usize {
        ((64 - value.leading_zeros()) as usize).min(HISTOGRAM_BUCKETS - 1)
    }

    /// Inclusive upper bound of bucket `i` (the value reported for
    /// quantiles that land in the bucket).
    #[inline]
    pub fn bucket_bound(i: usize) -> u64 {
        if i == 0 {
            0
        } else if i >= 64 {
            u64::MAX
        } else {
            (1u64 << i) - 1
        }
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, value: u64) {
        let idx = Self::bucket_index(value);
        self.buckets[idx].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    /// Total observations recorded.
    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    /// A point-in-time copy of the buckets. Individual fields are read
    /// with relaxed loads, so a snapshot taken while writers are active
    /// may be off by in-flight records; snapshots taken after joining
    /// writer threads are exact.
    pub fn snapshot(&self) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (dst, src) in buckets.iter_mut().zip(&self.buckets) {
            *dst = src.load(Ordering::Relaxed);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// An immutable copy of a [`Histogram`]'s state; bucket-wise mergeable.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (see [`Histogram::bucket_index`]).
    pub buckets: [u64; HISTOGRAM_BUCKETS],
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values.
    pub sum: u64,
    /// Largest observed value.
    pub max: u64,
}

impl Default for HistogramSnapshot {
    fn default() -> Self {
        HistogramSnapshot {
            buckets: [0; HISTOGRAM_BUCKETS],
            count: 0,
            sum: 0,
            max: 0,
        }
    }
}

impl HistogramSnapshot {
    /// An empty snapshot.
    pub fn empty() -> Self {
        Self::default()
    }

    /// Combines two snapshots bucket-wise. Commutative, associative, and
    /// count-preserving (property-tested in `tests/properties.rs`).
    pub fn merge(&self, other: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i] + other.buckets[i];
        }
        HistogramSnapshot {
            buckets,
            count: self.count + other.count,
            sum: self.sum + other.sum,
            max: self.max.max(other.max),
        }
    }

    /// Mean observed value, zero when empty.
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Nearest-rank quantile (`q` in `[0, 1]`) resolved to the upper
    /// bound of the bucket holding that rank; zero when empty.
    pub fn quantile(&self, q: f64) -> u64 {
        if self.count == 0 {
            return 0;
        }
        let rank = ((q * self.count as f64).ceil() as u64).clamp(1, self.count);
        let mut seen = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            seen += n;
            if seen >= rank {
                return Histogram::bucket_bound(i).min(self.max);
            }
        }
        self.max
    }

    /// The observations this snapshot gained over an `earlier` snapshot
    /// of the **same cumulative histogram** — the per-window delta the
    /// window ring stores. Bucket counts, count, and sum subtract
    /// (saturating, so a reset or snapshot race degrades to an empty
    /// window instead of wrapping); `max` keeps this snapshot's
    /// cumulative maximum, an upper bound on the window's true maximum
    /// (per-window maxima are not recoverable from cumulative state).
    pub fn saturating_sub(&self, earlier: &HistogramSnapshot) -> HistogramSnapshot {
        let mut buckets = [0u64; HISTOGRAM_BUCKETS];
        for (i, b) in buckets.iter_mut().enumerate() {
            *b = self.buckets[i].saturating_sub(earlier.buckets[i]);
        }
        HistogramSnapshot {
            buckets,
            count: self.count.saturating_sub(earlier.count),
            sum: self.sum.saturating_sub(earlier.sum),
            max: self.max,
        }
    }

    /// Observations recorded at or below `value`, at bucket resolution:
    /// every bucket whose upper bound is ≤ `value` counts as "at or
    /// below". Used by SLO evaluation ("queries faster than X µs").
    pub fn count_le(&self, value: u64) -> u64 {
        self.buckets
            .iter()
            .enumerate()
            .take_while(|(i, _)| Histogram::bucket_bound(*i) <= value)
            .map(|(_, &n)| n)
            .sum()
    }

    /// Median (bucket-resolution).
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 90th percentile (bucket-resolution).
    pub fn p90(&self) -> u64 {
        self.quantile(0.90)
    }

    /// 99th percentile (bucket-resolution).
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        assert_eq!(c.get(), 5);

        let g = Gauge::new();
        g.add(3);
        g.add(-5);
        assert_eq!(g.get(), -2);
        g.set(10);
        assert_eq!(g.get(), 10);
    }

    #[test]
    fn bucket_index_boundaries() {
        assert_eq!(Histogram::bucket_index(0), 0);
        assert_eq!(Histogram::bucket_index(1), 1);
        assert_eq!(Histogram::bucket_index(2), 2);
        assert_eq!(Histogram::bucket_index(3), 2);
        assert_eq!(Histogram::bucket_index(4), 3);
        assert_eq!(Histogram::bucket_index(1023), 10);
        assert_eq!(Histogram::bucket_index(1024), 11);
        assert_eq!(Histogram::bucket_index(u64::MAX), 63);
        assert_eq!(Histogram::bucket_index(1u64 << 62), 63);
    }

    #[test]
    fn snapshot_tracks_count_sum_max() {
        let h = Histogram::new();
        for v in [0u64, 1, 5, 100, 100_000] {
            h.record(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 5);
        assert_eq!(s.sum, 100_106);
        assert_eq!(s.max, 100_000);
        assert_eq!(s.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn quantiles_resolve_to_bucket_bounds() {
        let h = Histogram::new();
        // 90 fast observations (~8µs) and 10 slow ones (~1000µs).
        for _ in 0..90 {
            h.record(8);
        }
        for _ in 0..10 {
            h.record(1000);
        }
        let s = h.snapshot();
        // 8 lives in bucket [8,16) → bound 15; 1000 in [512,1024) → 1023,
        // clamped to the true max.
        assert_eq!(s.p50(), 15);
        assert_eq!(s.p90(), 15);
        assert_eq!(s.p99(), 1000);
        assert_eq!(s.quantile(1.0), 1000);
        assert_eq!(s.max, 1000);
    }

    #[test]
    fn empty_snapshot_is_all_zero() {
        let s = Histogram::new().snapshot();
        assert_eq!(s, HistogramSnapshot::empty());
        assert_eq!(s.p50(), 0);
        assert_eq!(s.mean(), 0.0);
    }

    #[test]
    fn merge_adds_bucketwise() {
        let a = Histogram::new();
        let b = Histogram::new();
        for v in [1u64, 2, 3] {
            a.record(v);
        }
        for v in [100u64, 200] {
            b.record(v);
        }
        let m = a.snapshot().merge(&b.snapshot());
        assert_eq!(m.count, 5);
        assert_eq!(m.sum, 306);
        assert_eq!(m.max, 200);
        assert_eq!(m.buckets.iter().sum::<u64>(), 5);
    }

    #[test]
    fn saturating_sub_recovers_the_delta() {
        let h = Histogram::new();
        for v in [1u64, 5, 100] {
            h.record(v);
        }
        let earlier = h.snapshot();
        for v in [7u64, 2000] {
            h.record(v);
        }
        let delta = h.snapshot().saturating_sub(&earlier);
        assert_eq!(delta.count, 2);
        assert_eq!(delta.sum, 2007);
        assert_eq!(delta.buckets.iter().sum::<u64>(), 2);
        // Subtracting in the wrong order saturates instead of wrapping.
        let wrong = earlier.saturating_sub(&h.snapshot());
        assert_eq!(wrong.count, 0);
        assert_eq!(wrong.sum, 0);
    }

    #[test]
    fn count_le_is_bucket_resolution() {
        let h = Histogram::new();
        for _ in 0..90 {
            h.record(8); // bucket [8,16) -> bound 15
        }
        for _ in 0..10 {
            h.record(1000); // bucket [512,1024) -> bound 1023
        }
        let s = h.snapshot();
        assert_eq!(s.count_le(15), 90);
        assert_eq!(s.count_le(14), 0); // bound 15 > 14: whole bucket excluded
        assert_eq!(s.count_le(1023), 100);
        assert_eq!(s.count_le(u64::MAX), 100);
        assert_eq!(HistogramSnapshot::empty().count_le(0), 0);
    }

    #[test]
    fn zero_values_land_in_bucket_zero() {
        let h = Histogram::new();
        h.record(0);
        h.record(0);
        let s = h.snapshot();
        assert_eq!(s.buckets[0], 2);
        assert_eq!(s.p50(), 0);
    }
}
