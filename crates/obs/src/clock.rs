//! Injectable monotonic time source.
//!
//! Mirrors the affine `DeviceClock` pattern in `crates/sensors` but for
//! instrumentation: components take an `Arc<dyn MonotonicClock>` so
//! timing-sensitive code paths can run against [`ManualClock`] in tests
//! and produce exact, deterministic latency numbers.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::OnceLock;
use std::time::Instant;

/// A monotonic microsecond clock.
pub trait MonotonicClock: Send + Sync {
    /// Microseconds since an arbitrary fixed origin; never decreases.
    fn now_micros(&self) -> u64;
}

/// Real wall time via [`Instant`], measured from first use.
#[derive(Debug, Default, Clone, Copy)]
pub struct WallClock;

impl WallClock {
    /// Shared process-wide origin so all `WallClock` values agree.
    fn epoch() -> Instant {
        static EPOCH: OnceLock<Instant> = OnceLock::new();
        *EPOCH.get_or_init(Instant::now)
    }
}

impl MonotonicClock for WallClock {
    fn now_micros(&self) -> u64 {
        Self::epoch().elapsed().as_micros() as u64
    }
}

/// A clock that only moves when told to — deterministic tests advance it
/// explicitly and then assert exact recorded durations.
#[derive(Debug, Default)]
pub struct ManualClock {
    micros: AtomicU64,
}

impl ManualClock {
    /// A clock at zero.
    pub fn new() -> Self {
        ManualClock::default()
    }

    /// A clock starting at `micros`.
    pub fn starting_at(micros: u64) -> Self {
        ManualClock {
            micros: AtomicU64::new(micros),
        }
    }

    /// Moves time forward.
    pub fn advance_micros(&self, delta: u64) {
        self.micros.fetch_add(delta, Ordering::Relaxed);
    }
}

impl MonotonicClock for ManualClock {
    fn now_micros(&self) -> u64 {
        self.micros.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wall_clock_is_monotonic() {
        let c = WallClock;
        let a = c.now_micros();
        let b = c.now_micros();
        assert!(b >= a);
    }

    #[test]
    fn manual_clock_moves_only_on_advance() {
        let c = ManualClock::starting_at(100);
        assert_eq!(c.now_micros(), 100);
        assert_eq!(c.now_micros(), 100);
        c.advance_micros(250);
        assert_eq!(c.now_micros(), 350);
    }
}
