//! RAII span timing: a [`SpanTimer`] records its elapsed microseconds
//! into a [`Histogram`] when dropped (or explicitly stopped).

use crate::clock::{MonotonicClock, WallClock};
use crate::metrics::Histogram;

/// Times a scope and records the duration on drop.
///
/// ```
/// use swag_obs::{Histogram, SpanTimer};
/// let hist = Histogram::new();
/// {
///     let _span = SpanTimer::start(&hist);
///     // ... work ...
/// } // recorded here
/// assert_eq!(hist.count(), 1);
/// ```
pub struct SpanTimer<'a> {
    hist: &'a Histogram,
    clock: &'a dyn MonotonicClock,
    start: u64,
    armed: bool,
}

/// Shared wall clock for the plain `start` constructor.
static WALL: WallClock = WallClock;

impl<'a> SpanTimer<'a> {
    /// Starts a wall-clock span.
    pub fn start(hist: &'a Histogram) -> Self {
        SpanTimer::with_clock(hist, &WALL)
    }

    /// Starts a span against an explicit clock (deterministic in tests).
    pub fn with_clock(hist: &'a Histogram, clock: &'a dyn MonotonicClock) -> Self {
        SpanTimer {
            hist,
            clock,
            start: clock.now_micros(),
            armed: true,
        }
    }

    /// Elapsed microseconds so far, without recording.
    pub fn elapsed_micros(&self) -> u64 {
        self.clock.now_micros().saturating_sub(self.start)
    }

    /// Records now and returns the elapsed microseconds; drop becomes a
    /// no-op.
    pub fn stop(mut self) -> u64 {
        let elapsed = self.elapsed_micros();
        self.hist.record(elapsed);
        self.armed = false;
        elapsed
    }

    /// Abandons the span without recording.
    pub fn cancel(mut self) {
        self.armed = false;
    }
}

impl Drop for SpanTimer<'_> {
    fn drop(&mut self) {
        if self.armed {
            self.hist.record(self.elapsed_micros());
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    #[test]
    fn drop_records_exactly_once() {
        let hist = Histogram::new();
        {
            let _span = SpanTimer::start(&hist);
        }
        assert_eq!(hist.count(), 1);
    }

    #[test]
    fn stop_records_exact_manual_duration() {
        let hist = Histogram::new();
        let clock = ManualClock::new();
        let span = SpanTimer::with_clock(&hist, &clock);
        clock.advance_micros(777);
        assert_eq!(span.stop(), 777);
        let snap = hist.snapshot();
        assert_eq!((snap.count, snap.sum, snap.max), (1, 777, 777));
    }

    #[test]
    fn cancel_records_nothing() {
        let hist = Histogram::new();
        SpanTimer::start(&hist).cancel();
        assert_eq!(hist.count(), 0);
    }
}
