//! Minimal embedded HTTP/1.0 responder for the ops surface.
//!
//! This is deliberately the smallest server that can satisfy `curl` and
//! a Prometheus scraper: blocking `std::net` sockets on one
//! `std::thread` acceptor (swag-obs sits *below* `swag-exec` in the
//! dependency order, so the pool is not available here), HTTP/1.0
//! semantics (`Connection: close`, explicit `Content-Length`, no
//! keep-alive, no chunking), GET/HEAD only. Routing lives in the
//! injected handler; this module only speaks the wire format.
//!
//! It is also the first real socket the codebase opens — a stepping
//! stone to the networked `swagd` of ROADMAP item 1, kept small enough
//! to throw away when that lands.

use std::io::{self, Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Largest request head (request line + headers) we will buffer.
const MAX_REQUEST_BYTES: usize = 8 * 1024;

/// How long the acceptor sleeps between polls when idle, and the
/// per-connection socket read/write timeout.
const POLL_INTERVAL: Duration = Duration::from_millis(10);
const IO_TIMEOUT: Duration = Duration::from_millis(500);

/// One response from the route handler.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Response {
    /// HTTP status code (200, 404, ...).
    pub status: u16,
    /// `Content-Type` header value.
    pub content_type: &'static str,
    /// Response body.
    pub body: String,
}

impl Response {
    /// A `200 OK` with the given content type.
    pub fn ok(content_type: &'static str, body: String) -> Self {
        Response {
            status: 200,
            content_type,
            body,
        }
    }

    /// A plain-text `404 Not Found`.
    pub fn not_found() -> Self {
        Response {
            status: 404,
            content_type: "text/plain; charset=utf-8",
            body: "not found\n".to_string(),
        }
    }

    fn status_text(&self) -> &'static str {
        match self.status {
            200 => "OK",
            400 => "Bad Request",
            404 => "Not Found",
            405 => "Method Not Allowed",
            _ => "Internal Server Error",
        }
    }
}

/// Route handler: path (without query string) → response, or `None` for
/// a 404.
pub type Handler = Arc<dyn Fn(&str) -> Option<Response> + Send + Sync>;

/// A running embedded HTTP server. Dropping it stops the acceptor.
pub struct HttpServer {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    acceptor: Option<JoinHandle<()>>,
}

impl std::fmt::Debug for HttpServer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("HttpServer")
            .field("addr", &self.addr)
            .finish()
    }
}

impl HttpServer {
    /// Binds `addr` (e.g. `127.0.0.1:0` for an ephemeral port) and
    /// serves `handler` on a background thread until [`stop`] or drop.
    ///
    /// [`stop`]: HttpServer::stop
    pub fn serve(addr: &str, handler: Handler) -> io::Result<HttpServer> {
        let listener = TcpListener::bind(addr)?;
        let addr = listener.local_addr()?;
        listener.set_nonblocking(true)?;
        let stop = Arc::new(AtomicBool::new(false));
        let stop_flag = stop.clone();
        let acceptor = std::thread::Builder::new()
            .name("swag-obs-http".to_string())
            .spawn(move || {
                while !stop_flag.load(Ordering::Acquire) {
                    match listener.accept() {
                        Ok((stream, _)) => {
                            // Serve inline: the ops surface is a
                            // single-operator diagnostic port, not a
                            // fan-in front end; one connection at a time
                            // keeps this free of thread churn.
                            let _ = handle_connection(stream, &handler);
                        }
                        Err(e) if e.kind() == io::ErrorKind::WouldBlock => {
                            std::thread::sleep(POLL_INTERVAL);
                        }
                        Err(_) => std::thread::sleep(POLL_INTERVAL),
                    }
                }
            })?;
        Ok(HttpServer {
            addr,
            stop,
            acceptor: Some(acceptor),
        })
    }

    /// The bound address (resolves ephemeral ports).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the acceptor and joins its thread.
    pub fn stop(&mut self) {
        self.stop.store(true, Ordering::Release);
        if let Some(handle) = self.acceptor.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HttpServer {
    fn drop(&mut self) {
        self.stop();
    }
}

/// Reads one request, routes it, writes one response, closes.
fn handle_connection(mut stream: TcpStream, handler: &Handler) -> io::Result<()> {
    stream.set_read_timeout(Some(IO_TIMEOUT))?;
    stream.set_write_timeout(Some(IO_TIMEOUT))?;
    let head = read_head(&mut stream)?;
    let response = match parse_request_line(&head) {
        Some(("GET" | "HEAD", path)) => handler(path).unwrap_or_else(Response::not_found),
        Some(_) => Response {
            status: 405,
            content_type: "text/plain; charset=utf-8",
            body: "method not allowed\n".to_string(),
        },
        None => Response {
            status: 400,
            content_type: "text/plain; charset=utf-8",
            body: "bad request\n".to_string(),
        },
    };
    let head_only = matches!(parse_request_line(&head), Some(("HEAD", _)));
    write_response(&mut stream, &response, head_only)
}

/// Reads until the end of the request head (`\r\n\r\n`) or the size cap.
fn read_head(stream: &mut TcpStream) -> io::Result<String> {
    let mut buf = Vec::with_capacity(512);
    let mut chunk = [0u8; 512];
    loop {
        let n = match stream.read(&mut chunk) {
            Ok(0) => break,
            Ok(n) => n,
            // A slow client that sent a complete head already is fine.
            Err(e) if e.kind() == io::ErrorKind::WouldBlock => break,
            Err(e) if e.kind() == io::ErrorKind::TimedOut => break,
            Err(e) => return Err(e),
        };
        buf.extend_from_slice(&chunk[..n]);
        if buf.windows(4).any(|w| w == b"\r\n\r\n") || buf.len() >= MAX_REQUEST_BYTES {
            break;
        }
    }
    Ok(String::from_utf8_lossy(&buf).into_owned())
}

/// Parses `METHOD /path[?query] HTTP/x.y` into `(method, path)`.
fn parse_request_line(head: &str) -> Option<(&str, &str)> {
    let line = head.lines().next()?;
    let mut parts = line.split_whitespace();
    let method = parts.next()?;
    let target = parts.next()?;
    let version = parts.next()?;
    if !version.starts_with("HTTP/") {
        return None;
    }
    let path = target.split('?').next().unwrap_or(target);
    Some((method, path))
}

fn write_response(stream: &mut TcpStream, response: &Response, head_only: bool) -> io::Result<()> {
    let head = format!(
        "HTTP/1.0 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        response.status,
        response.status_text(),
        response.content_type,
        response.body.len()
    );
    stream.write_all(head.as_bytes())?;
    if !head_only {
        stream.write_all(response.body.as_bytes())?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn handler() -> Handler {
        Arc::new(|path: &str| match path {
            "/hello" => Some(Response::ok(
                "text/plain; charset=utf-8",
                "hi\n".to_string(),
            )),
            _ => None,
        })
    }

    fn roundtrip(addr: SocketAddr, request: &str) -> String {
        let mut stream = TcpStream::connect(addr).unwrap();
        stream.write_all(request.as_bytes()).unwrap();
        let mut out = String::new();
        stream.read_to_string(&mut out).unwrap();
        out
    }

    #[test]
    fn serves_routes_and_404s() {
        let mut server = HttpServer::serve("127.0.0.1:0", handler()).unwrap();
        let addr = server.addr();
        let ok = roundtrip(addr, "GET /hello HTTP/1.0\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
        assert!(ok.contains("Content-Length: 3\r\n"));
        assert!(ok.ends_with("\r\n\r\nhi\n"));
        let missing = roundtrip(addr, "GET /nope HTTP/1.0\r\n\r\n");
        assert!(
            missing.starts_with("HTTP/1.0 404 Not Found\r\n"),
            "{missing}"
        );
        server.stop();
    }

    #[test]
    fn query_strings_are_ignored_for_routing() {
        let server = HttpServer::serve("127.0.0.1:0", handler()).unwrap();
        let ok = roundtrip(server.addr(), "GET /hello?x=1 HTTP/1.1\r\nHost: t\r\n\r\n");
        assert!(ok.starts_with("HTTP/1.0 200 OK\r\n"), "{ok}");
    }

    #[test]
    fn head_omits_the_body_but_keeps_the_length() {
        let server = HttpServer::serve("127.0.0.1:0", handler()).unwrap();
        let out = roundtrip(server.addr(), "HEAD /hello HTTP/1.0\r\n\r\n");
        assert!(out.starts_with("HTTP/1.0 200 OK\r\n"), "{out}");
        assert!(out.contains("Content-Length: 3\r\n"));
        assert!(out.ends_with("\r\n\r\n"), "no body after the head: {out:?}");
    }

    #[test]
    fn non_get_is_rejected_not_crashed() {
        let server = HttpServer::serve("127.0.0.1:0", handler()).unwrap();
        let out = roundtrip(server.addr(), "POST /hello HTTP/1.0\r\n\r\n");
        assert!(out.starts_with("HTTP/1.0 405 "), "{out}");
        let out = roundtrip(server.addr(), "garbage\r\n\r\n");
        assert!(out.starts_with("HTTP/1.0 400 "), "{out}");
    }

    #[test]
    fn stop_joins_the_acceptor_and_frees_the_port() {
        let mut server = HttpServer::serve("127.0.0.1:0", handler()).unwrap();
        let addr = server.addr();
        server.stop();
        // Stopped server no longer accepts; rebinding the port works.
        let rebound = TcpListener::bind(addr);
        assert!(rebound.is_ok(), "port still held after stop");
    }
}
