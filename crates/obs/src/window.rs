//! Windowed metrics: periodic snapshot deltas over cumulative metrics.
//!
//! The substrate's [`Counter`]s and [`Histogram`]s are cumulative —
//! perfect for low-overhead recording, useless for "what is hot *right
//! now*". This module closes the gap without touching the hot path: a
//! [`MetricWindows`] periodically snapshots every metric in a
//! [`Registry`] and stores the **delta** since the previous rotation in
//! a fixed-capacity [`WindowRing`] per metric. Views over the ring give
//! `rate()` (events/s over the retained span) and p50/p99-over-last-N-
//! windows quantiles, reusing the mergeable-snapshot algebra of
//! [`HistogramSnapshot`]: a window is `later.saturating_sub(earlier)`,
//! a multi-window view is `merge` over deltas, and the two operations
//! commute (property-tested in `tests/windows.rs`), so per-shard rings
//! can be combined exactly like per-shard snapshots.
//!
//! Rotation is pulled, not pushed: callers (the ops HTTP surface, `swag
//! top`) invoke [`MetricWindows::maybe_rotate`] on their own cadence and
//! the ring advances only when at least one window width has elapsed on
//! the injectable clock. Nothing here runs unless someone is watching.

use std::collections::{BTreeMap, VecDeque};
use std::sync::{Arc, Mutex};

use crate::clock::MonotonicClock;
use crate::metrics::HistogramSnapshot;
use crate::registry::{split_labels, Metric, Registry};

/// One cumulative observation of a metric, captured at rotation time.
//
// The histogram variant dominates the size (64 bucket counts), but the
// whole point of the snapshot algebra is `Copy` value semantics — rings
// hold a few dozen of these, so the footprint is bounded and boxing
// would only add indirection.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Sample {
    /// Cumulative event count (delta-compressed in windows).
    Counter(u64),
    /// Instantaneous level (windows keep the value at rotation).
    Gauge(i64),
    /// Cumulative distribution (delta-compressed in windows).
    Histogram(HistogramSnapshot),
}

impl Sample {
    /// The window delta between two consecutive cumulative samples
    /// (gauges keep the later value — they are not cumulative).
    fn delta_from(&self, earlier: &Sample) -> Sample {
        match (self, earlier) {
            (Sample::Counter(now), Sample::Counter(then)) => {
                Sample::Counter(now.saturating_sub(*then))
            }
            (Sample::Histogram(now), Sample::Histogram(then)) => {
                Sample::Histogram(now.saturating_sub(then))
            }
            (now, _) => *now,
        }
    }

    /// Combines two window deltas: counters and histograms add, gauges
    /// keep `other` (the newer value by merge convention).
    fn combine(&self, other: &Sample) -> Sample {
        match (self, other) {
            (Sample::Counter(a), Sample::Counter(b)) => Sample::Counter(a + b),
            (Sample::Histogram(a), Sample::Histogram(b)) => Sample::Histogram(a.merge(b)),
            (_, newer) => *newer,
        }
    }

    /// Event count carried by this sample (gauges carry none).
    pub fn count(&self) -> u64 {
        match self {
            Sample::Counter(n) => *n,
            Sample::Histogram(h) => h.count,
            Sample::Gauge(_) => 0,
        }
    }

    /// The histogram snapshot, when this sample is one.
    pub fn histogram(&self) -> Option<&HistogramSnapshot> {
        match self {
            Sample::Histogram(h) => Some(h),
            _ => None,
        }
    }
}

/// One closed window: a metric's activity between two rotations.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Window {
    /// Clock reading at the rotation that opened this window.
    pub start_micros: u64,
    /// Clock reading at the rotation that closed it.
    pub end_micros: u64,
    /// Delta for counters/histograms; value at close for gauges.
    pub sample: Sample,
}

/// Fixed-capacity ring of [`Window`]s for one metric, oldest first.
///
/// The ring is a pure value (no locks, no clock): feed it cumulative
/// samples via [`WindowRing::rotate`] and read merged views back. This
/// is the piece the rotation/merge commutation law is stated over.
#[derive(Debug, Clone)]
pub struct WindowRing {
    capacity: usize,
    last: Sample,
    windows: VecDeque<Window>,
}

impl WindowRing {
    /// An empty ring retaining at most `capacity` windows, whose first
    /// rotation will delta against `baseline` (pass the metric's current
    /// cumulative sample so pre-attach history is not misread as a
    /// burst).
    pub fn new(capacity: usize, baseline: Sample) -> Self {
        WindowRing {
            capacity: capacity.max(1),
            last: baseline,
            windows: VecDeque::new(),
        }
    }

    /// Closes one window `[start, end)` against the new cumulative
    /// sample, evicting the oldest window beyond capacity.
    pub fn rotate(&mut self, start_micros: u64, end_micros: u64, cumulative: Sample) {
        let sample = cumulative.delta_from(&self.last);
        self.last = cumulative;
        if self.windows.len() == self.capacity {
            self.windows.pop_front();
        }
        self.windows.push_back(Window {
            start_micros,
            end_micros,
            sample,
        });
    }

    /// Retained windows, oldest first.
    pub fn windows(&self) -> impl Iterator<Item = &Window> {
        self.windows.iter()
    }

    /// Number of retained windows.
    pub fn len(&self) -> usize {
        self.windows.len()
    }

    /// Whether no window has closed yet.
    pub fn is_empty(&self) -> bool {
        self.windows.is_empty()
    }

    /// The merged view over the newest `last_n` windows (all, when
    /// larger than the retained count): counters/histograms merge, a
    /// gauge view is its newest value. `None` until a window has closed.
    pub fn merged(&self, last_n: usize) -> Option<WindowView> {
        let take = last_n.min(self.windows.len());
        if take == 0 {
            return None;
        }
        let newest = self.windows.len();
        let slice = self.windows.range(newest - take..);
        let mut sample: Option<Sample> = None;
        let mut start = u64::MAX;
        let mut end = 0u64;
        for w in slice {
            start = start.min(w.start_micros);
            end = end.max(w.end_micros);
            sample = Some(match sample {
                None => w.sample,
                Some(acc) => acc.combine(&w.sample),
            });
        }
        Some(WindowView {
            windows: take,
            span_micros: end.saturating_sub(start),
            sample: sample.expect("take > 0"),
        })
    }
}

/// A merged view over the newest windows of one metric.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct WindowView {
    /// Windows merged into this view.
    pub windows: usize,
    /// Wall-clock span the view covers, microseconds.
    pub span_micros: u64,
    /// Merged delta (counters/histograms) or newest value (gauges).
    pub sample: Sample,
}

impl WindowView {
    /// Events per second over the view's span (0 for gauges or an empty
    /// span).
    pub fn rate_per_s(&self) -> f64 {
        if self.span_micros == 0 {
            return 0.0;
        }
        self.sample.count() as f64 / (self.span_micros as f64 / 1e6)
    }
}

/// How wide each window is and how many the rings retain.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WindowSpec {
    /// Window width, microseconds.
    pub width_micros: u64,
    /// Windows retained per metric.
    pub capacity: usize,
}

impl WindowSpec {
    /// `capacity` windows of `width_micros` each.
    pub fn new(width_micros: u64, capacity: usize) -> Self {
        WindowSpec {
            width_micros: width_micros.max(1),
            capacity: capacity.max(1),
        }
    }
}

impl Default for WindowSpec {
    /// Six 10-second windows: "the last minute", one rotation per scrape
    /// at typical Prometheus intervals.
    fn default() -> Self {
        WindowSpec::new(10_000_000, 6)
    }
}

/// Registry-wide windowed metrics: one [`WindowRing`] per metric,
/// rotated together so every ring's windows share boundaries.
pub struct MetricWindows {
    spec: WindowSpec,
    clock: Arc<dyn MonotonicClock>,
    state: Mutex<WindowState>,
}

struct WindowState {
    last_rotate_micros: u64,
    rotations: u64,
    rings: BTreeMap<String, WindowRing>,
}

impl std::fmt::Debug for MetricWindows {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        f.debug_struct("MetricWindows")
            .field("spec", &self.spec)
            .field("metrics", &state.rings.len())
            .field("rotations", &state.rotations)
            .finish()
    }
}

impl MetricWindows {
    /// Windowed views over `spec`-sized windows on the given clock. The
    /// first window opens now.
    pub fn new(clock: Arc<dyn MonotonicClock>, spec: WindowSpec) -> Self {
        let now = clock.now_micros();
        MetricWindows {
            spec,
            clock,
            state: Mutex::new(WindowState {
                last_rotate_micros: now,
                rotations: 0,
                rings: BTreeMap::new(),
            }),
        }
    }

    /// The configured window geometry.
    pub fn spec(&self) -> WindowSpec {
        self.spec
    }

    /// Rotations performed so far.
    pub fn rotations(&self) -> u64 {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rotations
    }

    /// Rotates every ring if at least one window width has elapsed since
    /// the last rotation; returns whether a rotation happened. An idle
    /// gap longer than one width closes a single, proportionally wider
    /// window (views divide by true span, so rates stay honest).
    pub fn maybe_rotate(&self, registry: &Registry) -> bool {
        let now = self.clock.now_micros();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        if now.saturating_sub(state.last_rotate_micros) < self.spec.width_micros {
            return false;
        }
        self.rotate_locked(&mut state, now, registry);
        true
    }

    /// Rotates unconditionally (deterministic tests, `swag top --once`).
    pub fn rotate_now(&self, registry: &Registry) {
        let now = self.clock.now_micros();
        let mut state = self.state.lock().unwrap_or_else(|e| e.into_inner());
        self.rotate_locked(&mut state, now, registry);
    }

    fn rotate_locked(&self, state: &mut WindowState, now: u64, registry: &Registry) {
        let start = state.last_rotate_micros;
        state.last_rotate_micros = now;
        state.rotations += 1;
        for name in registry.names() {
            let Some(metric) = registry.get(&name) else {
                continue;
            };
            let cum = match metric {
                Metric::Counter(c) => Sample::Counter(c.get()),
                Metric::Gauge(g) => Sample::Gauge(g.get()),
                Metric::Histogram(h) => Sample::Histogram(h.snapshot()),
            };
            match state.rings.get_mut(&name) {
                Some(ring) => ring.rotate(start, now, cum),
                None => {
                    // A metric seen for the first time: baseline against
                    // its current cumulative state and start windowing
                    // from the *next* rotation — its pre-attach history
                    // is not a burst in this window.
                    state
                        .rings
                        .insert(name, WindowRing::new(self.spec.capacity, cum));
                }
            }
        }
    }

    /// The merged view over the newest `last_n` windows of `name`
    /// (`usize::MAX` for "all retained"). `None` until the metric has
    /// lived through a full rotation.
    pub fn view(&self, name: &str, last_n: usize) -> Option<WindowView> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rings
            .get(name)
            .and_then(|r| r.merged(last_n))
    }

    /// Metrics with at least one closed window, sorted.
    pub fn names(&self) -> Vec<String> {
        self.state
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .rings
            .iter()
            .filter(|(_, r)| !r.is_empty())
            .map(|(n, _)| n.clone())
            .collect()
    }

    /// Exports windowed views back into `registry` as gauges so a plain
    /// Prometheus scrape sees them: for every histogram family `F{l}`,
    /// `F_w_p50{l}` / `F_w_p99{l}` (bucket-resolution quantiles over the
    /// retained windows) and `F_w_rate_milli{l}` (observations/s ×1000);
    /// for every counter, `F_w_rate_milli{l}`. Derived gauges are
    /// skipped on later rotations (they end in the reserved `_w_*`
    /// suffixes), so the export does not feed back into itself.
    pub fn export_gauges(&self, registry: &Registry) {
        let names = self.names();
        for name in names {
            if is_windowed_export(&name) {
                continue;
            }
            let Some(view) = self.view(&name, usize::MAX) else {
                continue;
            };
            match view.sample {
                Sample::Gauge(_) => {}
                Sample::Counter(_) => {
                    let rate = registry.gauge(&windowed_name(&name, "_w_rate_milli"));
                    rate.set((view.rate_per_s() * 1000.0) as i64);
                }
                Sample::Histogram(h) => {
                    registry
                        .gauge(&windowed_name(&name, "_w_p50"))
                        .set(h.p50().min(i64::MAX as u64) as i64);
                    registry
                        .gauge(&windowed_name(&name, "_w_p99"))
                        .set(h.p99().min(i64::MAX as u64) as i64);
                    registry
                        .gauge(&windowed_name(&name, "_w_rate_milli"))
                        .set((view.rate_per_s() * 1000.0) as i64);
                }
            }
        }
    }
}

/// Splices a windowed-export suffix into a (possibly labeled) metric
/// name: `fam{l}` + `_w_p99` → `fam_w_p99{l}`.
fn windowed_name(name: &str, suffix: &str) -> String {
    match split_labels(name) {
        (family, None) => format!("{family}{suffix}"),
        (family, Some(labels)) => format!("{family}{suffix}{{{labels}}}"),
    }
}

/// Whether `name` is itself a windowed-export gauge (reserved suffixes).
fn is_windowed_export(name: &str) -> bool {
    let (family, _) = split_labels(name);
    family.ends_with("_w_p50") || family.ends_with("_w_p99") || family.ends_with("_w_rate_milli")
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::metrics::Histogram;

    fn hist_sample(values: &[u64]) -> Sample {
        let h = Histogram::new();
        for &v in values {
            h.record(v);
        }
        Sample::Histogram(h.snapshot())
    }

    #[test]
    fn ring_stores_deltas_not_cumulatives() {
        let mut ring = WindowRing::new(4, Sample::Counter(0));
        ring.rotate(0, 10, Sample::Counter(5));
        ring.rotate(10, 20, Sample::Counter(9));
        let windows: Vec<_> = ring.windows().map(|w| w.sample).collect();
        assert_eq!(windows, vec![Sample::Counter(5), Sample::Counter(4)]);
        let view = ring.merged(usize::MAX).unwrap();
        assert_eq!(view.sample, Sample::Counter(9));
        assert_eq!(view.span_micros, 20);
        assert!((view.rate_per_s() - 450_000.0).abs() < 1e-6); // 9 events / 20 µs
    }

    #[test]
    fn ring_evicts_beyond_capacity() {
        let mut ring = WindowRing::new(2, Sample::Counter(0));
        for i in 1..=5u64 {
            ring.rotate((i - 1) * 10, i * 10, Sample::Counter(i * 3));
        }
        assert_eq!(ring.len(), 2);
        // Only the last two deltas (each 3) survive.
        assert_eq!(ring.merged(usize::MAX).unwrap().sample, Sample::Counter(6));
        assert_eq!(ring.merged(1).unwrap().sample, Sample::Counter(3));
    }

    #[test]
    fn gauge_windows_keep_the_latest_value() {
        let mut ring = WindowRing::new(4, Sample::Gauge(0));
        ring.rotate(0, 10, Sample::Gauge(42));
        ring.rotate(10, 20, Sample::Gauge(-3));
        assert_eq!(ring.merged(usize::MAX).unwrap().sample, Sample::Gauge(-3));
        assert_eq!(ring.merged(usize::MAX).unwrap().rate_per_s(), 0.0);
    }

    #[test]
    fn counter_reset_saturates_to_empty_window() {
        let mut ring = WindowRing::new(4, Sample::Counter(100));
        ring.rotate(0, 10, Sample::Counter(40)); // went backwards
        assert_eq!(ring.merged(usize::MAX).unwrap().sample, Sample::Counter(0));
    }

    #[test]
    fn first_rotation_baselines_instead_of_bursting() {
        let clock = Arc::new(ManualClock::new());
        let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 4));
        let reg = Registry::new();
        reg.counter("swag_pre_existing_total").add(1_000_000);
        clock.advance_micros(1_000);
        assert!(windows.maybe_rotate(&reg));
        // The metric is baselined, not windowed, on its first sighting.
        assert!(windows
            .view("swag_pre_existing_total", usize::MAX)
            .is_none());
        reg.counter("swag_pre_existing_total").add(7);
        clock.advance_micros(1_000);
        assert!(windows.maybe_rotate(&reg));
        let view = windows.view("swag_pre_existing_total", usize::MAX).unwrap();
        assert_eq!(view.sample, Sample::Counter(7));
    }

    #[test]
    fn maybe_rotate_respects_the_width() {
        let clock = Arc::new(ManualClock::new());
        let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 4));
        let reg = Registry::new();
        reg.counter("swag_x_total");
        assert!(!windows.maybe_rotate(&reg));
        clock.advance_micros(999);
        assert!(!windows.maybe_rotate(&reg));
        clock.advance_micros(1);
        assert!(windows.maybe_rotate(&reg));
        assert!(!windows.maybe_rotate(&reg));
        assert_eq!(windows.rotations(), 1);
    }

    #[test]
    fn idle_gap_closes_one_wide_window() {
        let clock = Arc::new(ManualClock::new());
        let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 8));
        let reg = Registry::new();
        let c = reg.counter("swag_x_total");
        clock.advance_micros(1_000);
        windows.maybe_rotate(&reg); // baseline
        c.add(10);
        clock.advance_micros(5_000); // five widths idle
        assert!(windows.maybe_rotate(&reg));
        let view = windows.view("swag_x_total", usize::MAX).unwrap();
        assert_eq!(view.windows, 1);
        assert_eq!(view.span_micros, 5_000);
        assert!((view.rate_per_s() - 2_000.0).abs() < 1e-9); // 10 / 5ms
    }

    #[test]
    fn windowed_quantiles_see_only_recent_values() {
        let mut ring = WindowRing::new(2, hist_sample(&[]));
        let h = Histogram::new();
        for _ in 0..300 {
            h.record(8);
        }
        ring.rotate(0, 10, Sample::Histogram(h.snapshot()));
        for _ in 0..100 {
            h.record(4000);
        }
        ring.rotate(10, 20, Sample::Histogram(h.snapshot()));
        for _ in 0..100 {
            h.record(4000);
        }
        ring.rotate(20, 30, Sample::Histogram(h.snapshot()));
        // Capacity 2: the slow era dominates; the fast first window aged out.
        let merged = ring.merged(usize::MAX).unwrap();
        let snap = merged.sample.histogram().unwrap();
        assert_eq!(snap.count, 200);
        assert!(
            snap.p50() >= 2048,
            "p50 {} must be in the slow era",
            snap.p50()
        );
        // The full cumulative histogram still says p50 == 15: the fast
        // era's 300 observations outvote the slow 200 forever.
        assert_eq!(h.snapshot().p50(), 15);
    }

    #[test]
    fn export_gauges_writes_windowed_views_and_does_not_feed_back() {
        let clock = Arc::new(ManualClock::new());
        let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 4));
        let reg = Registry::new();
        let h = reg.histogram("swag_op_micros{op=\"ranking\"}");
        clock.advance_micros(1_000);
        windows.rotate_now(&reg); // baseline
        for _ in 0..90 {
            h.record(10);
        }
        for _ in 0..10 {
            h.record(5_000);
        }
        clock.advance_micros(1_000);
        windows.rotate_now(&reg);
        windows.export_gauges(&reg);
        let p99 = reg.gauge("swag_op_micros_w_p99{op=\"ranking\"}");
        assert_eq!(p99.get(), 5_000);
        let rate = reg.gauge("swag_op_micros_w_rate_milli{op=\"ranking\"}");
        assert_eq!(rate.get(), 100_000 * 1000); // 100 obs / 1 ms = 100k/s
                                                // Further rotations window the derived gauges as gauges but never
                                                // derive gauges *from* them.
        clock.advance_micros(1_000);
        windows.rotate_now(&reg);
        clock.advance_micros(1_000);
        windows.rotate_now(&reg);
        windows.export_gauges(&reg);
        assert!(reg
            .get("swag_op_micros_w_p99_w_p99{op=\"ranking\"}")
            .is_none());
        assert!(reg
            .get("swag_op_micros_w_rate_milli_w_rate_milli{op=\"ranking\"}")
            .is_none());
    }
}
