//! Span-tree assembly and rendering.
//!
//! Turns the flat begin/end event stream of a
//! [`FlightRecorder`](crate::FlightRecorder) dump back into per-trace
//! span trees, with a canonical *shape* string for structural
//! comparisons (serial vs parallel execution of the same query must
//! yield the same shape) and an ASCII waterfall renderer for the
//! `swag trace` CLI.

use std::collections::BTreeMap;

use crate::recorder::{SpanEvent, SpanEventKind};

/// One reassembled span and its children.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// Span label.
    pub label: &'static str,
    /// The span's id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Thread the span ran on.
    pub thread: u64,
    /// Begin timestamp, microseconds.
    pub start_micros: u64,
    /// End timestamp; `None` when only the begin record survived.
    pub end_micros: Option<u64>,
    /// Payload from the end record.
    pub detail: u64,
    /// Child spans, ordered by start time then span id.
    pub children: Vec<SpanNode>,
}

impl SpanNode {
    /// Wall time of this span (0 while unfinished).
    pub fn total_micros(&self) -> u64 {
        self.end_micros
            .map_or(0, |e| e.saturating_sub(self.start_micros))
    }

    /// Whether both begin and end records survived.
    pub fn is_complete(&self) -> bool {
        self.end_micros.is_some()
    }

    /// This span plus all descendants.
    pub fn span_count(&self) -> usize {
        1 + self
            .children
            .iter()
            .map(SpanNode::span_count)
            .sum::<usize>()
    }

    /// Canonical structure string: labels only, children sorted, so two
    /// runs of the same query compare equal regardless of timing,
    /// thread placement, or ids. E.g. `query(probe(),probe(),rank())`.
    pub fn shape(&self) -> String {
        let mut kids: Vec<String> = self.children.iter().map(SpanNode::shape).collect();
        kids.sort();
        format!("{}({})", self.label, kids.join(","))
    }

    /// Depth-first search for every node with `label`.
    pub fn find_all<'a>(&'a self, label: &str, out: &mut Vec<&'a SpanNode>) {
        if self.label == label {
            out.push(self);
        }
        for child in &self.children {
            child.find_all(label, out);
        }
    }
}

/// All surviving spans of one trace.
#[derive(Debug, Clone)]
pub struct SpanTree {
    /// The trace id.
    pub trace_id: u64,
    /// Spans whose parent is 0 (proper roots), ordered by start time.
    pub roots: Vec<SpanNode>,
    /// Spans whose parent id was not found in the trace — evidence of a
    /// broken propagation chain or ring recycling. They are *not* in
    /// `roots`; a healthy complete trace has `orphans == 0`.
    pub orphans: usize,
}

impl SpanTree {
    /// Total spans across all roots (orphans excluded).
    pub fn span_count(&self) -> usize {
        self.roots.iter().map(SpanNode::span_count).sum()
    }

    /// Canonical structure of the whole trace (roots sorted).
    pub fn shape(&self) -> String {
        let mut roots: Vec<String> = self.roots.iter().map(SpanNode::shape).collect();
        roots.sort();
        roots.join(";")
    }

    /// Earliest start across roots.
    pub fn start_micros(&self) -> u64 {
        self.roots.iter().map(|r| r.start_micros).min().unwrap_or(0)
    }

    /// Wall time from the earliest root start to the latest root end.
    pub fn total_micros(&self) -> u64 {
        let end = self
            .roots
            .iter()
            .filter_map(|r| r.end_micros)
            .max()
            .unwrap_or(0);
        end.saturating_sub(self.start_micros())
    }
}

/// Partially reassembled span.
struct Proto {
    label: &'static str,
    parent: u64,
    thread: u64,
    start_micros: u64,
    end_micros: Option<u64>,
    detail: u64,
}

/// Groups `events` by trace and reassembles each trace's span tree.
/// Trees come back ordered by trace id; events may be in any order.
pub fn assemble(events: &[SpanEvent]) -> Vec<SpanTree> {
    let mut traces: BTreeMap<u64, BTreeMap<u64, Proto>> = BTreeMap::new();
    for ev in events {
        if ev.trace_id == 0 {
            continue;
        }
        let spans = traces.entry(ev.trace_id).or_default();
        let proto = spans.entry(ev.span_id).or_insert_with(|| Proto {
            label: ev.label,
            parent: ev.parent,
            thread: ev.thread,
            start_micros: ev.micros,
            end_micros: None,
            detail: 0,
        });
        match ev.kind {
            SpanEventKind::Begin => {
                proto.label = ev.label;
                proto.start_micros = ev.micros;
                proto.thread = ev.thread;
            }
            SpanEventKind::End => {
                proto.end_micros = Some(ev.micros);
                proto.detail = ev.detail;
            }
        }
    }

    traces
        .into_iter()
        .map(|(trace_id, mut spans)| {
            // parent -> children ids, children in (start, id) order.
            let mut children: BTreeMap<u64, Vec<u64>> = BTreeMap::new();
            let mut root_ids = Vec::new();
            let mut orphans = 0usize;
            let mut order: Vec<(u64, u64)> =
                spans.iter().map(|(id, p)| (p.start_micros, *id)).collect();
            order.sort_unstable();
            for &(_, id) in &order {
                let parent = spans[&id].parent;
                if parent == 0 {
                    root_ids.push(id);
                } else if spans.contains_key(&parent) {
                    children.entry(parent).or_default().push(id);
                } else {
                    orphans += 1;
                }
            }
            let roots = root_ids
                .into_iter()
                .filter_map(|id| build(id, &mut spans, &children))
                .collect();
            SpanTree {
                trace_id,
                roots,
                orphans,
            }
        })
        .collect()
}

/// Recursively materialises span `id`. Removal from `spans` makes every
/// span appear in at most one tree even on malformed parent cycles.
fn build(
    id: u64,
    spans: &mut BTreeMap<u64, Proto>,
    children: &BTreeMap<u64, Vec<u64>>,
) -> Option<SpanNode> {
    let proto = spans.remove(&id)?;
    let kids = children
        .get(&id)
        .map(|ids| {
            ids.iter()
                .filter_map(|&c| build(c, spans, children))
                .collect()
        })
        .unwrap_or_default();
    Some(SpanNode {
        label: proto.label,
        span_id: id,
        parent: proto.parent,
        thread: proto.thread,
        start_micros: proto.start_micros,
        end_micros: proto.end_micros,
        detail: proto.detail,
        children: kids,
    })
}

/// Renders one trace as an indented ASCII waterfall, `width` columns of
/// timeline. Bars are positioned on the trace's own time base:
///
/// ```text
/// query                      15 us |###############|
///   index_scan                7 us |     #######   |
/// ```
pub fn render_waterfall(tree: &SpanTree, width: usize) -> String {
    let width = width.max(8);
    let t0 = tree.start_micros();
    let total = tree.total_micros().max(1);
    let mut label_col = 0usize;
    for root in &tree.roots {
        measure(root, 0, &mut label_col);
    }
    let mut out = String::new();
    for root in &tree.roots {
        line(root, 0, t0, total, width, label_col, &mut out);
    }
    out
}

fn measure(node: &SpanNode, depth: usize, label_col: &mut usize) {
    *label_col = (*label_col).max(depth * 2 + node.label.len());
    for child in &node.children {
        measure(child, depth + 1, label_col);
    }
}

fn line(
    node: &SpanNode,
    depth: usize,
    t0: u64,
    total: u64,
    width: usize,
    label_col: usize,
    out: &mut String,
) {
    use std::fmt::Write;
    let indent = depth * 2;
    let offset = ((node.start_micros.saturating_sub(t0)) as u128 * width as u128 / total as u128)
        .min(width as u128 - 1) as usize;
    let (bar, dur) = match node.end_micros {
        Some(_) => {
            let micros = node.total_micros();
            let len = ((micros as u128 * width as u128).div_ceil(total as u128) as usize)
                .clamp(1, width - offset);
            ("#".repeat(len), format!("{micros} us"))
        }
        None => ("…".to_string(), "?".to_string()),
    };
    let _ = writeln!(
        out,
        "{:indent$}{:<pad$} {:>10} t{:<3} |{}{}{}|",
        "",
        node.label,
        dur,
        node.thread,
        " ".repeat(offset),
        bar,
        " ".repeat(width.saturating_sub(offset + bar.len())),
        indent = indent,
        pad = label_col.saturating_sub(indent),
    );
    for child in &node.children {
        line(child, depth + 1, t0, total, width, label_col, out);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::FlightRecorder;
    use crate::TraceCtx;
    use std::sync::Arc;

    fn recorded_trace() -> (Vec<SpanEvent>, TraceCtx) {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(64, clock.clone());
        rec.enable();
        let ctx;
        {
            let root = rec.span("query");
            ctx = root.ctx().unwrap();
            clock.advance_micros(2);
            {
                let _scan = rec.span("index_scan");
                clock.advance_micros(4);
                {
                    let _p = rec.span("probe");
                    clock.advance_micros(1);
                }
                {
                    let _p = rec.span("probe");
                    clock.advance_micros(1);
                }
            }
            {
                let mut rank = rec.span("ranking");
                rank.set_detail(42);
                clock.advance_micros(3);
            }
        }
        (rec.dump(), ctx)
    }

    #[test]
    fn assembles_one_connected_tree() {
        let (events, ctx) = recorded_trace();
        let trees = assemble(&events);
        assert_eq!(trees.len(), 1);
        let tree = &trees[0];
        assert_eq!(tree.trace_id, ctx.trace_id);
        assert_eq!(tree.orphans, 0);
        assert_eq!(tree.roots.len(), 1);
        assert_eq!(tree.span_count(), 5);
        assert_eq!(tree.shape(), "query(index_scan(probe(),probe()),ranking())");
        let root = &tree.roots[0];
        assert_eq!(root.total_micros(), 11);
        let mut ranks = Vec::new();
        root.find_all("ranking", &mut ranks);
        assert_eq!(ranks.len(), 1);
        assert_eq!(ranks[0].detail, 42);
    }

    #[test]
    fn shape_ignores_sibling_order_and_ids() {
        let (events, _) = recorded_trace();
        let (events2, _) = recorded_trace();
        let a = assemble(&events);
        let b = assemble(&events2);
        assert_eq!(a[0].shape(), b[0].shape());
        assert_ne!(a[0].trace_id, b[0].trace_id);
    }

    #[test]
    fn missing_parent_counts_as_orphan() {
        let (mut events, _) = recorded_trace();
        // Drop the index_scan span entirely: its two probes lose their
        // parent.
        let scan_id = events
            .iter()
            .find(|e| e.label == "index_scan")
            .unwrap()
            .span_id;
        events.retain(|e| e.span_id != scan_id);
        let trees = assemble(&events);
        assert_eq!(trees[0].orphans, 2);
        assert_eq!(trees[0].shape(), "query(ranking())");
    }

    #[test]
    fn unfinished_span_renders_without_panicking() {
        let (mut events, _) = recorded_trace();
        events.retain(|e| !(e.label == "ranking" && e.kind == SpanEventKind::End));
        let trees = assemble(&events);
        let text = render_waterfall(&trees[0], 24);
        assert!(text.contains('…'));
        assert!(text.contains("query"));
    }

    #[test]
    fn waterfall_orders_and_scales() {
        let (events, _) = recorded_trace();
        let trees = assemble(&events);
        let text = render_waterfall(&trees[0], 22);
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 5);
        assert!(lines[0].trim_start().starts_with("query"));
        assert!(lines[1].trim_start().starts_with("index_scan"));
        // The root bar spans the full timeline.
        assert!(lines[0].contains("######"));
        assert!(text.contains("11 us"));
    }

    #[test]
    fn empty_events_assemble_to_nothing() {
        assert!(assemble(&[]).is_empty());
    }
}
