//! Exact nearest-rank percentile summaries of `f64` sample sets.
//!
//! This is the canonical home of `Percentiles`; `swag-sim` re-exports it
//! so existing simulation call sites keep compiling.

/// Percentile summary of a sample set.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Percentiles {
    /// Number of samples.
    pub count: usize,
    /// Minimum.
    pub min: f64,
    /// Median.
    pub p50: f64,
    /// 90th percentile.
    pub p90: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Maximum.
    pub max: f64,
    /// Arithmetic mean.
    pub mean: f64,
}

impl Percentiles {
    /// Summarises a sample set. Returns the all-zero summary for empty
    /// input.
    ///
    /// Quantiles use the nearest-rank definition: the q-quantile of n
    /// sorted samples is the one at rank `ceil(q*n)` (1-based), i.e.
    /// index `ceil(q*n)-1`. Unlike interpolation-style picks this always
    /// returns an actual sample and matches the textbook definition used
    /// by the paper's latency tables.
    pub fn of(samples: &[f64]) -> Self {
        if samples.is_empty() {
            return Percentiles {
                count: 0,
                min: 0.0,
                p50: 0.0,
                p90: 0.0,
                p99: 0.0,
                max: 0.0,
                mean: 0.0,
            };
        }
        let mut sorted = samples.to_vec();
        sorted.sort_by(f64::total_cmp);
        let n = sorted.len();
        let pick = |q: f64| {
            let rank = (q * n as f64).ceil() as usize;
            sorted[rank.clamp(1, n) - 1]
        };
        Percentiles {
            count: n,
            min: sorted[0],
            p50: pick(0.5),
            p90: pick(0.9),
            p99: pick(0.99),
            max: sorted[n - 1],
            mean: sorted.iter().sum::<f64>() / n as f64,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_is_zeroed() {
        let p = Percentiles::of(&[]);
        assert_eq!(p.count, 0);
        assert_eq!(p.max, 0.0);
    }

    #[test]
    fn single_sample() {
        let p = Percentiles::of(&[7.0]);
        assert_eq!(
            (p.min, p.p50, p.p99, p.max, p.mean),
            (7.0, 7.0, 7.0, 7.0, 7.0)
        );
    }

    #[test]
    fn nearest_rank_on_a_ramp() {
        let samples: Vec<f64> = (1..=100).map(f64::from).collect();
        let p = Percentiles::of(&samples);
        // rank ceil(0.5*100)=50 → sample 50; ceil(0.9*100)=90 → 90;
        // ceil(0.99*100)=99 → 99.
        assert_eq!(p.p50, 50.0);
        assert_eq!(p.p90, 90.0);
        assert_eq!(p.p99, 99.0);
    }

    #[test]
    fn nearest_rank_small_sets() {
        // n=4: p50 rank ceil(2)=2 → second-smallest, p99 rank ceil(3.96)=4.
        let p = Percentiles::of(&[10.0, 20.0, 30.0, 40.0]);
        assert_eq!(p.p50, 20.0);
        assert_eq!(p.p99, 40.0);
    }

    #[test]
    fn quantiles_are_actual_samples() {
        let samples = [3.0, 1.0, 4.0, 1.0, 5.0, 9.0, 2.0, 6.0];
        let p = Percentiles::of(&samples);
        for q in [p.p50, p.p90, p.p99] {
            assert!(samples.contains(&q), "{q} is not a sample");
        }
        assert!(p.min <= p.p50 && p.p50 <= p.p90 && p.p90 <= p.p99 && p.p99 <= p.max);
    }
}
