//! Named-metric registry and text exporters.
//!
//! A [`Registry`] maps stable metric names to shared handles. Components
//! register on construction (`get-or-create`, so two components naming
//! the same metric share one handle) and record through the returned
//! `Arc` without ever touching the registry lock again.
//!
//! Two export formats:
//! - [`Registry::render_prometheus`] — Prometheus text exposition
//!   (cumulative `_bucket{le=...}` histogram series).
//! - [`Registry::render_json`] — one JSON object per line, for log
//!   shipping and the bench harness.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};

/// A shared handle to one named metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic count.
    Counter(Arc<Counter>),
    /// Signed level.
    Gauge(Arc<Gauge>),
    /// log₂ distribution.
    Histogram(Arc<Histogram>),
}

/// Named-metric lookup table.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
    help: RwLock<BTreeMap<String, String>>,
}

/// Escapes a metric HELP docstring for the Prometheus text exposition:
/// `\` → `\\` and line feed → `\n`, so arbitrary text cannot break the
/// one-line comment structure or inject fake series.
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Escapes a label value for the Prometheus text exposition: `\` → `\\`,
/// `"` → `\"`, and line feed → `\n` — the three characters that would
/// otherwise terminate the quoted value or the line early.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry used by default-constructed components.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", kind(&other)),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", kind(&other)),
        }
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", kind(&other)),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.get(name) {
            return m;
        }
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Attaches a HELP docstring to `name`, emitted (escaped) as a
    /// `# HELP` comment in the Prometheus exposition. Overwrites any
    /// previous help text; the metric need not exist yet.
    pub fn set_help(&self, name: &str, help: &str) {
        self.help
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), help.to_string());
    }

    /// The raw (unescaped) HELP docstring for `name`, if set.
    pub fn help(&self, name: &str) -> Option<String> {
        self.help
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Looks up an existing metric by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the Prometheus text exposition format.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let help = self.help.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            if let Some(text) = help.get(name) {
                out.push_str(&format!("# HELP {name} {}\n", escape_help(text)));
            }
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!("# TYPE {name} counter\n{name} {}\n", c.get()));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!("# TYPE {name} gauge\n{name} {}\n", g.get()));
                }
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    out.push_str(&format!("# TYPE {name} histogram\n"));
                    let mut cumulative = 0u64;
                    let top = highest_used_bucket(&snap.buckets);
                    for (i, &n) in snap.buckets.iter().enumerate().take(top + 1) {
                        cumulative += n;
                        out.push_str(&format!(
                            "{name}_bucket{{le=\"{}\"}} {cumulative}\n",
                            escape_label_value(&Histogram::bucket_bound(i).to_string())
                        ));
                    }
                    out.push_str(&format!("{name}_bucket{{le=\"+Inf\"}} {}\n", snap.count));
                    out.push_str(&format!("{name}_sum {}\n", snap.sum));
                    out.push_str(&format!("{name}_count {}\n", snap.count));
                }
            }
        }
        out
    }

    /// Renders one JSON object per metric per line (JSON lines).
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{}}}\n",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{}}}\n",
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}\n",
                        s.count, s.sum, s.mean(), s.p50(), s.p90(), s.p99(), s.max
                    ));
                }
            }
        }
        out
    }
}

fn kind(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Index of the highest non-empty bucket (0 when all empty), used to
/// truncate the exported bucket series.
fn highest_used_bucket(buckets: &[u64; HISTOGRAM_BUCKETS]) -> usize {
    buckets.iter().rposition(|&n| n > 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("swag_test_total");
        let b = reg.counter("swag_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("swag_test_total");
        reg.gauge("swag_test_total");
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let reg = Registry::new();
        reg.counter("swag_queries_total").add(5);
        reg.gauge("swag_queue_depth").set(-2);
        let h = reg.histogram("swag_query_micros");
        h.record(3);
        h.record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE swag_queries_total counter"));
        assert!(text.contains("swag_queries_total 5"));
        assert!(text.contains("swag_queue_depth -2"));
        assert!(text.contains("# TYPE swag_query_micros histogram"));
        assert!(text.contains("swag_query_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("swag_query_micros_sum 103"));
        assert!(text.contains("swag_query_micros_count 2"));
        // Cumulative buckets are non-decreasing.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("swag_query_micros_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn json_rendering_is_one_object_per_line() {
        let reg = Registry::new();
        reg.counter("swag_a_total").inc();
        reg.histogram("swag_b_micros").record(7);
        let text = reg.render_json();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"name\":"));
        }
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"p50\":7"));
    }

    #[test]
    fn help_text_is_emitted_before_type() {
        let reg = Registry::new();
        reg.counter("swag_queries_total").add(1);
        reg.set_help("swag_queries_total", "Total queries served.");
        let text = reg.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# HELP swag_queries_total Total queries served.");
        assert_eq!(lines[1], "# TYPE swag_queries_total counter");
        assert_eq!(
            reg.help("swag_queries_total").unwrap(),
            "Total queries served."
        );
        // Help for an unregistered metric is stored but not rendered.
        reg.set_help("swag_ghost", "never registered");
        assert!(!reg.render_prometheus().contains("ghost"));
    }

    #[test]
    fn hostile_help_cannot_break_exposition_structure() {
        let reg = Registry::new();
        reg.counter("swag_evil_total").add(7);
        // A help string trying to inject a fake series via a newline, to
        // truncate the line with a backslash, and to confuse quoting.
        reg.set_help(
            "swag_evil_total",
            "line one\nswag_fake_total 999\nback\\slash \"quoted\"",
        );
        let text = reg.render_prometheus();
        // The newline is escaped: no injected series line exists.
        assert!(!text.contains("\nswag_fake_total"));
        assert!(text.contains(
            "# HELP swag_evil_total line one\\nswag_fake_total 999\\nback\\\\slash \"quoted\""
        ));
        // Every line is still a comment or a sample of the real metric.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("swag_evil_total"),
                "unexpected line {line:?}"
            );
        }
    }

    #[test]
    fn escapers_cover_backslash_quote_and_newline() {
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
        assert_eq!(escape_label_value("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_label_value(""), "");
    }

    #[test]
    fn names_are_sorted() {
        let reg = Registry::new();
        reg.counter("swag_z");
        reg.counter("swag_a");
        assert_eq!(
            reg.names(),
            vec!["swag_a".to_string(), "swag_z".to_string()]
        );
    }
}
