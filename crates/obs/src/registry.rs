//! Named-metric registry and text exporters.
//!
//! A [`Registry`] maps stable metric names to shared handles. Components
//! register on construction (`get-or-create`, so two components naming
//! the same metric share one handle) and record through the returned
//! `Arc` without ever touching the registry lock again.
//!
//! Two export formats:
//! - [`Registry::render_prometheus`] — Prometheus text exposition
//!   (cumulative `_bucket{le=...}` histogram series).
//! - [`Registry::render_json`] — one JSON object per line, for log
//!   shipping and the bench harness.

use std::collections::BTreeMap;
use std::sync::{Arc, OnceLock, RwLock};

use crate::metrics::{Counter, Gauge, Histogram, HISTOGRAM_BUCKETS};

/// A shared handle to one named metric.
#[derive(Debug, Clone)]
pub enum Metric {
    /// Monotonic count.
    Counter(Arc<Counter>),
    /// Signed level.
    Gauge(Arc<Gauge>),
    /// log₂ distribution.
    Histogram(Arc<Histogram>),
}

/// Named-metric lookup table.
#[derive(Debug, Default)]
pub struct Registry {
    metrics: RwLock<BTreeMap<String, Metric>>,
    help: RwLock<BTreeMap<String, String>>,
}

/// Escapes a metric HELP docstring for the Prometheus text exposition:
/// `\` → `\\` and line feed → `\n`, so arbitrary text cannot break the
/// one-line comment structure or inject fake series.
pub fn escape_help(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Builds the canonical registry name of a **labeled** metric:
/// `family{key="value",...}` with label values escaped. Two call sites
/// naming the same family and labels therefore share one handle, and the
/// exporters render every member of a family under a single
/// `# TYPE`/`# HELP` header (histograms splice the labels next to `le`).
///
/// Label *keys* must be plain identifiers (letters, digits, `_`); values
/// may be arbitrary and are escaped.
///
/// ```
/// use swag_obs::labeled_name;
/// assert_eq!(
///     labeled_name("swag_op_micros", &[("op", "index_scan")]),
///     "swag_op_micros{op=\"index_scan\"}"
/// );
/// ```
pub fn labeled_name(family: &str, labels: &[(&str, &str)]) -> String {
    debug_assert!(
        !family.contains('{') && !labels.is_empty(),
        "labeled_name takes a bare family plus at least one label"
    );
    let mut out = String::with_capacity(family.len() + 16 * labels.len());
    out.push_str(family);
    out.push('{');
    for (i, (k, v)) in labels.iter().enumerate() {
        debug_assert!(
            k.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "label key {k:?} must be an identifier"
        );
        if i > 0 {
            out.push(',');
        }
        out.push_str(k);
        out.push_str("=\"");
        out.push_str(&escape_label_value(v));
        out.push('"');
    }
    out.push('}');
    out
}

/// Splits a registry name into `(family, labels)` — the inverse of
/// [`labeled_name`]. Bare names return `(name, None)`; the label part is
/// returned *with* its braces stripped (`op="index_scan"`).
pub(crate) fn split_labels(name: &str) -> (&str, Option<&str>) {
    match name.find('{') {
        Some(open) if name.ends_with('}') => (&name[..open], Some(&name[open + 1..name.len() - 1])),
        _ => (name, None),
    }
}

/// Escapes a label value for the Prometheus text exposition: `\` → `\\`,
/// `"` → `\"`, and line feed → `\n` — the three characters that would
/// otherwise terminate the quoted value or the line early.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

impl Registry {
    /// An empty registry.
    pub fn new() -> Self {
        Registry::default()
    }

    /// The process-wide registry used by default-constructed components.
    pub fn global() -> &'static Registry {
        static GLOBAL: OnceLock<Registry> = OnceLock::new();
        GLOBAL.get_or_init(Registry::new)
    }

    /// The counter named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn counter(&self, name: &str) -> Arc<Counter> {
        match self.register(name, || Metric::Counter(Arc::new(Counter::new()))) {
            Metric::Counter(c) => c,
            other => panic!("metric {name:?} is a {}, not a counter", kind(&other)),
        }
    }

    /// The gauge named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        match self.register(name, || Metric::Gauge(Arc::new(Gauge::new()))) {
            Metric::Gauge(g) => g,
            other => panic!("metric {name:?} is a {}, not a gauge", kind(&other)),
        }
    }

    /// The histogram named `name`, creating it on first use.
    ///
    /// # Panics
    /// Panics if `name` is already registered as a different kind.
    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        match self.register(name, || Metric::Histogram(Arc::new(Histogram::new()))) {
            Metric::Histogram(h) => h,
            other => panic!("metric {name:?} is a {}, not a histogram", kind(&other)),
        }
    }

    fn register(&self, name: &str, make: impl FnOnce() -> Metric) -> Metric {
        if let Some(m) = self.get(name) {
            return m;
        }
        let mut metrics = self.metrics.write().unwrap_or_else(|e| e.into_inner());
        metrics.entry(name.to_string()).or_insert_with(make).clone()
    }

    /// Attaches a HELP docstring to `name`, emitted (escaped) as a
    /// `# HELP` comment in the Prometheus exposition. Overwrites any
    /// previous help text; the metric need not exist yet.
    pub fn set_help(&self, name: &str, help: &str) {
        self.help
            .write()
            .unwrap_or_else(|e| e.into_inner())
            .insert(name.to_string(), help.to_string());
    }

    /// The raw (unescaped) HELP docstring for `name`, if set.
    pub fn help(&self, name: &str) -> Option<String> {
        self.help
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// Looks up an existing metric by name.
    pub fn get(&self, name: &str) -> Option<Metric> {
        self.metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .get(name)
            .cloned()
    }

    /// All registered names, sorted.
    pub fn names(&self) -> Vec<String> {
        self.metrics
            .read()
            .unwrap_or_else(|e| e.into_inner())
            .keys()
            .cloned()
            .collect()
    }

    /// Number of registered metrics.
    pub fn len(&self) -> usize {
        self.metrics.read().unwrap_or_else(|e| e.into_inner()).len()
    }

    /// Whether no metrics are registered.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Renders the Prometheus text exposition format. Members of a
    /// labeled family (names built by [`labeled_name`]) are emitted under
    /// one `# TYPE`/`# HELP` header; `# HELP` resolves through the full
    /// name first, then the bare family, so one `set_help` call covers
    /// every label combination.
    pub fn render_prometheus(&self) -> String {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let help = self.help.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        let mut headed: std::collections::BTreeSet<&str> = std::collections::BTreeSet::new();
        for (name, metric) in metrics.iter() {
            let (family, labels) = split_labels(name);
            if headed.insert(family) {
                if let Some(text) = help.get(name).or_else(|| help.get(family)) {
                    out.push_str(&format!("# HELP {family} {}\n", escape_help(text)));
                }
                out.push_str(&format!("# TYPE {family} {}\n", kind(metric)));
            }
            // `series!(suffix, extra-label)` renders one sample line of
            // this family member, splicing its labels back in.
            macro_rules! series {
                ($suffix:expr, $extra:expr, $value:expr) => {{
                    let extra: &str = $extra;
                    out.push_str(family);
                    out.push_str($suffix);
                    match (labels, extra.is_empty()) {
                        (None, true) => {}
                        (None, false) => {
                            out.push('{');
                            out.push_str(extra);
                            out.push('}');
                        }
                        (Some(l), true) => {
                            out.push('{');
                            out.push_str(l);
                            out.push('}');
                        }
                        (Some(l), false) => {
                            out.push('{');
                            out.push_str(l);
                            out.push(',');
                            out.push_str(extra);
                            out.push('}');
                        }
                    }
                    out.push_str(&format!(" {}\n", $value));
                }};
            }
            match metric {
                Metric::Counter(c) => series!("", "", c.get()),
                Metric::Gauge(g) => series!("", "", g.get()),
                Metric::Histogram(h) => {
                    let snap = h.snapshot();
                    let mut cumulative = 0u64;
                    let top = highest_used_bucket(&snap.buckets);
                    for (i, &n) in snap.buckets.iter().enumerate().take(top + 1) {
                        cumulative += n;
                        let le = format!(
                            "le=\"{}\"",
                            escape_label_value(&Histogram::bucket_bound(i).to_string())
                        );
                        series!("_bucket", le.as_str(), cumulative);
                    }
                    series!("_bucket", "le=\"+Inf\"", snap.count);
                    series!("_sum", "", snap.sum);
                    series!("_count", "", snap.count);
                }
            }
        }
        out
    }

    /// Renders one JSON object per metric per line (JSON lines).
    pub fn render_json(&self) -> String {
        let metrics = self.metrics.read().unwrap_or_else(|e| e.into_inner());
        let mut out = String::new();
        for (name, metric) in metrics.iter() {
            let name = json_escape(name);
            match metric {
                Metric::Counter(c) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"counter\",\"value\":{}}}\n",
                        c.get()
                    ));
                }
                Metric::Gauge(g) => {
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"gauge\",\"value\":{}}}\n",
                        g.get()
                    ));
                }
                Metric::Histogram(h) => {
                    let s = h.snapshot();
                    out.push_str(&format!(
                        "{{\"name\":\"{name}\",\"type\":\"histogram\",\"count\":{},\"sum\":{},\"mean\":{:.3},\"p50\":{},\"p90\":{},\"p99\":{},\"max\":{}}}\n",
                        s.count, s.sum, s.mean(), s.p50(), s.p90(), s.p99(), s.max
                    ));
                }
            }
        }
        out
    }
}

/// Escapes a string for embedding in a JSON string literal (labeled
/// metric names contain `"`).
pub(crate) fn json_escape(text: &str) -> String {
    let mut out = String::with_capacity(text.len());
    for c in text.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out
}

fn kind(metric: &Metric) -> &'static str {
    match metric {
        Metric::Counter(_) => "counter",
        Metric::Gauge(_) => "gauge",
        Metric::Histogram(_) => "histogram",
    }
}

/// Index of the highest non-empty bucket (0 when all empty), used to
/// truncate the exported bucket series.
fn highest_used_bucket(buckets: &[u64; HISTOGRAM_BUCKETS]) -> usize {
    buckets.iter().rposition(|&n| n > 0).unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn get_or_create_returns_shared_handles() {
        let reg = Registry::new();
        let a = reg.counter("swag_test_total");
        let b = reg.counter("swag_test_total");
        a.inc();
        b.add(2);
        assert_eq!(a.get(), 3);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    #[should_panic(expected = "not a gauge")]
    fn kind_mismatch_panics() {
        let reg = Registry::new();
        reg.counter("swag_test_total");
        reg.gauge("swag_test_total");
    }

    #[test]
    fn prometheus_rendering_shapes() {
        let reg = Registry::new();
        reg.counter("swag_queries_total").add(5);
        reg.gauge("swag_queue_depth").set(-2);
        let h = reg.histogram("swag_query_micros");
        h.record(3);
        h.record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE swag_queries_total counter"));
        assert!(text.contains("swag_queries_total 5"));
        assert!(text.contains("swag_queue_depth -2"));
        assert!(text.contains("# TYPE swag_query_micros histogram"));
        assert!(text.contains("swag_query_micros_bucket{le=\"+Inf\"} 2"));
        assert!(text.contains("swag_query_micros_sum 103"));
        assert!(text.contains("swag_query_micros_count 2"));
        // Cumulative buckets are non-decreasing.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("swag_query_micros_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn json_rendering_is_one_object_per_line() {
        let reg = Registry::new();
        reg.counter("swag_a_total").inc();
        reg.histogram("swag_b_micros").record(7);
        let text = reg.render_json();
        assert_eq!(text.lines().count(), 2);
        for line in text.lines() {
            assert!(line.starts_with('{') && line.ends_with('}'));
            assert!(line.contains("\"name\":"));
        }
        assert!(text.contains("\"type\":\"histogram\""));
        assert!(text.contains("\"p50\":7"));
    }

    #[test]
    fn help_text_is_emitted_before_type() {
        let reg = Registry::new();
        reg.counter("swag_queries_total").add(1);
        reg.set_help("swag_queries_total", "Total queries served.");
        let text = reg.render_prometheus();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], "# HELP swag_queries_total Total queries served.");
        assert_eq!(lines[1], "# TYPE swag_queries_total counter");
        assert_eq!(
            reg.help("swag_queries_total").unwrap(),
            "Total queries served."
        );
        // Help for an unregistered metric is stored but not rendered.
        reg.set_help("swag_ghost", "never registered");
        assert!(!reg.render_prometheus().contains("ghost"));
    }

    #[test]
    fn hostile_help_cannot_break_exposition_structure() {
        let reg = Registry::new();
        reg.counter("swag_evil_total").add(7);
        // A help string trying to inject a fake series via a newline, to
        // truncate the line with a backslash, and to confuse quoting.
        reg.set_help(
            "swag_evil_total",
            "line one\nswag_fake_total 999\nback\\slash \"quoted\"",
        );
        let text = reg.render_prometheus();
        // The newline is escaped: no injected series line exists.
        assert!(!text.contains("\nswag_fake_total"));
        assert!(text.contains(
            "# HELP swag_evil_total line one\\nswag_fake_total 999\\nback\\\\slash \"quoted\""
        ));
        // Every line is still a comment or a sample of the real metric.
        for line in text.lines() {
            assert!(
                line.starts_with('#') || line.starts_with("swag_evil_total"),
                "unexpected line {line:?}"
            );
        }
    }

    #[test]
    fn escapers_cover_backslash_quote_and_newline() {
        assert_eq!(escape_help("a\\b\nc\"d"), "a\\\\b\\nc\"d");
        assert_eq!(escape_label_value("a\\b\nc\"d"), "a\\\\b\\nc\\\"d");
        assert_eq!(escape_help("plain"), "plain");
        assert_eq!(escape_label_value(""), "");
    }

    #[test]
    fn labeled_name_escapes_values() {
        assert_eq!(
            labeled_name("swag_op", &[("op", "index_scan"), ("shard", "3")]),
            "swag_op{op=\"index_scan\",shard=\"3\"}"
        );
        assert_eq!(
            labeled_name("swag_op", &[("op", "a\"b\\c")]),
            "swag_op{op=\"a\\\"b\\\\c\"}"
        );
        assert_eq!(
            split_labels("swag_op{op=\"x\"}"),
            ("swag_op", Some("op=\"x\""))
        );
        assert_eq!(split_labels("swag_op"), ("swag_op", None));
    }

    #[test]
    fn labeled_family_renders_under_one_header() {
        let reg = Registry::new();
        reg.counter(&labeled_name("swag_hits_total", &[("src", "index")]))
            .add(3);
        reg.counter(&labeled_name("swag_hits_total", &[("src", "delta")]))
            .add(1);
        reg.set_help("swag_hits_total", "Hits by origin.");
        let text = reg.render_prometheus();
        assert_eq!(
            text.matches("# TYPE swag_hits_total counter").count(),
            1,
            "one TYPE header for the whole family: {text}"
        );
        assert_eq!(text.matches("# HELP swag_hits_total").count(), 1);
        assert!(text.contains("swag_hits_total{src=\"index\"} 3"));
        assert!(text.contains("swag_hits_total{src=\"delta\"} 1"));
    }

    #[test]
    fn labeled_histogram_splices_le_after_labels() {
        let reg = Registry::new();
        let h = reg.histogram(&labeled_name("swag_op_micros", &[("op", "ranking")]));
        h.record(3);
        h.record(100);
        let text = reg.render_prometheus();
        assert!(text.contains("# TYPE swag_op_micros histogram"));
        assert!(text.contains("swag_op_micros_bucket{op=\"ranking\",le=\"+Inf\"} 2"));
        assert!(text.contains("swag_op_micros_sum{op=\"ranking\"} 103"));
        assert!(text.contains("swag_op_micros_count{op=\"ranking\"} 2"));
        // Cumulative buckets are still non-decreasing.
        let cums: Vec<u64> = text
            .lines()
            .filter(|l| l.starts_with("swag_op_micros_bucket"))
            .map(|l| l.rsplit(' ').next().unwrap().parse().unwrap())
            .collect();
        assert!(cums.windows(2).all(|w| w[0] <= w[1]));
    }

    #[test]
    fn labeled_names_render_as_valid_json() {
        let reg = Registry::new();
        reg.counter(&labeled_name("swag_hits_total", &[("src", "index")]))
            .inc();
        let text = reg.render_json();
        assert!(text.contains("\"name\":\"swag_hits_total{src=\\\"index\\\"}\""));
    }

    #[test]
    fn names_are_sorted() {
        let reg = Registry::new();
        reg.counter("swag_z");
        reg.counter("swag_a");
        assert_eq!(
            reg.names(),
            vec!["swag_a".to_string(), "swag_z".to_string()]
        );
    }
}
