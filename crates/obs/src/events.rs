//! Wide-event log: a lock-free ring of fixed-width structured events
//! plus a tail-sampling retention policy.
//!
//! A **wide event** is one record per unit of work (here: one per query)
//! carrying everything an operator needs to debug that unit after the
//! fact — identifiers, decisions, measurements, outcome — encoded as a
//! fixed number of `u64` words so recording never allocates and slots
//! can be plain relaxed atomics (race-free by construction; the seqlock
//! only has to provide *consistency*, exactly like the flight
//! recorder's span rings).
//!
//! Two retention tiers:
//!
//! * the **ring** keeps the recent past of *every* event, per recording
//!   thread, overwriting oldest-first — cheap enough to be always on
//!   while the log is enabled;
//! * the **kept log** holds the events the [`TailSampler`] decided to
//!   retain: tail sampling keeps every event of an always-keep class
//!   (errors, sheds, over-SLO latency — the caller classifies) and a
//!   deterministic per-mille fraction of the rest, so anomalies are
//!   never lost while steady-state traffic is cheaply represented.
//!
//! When the log is disabled (or absent — callers hold an `Option`),
//! recording costs one relaxed load and a branch; no clock is read.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

/// Why an event is offered to the sampler.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum EventClass {
    /// Tail-sampling invariant class: errors, sheds, over-SLO latency.
    /// Always retained.
    Always,
    /// Ordinary traffic: retained at the sampler's per-mille rate.
    Sampled,
}

/// The tail-sampling policy: always-keep classes pass unconditionally,
/// the rest pass at `keep_per_mille` out of 1000, decided by a seeded
/// counter-based generator so a captured run is reproducible.
pub struct TailSampler {
    keep_per_mille: u32,
    /// Draw counter; each decision mixes the next value (splitmix64),
    /// so the decision *sequence* is deterministic for a given seed
    /// regardless of which thread takes which draw.
    state: AtomicU64,
}

impl TailSampler {
    /// A sampler keeping `keep_per_mille`/1000 of sampled-class events,
    /// seeded for reproducible runs.
    pub fn new(keep_per_mille: u32, seed: u64) -> Self {
        TailSampler {
            keep_per_mille: keep_per_mille.min(1000),
            state: AtomicU64::new(seed),
        }
    }

    /// Whether an event of `class` is retained.
    pub fn keep(&self, class: EventClass) -> bool {
        match class {
            EventClass::Always => true,
            EventClass::Sampled => {
                if self.keep_per_mille >= 1000 {
                    return true;
                }
                if self.keep_per_mille == 0 {
                    return false;
                }
                // splitmix64 over a golden-ratio counter: well mixed,
                // wait-free, identical sequence for identical seeds.
                let mut x = self
                    .state
                    .fetch_add(0x9e37_79b9_7f4a_7c15, Ordering::Relaxed);
                x ^= x >> 30;
                x = x.wrapping_mul(0xbf58_476d_1ce4_e5b9);
                x ^= x >> 27;
                x = x.wrapping_mul(0x94d0_49bb_1331_11eb);
                x ^= x >> 31;
                (x % 1000) < u64::from(self.keep_per_mille)
            }
        }
    }
}

/// One thread's bounded ring of `width`-word events. Written only by the
/// owning thread; readable from any thread through per-slot seqlocks
/// (the flight recorder's protocol, generalized to an event payload of
/// `width` words).
struct WordRing {
    width: usize,
    /// Events ever pushed; the slot index is `head % capacity`.
    head: AtomicU64,
    /// Events below this index are logically cleared.
    floor: AtomicU64,
    seqs: Box<[AtomicU64]>,
    words: Box<[AtomicU64]>,
}

impl WordRing {
    fn new(capacity: usize, width: usize) -> Self {
        let capacity = capacity.max(2);
        WordRing {
            width,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            seqs: (0..capacity).map(|_| AtomicU64::new(0)).collect(),
            words: (0..capacity * width).map(|_| AtomicU64::new(0)).collect(),
        }
    }

    /// Appends one event. Must only be called by the owning thread.
    fn push(&self, ev: &[u64]) {
        debug_assert_eq!(ev.len(), self.width);
        let h = self.head.load(Ordering::Relaxed);
        let slot = (h % self.seqs.len() as u64) as usize;
        let seq = self.seqs[slot].load(Ordering::Relaxed);
        self.seqs[slot].store(seq.wrapping_add(1), Ordering::Relaxed); // odd: in progress
        fence(Ordering::Release);
        for (k, &w) in ev.iter().enumerate() {
            self.words[slot * self.width + k].store(w, Ordering::Relaxed);
        }
        fence(Ordering::Release);
        self.seqs[slot].store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies every stable retained event into `out`, skipping slots the
    /// owner is concurrently rewriting.
    fn read_into(&self, out: &mut Vec<Box<[u64]>>) {
        let head = self.head.load(Ordering::Acquire);
        let floor = self.floor.load(Ordering::Acquire);
        let cap = self.seqs.len() as u64;
        let oldest = head.saturating_sub(cap).max(floor);
        for i in oldest..head {
            let slot = (i % cap) as usize;
            let s1 = self.seqs[slot].load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue; // mid-write
            }
            let mut ev = vec![0u64; self.width];
            for (k, w) in ev.iter_mut().enumerate() {
                *w = self.words[slot * self.width + k].load(Ordering::Relaxed);
            }
            fence(Ordering::Acquire);
            if self.seqs[slot].load(Ordering::Relaxed) != s1 {
                continue; // overwritten while reading
            }
            out.push(ev.into_boxed_slice());
        }
    }
}

/// Event-log ids are process-global so the thread-local ring cache can
/// tell logs apart even across drop/re-create cycles.
static NEXT_LOG: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's event rings, one per log it has recorded to.
    static EVENT_RINGS: RefCell<Vec<(u64, Arc<WordRing>)>> = const { RefCell::new(Vec::new()) };
}

/// Retention counters of an [`EventLog`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct EventLogStats {
    /// Events recorded into the ring while enabled.
    pub pushed: u64,
    /// Events the tail sampler retained into the kept log.
    pub kept: u64,
}

/// The wide-event log: per-thread rings of recent events plus the
/// tail-sampled kept log.
pub struct EventLog {
    id: u64,
    enabled: AtomicBool,
    width: usize,
    capacity: usize,
    /// Every ring ever registered, so reads see threads that have died.
    rings: Mutex<Vec<Arc<WordRing>>>,
    sampler: TailSampler,
    kept: Mutex<VecDeque<Box<[u64]>>>,
    kept_capacity: usize,
    pushed: AtomicU64,
    kept_total: AtomicU64,
}

impl std::fmt::Debug for EventLog {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EventLog")
            .field("enabled", &self.is_enabled())
            .field("width", &self.width)
            .field("capacity", &self.capacity)
            .field("kept_capacity", &self.kept_capacity)
            .finish_non_exhaustive()
    }
}

impl EventLog {
    /// An enabled log of `width`-word events: per-thread rings of
    /// `capacity` events, a kept log bounded at `kept_capacity`, and a
    /// tail sampler keeping `keep_per_mille`/1000 of sampled-class
    /// events (seeded, so capture runs reproduce).
    pub fn new(
        width: usize,
        capacity: usize,
        kept_capacity: usize,
        keep_per_mille: u32,
        seed: u64,
    ) -> Self {
        EventLog {
            id: NEXT_LOG.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(true),
            width,
            capacity,
            rings: Mutex::new(Vec::new()),
            sampler: TailSampler::new(keep_per_mille, seed),
            kept: Mutex::new(VecDeque::new()),
            kept_capacity: kept_capacity.max(1),
            pushed: AtomicU64::new(0),
            kept_total: AtomicU64::new(0),
        }
    }

    /// Words per event.
    pub fn width(&self) -> usize {
        self.width
    }

    /// Pauses/resumes recording (the log object stays queryable). A
    /// disabled log's [`Self::record`] is one relaxed load and a branch.
    pub fn set_enabled(&self, on: bool) {
        self.enabled.store(on, Ordering::Relaxed);
    }

    /// Whether events are currently being recorded.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Records one event. Returns whether the tail sampler retained it
    /// into the kept log (always `false` while disabled).
    pub fn record(&self, ev: &[u64], class: EventClass) -> bool {
        if !self.is_enabled() {
            return false;
        }
        assert_eq!(ev.len(), self.width, "event width mismatch");
        EVENT_RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(ev);
            } else {
                let ring = Arc::new(WordRing::new(self.capacity, self.width));
                self.rings
                    .lock()
                    .unwrap_or_else(|e| e.into_inner())
                    .push(ring.clone());
                ring.push(ev);
                rings.push((self.id, ring));
            }
        });
        self.pushed.fetch_add(1, Ordering::Relaxed);
        if !self.sampler.keep(class) {
            return false;
        }
        let mut kept = self.kept.lock().unwrap_or_else(|e| e.into_inner());
        if kept.len() >= self.kept_capacity {
            kept.pop_front();
        }
        kept.push_back(ev.to_vec().into_boxed_slice());
        self.kept_total.fetch_add(1, Ordering::Relaxed);
        true
    }

    /// Every event still present in the rings (unordered across
    /// threads; callers sort by an embedded timestamp word). Torn slots
    /// are skipped, never waited on.
    pub fn recent(&self) -> Vec<Box<[u64]>> {
        let rings = self.rings.lock().unwrap_or_else(|e| e.into_inner()).clone();
        let mut out = Vec::new();
        for ring in rings {
            ring.read_into(&mut out);
        }
        out
    }

    /// The tail-sampled kept events, oldest first.
    pub fn kept(&self) -> Vec<Box<[u64]>> {
        self.kept
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Retention counters.
    pub fn stats(&self) -> EventLogStats {
        EventLogStats {
            pushed: self.pushed.load(Ordering::Relaxed),
            kept: self.kept_total.load(Ordering::Relaxed),
        }
    }

    /// Drops ring contents and the kept log (counters are preserved).
    pub fn clear(&self) {
        for ring in self.rings.lock().unwrap_or_else(|e| e.into_inner()).iter() {
            ring.floor
                .store(ring.head.load(Ordering::Acquire), Ordering::Release);
        }
        self.kept.lock().unwrap_or_else(|e| e.into_inner()).clear();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ev(width: usize, tag: u64) -> Vec<u64> {
        (0..width as u64)
            .map(|k| tag.wrapping_mul(31) ^ k)
            .collect()
    }

    #[test]
    fn disabled_log_records_nothing() {
        let log = EventLog::new(4, 8, 8, 1000, 7);
        log.set_enabled(false);
        assert!(!log.record(&ev(4, 1), EventClass::Always));
        assert!(log.recent().is_empty());
        assert!(log.kept().is_empty());
        assert_eq!(log.stats(), EventLogStats::default());
    }

    #[test]
    fn ring_stays_bounded_and_keeps_newest() {
        let log = EventLog::new(2, 8, 64, 1000, 7);
        for i in 0..50u64 {
            log.record(&[i, i ^ 0xabcd], EventClass::Sampled);
        }
        let recent = log.recent();
        assert!(
            recent.len() <= 8,
            "ring must stay bounded: {}",
            recent.len()
        );
        // The survivors are exactly the newest pushes, in order.
        let first: Vec<u64> = recent.iter().map(|e| e[0]).collect();
        assert_eq!(first, (42..50).collect::<Vec<u64>>());
        // Every survivor is internally consistent (no torn words).
        for e in &recent {
            assert_eq!(e[1], e[0] ^ 0xabcd);
        }
    }

    #[test]
    fn kept_log_is_bounded_and_evicts_oldest() {
        let log = EventLog::new(1, 16, 4, 1000, 7);
        for i in 0..9u64 {
            assert!(log.record(&[i], EventClass::Always));
        }
        let kept: Vec<u64> = log.kept().iter().map(|e| e[0]).collect();
        assert_eq!(kept, vec![5, 6, 7, 8]);
        assert_eq!(log.stats().kept, 9);
    }

    #[test]
    fn always_class_survives_zero_sampling() {
        let log = EventLog::new(1, 16, 16, 0, 7);
        assert!(log.record(&[1], EventClass::Always));
        assert!(!log.record(&[2], EventClass::Sampled));
        assert_eq!(log.kept().len(), 1);
    }

    #[test]
    fn sampler_is_deterministic_per_seed() {
        let a = TailSampler::new(250, 42);
        let b = TailSampler::new(250, 42);
        let draws_a: Vec<bool> = (0..200).map(|_| a.keep(EventClass::Sampled)).collect();
        let draws_b: Vec<bool> = (0..200).map(|_| b.keep(EventClass::Sampled)).collect();
        assert_eq!(draws_a, draws_b);
        let kept = draws_a.iter().filter(|&&k| k).count();
        assert!(
            (20..=80).contains(&kept),
            "250/1000 of 200 draws should keep roughly 50, kept {kept}"
        );
    }

    #[test]
    fn concurrent_readers_never_see_torn_events() {
        let log = Arc::new(EventLog::new(3, 16, 8, 0, 7));
        let writer = {
            let log = log.clone();
            std::thread::spawn(move || {
                for i in 0..20_000u64 {
                    log.record(&[i, i.wrapping_mul(3), i ^ u64::MAX], EventClass::Sampled);
                }
            })
        };
        for _ in 0..200 {
            for e in log.recent() {
                assert_eq!(e[1], e[0].wrapping_mul(3), "torn event: {e:?}");
                assert_eq!(e[2], e[0] ^ u64::MAX, "torn event: {e:?}");
            }
        }
        writer.join().expect("writer thread must not panic");
    }

    #[test]
    fn clear_drops_rings_and_kept() {
        let log = EventLog::new(1, 8, 8, 1000, 7);
        log.record(&[1], EventClass::Always);
        log.clear();
        assert!(log.recent().is_empty());
        assert!(log.kept().is_empty());
        log.record(&[2], EventClass::Always);
        assert_eq!(log.recent().len(), 1);
    }
}
