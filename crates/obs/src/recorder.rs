//! Always-on flight recorder: lock-free per-thread span rings.
//!
//! A [`FlightRecorder`] keeps the recent past of every thread as a
//! bounded ring of span begin/end records. Recording is wait-free for
//! the owning thread — each ring has exactly one writer, and every slot
//! is a tiny seqlock (a version counter plus relaxed atomic fields), so
//! a dump can merge all rings into one chronological event list while
//! the system keeps running: torn slots are simply skipped, never
//! waited on.
//!
//! Two read paths:
//!
//! - [`FlightRecorder::dump`] — merge every ring, oldest surviving
//!   events first, for ad-hoc inspection and Chrome-trace export.
//! - **Slow-query capture** — a span opened with
//!   [`FlightRecorder::guarded_span`] checks its elapsed time against
//!   [`FlightRecorder::slow_threshold_micros`] when it ends; past the
//!   threshold, every event of its trace is copied (pinned) into a
//!   bounded retained log before the rings can recycle it, so the tail
//!   latency offender keeps its complete span tree even though fast
//!   queries keep overwriting ring space.
//!
//! When disabled (the default), starting a span costs one relaxed load
//! and a branch; nothing touches the rings and no clock is read.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::sync::atomic::{fence, AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, Mutex, OnceLock};

use crate::clock::{MonotonicClock, WallClock};
use crate::ctx::TraceCtx;

/// Default per-thread ring capacity (events, not spans).
pub const DEFAULT_RING_CAPACITY: usize = 4096;
/// Default number of retained slow queries.
pub const DEFAULT_SLOW_CAPACITY: usize = 16;

/// Whether a record marks a span's entry or exit.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum SpanEventKind {
    /// The span started.
    Begin,
    /// The span finished (carries the span's `detail` payload).
    End,
}

/// One flight-recorder record.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SpanEvent {
    /// Begin or end.
    pub kind: SpanEventKind,
    /// Span label (static so recording never allocates).
    pub label: &'static str,
    /// Trace this span belongs to.
    pub trace_id: u64,
    /// The span's unique id.
    pub span_id: u64,
    /// Parent span id (0 = trace root).
    pub parent: u64,
    /// Recorder-assigned id of the recording thread.
    pub thread: u64,
    /// Timestamp, microseconds on the recorder's clock.
    pub micros: u64,
    /// Free-form payload (candidate count, byte size, ...); end only.
    pub detail: u64,
}

/// One seqlock slot. The version counter is odd while the owner thread
/// rewrites the fields; readers retry/skip on a torn read. All fields
/// are relaxed atomics, so concurrent access is race-free by
/// construction and the seqlock only has to provide *consistency*.
#[derive(Default)]
struct Slot {
    seq: AtomicU64,
    kind: AtomicU64,
    label_ptr: AtomicUsize,
    label_len: AtomicUsize,
    trace_id: AtomicU64,
    span_id: AtomicU64,
    parent: AtomicU64,
    micros: AtomicU64,
    detail: AtomicU64,
}

/// One thread's bounded event ring. Written only by the owning thread;
/// readable from any thread through the per-slot seqlocks.
struct ThreadRing {
    thread: u64,
    /// Events ever pushed; the slot index is `head % capacity`.
    head: AtomicU64,
    /// Events below this index are logically cleared.
    floor: AtomicU64,
    slots: Box<[Slot]>,
}

impl ThreadRing {
    fn new(capacity: usize, thread: u64) -> Self {
        ThreadRing {
            thread,
            head: AtomicU64::new(0),
            floor: AtomicU64::new(0),
            slots: (0..capacity.max(2)).map(|_| Slot::default()).collect(),
        }
    }

    /// Appends one event. Must only be called by the owning thread.
    fn push(&self, ev: &SpanEvent) {
        let h = self.head.load(Ordering::Relaxed);
        let slot = &self.slots[(h % self.slots.len() as u64) as usize];
        let seq = slot.seq.load(Ordering::Relaxed);
        slot.seq.store(seq.wrapping_add(1), Ordering::Relaxed); // odd: write in progress
        fence(Ordering::Release);
        slot.kind.store(ev.kind as u64, Ordering::Relaxed);
        slot.label_ptr
            .store(ev.label.as_ptr() as usize, Ordering::Relaxed);
        slot.label_len.store(ev.label.len(), Ordering::Relaxed);
        slot.trace_id.store(ev.trace_id, Ordering::Relaxed);
        slot.span_id.store(ev.span_id, Ordering::Relaxed);
        slot.parent.store(ev.parent, Ordering::Relaxed);
        slot.micros.store(ev.micros, Ordering::Relaxed);
        slot.detail.store(ev.detail, Ordering::Relaxed);
        fence(Ordering::Release);
        slot.seq.store(seq.wrapping_add(2), Ordering::Release);
        self.head.store(h + 1, Ordering::Release);
    }

    /// Copies every stable retained event into `out`, skipping slots the
    /// owner is concurrently rewriting.
    fn read_into(&self, out: &mut Vec<SpanEvent>) {
        let head = self.head.load(Ordering::Acquire);
        let floor = self.floor.load(Ordering::Acquire);
        let cap = self.slots.len() as u64;
        let oldest = head.saturating_sub(cap).max(floor);
        for i in oldest..head {
            let slot = &self.slots[(i % cap) as usize];
            let s1 = slot.seq.load(Ordering::Acquire);
            if s1 & 1 == 1 {
                continue; // mid-write
            }
            let kind = slot.kind.load(Ordering::Relaxed);
            let label_ptr = slot.label_ptr.load(Ordering::Relaxed);
            let label_len = slot.label_len.load(Ordering::Relaxed);
            let trace_id = slot.trace_id.load(Ordering::Relaxed);
            let span_id = slot.span_id.load(Ordering::Relaxed);
            let parent = slot.parent.load(Ordering::Relaxed);
            let micros = slot.micros.load(Ordering::Relaxed);
            let detail = slot.detail.load(Ordering::Relaxed);
            fence(Ordering::Acquire);
            if slot.seq.load(Ordering::Relaxed) != s1 {
                continue; // overwritten while reading
            }
            // SAFETY: the seqlock validated that (ptr, len) is the
            // consistent pair stored from one `&'static str` in `push`,
            // so reconstituting that reference is sound.
            let label = unsafe {
                std::str::from_utf8_unchecked(std::slice::from_raw_parts(
                    label_ptr as *const u8,
                    label_len,
                ))
            };
            out.push(SpanEvent {
                kind: if kind == 0 {
                    SpanEventKind::Begin
                } else {
                    SpanEventKind::End
                },
                label,
                trace_id,
                span_id,
                parent,
                thread: self.thread,
                micros,
                detail,
            });
        }
    }
}

/// One slow query pinned by the capture path: the root span's identity
/// plus a private copy of every event of its trace.
#[derive(Debug, Clone)]
pub struct SlowQuery {
    /// The pinned trace.
    pub trace_id: u64,
    /// Label of the guarded span that tripped the threshold.
    pub root_label: &'static str,
    /// The guarded span's wall time, microseconds.
    pub total_micros: u64,
    /// Every event of the trace still present in the rings at pin time,
    /// chronological.
    pub events: Vec<SpanEvent>,
}

/// Recorder ids are process-global so a thread-local ring cache can tell
/// recorders apart even across drop/re-create cycles.
static NEXT_RECORDER: AtomicU64 = AtomicU64::new(1);
/// Recorder-visible thread tags (std's `ThreadId` has no stable u64).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    /// This thread's tag, assigned on first recording.
    static THREAD_TAG: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);
    /// This thread's rings, one per recorder it has recorded to.
    static RINGS: RefCell<Vec<(u64, Arc<ThreadRing>)>> = const { RefCell::new(Vec::new()) };
}

fn thread_tag() -> u64 {
    THREAD_TAG.with(|t| *t)
}

/// The per-process (or per-test) flight recorder.
pub struct FlightRecorder {
    id: u64,
    enabled: AtomicBool,
    capacity: usize,
    clock: Arc<dyn MonotonicClock>,
    /// Every ring ever registered, so dumps see threads that have died.
    rings: Mutex<Vec<Arc<ThreadRing>>>,
    /// Guarded spans at least this slow pin their trace (0 = never).
    slow_threshold: AtomicU64,
    slow_capacity: usize,
    slow_log: Mutex<VecDeque<SlowQuery>>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("FlightRecorder")
            .field("enabled", &self.is_enabled())
            .field("capacity", &self.capacity)
            .field("slow_threshold_micros", &self.slow_threshold_micros())
            .finish_non_exhaustive()
    }
}

impl FlightRecorder {
    /// A disabled recorder with `capacity` events per thread ring,
    /// timing on the wall clock.
    pub fn new(capacity: usize) -> Self {
        Self::with_clock(capacity, Arc::new(WallClock))
    }

    /// [`Self::new`] against an injected clock (deterministic tests).
    pub fn with_clock(capacity: usize, clock: Arc<dyn MonotonicClock>) -> Self {
        FlightRecorder {
            id: NEXT_RECORDER.fetch_add(1, Ordering::Relaxed),
            enabled: AtomicBool::new(false),
            capacity,
            clock,
            rings: Mutex::new(Vec::new()),
            slow_threshold: AtomicU64::new(0),
            slow_capacity: DEFAULT_SLOW_CAPACITY,
            slow_log: Mutex::new(VecDeque::new()),
        }
    }

    /// The process-wide recorder (disabled until [`Self::enable`]).
    pub fn global() -> &'static FlightRecorder {
        static GLOBAL: OnceLock<FlightRecorder> = OnceLock::new();
        GLOBAL.get_or_init(|| FlightRecorder::new(DEFAULT_RING_CAPACITY))
    }

    /// Turns recording on.
    pub fn enable(&self) {
        self.enabled.store(true, Ordering::Relaxed);
    }

    /// Turns recording off. Spans already open still write their end
    /// records; retained events stay readable.
    pub fn disable(&self) {
        self.enabled.store(false, Ordering::Relaxed);
    }

    /// Whether spans are being recorded — one relaxed load, the only
    /// cost a disabled deployment pays per span site.
    #[inline]
    pub fn is_enabled(&self) -> bool {
        self.enabled.load(Ordering::Relaxed)
    }

    /// Per-thread ring capacity in events.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// The recorder's time source.
    pub fn clock(&self) -> &Arc<dyn MonotonicClock> {
        &self.clock
    }

    /// Sets the slow-query capture threshold (microseconds; 0 disables
    /// capture).
    pub fn set_slow_threshold_micros(&self, micros: u64) {
        self.slow_threshold.store(micros, Ordering::Relaxed);
    }

    /// The current slow-query capture threshold (0 = capture off).
    pub fn slow_threshold_micros(&self) -> u64 {
        self.slow_threshold.load(Ordering::Relaxed)
    }

    /// Starts a span: child of the calling thread's ambient context, or
    /// the root of a fresh trace when there is none. The guard restores
    /// the ambient context and writes the end record on drop. When the
    /// recorder is disabled this returns a no-op guard after one branch.
    pub fn span(&self, label: &'static str) -> SpanGuard<'_> {
        self.start_span(label, false)
    }

    /// [`Self::span`] with slow-query capture armed: if the span's
    /// elapsed time reaches the slow threshold when it ends, its whole
    /// trace is pinned into the retained slow-query log.
    pub fn guarded_span(&self, label: &'static str) -> SpanGuard<'_> {
        self.start_span(label, true)
    }

    fn start_span(&self, label: &'static str, guarded: bool) -> SpanGuard<'_> {
        if !self.is_enabled() {
            return SpanGuard {
                rec: None,
                label,
                ctx: TraceCtx::NONE,
                prev: TraceCtx::NONE,
                start: 0,
                detail: 0,
                guarded: false,
                _not_send: std::marker::PhantomData,
            };
        }
        let ctx = TraceCtx::next();
        let prev = TraceCtx::set_current(ctx);
        let start = self.clock.now_micros();
        self.record(SpanEventKind::Begin, label, ctx, start, 0);
        SpanGuard {
            rec: Some(self),
            label,
            ctx,
            prev,
            start,
            detail: 0,
            guarded,
            _not_send: std::marker::PhantomData,
        }
    }

    fn record(
        &self,
        kind: SpanEventKind,
        label: &'static str,
        ctx: TraceCtx,
        micros: u64,
        detail: u64,
    ) {
        let ev = SpanEvent {
            kind,
            label,
            trace_id: ctx.trace_id,
            span_id: ctx.span_id,
            parent: ctx.parent,
            thread: thread_tag(),
            micros,
            detail,
        };
        RINGS.with(|cell| {
            let mut rings = cell.borrow_mut();
            if let Some((_, ring)) = rings.iter().find(|(id, _)| *id == self.id) {
                ring.push(&ev);
                return;
            }
            let ring = Arc::new(ThreadRing::new(self.capacity, thread_tag()));
            self.rings
                .lock()
                .unwrap_or_else(|e| e.into_inner())
                .push(ring.clone());
            ring.push(&ev);
            rings.push((self.id, ring));
        });
    }

    fn ring_snapshot(&self) -> Vec<Arc<ThreadRing>> {
        self.rings.lock().unwrap_or_else(|e| e.into_inner()).clone()
    }

    /// Merges every thread ring into one chronological event list
    /// without stopping writers (concurrently rewritten slots are
    /// skipped). Ties on the clock sort by span id, begins first.
    pub fn dump(&self) -> Vec<SpanEvent> {
        let mut out = Vec::new();
        for ring in self.ring_snapshot() {
            ring.read_into(&mut out);
        }
        out.sort_by_key(|e| (e.micros, e.span_id, e.kind));
        out
    }

    /// The retained events of one trace, chronological.
    pub fn trace_events(&self, trace_id: u64) -> Vec<SpanEvent> {
        let mut out = self.dump();
        out.retain(|e| e.trace_id == trace_id);
        out
    }

    /// Pins `trace_id`'s surviving events into the slow-query log
    /// (evicting the oldest entry past capacity). Normally invoked by a
    /// guarded span crossing the threshold, public for tools that decide
    /// slowness themselves.
    pub fn pin(&self, trace_id: u64, root_label: &'static str, total_micros: u64) {
        let events = self.trace_events(trace_id);
        let mut log = self.slow_log.lock().unwrap_or_else(|e| e.into_inner());
        if log.len() >= self.slow_capacity {
            log.pop_front();
        }
        log.push_back(SlowQuery {
            trace_id,
            root_label,
            total_micros,
            events,
        });
    }

    /// The retained slow queries, oldest first.
    pub fn slow_queries(&self) -> Vec<SlowQuery> {
        self.slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .iter()
            .cloned()
            .collect()
    }

    /// Drops all retained ring events (the slow-query log is kept; see
    /// [`Self::clear_slow_log`]). Events recorded concurrently with the
    /// clear may survive.
    pub fn clear(&self) {
        for ring in self.ring_snapshot() {
            ring.floor
                .store(ring.head.load(Ordering::Acquire), Ordering::Release);
        }
    }

    /// Empties the retained slow-query log.
    pub fn clear_slow_log(&self) {
        self.slow_log
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clear();
    }
}

/// RAII span: restores the ambient [`TraceCtx`] and records the end
/// event on drop. Not `Send` — a span begins and ends on one thread
/// (cross-thread children get their own spans via context propagation).
pub struct SpanGuard<'a> {
    rec: Option<&'a FlightRecorder>,
    label: &'static str,
    ctx: TraceCtx,
    prev: TraceCtx,
    start: u64,
    detail: u64,
    guarded: bool,
    _not_send: std::marker::PhantomData<*const ()>,
}

impl SpanGuard<'_> {
    /// Whether this guard is actually recording (false when the recorder
    /// was disabled at span start).
    pub fn is_recording(&self) -> bool {
        self.rec.is_some()
    }

    /// This span's context, if recording.
    pub fn ctx(&self) -> Option<TraceCtx> {
        self.rec.map(|_| self.ctx)
    }

    /// Attaches a payload reported in the span's end record.
    pub fn set_detail(&mut self, detail: u64) {
        self.detail = detail;
    }

    /// Elapsed microseconds so far (0 when not recording).
    pub fn elapsed_micros(&self) -> u64 {
        match self.rec {
            Some(rec) => rec.clock.now_micros().saturating_sub(self.start),
            None => 0,
        }
    }
}

impl Drop for SpanGuard<'_> {
    fn drop(&mut self) {
        let Some(rec) = self.rec else { return };
        let end = rec.clock.now_micros();
        rec.record(SpanEventKind::End, self.label, self.ctx, end, self.detail);
        TraceCtx::set_current(self.prev);
        if self.guarded {
            let threshold = rec.slow_threshold.load(Ordering::Relaxed);
            let elapsed = end.saturating_sub(self.start);
            if threshold > 0 && elapsed >= threshold {
                rec.pin(self.ctx.trace_id, self.label, elapsed);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;

    fn manual() -> (Arc<ManualClock>, FlightRecorder) {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(64, clock.clone());
        (clock, rec)
    }

    #[test]
    fn disabled_spans_record_nothing_and_keep_ambient_none() {
        let (_, rec) = manual();
        {
            let span = rec.span("q");
            assert!(!span.is_recording());
            assert!(TraceCtx::current().is_none());
        }
        assert!(rec.dump().is_empty());
    }

    #[test]
    fn nested_spans_form_a_parented_trace() {
        let (clock, rec) = manual();
        rec.enable();
        let (root_ctx, child_ctx);
        {
            let root = rec.span("query");
            root_ctx = root.ctx().unwrap();
            clock.advance_micros(5);
            {
                let child = rec.span("probe");
                child_ctx = child.ctx().unwrap();
                clock.advance_micros(7);
            }
            clock.advance_micros(3);
        }
        assert!(TraceCtx::current().is_none());
        assert_eq!(child_ctx.trace_id, root_ctx.trace_id);
        assert_eq!(child_ctx.parent, root_ctx.span_id);

        let events = rec.dump();
        assert_eq!(events.len(), 4);
        let begins: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::Begin)
            .collect();
        assert_eq!(begins.len(), 2);
        let root_end = events
            .iter()
            .find(|e| e.kind == SpanEventKind::End && e.span_id == root_ctx.span_id)
            .unwrap();
        assert_eq!(root_end.micros, 15);
    }

    #[test]
    fn ring_bounds_and_clear() {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(8, clock.clone());
        rec.enable();
        for _ in 0..50 {
            clock.advance_micros(1);
            let _s = rec.span("q");
        }
        let events = rec.dump();
        assert!(
            events.len() <= 8,
            "ring must stay bounded, got {}",
            events.len()
        );
        rec.clear();
        assert!(rec.dump().is_empty());
        // Recording continues into the same ring after a clear.
        let _s = rec.span("q");
        drop(_s);
        assert_eq!(rec.dump().len(), 2);
    }

    #[test]
    fn guarded_span_pins_slow_traces_only() {
        let (clock, rec) = manual();
        rec.enable();
        rec.set_slow_threshold_micros(10);
        {
            let _fast = rec.guarded_span("query");
            clock.advance_micros(3);
        }
        assert!(rec.slow_queries().is_empty());
        {
            let _slow = rec.guarded_span("query");
            clock.advance_micros(10);
            let _child = rec.span("probe");
        }
        let slow = rec.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].root_label, "query");
        assert_eq!(slow[0].total_micros, 10);
        // The pinned copy holds the whole trace: 2 spans x begin+end.
        assert_eq!(slow[0].events.len(), 4);
        assert!(slow[0]
            .events
            .iter()
            .all(|e| e.trace_id == slow[0].trace_id));
    }

    #[test]
    fn pinned_events_survive_ring_recycling() {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(8, clock.clone());
        rec.enable();
        rec.set_slow_threshold_micros(5);
        let slow_trace;
        {
            let slow = rec.guarded_span("query");
            slow_trace = slow.ctx().unwrap().trace_id;
            clock.advance_micros(9);
        }
        // Flood the ring until the slow trace's events are recycled.
        for _ in 0..20 {
            let _fast = rec.guarded_span("query");
        }
        assert!(rec.trace_events(slow_trace).is_empty(), "ring recycled");
        let slow = rec.slow_queries();
        assert_eq!(slow.len(), 1);
        assert_eq!(slow[0].trace_id, slow_trace);
        assert_eq!(slow[0].events.len(), 2);
    }

    #[test]
    fn slow_log_is_bounded() {
        let (clock, rec) = manual();
        rec.enable();
        rec.set_slow_threshold_micros(1);
        for _ in 0..DEFAULT_SLOW_CAPACITY + 9 {
            let _s = rec.guarded_span("query");
            clock.advance_micros(2);
        }
        assert_eq!(rec.slow_queries().len(), DEFAULT_SLOW_CAPACITY);
    }

    #[test]
    fn threshold_zero_never_pins() {
        let (clock, rec) = manual();
        rec.enable();
        {
            let _s = rec.guarded_span("query");
            clock.advance_micros(1_000_000);
        }
        assert!(rec.slow_queries().is_empty());
    }

    mod ring_wrap {
        use super::*;
        use proptest::prelude::*;

        /// Distinct labels to partition the dump into per-writer streams.
        const WRITER_LABELS: [&str; 3] = ["wrap-w0", "wrap-w1", "wrap-w2"];

        /// End-record payload derived from the span id; a slot mixing
        /// fields from two events breaks this relation (torn read).
        fn end_detail(span_id: u64) -> u64 {
            span_id.wrapping_mul(0x9e37_79b9_7f4a_7c15) | 1
        }

        proptest! {
            #![proptest_config(ProptestConfig::with_cases(16))]

            /// Wrapping the rings under concurrent writers and a racing
            /// reader must never surface a torn event, and must evict
            /// oldest-first: each ring ends holding exactly the newest
            /// `min(2·spans, capacity)` records, in push order.
            #[test]
            fn wrapped_rings_evict_oldest_and_never_tear(
                capacity in 2usize..24,
                writers in 1usize..=3,
                spans_per_writer in 4usize..48,
            ) {
                let rec = Arc::new(FlightRecorder::with_clock(
                    capacity,
                    Arc::new(ManualClock::new()),
                ));
                rec.enable();
                let stop = Arc::new(AtomicBool::new(false));
                let reader = {
                    let rec = rec.clone();
                    let stop = stop.clone();
                    std::thread::spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            for e in rec.dump() {
                                assert!(
                                    WRITER_LABELS.contains(&e.label),
                                    "torn label: {:?}",
                                    e.label
                                );
                                match e.kind {
                                    SpanEventKind::Begin => {
                                        assert_eq!(e.detail, 0, "begin carrying an end payload")
                                    }
                                    SpanEventKind::End => assert_eq!(
                                        e.detail,
                                        end_detail(e.span_id),
                                        "torn slot: {e:?}"
                                    ),
                                }
                            }
                        }
                    })
                };
                let handles: Vec<_> = (0..writers)
                    .map(|w| {
                        let rec = rec.clone();
                        std::thread::spawn(move || {
                            (0..spans_per_writer)
                                .map(|_| {
                                    let mut s = rec.span(WRITER_LABELS[w]);
                                    let id = s
                                        .ctx()
                                        .expect("enabled recorder must hand out a context")
                                        .span_id;
                                    s.set_detail(end_detail(id));
                                    id
                                })
                                .collect::<Vec<u64>>()
                        })
                    })
                    .collect();
                let pushed: Vec<Vec<u64>> = handles
                    .into_iter()
                    .map(|h| h.join().expect("writer must not panic"))
                    .collect();
                stop.store(true, Ordering::Relaxed);
                reader.join().expect("reader saw a torn event");

                // Quiescent check: with the clock pinned at 0, a writer's
                // dump stream is ordered (span_id, kind) = push order, so
                // it must equal the suffix of what that writer pushed.
                let dump = rec.dump();
                for (w, ids) in pushed.iter().enumerate() {
                    let mut expected: Vec<(SpanEventKind, u64)> = ids
                        .iter()
                        .flat_map(|&id| [(SpanEventKind::Begin, id), (SpanEventKind::End, id)])
                        .collect();
                    let keep = expected.len().min(capacity.max(2));
                    expected.drain(..expected.len() - keep);
                    let got: Vec<(SpanEventKind, u64)> = dump
                        .iter()
                        .filter(|e| e.label == WRITER_LABELS[w])
                        .map(|e| (e.kind, e.span_id))
                        .collect();
                    prop_assert_eq!(got, expected, "writer {} eviction order", w);
                }
            }
        }
    }

    #[test]
    fn cross_thread_events_merge_into_one_dump() {
        let rec = Arc::new(FlightRecorder::new(128));
        rec.enable();
        let root_ctx = {
            let root = rec.span("query");
            let ctx = root.ctx().unwrap();
            let handles: Vec<_> = (0..3)
                .map(|_| {
                    let rec = rec.clone();
                    std::thread::spawn(move || {
                        let prev = TraceCtx::set_current(ctx);
                        {
                            let _probe = rec.span("probe");
                        }
                        TraceCtx::set_current(prev);
                    })
                })
                .collect();
            for h in handles {
                h.join().unwrap();
            }
            ctx
        };
        let events = rec.dump();
        let probes: Vec<_> = events
            .iter()
            .filter(|e| e.label == "probe" && e.kind == SpanEventKind::Begin)
            .collect();
        assert_eq!(probes.len(), 3);
        assert!(probes.iter().all(|e| e.parent == root_ctx.span_id));
        assert!(probes.iter().all(|e| e.trace_id == root_ctx.trace_id));
        // Three distinct recording threads contributed.
        let mut threads: Vec<u64> = probes.iter().map(|e| e.thread).collect();
        threads.sort_unstable();
        threads.dedup();
        assert_eq!(threads.len(), 3);
    }
}
