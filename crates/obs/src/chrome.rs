//! Chrome trace-event JSON export.
//!
//! Serialises a flight-recorder dump into the Trace Event Format
//! consumed by `chrome://tracing` and Perfetto. Spans with both begin
//! and end records become complete `"X"` events (robust to timestamp
//! ties, unlike `B`/`E` pairs); records whose partner was recycled out
//! of the ring degrade to instant `"i"` events so the file always
//! loads. Trace/span/parent ids ride along in `args` for cross-
//! referencing with the slow-query log.

use std::collections::BTreeMap;
use std::fmt::Write;

use crate::recorder::{SpanEvent, SpanEventKind};

/// Escapes a string for a JSON string literal body.
fn json_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

/// Renders `events` as a Chrome trace-event JSON document. Timestamps
/// are already microseconds, the unit the format expects; recorder
/// thread tags map to `tid`, and the whole process is `pid` 1.
pub fn chrome_trace_json(events: &[SpanEvent]) -> String {
    // span_id -> (begin, end); a span appears at most once per kind.
    let mut spans: BTreeMap<u64, (Option<&SpanEvent>, Option<&SpanEvent>)> = BTreeMap::new();
    for ev in events {
        let entry = spans.entry(ev.span_id).or_default();
        match ev.kind {
            SpanEventKind::Begin => entry.0 = Some(ev),
            SpanEventKind::End => entry.1 = Some(ev),
        }
    }

    // (ts, tid, span_id, json) for deterministic output order.
    let mut rows: Vec<(u64, u64, u64, String)> = Vec::new();
    for (span_id, pair) in &spans {
        match pair {
            (Some(b), Some(e)) => {
                let dur = e.micros.saturating_sub(b.micros);
                rows.push((
                    b.micros,
                    b.thread,
                    *span_id,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"swag\",\"ph\":\"X\",\"ts\":{},\"dur\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{},\"detail\":{}}}}}",
                        json_escape(b.label),
                        b.micros,
                        dur,
                        b.thread,
                        b.trace_id,
                        span_id,
                        b.parent,
                        e.detail,
                    ),
                ));
            }
            (Some(ev), None) | (None, Some(ev)) => {
                rows.push((
                    ev.micros,
                    ev.thread,
                    *span_id,
                    format!(
                        "{{\"name\":\"{}\",\"cat\":\"swag\",\"ph\":\"i\",\"s\":\"t\",\"ts\":{},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":{},\"span\":{},\"parent\":{}}}}}",
                        json_escape(ev.label),
                        ev.micros,
                        ev.thread,
                        ev.trace_id,
                        span_id,
                        ev.parent,
                    ),
                ));
            }
            (None, None) => unreachable!("entry inserted with one side set"),
        }
    }
    rows.sort_by_key(|(ts, tid, span, _)| (*ts, *tid, *span));

    let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
    for (i, (_, _, _, row)) in rows.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str(row);
    }
    out.push_str("]}");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::recorder::FlightRecorder;
    use std::sync::Arc;

    #[test]
    fn matched_spans_export_as_complete_events() {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(64, clock.clone());
        rec.enable();
        {
            let _q = rec.span("query");
            clock.advance_micros(3);
            {
                let _p = rec.span("probe");
                clock.advance_micros(5);
            }
        }
        let json = chrome_trace_json(&rec.dump());
        assert!(json.starts_with("{\"displayTimeUnit\":\"ms\",\"traceEvents\":["));
        assert!(json.ends_with("]}"));
        assert_eq!(json.matches("\"ph\":\"X\"").count(), 2);
        assert!(json.contains("\"name\":\"query\""));
        assert!(json.contains("\"dur\":8"));
        assert!(json.contains("\"dur\":5"));
        assert!(!json.contains("\"ph\":\"i\""));
    }

    #[test]
    fn unmatched_records_degrade_to_instants() {
        let clock = Arc::new(ManualClock::new());
        let rec = FlightRecorder::with_clock(64, clock.clone());
        rec.enable();
        let span = rec.span("half-open");
        clock.advance_micros(1);
        let json = chrome_trace_json(&rec.dump());
        drop(span);
        assert_eq!(json.matches("\"ph\":\"i\"").count(), 1);
        assert!(!json.contains("\"ph\":\"X\""));
    }

    #[test]
    fn labels_are_json_escaped() {
        let ev = SpanEvent {
            kind: SpanEventKind::Begin,
            label: "evil\"label\\with\nnewline",
            trace_id: 1,
            span_id: 2,
            parent: 0,
            thread: 1,
            micros: 0,
            detail: 0,
        };
        let json = chrome_trace_json(&[ev]);
        assert!(json.contains("evil\\\"label\\\\with\\nnewline"));
        assert!(!json.contains('\n'));
    }

    #[test]
    fn empty_dump_is_still_valid_json() {
        assert_eq!(
            chrome_trace_json(&[]),
            "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[]}"
        );
    }
}
