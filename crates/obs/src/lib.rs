//! # swag-obs — observability substrate for the SWAG retrieval pipeline
//!
//! Dependency-free metrics for every layer of the stack: lock-free
//! [`Counter`]/[`Gauge`]/[`Histogram`] primitives, RAII [`SpanTimer`]s, a
//! sampled per-query [`Trace`] ring buffer, an injectable
//! [`MonotonicClock`] for deterministic timing tests, and a named-metric
//! [`Registry`] with Prometheus-text and JSON-lines exporters.
//!
//! Design constraints, in order:
//!
//! 1. **Never on the hot path unless asked.** Instrumented components
//!    hold an `Option` of their metric handles; the disabled path costs
//!    one branch. The benchmark guard in `crates/bench` keeps the
//!    disabled-path regression under 2%.
//! 2. **Lock-free recording.** `Histogram::record` is a handful of
//!    relaxed atomic RMWs on fixed log₂ buckets — no allocation, no lock,
//!    safe from any thread.
//! 3. **Mergeable snapshots.** [`HistogramSnapshot`]s add bucket-wise, so
//!    per-shard or per-thread histograms can be combined after the fact;
//!    quantiles (p50/p90/p99/max) come from the buckets.

mod clock;
mod metrics;
mod percentiles;
mod registry;
mod span;
mod trace;

pub use clock::{ManualClock, MonotonicClock, WallClock};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use percentiles::Percentiles;
pub use registry::{Metric, Registry};
pub use span::SpanTimer;
pub use trace::{Trace, TraceEvent};
