//! # swag-obs — observability substrate for the SWAG retrieval pipeline
//!
//! Dependency-free metrics for every layer of the stack: lock-free
//! [`Counter`]/[`Gauge`]/[`Histogram`] primitives, RAII [`SpanTimer`]s, a
//! sampled per-query [`Trace`] ring buffer, an injectable
//! [`MonotonicClock`] for deterministic timing tests, and a named-metric
//! [`Registry`] with Prometheus-text and JSON-lines exporters.
//!
//! Design constraints, in order:
//!
//! 1. **Never on the hot path unless asked.** Instrumented components
//!    hold an `Option` of their metric handles; the disabled path costs
//!    one branch. The benchmark guard in `crates/bench` keeps the
//!    disabled-path regression under 2%.
//! 2. **Lock-free recording.** `Histogram::record` is a handful of
//!    relaxed atomic RMWs on fixed log₂ buckets — no allocation, no lock,
//!    safe from any thread.
//! 3. **Mergeable snapshots.** [`HistogramSnapshot`]s add bucket-wise, so
//!    per-shard or per-thread histograms can be combined after the fact;
//!    quantiles (p50/p90/p99/max) come from the buckets.
//!
//! On top of the metric substrate sits **causal tracing**: a
//! [`TraceCtx`] propagated through thread-locals (and across the
//! `swag-exec` pool into stolen jobs), a lock-free [`FlightRecorder`]
//! of per-thread span rings with slow-query capture, span-tree
//! reassembly ([`assemble`]) with ASCII waterfalls, and a Chrome
//! trace-event exporter ([`chrome_trace_json`]).

mod chrome;
mod clock;
mod ctx;
mod events;
mod http;
mod metrics;
mod percentiles;
mod recorder;
mod registry;
mod slo;
mod span;
mod surface;
mod trace;
mod tree;
mod window;

pub use chrome::chrome_trace_json;
pub use clock::{ManualClock, MonotonicClock, WallClock};
pub use ctx::TraceCtx;
pub use events::{EventClass, EventLog, EventLogStats, TailSampler};
pub use http::{Handler, HttpServer, Response};
pub use metrics::{Counter, Gauge, Histogram, HistogramSnapshot, HISTOGRAM_BUCKETS};
pub use percentiles::Percentiles;
pub use recorder::{
    FlightRecorder, SlowQuery, SpanEvent, SpanEventKind, SpanGuard, DEFAULT_RING_CAPACITY,
    DEFAULT_SLOW_CAPACITY,
};
pub use registry::{escape_help, escape_label_value, labeled_name, Metric, Registry};
pub use slo::{SloBurn, SloSet, SloSpec, SloState, SloStatus};
pub use span::SpanTimer;
pub use surface::OpsSurface;
pub use trace::{Trace, TraceEvent};
pub use tree::{assemble, render_waterfall, SpanNode, SpanTree};
pub use window::{MetricWindows, Sample, Window, WindowRing, WindowSpec, WindowView};
