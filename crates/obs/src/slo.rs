//! Declarative latency SLOs with multi-window burn-rate state.
//!
//! An [`SloSpec`] states an objective over a latency histogram: "at
//! least `objective` of observations must be at or below
//! `threshold_micros`". Evaluation runs entirely over the windowed views
//! of [`MetricWindows`](crate::MetricWindows) — never over cumulative
//! state — so an incident burns the budget *now*, not averaged against
//! hours of healthy history.
//!
//! The burn rate is the SRE-book quantity: `bad_fraction / error_budget`
//! where `error_budget = 1 − objective`. A service exactly meeting its
//! objective burns at 1.0; a 99%-objective service failing every request
//! burns at 100. Each objective is judged over **two** horizons — a
//! short view (the newest window: "is it on fire now?") and a long view
//! (all retained windows: "has it been burning for a while?") — and the
//! exported state escalates only when *both* agree, the standard
//! multi-window guard against paging on a single noisy window:
//!
//! * [`SloState::Page`] — both burns ≥ `page_burn` (default 10×),
//! * [`SloState::Warning`] — both burns ≥ `warn_burn` (default 2×),
//! * [`SloState::Ok`] — otherwise (including "no traffic").
//!
//! [`SloSet::export_gauges`] mirrors every evaluation into the registry
//! (`swag_slo_burn_milli{slo=...,horizon=...}` and
//! `swag_slo_state{slo=...}`), so `/metrics` scrapes carry the same
//! verdicts the `/slo` endpoint serves as JSON.

use crate::registry::{json_escape, labeled_name, Registry};
use crate::window::MetricWindows;

/// One latency objective over a histogram metric.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSpec {
    /// Objective id (label value on exported gauges).
    pub name: String,
    /// Registry name of the latency histogram to judge.
    pub metric: String,
    /// Observations at or below this are "good" (bucket resolution).
    pub threshold_micros: u64,
    /// Required good fraction, in `(0, 1)` — e.g. `0.99`.
    pub objective: f64,
}

impl SloSpec {
    /// A latency objective: `objective` of `metric`'s observations must
    /// be ≤ `threshold_micros`.
    ///
    /// # Panics
    /// Panics unless `objective` lies strictly inside `(0, 1)`.
    pub fn latency(name: &str, metric: &str, threshold_micros: u64, objective: f64) -> Self {
        assert!(
            objective > 0.0 && objective < 1.0,
            "objective must be in (0, 1), got {objective}"
        );
        SloSpec {
            name: name.to_string(),
            metric: metric.to_string(),
            threshold_micros,
            objective,
        }
    }
}

/// Escalation state of one objective.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum SloState {
    /// Within budget (or no traffic).
    Ok,
    /// Burning the budget faster than sustainable on both horizons.
    Warning,
    /// Burning fast enough to exhaust the budget imminently.
    Page,
}

impl SloState {
    /// Stable numeric encoding for the `swag_slo_state` gauge.
    pub fn as_gauge(self) -> i64 {
        match self {
            SloState::Ok => 0,
            SloState::Warning => 1,
            SloState::Page => 2,
        }
    }

    /// Lower-case label (`ok`/`warning`/`page`).
    pub fn as_str(self) -> &'static str {
        match self {
            SloState::Ok => "ok",
            SloState::Warning => "warning",
            SloState::Page => "page",
        }
    }
}

impl std::fmt::Display for SloState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Burn measurement over one horizon.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SloBurn {
    /// Observations in the horizon.
    pub total: u64,
    /// Observations at or below the threshold.
    pub good: u64,
    /// `bad_fraction / error_budget`; 0 with no traffic.
    pub burn: f64,
}

/// One evaluated objective.
#[derive(Debug, Clone, PartialEq)]
pub struct SloStatus {
    /// The objective judged.
    pub spec: SloSpec,
    /// Newest-window horizon.
    pub short: SloBurn,
    /// All-retained-windows horizon.
    pub long: SloBurn,
    /// Escalation verdict.
    pub state: SloState,
}

/// A set of objectives plus the escalation thresholds they share.
#[derive(Debug, Clone, PartialEq)]
pub struct SloSet {
    specs: Vec<SloSpec>,
    /// Both horizons ≥ this burn → [`SloState::Warning`].
    pub warn_burn: f64,
    /// Both horizons ≥ this burn → [`SloState::Page`].
    pub page_burn: f64,
}

impl Default for SloSet {
    fn default() -> Self {
        SloSet {
            specs: Vec::new(),
            warn_burn: 2.0,
            page_burn: 10.0,
        }
    }
}

impl SloSet {
    /// An empty set with default escalation thresholds (warn 2×, page
    /// 10×).
    pub fn new() -> Self {
        SloSet::default()
    }

    /// Adds an objective.
    pub fn push(&mut self, spec: SloSpec) {
        self.specs.push(spec);
    }

    /// The registered objectives.
    pub fn specs(&self) -> &[SloSpec] {
        &self.specs
    }

    /// Judges every objective against the current windowed views.
    pub fn evaluate(&self, windows: &MetricWindows) -> Vec<SloStatus> {
        self.specs
            .iter()
            .map(|spec| {
                let short = burn_over(windows, spec, 1);
                let long = burn_over(windows, spec, usize::MAX);
                let state = if short.burn >= self.page_burn && long.burn >= self.page_burn {
                    SloState::Page
                } else if short.burn >= self.warn_burn && long.burn >= self.warn_burn {
                    SloState::Warning
                } else {
                    SloState::Ok
                };
                SloStatus {
                    spec: spec.clone(),
                    short,
                    long,
                    state,
                }
            })
            .collect()
    }

    /// Mirrors evaluations into `registry`:
    /// `swag_slo_burn_milli{slo,horizon}` (burn ×1000) and
    /// `swag_slo_state{slo}` (0 ok / 1 warning / 2 page).
    pub fn export_gauges(&self, registry: &Registry, statuses: &[SloStatus]) {
        registry.set_help(
            "swag_slo_burn_milli",
            "Error-budget burn rate x1000 per objective and horizon.",
        );
        registry.set_help(
            "swag_slo_state",
            "SLO escalation state: 0 ok, 1 warning, 2 page.",
        );
        for s in statuses {
            for (horizon, burn) in [("short", &s.short), ("long", &s.long)] {
                registry
                    .gauge(&labeled_name(
                        "swag_slo_burn_milli",
                        &[("slo", &s.spec.name), ("horizon", horizon)],
                    ))
                    .set((burn.burn * 1000.0).round().min(i64::MAX as f64) as i64);
            }
            registry
                .gauge(&labeled_name("swag_slo_state", &[("slo", &s.spec.name)]))
                .set(s.state.as_gauge());
        }
    }

    /// Renders evaluations as a JSON array (the `/slo` endpoint body).
    pub fn render_json(statuses: &[SloStatus]) -> String {
        let mut out = String::from("[");
        for (i, s) in statuses.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(&format!(
                concat!(
                    "{{\"slo\":\"{}\",\"metric\":\"{}\",\"threshold_micros\":{},",
                    "\"objective\":{},\"state\":\"{}\",",
                    "\"short\":{{\"total\":{},\"good\":{},\"burn\":{:.4}}},",
                    "\"long\":{{\"total\":{},\"good\":{},\"burn\":{:.4}}}}}"
                ),
                json_escape(&s.spec.name),
                json_escape(&s.spec.metric),
                s.spec.threshold_micros,
                s.spec.objective,
                s.state,
                s.short.total,
                s.short.good,
                s.short.burn,
                s.long.total,
                s.long.good,
                s.long.burn,
            ));
        }
        out.push_str("]\n");
        out
    }
}

/// Burn over the newest `last_n` windows of the spec's metric.
fn burn_over(windows: &MetricWindows, spec: &SloSpec, last_n: usize) -> SloBurn {
    let snap = windows
        .view(&spec.metric, last_n)
        .and_then(|v| v.sample.histogram().copied());
    let (total, good) = match snap {
        Some(h) => (h.count, h.count_le(spec.threshold_micros)),
        None => (0, 0),
    };
    if total == 0 {
        return SloBurn {
            total,
            good,
            burn: 0.0,
        };
    }
    let bad_fraction = (total - good) as f64 / total as f64;
    let budget = 1.0 - spec.objective;
    SloBurn {
        total,
        good,
        burn: bad_fraction / budget,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::clock::ManualClock;
    use crate::window::{MetricWindows, WindowSpec};
    use std::sync::Arc;

    /// A windows/registry pair whose histogram saw `rounds` of
    /// (good, bad) observations, one round per closed window.
    fn scenario(rounds: &[(u64, u64)]) -> (MetricWindows, Registry) {
        let clock = Arc::new(ManualClock::new());
        let windows = MetricWindows::new(clock.clone(), WindowSpec::new(1_000, 8));
        let reg = Registry::new();
        let h = reg.histogram("swag_q_micros");
        clock.advance_micros(1_000);
        windows.rotate_now(&reg); // baseline
        for &(good, bad) in rounds {
            for _ in 0..good {
                h.record(100); // well under threshold
            }
            for _ in 0..bad {
                h.record(1_000_000); // way over
            }
            clock.advance_micros(1_000);
            windows.rotate_now(&reg);
        }
        (windows, reg)
    }

    fn set() -> SloSet {
        let mut slos = SloSet::new();
        slos.push(SloSpec::latency("query_p99", "swag_q_micros", 10_000, 0.99));
        slos
    }

    #[test]
    fn healthy_traffic_is_ok_with_zero_burn() {
        let (windows, _) = scenario(&[(100, 0), (100, 0)]);
        let statuses = set().evaluate(&windows);
        assert_eq!(statuses.len(), 1);
        assert_eq!(statuses[0].state, SloState::Ok);
        assert_eq!(statuses[0].long.burn, 0.0);
        assert_eq!(statuses[0].long.total, 200);
        assert_eq!(statuses[0].long.good, 200);
    }

    #[test]
    fn no_traffic_is_ok_not_page() {
        let (windows, _) = scenario(&[(0, 0)]);
        let statuses = set().evaluate(&windows);
        assert_eq!(statuses[0].state, SloState::Ok);
        assert_eq!(statuses[0].long.burn, 0.0);
    }

    #[test]
    fn sustained_total_failure_pages() {
        // Every request bad on both horizons: burn = 1.0 / 0.01 = 100x.
        let (windows, _) = scenario(&[(0, 100), (0, 100), (0, 100)]);
        let statuses = set().evaluate(&windows);
        assert_eq!(statuses[0].state, SloState::Page);
        assert!((statuses[0].short.burn - 100.0).abs() < 1e-9);
        assert!((statuses[0].long.burn - 100.0).abs() < 1e-9);
    }

    #[test]
    fn recovered_incident_does_not_page_on_the_short_horizon() {
        // Old windows all bad, newest window clean: long burn is high
        // but the short horizon vetoes the page.
        let (windows, _) = scenario(&[(0, 100), (0, 100), (100, 0)]);
        let statuses = set().evaluate(&windows);
        assert_eq!(statuses[0].short.burn, 0.0);
        assert!(statuses[0].long.burn > 10.0);
        assert_eq!(statuses[0].state, SloState::Ok);
    }

    #[test]
    fn moderate_burn_warns_before_paging() {
        // 4% bad with a 1% budget: burn 4x on both horizons.
        let (windows, _) = scenario(&[(96, 4), (96, 4)]);
        let statuses = set().evaluate(&windows);
        assert!((statuses[0].long.burn - 4.0).abs() < 1e-9);
        assert_eq!(statuses[0].state, SloState::Warning);
    }

    #[test]
    fn gauges_and_json_mirror_the_evaluation() {
        let (windows, reg) = scenario(&[(0, 100), (0, 100)]);
        let slos = set();
        let statuses = slos.evaluate(&windows);
        slos.export_gauges(&reg, &statuses);
        assert_eq!(
            reg.gauge("swag_slo_state{slo=\"query_p99\"}").get(),
            SloState::Page.as_gauge()
        );
        assert_eq!(
            reg.gauge("swag_slo_burn_milli{slo=\"query_p99\",horizon=\"long\"}")
                .get(),
            100_000
        );
        let json = SloSet::render_json(&statuses);
        assert!(json.starts_with('[') && json.trim_end().ends_with(']'));
        assert!(json.contains("\"slo\":\"query_p99\""));
        assert!(json.contains("\"state\":\"page\""));
    }
}
