//! Property-based tests for the geodesy substrate.

use proptest::prelude::*;
use swag_geo::{angle_diff_deg, circular_mean_deg, normalize_deg, LatLon, LocalFrame, Vec2};

proptest! {
    #[test]
    fn normalize_always_in_range(deg in -1e6f64..1e6) {
        let n = normalize_deg(deg);
        prop_assert!((0.0..360.0).contains(&n));
    }

    #[test]
    fn normalize_is_idempotent(deg in -1e6f64..1e6) {
        let n = normalize_deg(deg);
        prop_assert!((normalize_deg(n) - n).abs() < 1e-9);
    }

    #[test]
    fn angle_diff_symmetric_and_bounded(a in -720.0f64..720.0, b in -720.0f64..720.0) {
        let d1 = angle_diff_deg(a, b);
        let d2 = angle_diff_deg(b, a);
        prop_assert!((d1 - d2).abs() < 1e-9);
        prop_assert!((0.0..=180.0).contains(&d1));
    }

    #[test]
    fn angle_diff_shift_invariant(a in 0.0f64..360.0, b in 0.0f64..360.0, s in -360.0f64..360.0) {
        let d1 = angle_diff_deg(a, b);
        let d2 = angle_diff_deg(a + s, b + s);
        prop_assert!((d1 - d2).abs() < 1e-6);
    }

    #[test]
    fn circular_mean_rotation_equivariant(
        base in 0.0f64..360.0,
        spread in prop::collection::vec(-40.0f64..40.0, 1..20),
        shift in 0.0f64..360.0,
    ) {
        let angles: Vec<f64> = spread.iter().map(|d| normalize_deg(base + d)).collect();
        let shifted: Vec<f64> = spread.iter().map(|d| normalize_deg(base + d + shift)).collect();
        let m = circular_mean_deg(&angles).unwrap();
        let ms = circular_mean_deg(&shifted).unwrap();
        prop_assert!(angle_diff_deg(normalize_deg(m + shift), ms) < 1e-6);
    }

    #[test]
    fn displacement_antisymmetric(
        lat in -60.0f64..60.0, lng in -179.0f64..179.0,
        dlat in -0.01f64..0.01, dlng in -0.01f64..0.01,
    ) {
        let a = LatLon::new(lat, lng);
        let b = LatLon::new(lat + dlat, lng + dlng);
        let fwd = a.displacement_to(b);
        let back = b.displacement_to(a);
        prop_assert!((fwd + back).norm() < 1e-6);
    }

    #[test]
    fn planar_close_to_haversine_at_small_scale(
        lat in -60.0f64..60.0, lng in -179.0f64..179.0,
        bearing in 0.0f64..360.0, dist in 1.0f64..2000.0,
    ) {
        let a = LatLon::new(lat, lng);
        let b = a.offset(bearing, dist);
        let planar = a.distance_m(b);
        let sphere = a.haversine_m(b);
        prop_assert!((planar - sphere).abs() < 0.01 * sphere + 0.01,
            "planar {planar} sphere {sphere}");
    }

    #[test]
    fn local_frame_round_trip(
        lat in -60.0f64..60.0, lng in -179.0f64..179.0,
        x in -5000.0f64..5000.0, y in -5000.0f64..5000.0,
    ) {
        let f = LocalFrame::new(LatLon::new(lat, lng));
        let v = Vec2::new(x, y);
        let back = f.to_local(f.from_local(v));
        prop_assert!((back - v).norm() < 1e-5);
    }

    #[test]
    fn azimuth_round_trip(az in 0.0f64..360.0) {
        let v = Vec2::from_azimuth_deg(az);
        prop_assert!(angle_diff_deg(v.azimuth_deg(), az) < 1e-6);
    }

    #[test]
    fn offset_distance_consistent(
        lat in -60.0f64..60.0, lng in -179.0f64..179.0,
        bearing in 0.0f64..360.0, dist in 0.1f64..3000.0,
    ) {
        let a = LatLon::new(lat, lng);
        let b = a.offset(bearing, dist);
        prop_assert!((a.distance_m(b) - dist).abs() < 0.01 * dist + 0.01);
    }
}
