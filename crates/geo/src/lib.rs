//! Geodesy substrate for SWAG (*Scan Without a Glance*).
//!
//! Provides the small geometric vocabulary the rest of the system is built
//! on: WGS-like latitude/longitude coordinates ([`LatLon`]), a spherical-earth
//! planar projection matching the paper's eq. 12 ([`LatLon::displacement_to`],
//! [`LocalFrame`]), compass-azimuth arithmetic ([`angle`]) and plain 2-D
//! vector math ([`Vec2`]).
//!
//! Conventions used throughout the workspace:
//!
//! * Latitude/longitude are in **degrees**; latitude in `[-90, 90]`,
//!   longitude in `[-180, 180)`.
//! * Azimuths (compass bearings) are in **degrees clockwise from true
//!   north**, normalised to `[0, 360)`.
//! * Local planar coordinates are **metres** in an east-north frame:
//!   `x` grows eastwards, `y` grows northwards.

pub mod angle;
pub mod latlon;
pub mod local;
pub mod trajectory;
pub mod vec2;

pub use angle::{angle_diff_deg, circular_mean_deg, normalize_deg, signed_deg};
pub use latlon::{LatLon, EARTH_RADIUS_M, METERS_PER_DEG};
pub use local::LocalFrame;
pub use trajectory::Trajectory;
pub use vec2::Vec2;
