//! A local planar frame anchored at a reference position.
//!
//! Several subsystems (the synthetic-world renderer, the mobility models)
//! work in flat metre coordinates; [`LocalFrame`] converts between those and
//! geographic coordinates consistently, using the same spherical model as
//! [`crate::LatLon`].

use serde::{Deserialize, Serialize};

use crate::latlon::{LatLon, METERS_PER_DEG};
use crate::vec2::Vec2;

/// An east-north planar frame centred on `origin`.
///
/// The longitude scale is frozen at the origin's latitude, so round trips
/// are exact and the frame is rigid — appropriate for the city-scale areas
/// the paper works with.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LocalFrame {
    origin: LatLon,
    meters_per_deg_lng: f64,
}

impl LocalFrame {
    /// Creates a frame centred on `origin`.
    pub fn new(origin: LatLon) -> Self {
        LocalFrame {
            origin,
            meters_per_deg_lng: METERS_PER_DEG * origin.lat.to_radians().cos().max(1e-9),
        }
    }

    /// The frame's origin.
    #[inline]
    pub fn origin(&self) -> LatLon {
        self.origin
    }

    /// Projects a geographic position into local metres.
    pub fn to_local(&self, p: LatLon) -> Vec2 {
        Vec2::new(
            (p.lng - self.origin.lng) * self.meters_per_deg_lng,
            (p.lat - self.origin.lat) * METERS_PER_DEG,
        )
    }

    /// Lifts local metres back to geographic coordinates.
    pub fn from_local(&self, v: Vec2) -> LatLon {
        LatLon::new(
            self.origin.lat + v.y / METERS_PER_DEG,
            self.origin.lng + v.x / self.meters_per_deg_lng,
        )
    }

    /// Converts a metre length to degrees of latitude.
    #[inline]
    pub fn meters_to_deg_lat(&self, meters: f64) -> f64 {
        meters / METERS_PER_DEG
    }

    /// Converts a metre length to degrees of longitude at the frame origin.
    ///
    /// This is the server's `r̂ → r̂_Lng` conversion from §V-B.
    #[inline]
    pub fn meters_to_deg_lng(&self, meters: f64) -> f64 {
        meters / self.meters_per_deg_lng
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const ORIGIN: LatLon = LatLon {
        lat: 40.0,
        lng: 116.32,
    };

    #[test]
    fn origin_maps_to_zero() {
        let f = LocalFrame::new(ORIGIN);
        assert!(f.to_local(ORIGIN).norm() < 1e-12);
        let back = f.from_local(Vec2::ZERO);
        assert!((back.lat - ORIGIN.lat).abs() < 1e-12);
        assert!((back.lng - ORIGIN.lng).abs() < 1e-12);
    }

    #[test]
    fn round_trip_is_exact() {
        let f = LocalFrame::new(ORIGIN);
        for v in [
            Vec2::new(123.0, -456.0),
            Vec2::new(-2000.0, 3000.0),
            Vec2::new(0.5, 0.25),
        ] {
            let back = f.to_local(f.from_local(v));
            assert!((back - v).norm() < 1e-6, "{v:?} -> {back:?}");
        }
    }

    #[test]
    fn agrees_with_displacement_at_small_scale() {
        let f = LocalFrame::new(ORIGIN);
        let p = ORIGIN.offset(63.0, 300.0);
        let via_frame = f.to_local(p);
        let via_disp = ORIGIN.displacement_to(p);
        assert!((via_frame - via_disp).norm() < 0.05);
    }

    #[test]
    fn radius_conversion_matches_scales() {
        let f = LocalFrame::new(ORIGIN);
        let r = 100.0;
        let east = f.from_local(Vec2::new(r, 0.0));
        assert!((east.lng - ORIGIN.lng - f.meters_to_deg_lng(r)).abs() < 1e-12);
        let north = f.from_local(Vec2::new(0.0, r));
        assert!((north.lat - ORIGIN.lat - f.meters_to_deg_lat(r)).abs() < 1e-12);
    }
}
