//! Plain 2-D vector math over `f64`, in the east-north metre frame.

use std::ops::{Add, AddAssign, Div, Mul, Neg, Sub, SubAssign};

use serde::{Deserialize, Serialize};

/// A 2-D vector (or point) in metres. `x` is east, `y` is north.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub struct Vec2 {
    /// Eastward component in metres.
    pub x: f64,
    /// Northward component in metres.
    pub y: f64,
}

impl Vec2 {
    /// The zero vector.
    pub const ZERO: Vec2 = Vec2 { x: 0.0, y: 0.0 };

    /// Creates a vector from its east (`x`) and north (`y`) components.
    #[inline]
    pub const fn new(x: f64, y: f64) -> Self {
        Vec2 { x, y }
    }

    /// Unit vector pointing along a compass azimuth (degrees clockwise from
    /// north): `0° → (0, 1)`, `90° → (1, 0)`.
    #[inline]
    pub fn from_azimuth_deg(azimuth: f64) -> Self {
        let r = azimuth.to_radians();
        Vec2::new(r.sin(), r.cos())
    }

    /// Dot product.
    #[inline]
    pub fn dot(self, other: Vec2) -> f64 {
        self.x * other.x + self.y * other.y
    }

    /// Z-component of the 3-D cross product (`self × other`).
    #[inline]
    pub fn cross(self, other: Vec2) -> f64 {
        self.x * other.y - self.y * other.x
    }

    /// Euclidean norm.
    #[inline]
    pub fn norm(self) -> f64 {
        self.x.hypot(self.y)
    }

    /// Squared Euclidean norm (avoids the square root).
    #[inline]
    pub fn norm_sq(self) -> f64 {
        self.x * self.x + self.y * self.y
    }

    /// Distance between two points.
    #[inline]
    pub fn distance(self, other: Vec2) -> f64 {
        (other - self).norm()
    }

    /// Returns the vector scaled to unit length, or `None` for (near-)zero
    /// vectors.
    pub fn normalized(self) -> Option<Vec2> {
        let n = self.norm();
        if n < 1e-12 {
            None
        } else {
            Some(self / n)
        }
    }

    /// Compass azimuth of this vector in degrees `[0, 360)`.
    ///
    /// The zero vector maps to `0°` (north) by convention.
    pub fn azimuth_deg(self) -> f64 {
        if self.norm_sq() < 1e-24 {
            return 0.0;
        }
        crate::angle::normalize_deg(self.x.atan2(self.y).to_degrees())
    }

    /// Rotates the vector by `deg` degrees **clockwise** (the compass
    /// direction of increasing azimuth).
    pub fn rotate_cw_deg(self, deg: f64) -> Vec2 {
        let r = deg.to_radians();
        let (s, c) = r.sin_cos();
        // Clockwise in the east-north frame is a negative mathematical angle.
        Vec2::new(self.x * c + self.y * s, -self.x * s + self.y * c)
    }

    /// Linear interpolation: `self` at `t = 0`, `other` at `t = 1`.
    #[inline]
    pub fn lerp(self, other: Vec2, t: f64) -> Vec2 {
        self + (other - self) * t
    }
}

impl Add for Vec2 {
    type Output = Vec2;
    #[inline]
    fn add(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x + rhs.x, self.y + rhs.y)
    }
}

impl AddAssign for Vec2 {
    #[inline]
    fn add_assign(&mut self, rhs: Vec2) {
        self.x += rhs.x;
        self.y += rhs.y;
    }
}

impl Sub for Vec2 {
    type Output = Vec2;
    #[inline]
    fn sub(self, rhs: Vec2) -> Vec2 {
        Vec2::new(self.x - rhs.x, self.y - rhs.y)
    }
}

impl SubAssign for Vec2 {
    #[inline]
    fn sub_assign(&mut self, rhs: Vec2) {
        self.x -= rhs.x;
        self.y -= rhs.y;
    }
}

impl Mul<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn mul(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x * rhs, self.y * rhs)
    }
}

impl Div<f64> for Vec2 {
    type Output = Vec2;
    #[inline]
    fn div(self, rhs: f64) -> Vec2 {
        Vec2::new(self.x / rhs, self.y / rhs)
    }
}

impl Neg for Vec2 {
    type Output = Vec2;
    #[inline]
    fn neg(self) -> Vec2 {
        Vec2::new(-self.x, -self.y)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn azimuth_cardinal_directions() {
        assert!(close(Vec2::new(0.0, 1.0).azimuth_deg(), 0.0));
        assert!(close(Vec2::new(1.0, 0.0).azimuth_deg(), 90.0));
        assert!(close(Vec2::new(0.0, -1.0).azimuth_deg(), 180.0));
        assert!(close(Vec2::new(-1.0, 0.0).azimuth_deg(), 270.0));
    }

    #[test]
    fn from_azimuth_round_trips() {
        for az in [0.0, 45.0, 90.0, 135.5, 210.0, 359.0] {
            let v = Vec2::from_azimuth_deg(az);
            assert!(close(v.norm(), 1.0));
            assert!(close(v.azimuth_deg(), az), "azimuth {az}");
        }
    }

    #[test]
    fn zero_vector_azimuth_is_north() {
        assert_eq!(Vec2::ZERO.azimuth_deg(), 0.0);
    }

    #[test]
    fn rotate_cw_quarter_turn() {
        let north = Vec2::new(0.0, 1.0);
        let east = north.rotate_cw_deg(90.0);
        assert!(close(east.x, 1.0) && close(east.y, 0.0));
    }

    #[test]
    fn rotation_preserves_norm() {
        let v = Vec2::new(3.0, -4.0);
        assert!(close(v.rotate_cw_deg(123.4).norm(), 5.0));
    }

    #[test]
    fn dot_and_cross_orthogonality() {
        let a = Vec2::new(1.0, 0.0);
        let b = Vec2::new(0.0, 2.0);
        assert!(close(a.dot(b), 0.0));
        assert!(close(a.cross(b), 2.0));
    }

    #[test]
    fn lerp_endpoints_and_midpoint() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, -2.0);
        assert_eq!(a.lerp(b, 0.0), a);
        assert_eq!(a.lerp(b, 1.0), b);
        let m = a.lerp(b, 0.5);
        assert!(close(m.x, 5.0) && close(m.y, -1.0));
    }

    #[test]
    fn normalized_zero_is_none() {
        assert!(Vec2::ZERO.normalized().is_none());
        let v = Vec2::new(0.0, 5.0).normalized().unwrap();
        assert!(close(v.norm(), 1.0));
    }

    #[test]
    fn arithmetic_ops() {
        let a = Vec2::new(1.0, 2.0);
        let b = Vec2::new(3.0, 5.0);
        assert_eq!(a + b, Vec2::new(4.0, 7.0));
        assert_eq!(b - a, Vec2::new(2.0, 3.0));
        assert_eq!(a * 2.0, Vec2::new(2.0, 4.0));
        assert_eq!(b / 2.0, Vec2::new(1.5, 2.5));
        assert_eq!(-a, Vec2::new(-1.0, -2.0));
        let mut c = a;
        c += b;
        assert_eq!(c, Vec2::new(4.0, 7.0));
        c -= b;
        assert_eq!(c, a);
    }
}
