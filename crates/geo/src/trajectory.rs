//! Geographic trajectories: polylines of positions with length,
//! resampling and Douglas-Peucker simplification.
//!
//! Used for trace analytics and for compressing position streams before
//! export (simplification keeps the path shape within a metric tolerance
//! using far fewer vertices).

use crate::latlon::LatLon;
use crate::local::LocalFrame;
use crate::vec2::Vec2;

/// An ordered sequence of geographic positions.
#[derive(Debug, Clone, PartialEq)]
pub struct Trajectory {
    points: Vec<LatLon>,
}

impl Trajectory {
    /// Creates a trajectory from positions (any length, including empty).
    pub fn new(points: Vec<LatLon>) -> Self {
        Trajectory { points }
    }

    /// The vertices.
    pub fn points(&self) -> &[LatLon] {
        &self.points
    }

    /// Number of vertices.
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trajectory has no vertices.
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Total path length in metres (planar model).
    pub fn length_m(&self) -> f64 {
        self.points.windows(2).map(|w| w[0].distance_m(w[1])).sum()
    }

    /// The position `dist_m` metres along the path (clamped to the ends).
    ///
    /// # Panics
    /// Panics on an empty trajectory.
    pub fn point_at(&self, dist_m: f64) -> LatLon {
        assert!(!self.points.is_empty(), "empty trajectory");
        if self.points.len() == 1 || dist_m <= 0.0 {
            return self.points[0];
        }
        let mut remaining = dist_m;
        for w in self.points.windows(2) {
            let seg = w[0].distance_m(w[1]);
            if seg > 0.0 && remaining <= seg {
                let d = w[0].displacement_to(w[1]);
                return w[0].offset_by(d * (remaining / seg));
            }
            remaining -= seg;
        }
        *self.points.last().expect("non-empty")
    }

    /// Resamples the path at a fixed metre spacing (both endpoints kept).
    pub fn resample_m(&self, spacing_m: f64) -> Trajectory {
        assert!(spacing_m > 0.0, "spacing must be positive");
        if self.points.len() < 2 {
            return self.clone();
        }
        let total = self.length_m();
        let n = (total / spacing_m).floor() as usize;
        let mut out: Vec<LatLon> = (0..=n)
            .map(|i| self.point_at(i as f64 * spacing_m))
            .collect();
        let last = *self.points.last().expect("non-empty");
        if out.last().is_none_or(|p| p.distance_m(last) > 1e-6) {
            out.push(last);
        }
        Trajectory::new(out)
    }

    /// Douglas-Peucker simplification: the smallest vertex subset whose
    /// polyline stays within `tolerance_m` of the original (planar model,
    /// endpoints always kept).
    pub fn simplify_m(&self, tolerance_m: f64) -> Trajectory {
        assert!(tolerance_m >= 0.0, "tolerance must be non-negative");
        if self.points.len() < 3 {
            return self.clone();
        }
        // Work in a local metric frame anchored at the first vertex.
        let frame = LocalFrame::new(self.points[0]);
        let local: Vec<Vec2> = self.points.iter().map(|&p| frame.to_local(p)).collect();
        let mut keep = vec![false; local.len()];
        keep[0] = true;
        keep[local.len() - 1] = true;
        douglas_peucker(&local, 0, local.len() - 1, tolerance_m, &mut keep);
        Trajectory::new(
            self.points
                .iter()
                .zip(&keep)
                .filter(|(_, &k)| k)
                .map(|(&p, _)| p)
                .collect(),
        )
    }
}

/// Marks the vertices to keep between `lo` and `hi` (exclusive interior).
#[allow(clippy::needless_range_loop)] // the index itself is the result
fn douglas_peucker(pts: &[Vec2], lo: usize, hi: usize, tol: f64, keep: &mut [bool]) {
    if hi <= lo + 1 {
        return;
    }
    let (a, b) = (pts[lo], pts[hi]);
    let mut worst = lo;
    let mut worst_d = -1.0;
    for i in (lo + 1)..hi {
        let d = point_segment_distance(pts[i], a, b);
        if d > worst_d {
            worst_d = d;
            worst = i;
        }
    }
    if worst_d > tol {
        keep[worst] = true;
        douglas_peucker(pts, lo, worst, tol, keep);
        douglas_peucker(pts, worst, hi, tol, keep);
    }
}

fn point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> f64 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq < 1e-18 {
        return p.distance(a);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    p.distance(a + ab * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// A straight north path with given vertex spacing.
    fn straight(n: usize, step_m: f64) -> Trajectory {
        Trajectory::new(
            (0..n)
                .map(|i| origin().offset(0.0, i as f64 * step_m))
                .collect(),
        )
    }

    #[test]
    fn length_of_straight_path() {
        let t = straight(11, 10.0);
        assert!((t.length_m() - 100.0).abs() < 0.01);
        assert!(Trajectory::new(vec![]).is_empty());
        assert_eq!(Trajectory::new(vec![origin()]).length_m(), 0.0);
    }

    #[test]
    fn point_at_interpolates_and_clamps() {
        let t = straight(3, 50.0);
        assert!(t.point_at(-5.0).distance_m(origin()) < 1e-6);
        let mid = t.point_at(75.0);
        assert!((origin().distance_m(mid) - 75.0).abs() < 0.01);
        let end = t.point_at(1e6);
        assert!((origin().distance_m(end) - 100.0).abs() < 0.01);
    }

    #[test]
    fn resample_spacing_is_uniform() {
        let t = straight(3, 50.0); // 100 m total
        let r = t.resample_m(10.0);
        assert_eq!(r.len(), 11);
        for w in r.points().windows(2) {
            assert!((w[0].distance_m(w[1]) - 10.0).abs() < 0.05);
        }
        // Endpoints preserved.
        assert!(r.points()[0].distance_m(origin()) < 1e-6);
        assert!(r.points()[10].distance_m(t.point_at(100.0)) < 0.05);
    }

    #[test]
    fn simplify_collapses_collinear_points() {
        let t = straight(101, 1.0);
        let s = t.simplify_m(0.5);
        assert_eq!(s.len(), 2, "straight line should keep only endpoints");
        assert!((s.length_m() - t.length_m()).abs() < 0.01);
    }

    #[test]
    fn simplify_keeps_corners() {
        // An L: 50 m north then 50 m east.
        let mut pts: Vec<LatLon> = (0..=50)
            .map(|i| origin().offset(0.0, f64::from(i)))
            .collect();
        let corner = pts[50];
        pts.extend((1..=50).map(|i| corner.offset(90.0, f64::from(i))));
        let t = Trajectory::new(pts);
        let s = t.simplify_m(1.0);
        assert_eq!(s.len(), 3, "endpoints + the corner");
        assert!(s.points()[1].distance_m(corner) < 0.5);
    }

    #[test]
    fn simplify_respects_tolerance() {
        // A zig-zag with 3 m amplitude: a 5 m tolerance flattens it, a
        // 1 m tolerance keeps the zigs.
        let pts: Vec<LatLon> = (0..40)
            .map(|i| {
                let east = if i % 2 == 0 { 0.0 } else { 3.0 };
                origin().offset(0.0, f64::from(i) * 5.0).offset(90.0, east)
            })
            .collect();
        let t = Trajectory::new(pts);
        let coarse = t.simplify_m(5.0);
        let fine = t.simplify_m(1.0);
        assert!(coarse.len() < 6, "coarse kept {}", coarse.len());
        assert!(fine.len() > 20, "fine kept {}", fine.len());
        // Simplification never increases vertex count or length.
        assert!(coarse.length_m() <= t.length_m() + 1e-6);
    }

    #[test]
    fn degenerate_trajectories_survive() {
        for t in [
            Trajectory::new(vec![]),
            Trajectory::new(vec![origin()]),
            Trajectory::new(vec![origin(), origin()]),
        ] {
            let s = t.simplify_m(1.0);
            assert_eq!(s.len(), t.len());
        }
    }
}
