//! Latitude/longitude coordinates on a spherical earth.
//!
//! The paper (§VI-A) models the earth as a regular sphere of radius
//! `r_e = 6 378 140 m` and treats FoV-scale displacements as planar. We keep
//! that model: [`LatLon::displacement_to`] is the equirectangular projection
//! with the standard `cos(mean latitude)` longitude scaling (the paper's
//! eq. 12 prints `cos((Lng₂−Lng₁)/2)`, a typo for the latitude correction —
//! see `DESIGN.md`). A paper-faithful variant and a haversine cross-check
//! are provided for validation.

use serde::{Deserialize, Serialize};

use crate::angle::normalize_deg;
use crate::vec2::Vec2;

/// Earth radius in metres, as used by the paper (§VI-A).
pub const EARTH_RADIUS_M: f64 = 6_378_140.0;

/// Metres per degree of latitude (and of longitude at the equator).
pub const METERS_PER_DEG: f64 = 2.0 * std::f64::consts::PI * EARTH_RADIUS_M / 360.0;

/// A geographic position in degrees.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct LatLon {
    /// Latitude in degrees, positive north, in `[-90, 90]`.
    pub lat: f64,
    /// Longitude in degrees, positive east, in `[-180, 180)`.
    pub lng: f64,
}

impl LatLon {
    /// Creates a position, normalising the longitude to `[-180, 180)` and
    /// clamping the latitude to `[-90, 90]`.
    pub fn new(lat: f64, lng: f64) -> Self {
        let lat = lat.clamp(-90.0, 90.0);
        let lng = normalize_deg(lng + 180.0) - 180.0;
        LatLon { lat, lng }
    }

    /// Planar displacement from `self` to `other`, in metres east/north.
    ///
    /// Valid for FoV-scale separations (up to a few kilometres), where the
    /// paper's planar approximation holds.
    pub fn displacement_to(self, other: LatLon) -> Vec2 {
        let mean_lat = 0.5 * (self.lat + other.lat);
        let dx = METERS_PER_DEG * mean_lat.to_radians().cos() * (other.lng - self.lng);
        let dy = METERS_PER_DEG * (other.lat - self.lat);
        Vec2::new(dx, dy)
    }

    /// Paper-faithful variant of eq. 12, scaling longitude by
    /// `cos((Lng₂ − Lng₁)/2)` exactly as printed. Kept only to document the
    /// erratum; at small longitude separations near the equator it agrees
    /// with [`Self::displacement_to`], but it ignores latitude entirely.
    pub fn displacement_to_paper(self, other: LatLon) -> Vec2 {
        let dx = METERS_PER_DEG
            * (0.5 * (other.lng - self.lng)).to_radians().cos()
            * (other.lng - self.lng);
        let dy = METERS_PER_DEG * (other.lat - self.lat);
        Vec2::new(dx, dy)
    }

    /// Planar distance in metres (`δ_p` in the paper's eq. 2/12).
    #[inline]
    pub fn distance_m(self, other: LatLon) -> f64 {
        self.displacement_to(other).norm()
    }

    /// Great-circle distance in metres (haversine), used as a cross-check of
    /// the planar approximation in tests.
    pub fn haversine_m(self, other: LatLon) -> f64 {
        let (lat1, lat2) = (self.lat.to_radians(), other.lat.to_radians());
        let dlat = lat2 - lat1;
        let dlng = (other.lng - self.lng).to_radians();
        let a = (dlat / 2.0).sin().powi(2) + lat1.cos() * lat2.cos() * (dlng / 2.0).sin().powi(2);
        2.0 * EARTH_RADIUS_M * a.sqrt().asin()
    }

    /// Compass azimuth from `self` towards `other`, degrees in `[0, 360)`
    /// (`θ_p` in the paper's eq. 12).
    #[inline]
    pub fn bearing_to_deg(self, other: LatLon) -> f64 {
        self.displacement_to(other).azimuth_deg()
    }

    /// Returns the position reached by moving `meters` along compass azimuth
    /// `bearing_deg` (planar model).
    pub fn offset(self, bearing_deg: f64, meters: f64) -> LatLon {
        self.offset_by(Vec2::from_azimuth_deg(bearing_deg) * meters)
    }

    /// Returns the position displaced by a local east/north vector in metres.
    pub fn offset_by(self, d: Vec2) -> LatLon {
        let lat = self.lat + d.y / METERS_PER_DEG;
        let coslat = lat.to_radians().cos().max(1e-9);
        let lng = self.lng + d.x / (METERS_PER_DEG * coslat);
        LatLon::new(lat, lng)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tsinghua campus, roughly where the paper's traces were recorded.
    const BEIJING: LatLon = LatLon {
        lat: 40.0,
        lng: 116.32,
    };

    #[test]
    fn constructor_normalises() {
        let p = LatLon::new(95.0, 185.0);
        assert_eq!(p.lat, 90.0);
        assert_eq!(p.lng, -175.0);
        let q = LatLon::new(-30.0, -180.0);
        assert_eq!(q.lng, -180.0);
    }

    #[test]
    fn displacement_north_is_pure_y() {
        let a = BEIJING;
        let b = LatLon::new(a.lat + 0.001, a.lng);
        let d = a.displacement_to(b);
        assert!(d.x.abs() < 1e-9);
        assert!((d.y - 0.001 * METERS_PER_DEG).abs() < 1e-6);
    }

    #[test]
    fn displacement_east_scales_with_latitude() {
        let a = BEIJING;
        let b = LatLon::new(a.lat, a.lng + 0.001);
        let d = a.displacement_to(b);
        let expected = 0.001 * METERS_PER_DEG * a.lat.to_radians().cos();
        assert!((d.x - expected).abs() < 1e-6);
        assert!(d.y.abs() < 1e-9);
    }

    #[test]
    fn displacement_is_antisymmetric() {
        let a = BEIJING;
        let b = LatLon::new(40.001, 116.3215);
        let ab = a.displacement_to(b);
        let ba = b.displacement_to(a);
        assert!((ab + ba).norm() < 1e-9);
    }

    #[test]
    fn planar_distance_matches_haversine_at_fov_scale() {
        let a = BEIJING;
        for (dlat, dlng) in [(0.001, 0.002), (-0.003, 0.001), (0.005, -0.004)] {
            let b = LatLon::new(a.lat + dlat, a.lng + dlng);
            let planar = a.distance_m(b);
            let sphere = a.haversine_m(b);
            // Sub-0.1% agreement at sub-kilometre scale.
            assert!(
                (planar - sphere).abs() / sphere < 1e-3,
                "planar {planar} vs haversine {sphere}"
            );
        }
    }

    #[test]
    fn offset_round_trips_through_displacement() {
        let a = BEIJING;
        for bearing in [0.0, 37.0, 90.0, 135.0, 270.0] {
            let b = a.offset(bearing, 250.0);
            let d = a.displacement_to(b);
            assert!((d.norm() - 250.0).abs() < 0.05, "bearing {bearing}");
            assert!(
                crate::angle::angle_diff_deg(d.azimuth_deg(), bearing) < 0.05,
                "bearing {bearing} -> {}",
                d.azimuth_deg()
            );
        }
    }

    #[test]
    fn bearing_to_cardinal_neighbours() {
        let a = BEIJING;
        assert!((a.bearing_to_deg(a.offset(0.0, 100.0)) - 0.0).abs() < 0.01);
        assert!((a.bearing_to_deg(a.offset(90.0, 100.0)) - 90.0).abs() < 0.01);
        assert!((a.bearing_to_deg(a.offset(180.0, 100.0)) - 180.0).abs() < 0.01);
    }

    #[test]
    fn paper_formula_agrees_near_equator() {
        let a = LatLon::new(0.0, 10.0);
        let b = LatLon::new(0.001, 10.001);
        let ours = a.displacement_to(b);
        let paper = a.displacement_to_paper(b);
        assert!((ours - paper).norm() < 0.01);
    }
}
