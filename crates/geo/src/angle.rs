//! Compass-azimuth arithmetic.
//!
//! All functions operate on degrees. Azimuths are measured clockwise from
//! north and normalised to `[0, 360)`.

/// Normalises an angle in degrees to `[0, 360)`.
#[inline]
pub fn normalize_deg(deg: f64) -> f64 {
    let r = deg.rem_euclid(360.0);
    // `rem_euclid` can return 360.0 for tiny negative inputs due to rounding.
    if r >= 360.0 {
        0.0
    } else {
        r
    }
}

/// Maps an angle in degrees to the signed range `(-180, 180]`.
#[inline]
pub fn signed_deg(deg: f64) -> f64 {
    let n = normalize_deg(deg);
    if n > 180.0 {
        n - 360.0
    } else {
        n
    }
}

/// Unsigned angular difference between two azimuths, in `[0, 180]`.
///
/// This is the paper's eq. 2:
/// `δ_θ = min(|θ₂ − θ₁|, 360 − |θ₂ − θ₁|)`.
#[inline]
pub fn angle_diff_deg(a: f64, b: f64) -> f64 {
    let d = (normalize_deg(a) - normalize_deg(b)).abs();
    d.min(360.0 - d)
}

/// Signed angular difference `b − a` in `(-180, 180]`, i.e. how far to
/// rotate clockwise from `a` to reach `b` (negative = counter-clockwise).
#[inline]
pub fn signed_angle_diff_deg(a: f64, b: f64) -> f64 {
    signed_deg(b - a)
}

/// Circular (directional) mean of a set of azimuths in degrees.
///
/// Returns `None` for an empty slice or when the resultant vector is
/// (near-)zero, i.e. the directions cancel out and no mean is defined.
///
/// Unlike the paper's eq. 11 (plain arithmetic mean of `θ`), the circular
/// mean is well defined across the 0°/360° wrap: the mean of `{350°, 10°}`
/// is `0°`, not `180°`.
pub fn circular_mean_deg(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    let (mut sx, mut sy) = (0.0f64, 0.0f64);
    for &a in angles {
        let r = a.to_radians();
        sx += r.sin();
        sy += r.cos();
    }
    let n = angles.len() as f64;
    if (sx / n).hypot(sy / n) < 1e-9 {
        return None;
    }
    Some(normalize_deg(sx.atan2(sy).to_degrees()))
}

/// Plain arithmetic mean of azimuths — the paper's eq. 11, kept for
/// faithfulness and for the averaging-rule ablation.
///
/// Returns `None` for an empty slice. Susceptible to the 0°/360° wrap (see
/// [`circular_mean_deg`]).
pub fn arithmetic_mean_deg(angles: &[f64]) -> Option<f64> {
    if angles.is_empty() {
        return None;
    }
    Some(normalize_deg(
        angles.iter().sum::<f64>() / angles.len() as f64,
    ))
}

/// Tests whether azimuth `theta` lies in the closed circular interval of
/// half-width `half_width` degrees centred on `center`.
#[inline]
pub fn within_deg(theta: f64, center: f64, half_width: f64) -> bool {
    angle_diff_deg(theta, center) <= half_width
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn normalize_wraps_both_directions() {
        assert!(close(normalize_deg(370.0), 10.0));
        assert!(close(normalize_deg(-10.0), 350.0));
        assert!(close(normalize_deg(720.0), 0.0));
        assert!(close(normalize_deg(0.0), 0.0));
        assert!(close(normalize_deg(-360.0), 0.0));
    }

    #[test]
    fn normalize_output_always_in_range() {
        for deg in [-1e-15, -720.0, 1e9, -1e9, 359.999_999_999] {
            let n = normalize_deg(deg);
            assert!((0.0..360.0).contains(&n), "{deg} -> {n}");
        }
    }

    #[test]
    fn signed_maps_to_half_open_range() {
        assert!(close(signed_deg(190.0), -170.0));
        assert!(close(signed_deg(180.0), 180.0));
        assert!(close(signed_deg(-190.0), 170.0));
    }

    #[test]
    fn diff_is_symmetric_and_wraps() {
        assert!(close(angle_diff_deg(10.0, 350.0), 20.0));
        assert!(close(angle_diff_deg(350.0, 10.0), 20.0));
        assert!(close(angle_diff_deg(0.0, 180.0), 180.0));
        assert!(close(angle_diff_deg(90.0, 90.0), 0.0));
    }

    #[test]
    fn signed_diff_gives_direction() {
        assert!(close(signed_angle_diff_deg(350.0, 10.0), 20.0));
        assert!(close(signed_angle_diff_deg(10.0, 350.0), -20.0));
    }

    #[test]
    fn circular_mean_handles_wrap() {
        let m = circular_mean_deg(&[350.0, 10.0]).unwrap();
        assert!(close(m, 0.0), "got {m}");
        // The arithmetic mean gets this wrong — the documented paper erratum.
        let a = arithmetic_mean_deg(&[350.0, 10.0]).unwrap();
        assert!(close(a, 180.0));
    }

    #[test]
    fn circular_mean_of_clustered_angles() {
        let m = circular_mean_deg(&[88.0, 90.0, 92.0]).unwrap();
        assert!(close(m, 90.0));
    }

    #[test]
    fn circular_mean_degenerate_cases() {
        assert!(circular_mean_deg(&[]).is_none());
        // Opposing directions cancel: undefined mean.
        assert!(circular_mean_deg(&[0.0, 180.0]).is_none());
        assert!(close(circular_mean_deg(&[45.0]).unwrap(), 45.0));
    }

    #[test]
    fn within_respects_wrap() {
        assert!(within_deg(355.0, 5.0, 15.0));
        assert!(!within_deg(355.0, 30.0, 15.0));
        assert!(within_deg(30.0, 30.0, 0.0));
    }
}
