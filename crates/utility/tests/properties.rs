//! Property tests for the coverage utility: union-area bounds,
//! monotonicity and the submodularity that justifies greedy selection
//! (paper §VII: "this utility function is non-negative monotone
//! submodular").

use proptest::prelude::*;
use swag_core::{CameraProfile, Fov, RepFov};
use swag_geo::LatLon;
use swag_utility::{coverage_rects, global_utility, union_area, utility_of_set, CoverageRect};

fn arb_rect() -> impl Strategy<Value = CoverageRect> {
    (0.0f64..100.0, 0.1f64..50.0, 0.0f64..300.0, 1.0f64..60.0).prop_map(|(t0, dt, a0, da)| {
        CoverageRect {
            t0,
            t1: t0 + dt,
            a0,
            a1: (a0 + da).min(360.0),
        }
    })
}

fn arb_rep() -> impl Strategy<Value = RepFov> {
    (0.0f64..100.0, 0.1f64..30.0, 0.0f64..360.0).prop_map(|(t0, dt, theta)| {
        RepFov::new(t0, t0 + dt, Fov::new(LatLon::new(40.0, 116.32), theta))
    })
}

proptest! {
    #[test]
    fn union_bounded_by_parts(rects in prop::collection::vec(arb_rect(), 1..30)) {
        let u = union_area(&rects);
        let sum: f64 = rects.iter().map(CoverageRect::area).sum();
        let max = rects.iter().map(CoverageRect::area).fold(0.0, f64::max);
        prop_assert!(u <= sum + 1e-6, "union {u} > sum {sum}");
        prop_assert!(u >= max - 1e-6, "union {u} < max part {max}");
    }

    #[test]
    fn union_is_monotone(
        rects in prop::collection::vec(arb_rect(), 1..20),
        extra in arb_rect(),
    ) {
        let before = union_area(&rects);
        let mut bigger = rects.clone();
        bigger.push(extra);
        prop_assert!(union_area(&bigger) >= before - 1e-9);
    }

    #[test]
    fn union_is_permutation_invariant(rects in prop::collection::vec(arb_rect(), 1..20)) {
        let mut reversed = rects.clone();
        reversed.reverse();
        prop_assert!((union_area(&rects) - union_area(&reversed)).abs() < 1e-9);
    }

    #[test]
    fn utility_is_submodular(
        reps in prop::collection::vec(arb_rep(), 2..15),
        extra in arb_rep(),
        split in 0usize..14,
    ) {
        // S = prefix ⊆ T = whole set: marginal gain of `extra` must not
        // grow with the base set (diminishing returns).
        let cam = CameraProfile::smartphone();
        let (t0, t1) = (0.0, 150.0);
        let split = split.min(reps.len());
        let s: Vec<RepFov> = reps[..split].to_vec();
        let t: Vec<RepFov> = reps.clone();

        let u = |set: &[RepFov]| utility_of_set(set, &cam, t0, t1);
        let mut s_x = s.clone();
        s_x.push(extra);
        let mut t_x = t.clone();
        t_x.push(extra);

        let gain_s = u(&s_x) - u(&s);
        let gain_t = u(&t_x) - u(&t);
        prop_assert!(gain_s >= gain_t - 1e-6, "gain_S {gain_s} < gain_T {gain_t}");
    }

    #[test]
    fn utility_is_monotone_and_bounded(
        reps in prop::collection::vec(arb_rep(), 0..20),
        extra in arb_rep(),
    ) {
        let cam = CameraProfile::smartphone();
        let (t0, t1) = (0.0, 150.0);
        let before = utility_of_set(&reps, &cam, t0, t1);
        let mut bigger = reps.clone();
        bigger.push(extra);
        let after = utility_of_set(&bigger, &cam, t0, t1);
        prop_assert!(after >= before - 1e-9);
        prop_assert!(after <= global_utility(t0, t1) + 1e-9);
        prop_assert!(before >= 0.0);
    }

    #[test]
    fn coverage_rect_total_angle_is_viewing_angle(rep in arb_rep()) {
        let cam = CameraProfile::smartphone();
        let rects = coverage_rects(&rep, &cam, 0.0, 150.0);
        let angle: f64 = rects.iter().map(|r| r.a1 - r.a0).sum();
        prop_assert!((angle - cam.viewing_angle_deg()).abs() < 1e-9);
        for r in &rects {
            prop_assert!(r.a0 >= 0.0 && r.a1 <= 360.0);
            prop_assert!(r.t0 >= 0.0 && r.t1 <= 150.0);
        }
    }
}
