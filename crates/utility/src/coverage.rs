//! Spatial coverage analytics: which parts of the city are filmed?
//!
//! Complements the angular × temporal utility of [`crate::rect`] with a
//! plan-view answer: rasterise every segment's view sector onto a metre
//! grid and count how many segments cover each cell. Deployments use this
//! to spot blind zones and to weight incentives towards uncovered areas.

use swag_core::{sector_contains, CameraProfile, RepFov};
use swag_geo::{LatLon, LocalFrame, Vec2};

/// A plan-view coverage raster.
#[derive(Debug, Clone, PartialEq)]
pub struct CoverageGrid {
    origin: LatLon,
    frame: LocalFrame,
    half_extent_m: f64,
    cell_m: f64,
    cells_per_side: usize,
    counts: Vec<u32>,
}

impl CoverageGrid {
    /// Creates an empty grid covering the square
    /// `[-half_extent_m, half_extent_m]²` around `origin` with square
    /// cells of `cell_m` metres.
    ///
    /// # Panics
    /// Panics if the extents are not positive or the grid would exceed
    /// 16 M cells.
    pub fn new(origin: LatLon, half_extent_m: f64, cell_m: f64) -> Self {
        assert!(
            half_extent_m > 0.0 && cell_m > 0.0,
            "extents must be positive"
        );
        let cells_per_side = ((2.0 * half_extent_m) / cell_m).ceil() as usize;
        assert!(
            cells_per_side * cells_per_side <= 16_000_000,
            "grid too fine: {cells_per_side}² cells"
        );
        CoverageGrid {
            origin,
            frame: LocalFrame::new(origin),
            half_extent_m,
            cell_m,
            cells_per_side,
            counts: vec![0; cells_per_side * cells_per_side],
        }
    }

    /// Cells per side.
    pub fn cells_per_side(&self) -> usize {
        self.cells_per_side
    }

    /// Coverage count of the cell containing `p` (0 outside the grid).
    pub fn count_at(&self, p: LatLon) -> u32 {
        match self.cell_index(self.frame.to_local(p)) {
            Some(i) => self.counts[i],
            None => 0,
        }
    }

    /// Adds one segment's view sector to the raster.
    pub fn add(&mut self, rep: &RepFov, cam: &CameraProfile) {
        // Only cells inside the sector's bounding square can be covered.
        let center = self.frame.to_local(rep.fov.p);
        let r = cam.view_radius_m;
        let lo_x = self.axis_cell(center.x - r);
        let hi_x = self.axis_cell(center.x + r);
        let lo_y = self.axis_cell(center.y - r);
        let hi_y = self.axis_cell(center.y + r);
        for cy in lo_y..=hi_y {
            for cx in lo_x..=hi_x {
                let p = self.cell_center(cx, cy);
                if sector_contains(&rep.fov, cam, self.frame.from_local(p)) {
                    self.counts[cy * self.cells_per_side + cx] += 1;
                }
            }
        }
    }

    /// Fraction of cells covered by at least `min_count` segments.
    pub fn covered_fraction(&self, min_count: u32) -> f64 {
        let covered = self.counts.iter().filter(|&&c| c >= min_count).count();
        covered as f64 / self.counts.len() as f64
    }

    /// The most-covered cell: `(cell_centre, count)`.
    pub fn hottest(&self) -> (LatLon, u32) {
        let (idx, &count) = self
            .counts
            .iter()
            .enumerate()
            .max_by_key(|(_, &c)| c)
            .expect("grid has cells");
        let (cx, cy) = (idx % self.cells_per_side, idx / self.cells_per_side);
        (self.frame.from_local(self.cell_center(cx, cy)), count)
    }

    /// Serialises the raster as CSV (rows south→north, columns west→east).
    pub fn to_csv(&self) -> String {
        let mut out = String::with_capacity(self.counts.len() * 3);
        for cy in 0..self.cells_per_side {
            let row: Vec<String> = (0..self.cells_per_side)
                .map(|cx| self.counts[cy * self.cells_per_side + cx].to_string())
                .collect();
            out.push_str(&row.join(","));
            out.push('\n');
        }
        out
    }

    fn axis_cell(&self, coord_m: f64) -> usize {
        let idx = ((coord_m + self.half_extent_m) / self.cell_m).floor();
        idx.clamp(0.0, (self.cells_per_side - 1) as f64) as usize
    }

    fn cell_index(&self, p: Vec2) -> Option<usize> {
        if p.x.abs() > self.half_extent_m || p.y.abs() > self.half_extent_m {
            return None;
        }
        Some(self.axis_cell(p.y) * self.cells_per_side + self.axis_cell(p.x))
    }

    fn cell_center(&self, cx: usize, cy: usize) -> Vec2 {
        Vec2::new(
            -self.half_extent_m + (cx as f64 + 0.5) * self.cell_m,
            -self.half_extent_m + (cy as f64 + 0.5) * self.cell_m,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn cam() -> CameraProfile {
        CameraProfile::smartphone() // α = 25°, R = 100 m
    }

    #[test]
    fn empty_grid_is_uncovered() {
        let g = CoverageGrid::new(origin(), 200.0, 10.0);
        assert_eq!(g.covered_fraction(1), 0.0);
        assert_eq!(g.count_at(origin()), 0);
        assert_eq!(g.cells_per_side(), 40);
    }

    #[test]
    fn sector_raster_covers_the_right_cells() {
        let mut g = CoverageGrid::new(origin(), 200.0, 10.0);
        // Camera at the origin looking north.
        g.add(&RepFov::new(0.0, 10.0, Fov::new(origin(), 0.0)), &cam());
        // On-axis, mid-range: covered.
        assert!(g.count_at(origin().offset(0.0, 50.0)) >= 1);
        // Behind the camera: not covered.
        assert_eq!(g.count_at(origin().offset(180.0, 50.0)), 0);
        // Beyond the radius: not covered.
        assert_eq!(g.count_at(origin().offset(0.0, 150.0)), 0);
        // The covered fraction ≈ sector area / grid area.
        let sector_area = std::f64::consts::PI * 100.0_f64.powi(2) * (50.0 / 360.0);
        let grid_area = 400.0 * 400.0;
        let expect = sector_area / grid_area;
        let got = g.covered_fraction(1);
        assert!(
            (got - expect).abs() < 0.35 * expect,
            "covered {got:.4} vs expected ≈ {expect:.4}"
        );
    }

    #[test]
    fn overlapping_sectors_accumulate() {
        let mut g = CoverageGrid::new(origin(), 200.0, 10.0);
        for _ in 0..3 {
            g.add(&RepFov::new(0.0, 10.0, Fov::new(origin(), 0.0)), &cam());
        }
        let probe = origin().offset(0.0, 50.0);
        assert_eq!(g.count_at(probe), 3);
        let (hot, count) = g.hottest();
        assert_eq!(count, 3);
        assert!(g.count_at(hot) == 3);
    }

    #[test]
    fn out_of_grid_probes_are_zero() {
        let mut g = CoverageGrid::new(origin(), 100.0, 10.0);
        g.add(&RepFov::new(0.0, 1.0, Fov::new(origin(), 0.0)), &cam());
        assert_eq!(g.count_at(origin().offset(0.0, 5000.0)), 0);
    }

    #[test]
    fn csv_shape_matches_grid() {
        let g = CoverageGrid::new(origin(), 50.0, 10.0);
        let csv = g.to_csv();
        assert_eq!(csv.lines().count(), 10);
        assert!(csv.lines().all(|l| l.split(',').count() == 10));
    }

    #[test]
    #[should_panic(expected = "positive")]
    fn rejects_zero_cell() {
        CoverageGrid::new(origin(), 100.0, 0.0);
    }
}
