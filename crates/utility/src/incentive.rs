//! Budgeted incentive mechanism (paper §VII).
//!
//! Each provider asks a price for their video segment; the inquirer has a
//! reserved budget. Because set utility (union area) is monotone
//! submodular, the classic **cost-benefit greedy** — repeatedly take the
//! segment with the best marginal-utility-per-price that still fits the
//! budget — gives a constant-factor approximation of the optimal
//! selection. A uniform random selection serves as the baseline for the
//! `tab-util` experiment.

use swag_core::{CameraProfile, RepFov};

use crate::utility_of_set;

/// A priced video segment offered by a provider.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Priced {
    /// The segment's representative FoV.
    pub rep: RepFov,
    /// The provider's asking price (currency units, > 0).
    pub price: f64,
}

/// The outcome of a selection.
#[derive(Debug, Clone, PartialEq)]
pub struct Selection {
    /// Indices of chosen offers, in pick order.
    pub chosen: Vec<usize>,
    /// Total price paid.
    pub spent: f64,
    /// Achieved utility (union area, degree·seconds).
    pub utility: f64,
}

/// Cost-benefit greedy selection under a budget.
///
/// ```
/// use swag_core::{CameraProfile, Fov, RepFov};
/// use swag_geo::LatLon;
/// use swag_utility::{greedy_select, Priced};
///
/// let cam = CameraProfile::smartphone();
/// let p = LatLon::new(40.0, 116.32);
/// // Two identical offers and one covering a different direction.
/// let offers = vec![
///     Priced { rep: RepFov::new(0.0, 10.0, Fov::new(p, 0.0)), price: 1.0 },
///     Priced { rep: RepFov::new(0.0, 10.0, Fov::new(p, 0.0)), price: 1.0 },
///     Priced { rep: RepFov::new(0.0, 10.0, Fov::new(p, 180.0)), price: 1.0 },
/// ];
/// let sel = greedy_select(&offers, &cam, 0.0, 10.0, 2.0);
/// // Greedy buys complementary coverage, never the duplicate.
/// assert_eq!(sel.chosen.len(), 2);
/// assert!(sel.chosen.contains(&2));
/// ```
pub fn greedy_select(
    offers: &[Priced],
    cam: &CameraProfile,
    t_start: f64,
    t_end: f64,
    budget: f64,
) -> Selection {
    let mut chosen: Vec<usize> = Vec::new();
    let mut chosen_reps: Vec<RepFov> = Vec::new();
    let mut spent = 0.0;
    let mut current = 0.0;

    loop {
        let mut best: Option<(usize, f64, f64)> = None; // (idx, gain, utility_after)
        for (i, offer) in offers.iter().enumerate() {
            if chosen.contains(&i) || spent + offer.price > budget {
                continue;
            }
            chosen_reps.push(offer.rep);
            let after = utility_of_set(&chosen_reps, cam, t_start, t_end);
            chosen_reps.pop();
            let gain = after - current;
            if gain <= 1e-12 {
                continue;
            }
            let ratio = gain / offer.price;
            if best.is_none_or(|(bi, bg, _)| {
                let br = bg / offers[bi].price;
                ratio > br
            }) {
                best = Some((i, gain, after));
            }
        }
        match best {
            None => break,
            Some((i, _gain, after)) => {
                chosen.push(i);
                chosen_reps.push(offers[i].rep);
                spent += offers[i].price;
                current = after;
            }
        }
    }

    Selection {
        chosen,
        spent,
        utility: current,
    }
}

/// Baseline: take offers in the given (caller-shuffled) order while they
/// fit the budget.
pub fn random_select(
    offers: &[Priced],
    order: &[usize],
    cam: &CameraProfile,
    t_start: f64,
    t_end: f64,
    budget: f64,
) -> Selection {
    let mut chosen = Vec::new();
    let mut reps = Vec::new();
    let mut spent = 0.0;
    for &i in order {
        let offer = &offers[i];
        if spent + offer.price <= budget {
            chosen.push(i);
            reps.push(offer.rep);
            spent += offer.price;
        }
    }
    let utility = utility_of_set(&reps, cam, t_start, t_end);
    Selection {
        chosen,
        spent,
        utility,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn cam() -> CameraProfile {
        CameraProfile::smartphone()
    }

    fn offer(theta: f64, t0: f64, t1: f64, price: f64) -> Priced {
        Priced {
            rep: RepFov::new(t0, t1, Fov::new(LatLon::new(40.0, 116.32), theta)),
            price,
        }
    }

    #[test]
    fn greedy_respects_budget() {
        let offers = vec![
            offer(0.0, 0.0, 5.0, 3.0),
            offer(90.0, 0.0, 5.0, 3.0),
            offer(180.0, 0.0, 5.0, 3.0),
        ];
        let sel = greedy_select(&offers, &cam(), 0.0, 10.0, 6.0);
        assert_eq!(sel.chosen.len(), 2);
        assert!(sel.spent <= 6.0);
    }

    #[test]
    fn greedy_prefers_disjoint_coverage() {
        // Two identical cheap segments and one distinct: greedy must not
        // pay twice for the same coverage.
        let offers = vec![
            offer(0.0, 0.0, 5.0, 1.0),
            offer(0.0, 0.0, 5.0, 1.0),
            offer(180.0, 0.0, 5.0, 1.0),
        ];
        let sel = greedy_select(&offers, &cam(), 0.0, 10.0, 2.0);
        assert_eq!(sel.chosen.len(), 2);
        let thetas: Vec<f64> = sel
            .chosen
            .iter()
            .map(|&i| offers[i].rep.fov.theta)
            .collect();
        assert!(thetas.contains(&0.0) && thetas.contains(&180.0));
    }

    #[test]
    fn greedy_accounts_for_price() {
        // An expensive wide-coverage offer vs. two cheap ones with the
        // same combined coverage: cost-benefit greedy picks the cheap pair.
        let offers = vec![
            offer(0.0, 0.0, 10.0, 10.0), // whole window, pricey
            offer(0.0, 0.0, 5.0, 1.0),   // first half, cheap
            offer(0.0, 5.0, 10.0, 1.0),  // second half, cheap
        ];
        let sel = greedy_select(&offers, &cam(), 0.0, 10.0, 10.0);
        assert!(sel.chosen.contains(&1) && sel.chosen.contains(&2));
        // Same utility for 2 instead of 10 units.
        assert!(sel.spent <= 2.0 + 1e-9);
    }

    #[test]
    fn greedy_beats_or_ties_adversarial_order() {
        let offers: Vec<Priced> = (0..12)
            .map(|i| {
                offer(
                    f64::from(i) * 30.0,
                    f64::from(i % 4),
                    f64::from(i % 4) + 4.0,
                    1.0 + f64::from(i % 3),
                )
            })
            .collect();
        let budget = 6.0;
        let greedy = greedy_select(&offers, &cam(), 0.0, 8.0, budget);
        // Worst-case order: most expensive first.
        let mut order: Vec<usize> = (0..offers.len()).collect();
        order.sort_by(|&a, &b| offers[b].price.total_cmp(&offers[a].price));
        let naive = random_select(&offers, &order, &cam(), 0.0, 8.0, budget);
        assert!(
            greedy.utility >= naive.utility - 1e-9,
            "greedy {} < naive {}",
            greedy.utility,
            naive.utility
        );
    }

    #[test]
    fn zero_budget_selects_nothing() {
        let offers = vec![offer(0.0, 0.0, 5.0, 1.0)];
        let sel = greedy_select(&offers, &cam(), 0.0, 10.0, 0.5);
        assert!(sel.chosen.is_empty());
        assert_eq!(sel.utility, 0.0);
    }
}
