//! Exact union area of axis-aligned rectangles.
//!
//! Coordinate-compressed sweep: the x-axis (time) is cut at every rectangle
//! boundary; within each x-slab the covered y-length is the measure of the
//! union of y-intervals of the rectangles spanning the slab. O(n²) per
//! slab in the worst case, O(n² log n) overall — ample for incentive-scale
//! inputs (hundreds of videos per query).

use crate::rect::CoverageRect;

/// Area of the union of the rectangles, ignoring degenerate ones.
pub fn union_area(rects: &[CoverageRect]) -> f64 {
    let live: Vec<&CoverageRect> = rects
        .iter()
        .filter(|r| r.t1 > r.t0 && r.a1 > r.a0)
        .collect();
    if live.is_empty() {
        return 0.0;
    }

    let mut xs: Vec<f64> = live.iter().flat_map(|r| [r.t0, r.t1]).collect();
    xs.sort_by(f64::total_cmp);
    xs.dedup();

    let mut area = 0.0;
    let mut intervals: Vec<(f64, f64)> = Vec::with_capacity(live.len());
    for w in xs.windows(2) {
        let (x0, x1) = (w[0], w[1]);
        let mid = 0.5 * (x0 + x1);
        intervals.clear();
        intervals.extend(
            live.iter()
                .filter(|r| r.t0 <= mid && mid < r.t1)
                .map(|r| (r.a0, r.a1)),
        );
        area += (x1 - x0) * interval_union_length(&mut intervals);
    }
    area
}

/// Total measure of a union of 1-D intervals (sorts in place).
fn interval_union_length(intervals: &mut [(f64, f64)]) -> f64 {
    if intervals.is_empty() {
        return 0.0;
    }
    intervals.sort_by(|a, b| a.0.total_cmp(&b.0));
    let mut total = 0.0;
    let (mut lo, mut hi) = intervals[0];
    for &(a, b) in intervals[1..].iter() {
        if a > hi {
            total += hi - lo;
            lo = a;
            hi = b;
        } else {
            hi = hi.max(b);
        }
    }
    total + (hi - lo)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn r(t0: f64, t1: f64, a0: f64, a1: f64) -> CoverageRect {
        CoverageRect { t0, t1, a0, a1 }
    }

    #[test]
    fn empty_and_degenerate() {
        assert_eq!(union_area(&[]), 0.0);
        assert_eq!(union_area(&[r(1.0, 1.0, 0.0, 50.0)]), 0.0);
        assert_eq!(union_area(&[r(0.0, 5.0, 10.0, 10.0)]), 0.0);
    }

    #[test]
    fn single_rect() {
        assert!((union_area(&[r(0.0, 4.0, 10.0, 60.0)]) - 200.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_rects_add() {
        let a = union_area(&[r(0.0, 1.0, 0.0, 10.0), r(5.0, 6.0, 20.0, 30.0)]);
        assert!((a - 20.0).abs() < 1e-9);
    }

    #[test]
    fn identical_rects_count_once() {
        let a = union_area(&[r(0.0, 2.0, 0.0, 30.0), r(0.0, 2.0, 0.0, 30.0)]);
        assert!((a - 60.0).abs() < 1e-9);
    }

    #[test]
    fn partial_overlap() {
        // Two 2×20 rects overlapping in a 1×10 region.
        let a = union_area(&[r(0.0, 2.0, 0.0, 20.0), r(1.0, 3.0, 10.0, 30.0)]);
        assert!((a - (40.0 + 40.0 - 10.0)).abs() < 1e-9, "got {a}");
    }

    #[test]
    fn contained_rect_adds_nothing() {
        let a = union_area(&[r(0.0, 10.0, 0.0, 100.0), r(2.0, 3.0, 20.0, 40.0)]);
        assert!((a - 1000.0).abs() < 1e-9);
    }

    #[test]
    fn cross_shape() {
        // Horizontal bar ∪ vertical bar crossing at a 2×2 square.
        let a = union_area(&[r(0.0, 10.0, 4.0, 6.0), r(4.0, 6.0, 0.0, 10.0)]);
        assert!((a - (20.0 + 20.0 - 4.0)).abs() < 1e-9);
    }

    #[test]
    fn interval_union_handles_touching() {
        let mut iv = vec![(0.0, 1.0), (1.0, 2.0), (3.0, 4.0)];
        assert!((interval_union_length(&mut iv) - 3.0).abs() < 1e-12);
    }
}
