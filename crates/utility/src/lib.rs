//! Video utility and incentive mechanism (paper §VII).
//!
//! For a query `Q` the *global utility* is the rectangle
//! `360° × (t_e − t_s)`: every viewing direction at every instant. A video
//! segment contributes the sub-rectangle spanned by its angular coverage
//! `U_a` (the FoV's covered angle range) and its temporal coverage `U_t`
//! (the overlap of its interval with the query's). The utility of a *set*
//! of segments is the **area of the union** of their rectangles — a
//! non-negative monotone **submodular** function, which makes greedy
//! budgeted selection near-optimal and supports the paper's incentive
//! mechanism sketch.
//!
//! * [`rect`] — coverage rectangles (angle × time), including 0°/360°
//!   wrap handling;
//! * [`union_area`] — exact union area via coordinate-compressed sweeping;
//! * [`incentive`] — greedy budgeted selection (cost-benefit greedy) and
//!   baselines.

pub mod coverage;
pub mod incentive;
pub mod online;
pub mod rect;
pub mod union;

pub use coverage::CoverageGrid;
pub use incentive::{greedy_select, random_select, Priced, Selection};
pub use online::OnlineSelector;
pub use rect::{coverage_rects, CoverageRect};
pub use union::union_area;

use swag_core::{CameraProfile, RepFov};

/// Total utility of a set of segments under a query window: the union area
/// of their coverage rectangles, in degree·seconds.
pub fn utility_of_set(reps: &[RepFov], cam: &CameraProfile, t_start: f64, t_end: f64) -> f64 {
    let rects: Vec<CoverageRect> = reps
        .iter()
        .flat_map(|r| coverage_rects(r, cam, t_start, t_end))
        .collect();
    union_area(&rects)
}

/// The global utility `360° × (t_e − t_s)` (paper §VII).
pub fn global_utility(t_start: f64, t_end: f64) -> f64 {
    360.0 * (t_end - t_start).max(0.0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn rep(theta: f64, t0: f64, t1: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(LatLon::new(40.0, 116.32), theta))
    }

    #[test]
    fn single_segment_utility_is_angle_times_time() {
        let cam = CameraProfile::smartphone(); // 2α = 50°
        let u = utility_of_set(&[rep(90.0, 2.0, 6.0)], &cam, 0.0, 10.0);
        assert!((u - 50.0 * 4.0).abs() < 1e-9);
    }

    #[test]
    fn disjoint_segments_add() {
        let cam = CameraProfile::smartphone();
        let u = utility_of_set(&[rep(0.0, 0.0, 2.0), rep(180.0, 5.0, 7.0)], &cam, 0.0, 10.0);
        assert!((u - 2.0 * 50.0 * 2.0).abs() < 1e-9);
    }

    #[test]
    fn identical_segments_do_not_double_count() {
        let cam = CameraProfile::smartphone();
        let one = utility_of_set(&[rep(90.0, 0.0, 5.0)], &cam, 0.0, 10.0);
        let two = utility_of_set(&[rep(90.0, 0.0, 5.0), rep(90.0, 0.0, 5.0)], &cam, 0.0, 10.0);
        assert!((one - two).abs() < 1e-9);
    }

    #[test]
    fn utility_never_exceeds_global() {
        let cam = CameraProfile::smartphone();
        let reps: Vec<RepFov> = (0..20)
            .map(|i| rep(f64::from(i) * 18.0, f64::from(i), f64::from(i) + 3.0))
            .collect();
        let u = utility_of_set(&reps, &cam, 0.0, 15.0);
        assert!(u <= global_utility(0.0, 15.0) + 1e-9);
        assert!(u > 0.0);
    }
}
