//! Coverage rectangles: a segment's contribution to a query's
//! angle × time utility plane.

use swag_core::{CameraProfile, RepFov};
use swag_geo::normalize_deg;

/// An axis-aligned rectangle in the utility plane: `x` = time (seconds),
/// `y` = viewing direction (degrees in `[0, 360]`).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CoverageRect {
    /// Time interval start.
    pub t0: f64,
    /// Time interval end (`≥ t0`).
    pub t1: f64,
    /// Angular interval start, degrees.
    pub a0: f64,
    /// Angular interval end (`≥ a0`, `≤ 360`).
    pub a1: f64,
}

impl CoverageRect {
    /// Rectangle area in degree·seconds.
    pub fn area(&self) -> f64 {
        (self.t1 - self.t0) * (self.a1 - self.a0)
    }
}

/// The coverage rectangles of one segment clipped to the query window
/// `[t_start, t_end]`.
///
/// The angular coverage `Θ = (θ − α, θ + α)` may wrap through 0°/360°; in
/// that case it is split into two non-wrapping rectangles so downstream
/// union-area computation can stay axis-aligned. Returns an empty vector
/// when the segment lies outside the query window.
pub fn coverage_rects(
    rep: &RepFov,
    cam: &CameraProfile,
    t_start: f64,
    t_end: f64,
) -> Vec<CoverageRect> {
    let t0 = rep.t_start.max(t_start);
    let t1 = rep.t_end.min(t_end);
    if t1 <= t0 {
        return Vec::new();
    }
    let lo = normalize_deg(rep.fov.theta - cam.half_angle_deg);
    let width = cam.viewing_angle_deg();
    if lo + width <= 360.0 {
        vec![CoverageRect {
            t0,
            t1,
            a0: lo,
            a1: lo + width,
        }]
    } else {
        // Wraps: [lo, 360) ∪ [0, lo + width − 360).
        vec![
            CoverageRect {
                t0,
                t1,
                a0: lo,
                a1: 360.0,
            },
            CoverageRect {
                t0,
                t1,
                a0: 0.0,
                a1: lo + width - 360.0,
            },
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn rep(theta: f64, t0: f64, t1: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(LatLon::new(40.0, 116.32), theta))
    }

    fn cam() -> CameraProfile {
        CameraProfile::smartphone() // α = 25°
    }

    #[test]
    fn simple_rect_dimensions() {
        let rects = coverage_rects(&rep(90.0, 1.0, 4.0), &cam(), 0.0, 10.0);
        assert_eq!(rects.len(), 1);
        let r = rects[0];
        assert_eq!((r.t0, r.t1), (1.0, 4.0));
        assert!((r.a0 - 65.0).abs() < 1e-9);
        assert!((r.a1 - 115.0).abs() < 1e-9);
        assert!((r.area() - 150.0).abs() < 1e-9);
    }

    #[test]
    fn wrap_splits_into_two() {
        let rects = coverage_rects(&rep(10.0, 0.0, 1.0), &cam(), 0.0, 10.0);
        assert_eq!(rects.len(), 2);
        let total: f64 = rects.iter().map(CoverageRect::area).sum();
        assert!((total - 50.0).abs() < 1e-9);
        assert!(rects.iter().all(|r| r.a0 >= 0.0 && r.a1 <= 360.0));
    }

    #[test]
    fn clipping_to_query_window() {
        let rects = coverage_rects(&rep(90.0, 5.0, 20.0), &cam(), 0.0, 10.0);
        assert_eq!((rects[0].t0, rects[0].t1), (5.0, 10.0));
        // Entirely outside.
        assert!(coverage_rects(&rep(90.0, 20.0, 30.0), &cam(), 0.0, 10.0).is_empty());
    }

    #[test]
    fn boundary_touching_gives_nothing() {
        assert!(coverage_rects(&rep(90.0, 10.0, 12.0), &cam(), 0.0, 10.0).is_empty());
    }
}
