//! Online incentive mechanism — the paper's *zero arrival-departure
//! interval* case (§VII).
//!
//! Providers show up one at a time with a priced segment and must get an
//! immediate, irrevocable accept/reject. With a monotone submodular
//! utility and a reserved budget, a **density threshold** rule is the
//! standard competitive strategy: accept an offer iff it fits the
//! remaining budget *and* its marginal utility per unit price clears a
//! fixed threshold.
//!
//! The threshold trades participation against selectivity: low thresholds
//! approach first-come-first-served, high thresholds only buy bargains.

use swag_core::{CameraProfile, RepFov};

use crate::incentive::Priced;
use crate::utility_of_set;

/// Streaming budgeted selector with a density threshold.
#[derive(Debug, Clone)]
pub struct OnlineSelector {
    cam: CameraProfile,
    t_start: f64,
    t_end: f64,
    budget: f64,
    /// Minimum marginal utility (degree·seconds) per price unit.
    density_threshold: f64,
    chosen: Vec<RepFov>,
    spent: f64,
    utility: f64,
    offers_seen: u64,
}

impl OnlineSelector {
    /// Creates a selector for a query window and budget.
    ///
    /// # Panics
    /// Panics if `budget < 0` or `density_threshold < 0`.
    pub fn new(
        cam: CameraProfile,
        t_start: f64,
        t_end: f64,
        budget: f64,
        density_threshold: f64,
    ) -> Self {
        assert!(budget >= 0.0, "budget must be non-negative");
        assert!(density_threshold >= 0.0, "threshold must be non-negative");
        OnlineSelector {
            cam,
            t_start,
            t_end,
            budget,
            density_threshold,
            chosen: Vec::new(),
            spent: 0.0,
            utility: 0.0,
            offers_seen: 0,
        }
    }

    /// Processes one arriving offer; returns whether it was accepted
    /// (and paid) on the spot.
    pub fn offer(&mut self, offer: &Priced) -> bool {
        self.offers_seen += 1;
        if offer.price <= 0.0 || self.spent + offer.price > self.budget {
            return false;
        }
        self.chosen.push(offer.rep);
        let after = utility_of_set(&self.chosen, &self.cam, self.t_start, self.t_end);
        let gain = after - self.utility;
        if gain / offer.price >= self.density_threshold && gain > 0.0 {
            self.spent += offer.price;
            self.utility = after;
            true
        } else {
            self.chosen.pop();
            false
        }
    }

    /// Utility accumulated so far (degree·seconds).
    pub fn utility(&self) -> f64 {
        self.utility
    }

    /// Budget spent so far.
    pub fn spent(&self) -> f64 {
        self.spent
    }

    /// Remaining budget.
    pub fn remaining(&self) -> f64 {
        self.budget - self.spent
    }

    /// Accepted segments, in arrival order.
    pub fn chosen(&self) -> &[RepFov] {
        &self.chosen
    }

    /// Offers processed so far.
    pub fn offers_seen(&self) -> u64 {
        self.offers_seen
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn cam() -> CameraProfile {
        CameraProfile::smartphone() // 2α = 50°
    }

    fn offer(theta: f64, t0: f64, t1: f64, price: f64) -> Priced {
        Priced {
            rep: RepFov::new(t0, t1, Fov::new(LatLon::new(40.0, 116.32), theta)),
            price,
        }
    }

    #[test]
    fn accepts_good_offers_within_budget() {
        let mut sel = OnlineSelector::new(cam(), 0.0, 10.0, 2.0, 10.0);
        // 50° × 5 s = 250 deg·s for price 1 → density 250.
        assert!(sel.offer(&offer(0.0, 0.0, 5.0, 1.0)));
        assert!(sel.offer(&offer(180.0, 0.0, 5.0, 1.0)));
        // Budget exhausted: must reject even a perfect offer.
        assert!(!sel.offer(&offer(90.0, 5.0, 10.0, 1.0)));
        assert_eq!(sel.spent(), 2.0);
        assert!((sel.utility() - 500.0).abs() < 1e-9);
        assert_eq!(sel.chosen().len(), 2);
        assert_eq!(sel.offers_seen(), 3);
    }

    #[test]
    fn rejects_below_density_threshold() {
        // Same coverage offered twice: the duplicate has zero marginal
        // utility and must be rejected regardless of price.
        let mut sel = OnlineSelector::new(cam(), 0.0, 10.0, 100.0, 1.0);
        assert!(sel.offer(&offer(0.0, 0.0, 5.0, 1.0)));
        assert!(!sel.offer(&offer(0.0, 0.0, 5.0, 0.01)));
        assert_eq!(sel.chosen().len(), 1);
    }

    #[test]
    fn threshold_controls_selectivity() {
        let offers: Vec<Priced> = (0..20)
            .map(|i| offer(f64::from(i) * 18.0, 0.0, 10.0, 1.0 + f64::from(i % 4)))
            .collect();
        let run = |threshold: f64| {
            let mut sel = OnlineSelector::new(cam(), 0.0, 10.0, 10.0, threshold);
            for o in &offers {
                sel.offer(o);
            }
            (sel.utility(), sel.spent())
        };
        let (u_lo, spent_lo) = run(0.0);
        let (u_hi, spent_hi) = run(400.0);
        assert!(spent_lo <= 10.0 && spent_hi <= 10.0);
        // The threshold is a selectivity knob: every accepted offer under
        // the high threshold had marginal density ≥ 400, so the money is
        // spent at least as efficiently as under accept-anything.
        assert!(
            u_hi / spent_hi.max(1e-9) >= u_lo / spent_lo.max(1e-9),
            "high-threshold efficiency {} < low-threshold {}",
            u_hi / spent_hi,
            u_lo / spent_lo
        );
    }

    #[test]
    fn zero_and_negative_prices_rejected() {
        let mut sel = OnlineSelector::new(cam(), 0.0, 10.0, 5.0, 0.0);
        assert!(!sel.offer(&offer(0.0, 0.0, 5.0, 0.0)));
        assert!(!sel.offer(&offer(0.0, 0.0, 5.0, -1.0)));
        assert_eq!(sel.spent(), 0.0);
    }

    #[test]
    fn online_is_competitive_with_offline_greedy() {
        // A fixed stream; with a well-chosen threshold the online rule
        // should reach a decent fraction of the offline greedy utility.
        let offers: Vec<Priced> = (0..30)
            .map(|i| {
                offer(
                    f64::from((i * 47) % 360),
                    f64::from(i % 6) * 4.0,
                    f64::from(i % 6) * 4.0 + 8.0,
                    1.0 + f64::from(i % 3),
                )
            })
            .collect();
        let budget = 8.0;
        let offline = crate::incentive::greedy_select(&offers, &cam(), 0.0, 30.0, budget);
        let mut online = OnlineSelector::new(cam(), 0.0, 30.0, budget, 120.0);
        for o in &offers {
            online.offer(o);
        }
        assert!(
            online.utility() >= 0.4 * offline.utility,
            "online {} vs offline {}",
            online.utility(),
            offline.utility
        );
        assert!(online.spent() <= budget);
    }
}
