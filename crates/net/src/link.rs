//! Link models: bandwidth, latency, loss.

use serde::{Deserialize, Serialize};

/// A point-to-point link with fixed uplink bandwidth, propagation latency
/// and independent per-transfer loss probability (lost transfers are
/// retried, inflating the expected time).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct NetworkLink {
    /// Uplink bandwidth, bits per second.
    pub bandwidth_bps: f64,
    /// One-way latency, seconds.
    pub latency_s: f64,
    /// Probability that a transfer must be retried, `[0, 1)`.
    pub loss_prob: f64,
}

impl NetworkLink {
    /// A congested 3G cellular uplink: 1 Mbps, 150 ms, 5 % loss.
    pub fn cellular_3g() -> Self {
        NetworkLink {
            bandwidth_bps: 1e6,
            latency_s: 0.150,
            loss_prob: 0.05,
        }
    }

    /// A typical LTE uplink: 10 Mbps, 50 ms, 1 % loss.
    pub fn cellular_4g() -> Self {
        NetworkLink {
            bandwidth_bps: 10e6,
            latency_s: 0.050,
            loss_prob: 0.01,
        }
    }

    /// Home/campus WiFi: 40 Mbps, 10 ms, negligible loss.
    pub fn wifi() -> Self {
        NetworkLink {
            bandwidth_bps: 40e6,
            latency_s: 0.010,
            loss_prob: 0.0,
        }
    }

    /// Expected time to deliver `bytes` over this link, including latency
    /// and retries.
    ///
    /// ```
    /// use swag_net::NetworkLink;
    /// // A day's descriptors (50 kB) move in well under a second even on 3G…
    /// assert!(NetworkLink::cellular_3g().transfer_time_s(50_000) < 1.0);
    /// // …while a minute of 720p video (~37.5 MB) takes minutes.
    /// assert!(NetworkLink::cellular_3g().transfer_time_s(37_500_000) > 60.0);
    /// ```
    pub fn transfer_time_s(&self, bytes: usize) -> f64 {
        assert!(
            (0.0..1.0).contains(&self.loss_prob),
            "loss probability must be in [0, 1)"
        );
        let one_shot = self.latency_s + (bytes as f64 * 8.0) / self.bandwidth_bps;
        // Geometric retries: expected attempts = 1 / (1 − p).
        one_shot / (1.0 - self.loss_prob)
    }

    /// Bytes deliverable in `seconds` (ignoring latency), for sizing
    /// uploads against recording time.
    pub fn throughput_bytes(&self, seconds: f64) -> f64 {
        self.bandwidth_bps * seconds / 8.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn transfer_time_scales_linearly() {
        let l = NetworkLink::wifi();
        let t1 = l.transfer_time_s(1_000_000);
        let t2 = l.transfer_time_s(2_000_000);
        assert!((t2 - t1 - 1_000_000.0 * 8.0 / l.bandwidth_bps).abs() < 1e-9);
    }

    #[test]
    fn latency_dominates_tiny_transfers() {
        let l = NetworkLink::cellular_4g();
        let t = l.transfer_time_s(22); // one FoV descriptor
        assert!(t < 0.06, "tiny transfer took {t}s");
        assert!(t >= l.latency_s);
    }

    #[test]
    fn loss_inflates_expected_time() {
        let mut l = NetworkLink::wifi();
        let base = l.transfer_time_s(1_000_000);
        l.loss_prob = 0.5;
        assert!((l.transfer_time_s(1_000_000) - 2.0 * base).abs() < 1e-9);
    }

    #[test]
    fn presets_are_ordered_by_speed() {
        let mb = 1_000_000;
        assert!(
            NetworkLink::wifi().transfer_time_s(mb)
                < NetworkLink::cellular_4g().transfer_time_s(mb)
        );
        assert!(
            NetworkLink::cellular_4g().transfer_time_s(mb)
                < NetworkLink::cellular_3g().transfer_time_s(mb)
        );
    }

    #[test]
    fn throughput_inverts_transfer() {
        let l = NetworkLink::cellular_4g();
        let bytes = l.throughput_bytes(10.0);
        assert!((bytes - 12.5e6).abs() < 1.0);
    }
}
