//! Simulated network substrate.
//!
//! The paper's motivation (§I) is that uploading raw crowd-sourced video
//! over cellular links is "extremely time-consuming and money-consuming".
//! This crate provides the models the traffic experiments use to quantify
//! that: link bandwidth/latency ([`NetworkLink`]), per-megabyte data cost
//! ([`DataPlan`]) and byte accounting ([`TrafficMeter`]).

pub mod cost;
pub mod link;
pub mod scheduler;
pub mod traffic;

pub use cost::DataPlan;
pub use link::NetworkLink;
pub use scheduler::{
    observe_plan, plan_uploads, plan_uploads_traced, Connectivity, PlannedUpload, UploadPlan,
    UploadPolicy,
};
pub use traffic::TrafficMeter;
