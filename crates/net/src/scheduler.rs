//! Upload scheduling policies: when to push descriptor batches.
//!
//! Descriptor uploads are tiny, but crowd deployments still care *when*
//! they move: cellular bytes cost money and WiFi comes and goes. The
//! scheduler plans upload times under a policy and reports the resulting
//! freshness/cost trade — the knob a deployment turns between "findable
//! now" and "free".

use serde::{Deserialize, Serialize};
use swag_obs::{FlightRecorder, Registry};

use crate::cost::DataPlan;
use crate::link::NetworkLink;

/// When queued uploads are released.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub enum UploadPolicy {
    /// Send the moment the batch is ready, on whatever link is up.
    Immediate,
    /// Wait for WiFi up to `max_delay_s`; then fall back to cellular.
    WifiPreferred {
        /// Longest acceptable staleness, seconds.
        max_delay_s: f64,
    },
    /// Release queued uploads at fixed flush ticks (battery batching).
    Batched {
        /// Flush interval, seconds.
        interval_s: f64,
    },
}

/// WiFi availability as disjoint, sorted time windows.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Connectivity {
    windows: Vec<(f64, f64)>,
}

impl Connectivity {
    /// Builds a connectivity timeline from `(start, end)` WiFi windows.
    ///
    /// # Panics
    /// Panics if windows are unordered or overlapping.
    pub fn new(windows: Vec<(f64, f64)>) -> Self {
        for w in &windows {
            assert!(w.1 > w.0, "empty window {w:?}");
        }
        for pair in windows.windows(2) {
            assert!(pair[0].1 <= pair[1].0, "windows overlap or unsorted");
        }
        Connectivity { windows }
    }

    /// Never on WiFi.
    pub fn cellular_only() -> Self {
        Connectivity::default()
    }

    /// Whether WiFi is up at time `t`.
    pub fn wifi_at(&self, t: f64) -> bool {
        self.windows.iter().any(|&(a, b)| (a..b).contains(&t))
    }

    /// Earliest time ≥ `t` with WiFi, if any.
    pub fn next_wifi_at(&self, t: f64) -> Option<f64> {
        self.windows
            .iter()
            .find_map(|&(a, b)| if t < b { Some(t.max(a)) } else { None })
    }
}

/// One planned upload.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct PlannedUpload {
    /// When the batch became ready.
    pub ready_at: f64,
    /// When it is transmitted.
    pub send_at: f64,
    /// When the server has it.
    pub arrival_at: f64,
    /// Whether it went over WiFi.
    pub used_wifi: bool,
    /// Monetary cost (0 on WiFi).
    pub cost: f64,
}

/// Aggregate plan results.
#[derive(Debug, Clone, PartialEq)]
pub struct UploadPlan {
    /// Per-upload schedule, in input order.
    pub uploads: Vec<PlannedUpload>,
    /// Total monetary cost.
    pub total_cost: f64,
    /// Mean seconds from ready to server arrival.
    pub mean_delay_s: f64,
    /// Fraction of bytes moved over WiFi.
    pub wifi_byte_fraction: f64,
}

/// Plans `(ready_at, bytes)` uploads under a policy.
pub fn plan_uploads(
    policy: UploadPolicy,
    connectivity: &Connectivity,
    uploads: &[(f64, usize)],
    cellular: &NetworkLink,
    wifi: &NetworkLink,
    plan: &DataPlan,
) -> UploadPlan {
    let mut planned = Vec::with_capacity(uploads.len());
    let (mut total_cost, mut delay_sum) = (0.0, 0.0);
    let (mut wifi_bytes, mut total_bytes) = (0u64, 0u64);

    for &(ready_at, bytes) in uploads {
        let send_at = match policy {
            UploadPolicy::Immediate => ready_at,
            UploadPolicy::WifiPreferred { max_delay_s } => {
                match connectivity.next_wifi_at(ready_at) {
                    Some(t) if t <= ready_at + max_delay_s => t,
                    _ => ready_at + max_delay_s,
                }
            }
            UploadPolicy::Batched { interval_s } => {
                assert!(interval_s > 0.0, "batch interval must be positive");
                (ready_at / interval_s).ceil() * interval_s
            }
        };
        let used_wifi = connectivity.wifi_at(send_at);
        let link = if used_wifi { wifi } else { cellular };
        let arrival_at = send_at + link.transfer_time_s(bytes);
        let cost = if used_wifi { 0.0 } else { plan.cost(bytes) };
        total_cost += cost;
        delay_sum += arrival_at - ready_at;
        total_bytes += bytes as u64;
        if used_wifi {
            wifi_bytes += bytes as u64;
        }
        planned.push(PlannedUpload {
            ready_at,
            send_at,
            arrival_at,
            used_wifi,
            cost,
        });
    }
    UploadPlan {
        total_cost,
        mean_delay_s: delay_sum / uploads.len().max(1) as f64,
        wifi_byte_fraction: if total_bytes == 0 {
            0.0
        } else {
            wifi_bytes as f64 / total_bytes as f64
        },
        uploads: planned,
    }
}

/// [`plan_uploads`] with a `plan_uploads` span recorded on `recorder`,
/// so scheduling shows up in the same causal trace as the client-side
/// segmentation and upload encoding that produced the batches. The
/// span's detail carries the number of uploads planned.
#[allow(clippy::too_many_arguments)]
pub fn plan_uploads_traced(
    recorder: &FlightRecorder,
    policy: UploadPolicy,
    connectivity: &Connectivity,
    uploads: &[(f64, usize)],
    cellular: &NetworkLink,
    wifi: &NetworkLink,
    plan: &DataPlan,
) -> UploadPlan {
    let mut span = recorder.span("plan_uploads");
    span.set_detail(uploads.len() as u64);
    plan_uploads(policy, connectivity, uploads, cellular, wifi, plan)
}

/// Records a plan's outcomes as `swag_net_*` metrics: bytes moved (total
/// and over WiFi), uploads planned, uploads deferred past their ready
/// time, and the ready-to-arrival delay distribution.
///
/// `uploads` must be the same `(ready_at, bytes)` slice the plan was built
/// from — [`UploadPlan`] deliberately does not retain payload sizes.
pub fn observe_plan(plan: &UploadPlan, uploads: &[(f64, usize)], registry: &Registry) {
    assert_eq!(
        plan.uploads.len(),
        uploads.len(),
        "plan and upload slice disagree"
    );
    let planned = registry.counter("swag_net_uploads_planned_total");
    let deferred = registry.counter("swag_net_uploads_deferred_total");
    let bytes_total = registry.counter("swag_net_bytes_planned_total");
    let bytes_wifi = registry.counter("swag_net_bytes_wifi_total");
    let delay_ms = registry.histogram("swag_net_upload_delay_ms");

    for (u, &(_, bytes)) in plan.uploads.iter().zip(uploads) {
        planned.inc();
        if u.send_at > u.ready_at {
            deferred.inc();
        }
        bytes_total.add(bytes as u64);
        if u.used_wifi {
            bytes_wifi.add(bytes as u64);
        }
        delay_ms.record(((u.arrival_at - u.ready_at).max(0.0) * 1000.0) as u64);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn links() -> (NetworkLink, NetworkLink, DataPlan) {
        (
            NetworkLink::cellular_4g(),
            NetworkLink::wifi(),
            DataPlan::metered(),
        )
    }

    fn evening_wifi() -> Connectivity {
        // WiFi at home: 0-60 s and 600-1200 s.
        Connectivity::new(vec![(0.0, 60.0), (600.0, 1200.0)])
    }

    #[test]
    fn connectivity_queries() {
        let c = evening_wifi();
        assert!(c.wifi_at(30.0));
        assert!(!c.wifi_at(300.0));
        assert_eq!(c.next_wifi_at(30.0), Some(30.0));
        assert_eq!(c.next_wifi_at(100.0), Some(600.0));
        assert_eq!(c.next_wifi_at(2000.0), None);
        assert!(!Connectivity::cellular_only().wifi_at(0.0));
    }

    #[test]
    fn immediate_sends_at_ready_time() {
        let (cell, wifi, plan) = links();
        let p = plan_uploads(
            UploadPolicy::Immediate,
            &evening_wifi(),
            &[(30.0, 10_000), (300.0, 10_000)],
            &cell,
            &wifi,
            &plan,
        );
        assert_eq!(p.uploads[0].send_at, 30.0);
        assert!(p.uploads[0].used_wifi);
        assert_eq!(p.uploads[0].cost, 0.0);
        assert!(!p.uploads[1].used_wifi);
        assert!(p.uploads[1].cost > 0.0);
        assert!((p.wifi_byte_fraction - 0.5).abs() < 1e-9);
    }

    #[test]
    fn wifi_preferred_waits_then_falls_back() {
        let (cell, wifi, plan) = links();
        // Ready at 100 s; WiFi returns at 600 s.
        let patient = plan_uploads(
            UploadPolicy::WifiPreferred {
                max_delay_s: 1000.0,
            },
            &evening_wifi(),
            &[(100.0, 50_000)],
            &cell,
            &wifi,
            &plan,
        );
        assert_eq!(patient.uploads[0].send_at, 600.0);
        assert!(patient.uploads[0].used_wifi);
        assert_eq!(patient.total_cost, 0.0);

        let impatient = plan_uploads(
            UploadPolicy::WifiPreferred { max_delay_s: 120.0 },
            &evening_wifi(),
            &[(100.0, 50_000)],
            &cell,
            &wifi,
            &plan,
        );
        assert_eq!(impatient.uploads[0].send_at, 220.0);
        assert!(!impatient.uploads[0].used_wifi);
        assert!(impatient.total_cost > 0.0);
        // The freshness/cost trade.
        assert!(patient.mean_delay_s > impatient.mean_delay_s);
        assert!(patient.total_cost < impatient.total_cost);
    }

    #[test]
    fn batched_aligns_to_flush_ticks() {
        let (cell, wifi, plan) = links();
        let p = plan_uploads(
            UploadPolicy::Batched { interval_s: 300.0 },
            &Connectivity::cellular_only(),
            &[(10.0, 1_000), (290.0, 1_000), (301.0, 1_000)],
            &cell,
            &wifi,
            &plan,
        );
        assert_eq!(p.uploads[0].send_at, 300.0);
        assert_eq!(p.uploads[1].send_at, 300.0);
        assert_eq!(p.uploads[2].send_at, 600.0);
        assert!(p.uploads.iter().all(|u| !u.used_wifi));
    }

    #[test]
    fn empty_plan_is_zeroed() {
        let (cell, wifi, plan) = links();
        let p = plan_uploads(
            UploadPolicy::Immediate,
            &Connectivity::cellular_only(),
            &[],
            &cell,
            &wifi,
            &plan,
        );
        assert!(p.uploads.is_empty());
        assert_eq!(p.total_cost, 0.0);
        assert_eq!(p.wifi_byte_fraction, 0.0);
    }

    #[test]
    #[should_panic(expected = "overlap")]
    fn overlapping_windows_rejected() {
        Connectivity::new(vec![(0.0, 100.0), (50.0, 200.0)]);
    }

    #[test]
    fn traced_plan_records_span_and_matches_untraced() {
        use swag_obs::{assemble, SpanEventKind};

        let (cell, wifi, plan) = links();
        let uploads = [(30.0, 10_000), (300.0, 10_000)];
        let recorder = FlightRecorder::new(64);
        recorder.enable();
        let traced = plan_uploads_traced(
            &recorder,
            UploadPolicy::Immediate,
            &evening_wifi(),
            &uploads,
            &cell,
            &wifi,
            &plan,
        );
        let plain = plan_uploads(
            UploadPolicy::Immediate,
            &evening_wifi(),
            &uploads,
            &cell,
            &wifi,
            &plan,
        );
        assert_eq!(traced, plain, "tracing must not change the plan");

        let events = recorder.dump();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::End && e.label == "plan_uploads")
            .collect();
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].detail, 2, "detail = uploads planned");
        let trees = assemble(&events);
        assert_eq!(trees.len(), 1);
        assert_eq!(trees[0].shape(), "plan_uploads()");
    }

    #[test]
    fn observe_plan_records_bytes_and_deferrals() {
        let (cell, wifi, plan) = links();
        let uploads = [(30.0, 10_000), (100.0, 50_000)];
        // Ready at 30 s sends immediately on WiFi; ready at 100 s waits
        // for the 600 s window.
        let p = plan_uploads(
            UploadPolicy::WifiPreferred {
                max_delay_s: 1000.0,
            },
            &evening_wifi(),
            &uploads,
            &cell,
            &wifi,
            &plan,
        );
        let reg = Registry::new();
        observe_plan(&p, &uploads, &reg);
        assert_eq!(reg.counter("swag_net_uploads_planned_total").get(), 2);
        assert_eq!(reg.counter("swag_net_uploads_deferred_total").get(), 1);
        assert_eq!(reg.counter("swag_net_bytes_planned_total").get(), 60_000);
        assert_eq!(reg.counter("swag_net_bytes_wifi_total").get(), 60_000);
        let delay = reg.histogram("swag_net_upload_delay_ms").snapshot();
        assert_eq!(delay.count, 2);
        // The deferred upload waited ~500 s.
        assert!(delay.max >= 500_000);
    }
}
