//! Byte and message accounting.

use serde::{Deserialize, Serialize};

/// Accumulates traffic statistics for one endpoint.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct TrafficMeter {
    /// Bytes sent.
    pub bytes_up: u64,
    /// Bytes received.
    pub bytes_down: u64,
    /// Messages sent.
    pub messages_up: u64,
    /// Messages received.
    pub messages_down: u64,
}

impl TrafficMeter {
    /// A zeroed meter.
    pub fn new() -> Self {
        Self::default()
    }

    /// Records an outgoing message of `bytes`.
    pub fn record_up(&mut self, bytes: usize) {
        self.bytes_up += bytes as u64;
        self.messages_up += 1;
    }

    /// Records an incoming message of `bytes`.
    pub fn record_down(&mut self, bytes: usize) {
        self.bytes_down += bytes as u64;
        self.messages_down += 1;
    }

    /// Total bytes in both directions.
    pub fn total_bytes(&self) -> u64 {
        self.bytes_up + self.bytes_down
    }

    /// Merges another meter into this one.
    pub fn merge(&mut self, other: &TrafficMeter) {
        self.bytes_up += other.bytes_up;
        self.bytes_down += other.bytes_down;
        self.messages_up += other.messages_up;
        self.messages_down += other.messages_down;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn records_accumulate() {
        let mut m = TrafficMeter::new();
        m.record_up(100);
        m.record_up(50);
        m.record_down(7);
        assert_eq!(m.bytes_up, 150);
        assert_eq!(m.messages_up, 2);
        assert_eq!(m.bytes_down, 7);
        assert_eq!(m.total_bytes(), 157);
    }

    #[test]
    fn merge_sums_fields() {
        let mut a = TrafficMeter::new();
        a.record_up(10);
        let mut b = TrafficMeter::new();
        b.record_down(20);
        b.record_up(5);
        a.merge(&b);
        assert_eq!(a.bytes_up, 15);
        assert_eq!(a.bytes_down, 20);
        assert_eq!(a.messages_up, 2);
        assert_eq!(a.messages_down, 1);
    }
}
