//! Monetary cost of cellular data.

use serde::{Deserialize, Serialize};

/// A data plan charging per megabyte.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct DataPlan {
    /// Price per megabyte (10⁶ bytes), in arbitrary currency units.
    pub cost_per_mb: f64,
}

impl DataPlan {
    /// A typical metered plan: 0.01 units/MB.
    pub fn metered() -> Self {
        DataPlan { cost_per_mb: 0.01 }
    }

    /// Cost of transferring `bytes`.
    pub fn cost(&self, bytes: usize) -> f64 {
        self.cost_per_mb * bytes as f64 / 1e6
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cost_is_proportional() {
        let p = DataPlan { cost_per_mb: 0.5 };
        assert!((p.cost(2_000_000) - 1.0).abs() < 1e-12);
        assert_eq!(p.cost(0), 0.0);
    }

    #[test]
    fn descriptor_upload_costs_next_to_nothing() {
        // A day of segments (10 000 descriptors à 22 B) vs. one minute of
        // 720p video (~15 MB at 2 Mbps).
        let p = DataPlan::metered();
        let descriptors = p.cost(10_000 * 22);
        let video_minute = p.cost(15_000_000);
        assert!(descriptors < video_minute / 50.0);
    }
}
