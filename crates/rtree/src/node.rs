//! Arena node storage.
//!
//! Nodes live in one contiguous `Vec<Node>` owned by the tree and are
//! addressed by [`NodeIx`] handles — a `NonZeroUsize` wrapper (stored
//! off-by-one) so `Option<NodeIx>` is pointer-sized and accidental use of
//! a "null" handle is unrepresentable.
//!
//! Entry layout differs by level, each matching how traversals touch it:
//!
//! * **Leaves** store entries inline as one `Vec<Item>` — a scan reads
//!   the box and, on a match, finds the payload on the same cache line
//!   instead of a second parallel array. Leaf scans dominate range
//!   queries (there are `max_entries`× more leaf entries than internal
//!   ones), and measured on the `rtree_arena` ablation the interleaved
//!   form beats a split `Vec<Aabb>`/`Vec<T>` pair.
//! * **Internal nodes** keep struct-of-arrays: the dense `Vec<Aabb<D>>`
//!   is scanned by every pruning pass (choose-subtree, traversal) while
//!   the child handles are touched only on a match.
//!
//! [`Item`] and [`Child`] also serve as *transient* entries: the split
//! algorithms, forced reinsertion, and STR tiling all shuffle whole
//! entries. Internal nodes convert at the boundary via
//! [`Node::internal_from`] / [`Node::take_internal_children`].

use std::num::NonZeroUsize;

use crate::mbr::Aabb;

/// Handle to a node slot in the tree's arena.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub(crate) struct NodeIx(NonZeroUsize);

impl NodeIx {
    /// Wraps an arena index (stored off-by-one for the niche).
    #[inline]
    pub(crate) fn new(index: usize) -> Self {
        NodeIx(NonZeroUsize::new(index.wrapping_add(1)).expect("arena index overflow"))
    }

    /// The arena index this handle refers to.
    #[inline]
    pub(crate) fn get(self) -> usize {
        self.0.get() - 1
    }
}

/// A leaf payload with its bounding box (transient AoS form).
#[derive(Debug, Clone)]
pub(crate) struct Item<T, const D: usize> {
    pub(crate) mbr: Aabb<D>,
    pub(crate) value: T,
}

/// An internal child handle with the child's bounding box (transient AoS
/// form).
#[derive(Debug, Clone, Copy)]
pub(crate) struct Child<const D: usize> {
    pub(crate) mbr: Aabb<D>,
    pub(crate) node: NodeIx,
}

/// One arena node (leaf entries inline, internal entries SoA).
#[derive(Debug, Clone)]
pub(crate) enum Node<T, const D: usize> {
    Leaf {
        items: Vec<Item<T, D>>,
    },
    Internal {
        mbrs: Vec<Aabb<D>>,
        children: Vec<NodeIx>,
    },
}

impl<T, const D: usize> Node<T, D> {
    /// An empty leaf — the state of a fresh tree's root and of freed slots.
    pub(crate) fn empty_leaf() -> Self {
        Node::Leaf { items: Vec::new() }
    }

    /// Builds a leaf from items (split / bulk-load output).
    pub(crate) fn leaf_from(items: Vec<Item<T, D>>) -> Self {
        Node::Leaf { items }
    }

    /// Builds an internal node from AoS children (split / bulk-load output).
    pub(crate) fn internal_from(entries: Vec<Child<D>>) -> Self {
        let mut mbrs = Vec::with_capacity(entries.len());
        let mut children = Vec::with_capacity(entries.len());
        for c in entries {
            mbrs.push(c.mbr);
            children.push(c.node);
        }
        Node::Internal { mbrs, children }
    }

    /// Number of entries (items or children).
    #[inline]
    pub(crate) fn entry_count(&self) -> usize {
        match self {
            Node::Leaf { items } => items.len(),
            Node::Internal { mbrs, .. } => mbrs.len(),
        }
    }

    /// The union of this node's entry boxes; `None` when empty.
    pub(crate) fn fold_entry_mbr(&self) -> Option<Aabb<D>> {
        match self {
            Node::Leaf { items } => fold_mbr(items.iter().map(|i| i.mbr)),
            Node::Internal { mbrs, .. } => fold_mbr(mbrs.iter().copied()),
        }
    }

    /// Drains a leaf into its items, leaving it empty. Panics on internal
    /// nodes.
    pub(crate) fn take_leaf_items(&mut self) -> Vec<Item<T, D>> {
        let Node::Leaf { items } = self else {
            unreachable!("take_leaf_items on internal node");
        };
        std::mem::take(items)
    }

    /// Drains an internal node into AoS children, leaving it empty. Panics
    /// on leaves.
    pub(crate) fn take_internal_children(&mut self) -> Vec<Child<D>> {
        let Node::Internal { mbrs, children } = self else {
            unreachable!("take_internal_children on leaf node");
        };
        std::mem::take(mbrs)
            .into_iter()
            .zip(std::mem::take(children))
            .map(|(mbr, node)| Child { mbr, node })
            .collect()
    }
}

/// Folds a set of boxes into their union; `None` when empty.
pub(crate) fn fold_mbr<const D: usize>(mut mbrs: impl Iterator<Item = Aabb<D>>) -> Option<Aabb<D>> {
    let first = mbrs.next()?;
    Some(mbrs.fold(first, |acc, m| acc.union(&m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_ix_roundtrip_and_niche() {
        for i in [0usize, 1, 7, 1 << 20] {
            assert_eq!(NodeIx::new(i).get(), i);
        }
        // The whole point of NonZeroUsize handles: Option costs nothing.
        assert_eq!(
            std::mem::size_of::<Option<NodeIx>>(),
            std::mem::size_of::<usize>()
        );
    }

    #[test]
    fn leaf_roundtrip() {
        let items: Vec<Item<u32, 2>> = (0..5)
            .map(|i| Item {
                mbr: Aabb::from_point([f64::from(i), 0.0]),
                value: i,
            })
            .collect();
        let mut node = Node::leaf_from(items);
        assert_eq!(node.entry_count(), 5);
        assert_eq!(
            node.fold_entry_mbr(),
            Some(Aabb::new([0.0, 0.0], [4.0, 0.0]))
        );
        let back = node.take_leaf_items();
        assert_eq!(back.len(), 5);
        assert_eq!(node.entry_count(), 0);
        assert!(back.iter().enumerate().all(|(i, it)| it.value == i as u32));
    }

    #[test]
    fn internal_soa_roundtrip() {
        let entries: Vec<Child<2>> = (0..4)
            .map(|i| Child {
                mbr: Aabb::from_point([f64::from(i), 1.0]),
                node: NodeIx::new(i as usize),
            })
            .collect();
        let mut node: Node<u32, 2> = Node::internal_from(entries);
        assert_eq!(node.entry_count(), 4);
        let back = node.take_internal_children();
        assert!(back.iter().enumerate().all(|(i, c)| c.node.get() == i));
    }
}
