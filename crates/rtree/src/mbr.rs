//! Axis-aligned minimum bounding rectangles in `D` dimensions.
//!
//! Indexed `0..D` loops are used throughout: they address two or three
//! parallel fixed-size arrays at once, which iterator zips only obscure.
#![allow(clippy::needless_range_loop)]

/// An axis-aligned bounding box (MBR) described by its per-dimension
/// minima and maxima, exactly as the paper stores FoV rectangles
/// (`min[]`/`max[]` double arrays, §V-A).
///
/// Degenerate boxes (`min == max` in some or all dimensions) are valid —
/// representative FoVs are stored as 3-D line segments.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Aabb<const D: usize> {
    /// Per-dimension lower bounds.
    pub min: [f64; D],
    /// Per-dimension upper bounds.
    pub max: [f64; D],
}

impl<const D: usize> Aabb<D> {
    /// Creates a box from bounds.
    ///
    /// # Panics
    /// Panics if any `min[i] > max[i]` or any bound is NaN.
    pub fn new(min: [f64; D], max: [f64; D]) -> Self {
        for i in 0..D {
            assert!(
                min[i] <= max[i],
                "invalid Aabb: min[{i}] = {} > max[{i}] = {}",
                min[i],
                max[i]
            );
        }
        Aabb { min, max }
    }

    /// A degenerate box covering a single point.
    #[inline]
    pub fn from_point(p: [f64; D]) -> Self {
        Aabb::new(p, p)
    }

    /// The smallest box containing both operands.
    pub fn union(&self, other: &Aabb<D>) -> Aabb<D> {
        let mut min = self.min;
        let mut max = self.max;
        for i in 0..D {
            min[i] = min[i].min(other.min[i]);
            max[i] = max[i].max(other.max[i]);
        }
        Aabb { min, max }
    }

    /// Whether the two boxes share any point (closed-interval semantics:
    /// touching boxes intersect).
    pub fn intersects(&self, other: &Aabb<D>) -> bool {
        for i in 0..D {
            if self.max[i] < other.min[i] || other.max[i] < self.min[i] {
                return false;
            }
        }
        true
    }

    /// Whether `other` lies entirely inside `self`.
    pub fn contains(&self, other: &Aabb<D>) -> bool {
        for i in 0..D {
            if other.min[i] < self.min[i] || other.max[i] > self.max[i] {
                return false;
            }
        }
        true
    }

    /// Whether the point lies inside the box (boundary included).
    pub fn contains_point(&self, p: &[f64; D]) -> bool {
        for i in 0..D {
            if p[i] < self.min[i] || p[i] > self.max[i] {
                return false;
            }
        }
        true
    }

    /// Hyper-volume (product of extents). Zero for degenerate boxes.
    pub fn area(&self) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            a *= self.max[i] - self.min[i];
        }
        a
    }

    /// Sum of extents (the R*-tree "margin"; useful for split quality).
    pub fn margin(&self) -> f64 {
        let mut m = 0.0;
        for i in 0..D {
            m += self.max[i] - self.min[i];
        }
        m
    }

    /// Area of the intersection with `other`, 0 if disjoint.
    pub fn overlap_area(&self, other: &Aabb<D>) -> f64 {
        let mut a = 1.0;
        for i in 0..D {
            let lo = self.min[i].max(other.min[i]);
            let hi = self.max[i].min(other.max[i]);
            if hi < lo {
                return 0.0;
            }
            a *= hi - lo;
        }
        a
    }

    /// How much this box's area would grow to accommodate `other`
    /// (Guttman's insertion heuristic).
    #[inline]
    pub fn enlargement(&self, other: &Aabb<D>) -> f64 {
        self.union(other).area() - self.area()
    }

    /// Box centre.
    pub fn center(&self) -> [f64; D] {
        let mut c = [0.0; D];
        for i in 0..D {
            c[i] = 0.5 * (self.min[i] + self.max[i]);
        }
        c
    }

    /// Squared minimum distance from a point to the box (0 if inside) —
    /// the `MINDIST` bound used by best-first k-NN search.
    pub fn min_dist_sq(&self, p: &[f64; D]) -> f64 {
        let mut d = 0.0;
        for i in 0..D {
            let gap = if p[i] < self.min[i] {
                self.min[i] - p[i]
            } else if p[i] > self.max[i] {
                p[i] - self.max[i]
            } else {
                0.0
            };
            d += gap * gap;
        }
        d
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn union_covers_both() {
        let a = Aabb::new([0.0, 0.0], [1.0, 1.0]);
        let b = Aabb::new([2.0, -1.0], [3.0, 0.5]);
        let u = a.union(&b);
        assert!(u.contains(&a) && u.contains(&b));
        assert_eq!(u, Aabb::new([0.0, -1.0], [3.0, 1.0]));
    }

    #[test]
    fn intersection_is_closed() {
        let a = Aabb::new([0.0], [1.0]);
        let b = Aabb::new([1.0], [2.0]);
        assert!(a.intersects(&b)); // touching counts
        let c = Aabb::new([1.0 + 1e-12], [2.0]);
        assert!(!a.intersects(&c));
    }

    #[test]
    fn degenerate_boxes_behave() {
        let p = Aabb::from_point([3.0, 4.0, 5.0]);
        assert_eq!(p.area(), 0.0);
        assert!(p.intersects(&p));
        assert!(p.contains_point(&[3.0, 4.0, 5.0]));
        assert!(!p.contains_point(&[3.0, 4.0, 5.1]));
    }

    #[test]
    fn area_margin_center() {
        let a = Aabb::new([0.0, 0.0, 0.0], [2.0, 3.0, 4.0]);
        assert_eq!(a.area(), 24.0);
        assert_eq!(a.margin(), 9.0);
        assert_eq!(a.center(), [1.0, 1.5, 2.0]);
    }

    #[test]
    fn overlap_area_cases() {
        let a = Aabb::new([0.0, 0.0], [2.0, 2.0]);
        let b = Aabb::new([1.0, 1.0], [3.0, 3.0]);
        assert_eq!(a.overlap_area(&b), 1.0);
        let c = Aabb::new([5.0, 5.0], [6.0, 6.0]);
        assert_eq!(a.overlap_area(&c), 0.0);
        // Touching boxes overlap with zero area.
        let d = Aabb::new([2.0, 0.0], [4.0, 2.0]);
        assert_eq!(a.overlap_area(&d), 0.0);
        assert!(a.intersects(&d));
    }

    #[test]
    fn enlargement_zero_when_contained() {
        let a = Aabb::new([0.0, 0.0], [10.0, 10.0]);
        let b = Aabb::new([1.0, 1.0], [2.0, 2.0]);
        assert_eq!(a.enlargement(&b), 0.0);
        assert!(b.enlargement(&a) > 0.0);
    }

    #[test]
    fn min_dist_sq_inside_edge_corner() {
        let a = Aabb::new([0.0, 0.0], [2.0, 2.0]);
        assert_eq!(a.min_dist_sq(&[1.0, 1.0]), 0.0);
        assert_eq!(a.min_dist_sq(&[3.0, 1.0]), 1.0);
        assert_eq!(a.min_dist_sq(&[3.0, 3.0]), 2.0);
        assert_eq!(a.min_dist_sq(&[-1.0, -1.0]), 2.0);
    }

    #[test]
    #[should_panic(expected = "invalid Aabb")]
    fn inverted_bounds_panic() {
        Aabb::new([1.0], [0.0]);
    }
}
