//! The dynamic R-tree structure: configuration, insert, delete,
//! invariant checks. Read-side traversals live in [`crate::search`]; the
//! arena node representation in [`crate::node`].

use crate::mbr::Aabb;
use crate::node::{fold_mbr, Child, Item, Node, NodeIx};
use crate::split::{split, SplitStrategy};

/// Tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeConfig {
    /// Maximum entries per node `M` (≥ 4).
    pub max_entries: usize,
    /// Minimum entries per non-root node `m` (`2 ≤ m ≤ M/2`).
    pub min_entries: usize,
    /// Node split algorithm.
    pub split: SplitStrategy,
    /// R*-style forced reinsertion: on the first leaf overflow of an
    /// insertion, evict this fraction of the node's entries (those
    /// farthest from the node centre) and re-insert them instead of
    /// splitting. `0.0` disables; the R*-tree paper recommends `0.3`.
    /// Must lie in `[0, 0.45]` so the remaining node keeps ≥ m entries.
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    /// `M = 16`, `m = 6` (≈ 40 % fill), quadratic split, no forced
    /// reinsertion — a common all-round configuration.
    fn default() -> Self {
        RTreeConfig {
            max_entries: 16,
            min_entries: 6,
            split: SplitStrategy::Quadratic,
            reinsert_fraction: 0.0,
        }
    }
}

impl RTreeConfig {
    /// The full R*-tree configuration: R* split plus 30 % forced
    /// reinsertion.
    pub fn rstar() -> Self {
        RTreeConfig {
            split: SplitStrategy::RStar,
            reinsert_fraction: 0.3,
            ..RTreeConfig::default()
        }
    }

    /// Validates the parameter combination.
    fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be ≥ 4");
        assert!(
            self.min_entries >= 2 && 2 * self.min_entries <= self.max_entries,
            "min_entries must satisfy 2 ≤ m ≤ M/2 (got m = {}, M = {})",
            self.min_entries,
            self.max_entries
        );
        assert!(
            (0.0..=0.45).contains(&self.reinsert_fraction),
            "reinsert_fraction must be in [0, 0.45], got {}",
            self.reinsert_fraction
        );
    }
}

/// Structural statistics, exposed for benchmarks and invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeStats {
    /// Number of stored items.
    pub len: usize,
    /// Tree height (1 = root is a leaf).
    pub height: usize,
    /// Live node count.
    pub nodes: usize,
}

/// A dynamic R-tree over `D`-dimensional boxes with payloads of type `T`.
///
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug, Clone)]
pub struct RTree<T, const D: usize> {
    /// Flat node arena; handles ([`NodeIx`]) index into it.
    pub(crate) nodes: Vec<Node<T, D>>,
    pub(crate) free: Vec<NodeIx>,
    pub(crate) root: NodeIx,
    /// Depth of leaves below the root (0 = root is a leaf).
    pub(crate) height: usize,
    pub(crate) len: usize,
    pub(crate) config: RTreeConfig,
}

impl<T, const D: usize> Default for RTree<T, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// Creates an empty tree with the default configuration.
    pub fn new() -> Self {
        Self::with_config(RTreeConfig::default())
    }

    /// Creates an empty tree with a custom configuration.
    ///
    /// # Panics
    /// Panics on invalid configurations (see [`RTreeConfig`]).
    pub fn with_config(config: RTreeConfig) -> Self {
        config.validate();
        RTree {
            nodes: vec![Node::empty_leaf()],
            free: Vec::new(),
            root: NodeIx::new(0),
            height: 0,
            len: 0,
            config,
        }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Structural statistics.
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            len: self.len,
            height: self.height + 1,
            nodes: self.nodes.len() - self.free.len(),
        }
    }

    /// Removes all items, keeping the configuration.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.push(Node::empty_leaf());
        self.root = NodeIx::new(0);
        self.height = 0;
        self.len = 0;
    }

    /// The node a handle refers to.
    #[inline]
    pub(crate) fn node(&self, ix: NodeIx) -> &Node<T, D> {
        &self.nodes[ix.get()]
    }

    #[inline]
    pub(crate) fn node_mut(&mut self, ix: NodeIx) -> &mut Node<T, D> {
        &mut self.nodes[ix.get()]
    }

    /// Places `node` into a free arena slot (or grows the arena).
    pub(crate) fn alloc(&mut self, node: Node<T, D>) -> NodeIx {
        if let Some(ix) = self.free.pop() {
            self.nodes[ix.get()] = node;
            ix
        } else {
            self.nodes.push(node);
            NodeIx::new(self.nodes.len() - 1)
        }
    }

    fn node_mbr(&self, ix: NodeIx) -> Aabb<D> {
        self.node(ix)
            .fold_entry_mbr()
            .expect("node_mbr of empty node")
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a value with its bounding box.
    pub fn insert(&mut self, mbr: Aabb<D>, value: T) {
        let allow_reinsert = self.config.reinsert_fraction > 0.0;
        self.insert_impl(mbr, value, allow_reinsert);
        self.len += 1;
    }

    /// Insertion without length bookkeeping; handles root splits and the
    /// forced-reinsertion loop.
    fn insert_impl(&mut self, mbr: Aabb<D>, value: T, allow_reinsert: bool) {
        match self.insert_rec(self.root, &mbr, value, self.height, allow_reinsert) {
            InsertOutcome::Done => {}
            InsertOutcome::Split(sib_mbr, sibling) => {
                // Root split: grow the tree.
                let old_root_mbr = self.node_mbr(self.root);
                let new_root = Node::internal_from(vec![
                    Child {
                        mbr: old_root_mbr,
                        node: self.root,
                    },
                    Child {
                        mbr: sib_mbr,
                        node: sibling,
                    },
                ]);
                self.root = self.alloc(new_root);
                self.height += 1;
            }
            InsertOutcome::Reinsert(evicted) => {
                // Re-insert with reinsertion disabled so one insert
                // triggers at most one eviction round.
                for item in evicted {
                    self.insert_impl(item.mbr, item.value, false);
                }
            }
        }
    }

    /// Recursive insert.
    fn insert_rec(
        &mut self,
        node: NodeIx,
        mbr: &Aabb<D>,
        value: T,
        depth: usize,
        allow_reinsert: bool,
    ) -> InsertOutcome<T, D> {
        if depth == 0 {
            // Leaf level.
            let is_root = node == self.root;
            let max_entries = self.config.max_entries;
            let Node::Leaf { items } = self.node_mut(node) else {
                unreachable!("depth 0 must be a leaf");
            };
            items.push(Item { mbr: *mbr, value });
            if items.len() <= max_entries {
                return InsertOutcome::Done;
            }
            // R* OverflowTreatment: on the first overflow of this insert,
            // evict the farthest entries instead of splitting — unless the
            // leaf *is* the root (nowhere to re-route through).
            let mut items = self.node_mut(node).take_leaf_items();
            if allow_reinsert && !is_root {
                let evict = ((items.len() as f64) * self.config.reinsert_fraction).ceil() as usize;
                let evict = evict.clamp(1, items.len() - self.config.min_entries);
                let evicted = evict_farthest(&mut items, evict);
                *self.node_mut(node) = Node::leaf_from(items);
                return InsertOutcome::Reinsert(evicted);
            }
            let (a, _mbr_a, b, mbr_b) =
                split(self.config.split, items, self.config.min_entries, |i| i.mbr);
            *self.node_mut(node) = Node::leaf_from(a);
            let sibling = self.alloc(Node::leaf_from(b));
            return InsertOutcome::Split(mbr_b, sibling);
        }

        // Choose the child needing the least enlargement (ties: least area).
        let (chosen, child_id) = {
            let Node::Internal { mbrs, children } = self.node(node) else {
                unreachable!("positive depth must be internal");
            };
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, c_mbr) in mbrs.iter().enumerate() {
                let enl = c_mbr.enlargement(mbr);
                let area = c_mbr.area();
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            (best, children[best])
        };

        let outcome = self.insert_rec(child_id, mbr, value, depth - 1, allow_reinsert);

        // Refresh the chosen child's MBR (it changed in every outcome:
        // grown by the insert, or shrunk by an eviction).
        let new_child_mbr = self.node_mbr(child_id);
        let max_entries = self.config.max_entries;
        let Node::Internal { mbrs, children } = self.node_mut(node) else {
            unreachable!()
        };
        mbrs[chosen] = new_child_mbr;

        match outcome {
            InsertOutcome::Done => InsertOutcome::Done,
            InsertOutcome::Reinsert(evicted) => InsertOutcome::Reinsert(evicted),
            InsertOutcome::Split(sib_mbr, sib_id) => {
                mbrs.push(sib_mbr);
                children.push(sib_id);
                if children.len() > max_entries {
                    let overflow = self.node_mut(node).take_internal_children();
                    let (a, _mbr_a, b, mbr_b) =
                        split(self.config.split, overflow, self.config.min_entries, |c| {
                            c.mbr
                        });
                    *self.node_mut(node) = Node::internal_from(a);
                    let sibling = self.alloc(Node::internal_from(b));
                    return InsertOutcome::Split(mbr_b, sibling);
                }
                InsertOutcome::Done
            }
        }
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes and returns the first stored value whose box equals `mbr`
    /// and whose value satisfies `pred`. Underflowing nodes are dissolved
    /// and their remaining items reinserted (tree condensation).
    pub fn remove(&mut self, mbr: &Aabb<D>, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut orphans: Vec<Item<T, D>> = Vec::new();
        let removed = self.remove_rec(self.root, mbr, &mut pred, self.height, &mut orphans)?;
        self.len -= 1;

        // Shrink the root while it is an internal node with one child.
        loop {
            let new_root = match self.node(self.root) {
                Node::Internal { children, .. } if children.len() == 1 => children[0],
                _ => break,
            };
            self.free.push(self.root);
            self.root = new_root;
            self.height -= 1;
        }
        // An empty internal root can only arise transiently; normalise an
        // empty tree back to a leaf root.
        if self.len == orphans.len() {
            self.free.push(self.root);
            self.root = self.alloc(Node::empty_leaf());
            self.height = 0;
        }

        // Reinsert orphaned items.
        self.len -= orphans.len();
        for item in orphans {
            self.insert(item.mbr, item.value);
        }
        Some(removed)
    }

    /// Recursive removal. Returns the removed value; appends orphaned items
    /// of dissolved nodes to `orphans`.
    fn remove_rec(
        &mut self,
        node: NodeIx,
        mbr: &Aabb<D>,
        pred: &mut impl FnMut(&T) -> bool,
        depth: usize,
        orphans: &mut Vec<Item<T, D>>,
    ) -> Option<T> {
        if depth == 0 {
            let Node::Leaf { items } = self.node_mut(node) else {
                unreachable!()
            };
            let idx = items
                .iter()
                .position(|it| it.mbr == *mbr && pred(&it.value))?;
            return Some(items.swap_remove(idx).value);
        }

        let touched: Vec<(usize, NodeIx)> = {
            let Node::Internal { mbrs, children } = self.node(node) else {
                unreachable!()
            };
            mbrs.iter()
                .zip(children)
                .enumerate()
                .filter(|(_, (m, _))| m.intersects(mbr))
                .map(|(i, (_, c))| (i, *c))
                .collect()
        };

        for (idx, child_id) in touched {
            if let Some(value) = self.remove_rec(child_id, mbr, pred, depth - 1, orphans) {
                // Check for underflow of the child.
                let child_len = self.node(child_id).entry_count();
                if child_len < self.config.min_entries {
                    // Dissolve the child: orphan all items beneath it.
                    let Node::Internal { mbrs, children } = self.node_mut(node) else {
                        unreachable!()
                    };
                    mbrs.swap_remove(idx);
                    children.swap_remove(idx);
                    self.collect_items(child_id, orphans);
                } else {
                    let new_mbr = self.node_mbr(child_id);
                    let Node::Internal { mbrs, .. } = self.node_mut(node) else {
                        unreachable!()
                    };
                    mbrs[idx] = new_mbr;
                }
                return Some(value);
            }
        }
        None
    }

    /// Moves every item stored under `node` into `out` and frees the nodes.
    fn collect_items(&mut self, node: NodeIx, out: &mut Vec<Item<T, D>>) {
        let mut taken = std::mem::replace(self.node_mut(node), Node::empty_leaf());
        self.free.push(node);
        match &mut taken {
            Node::Leaf { .. } => out.append(&mut taken.take_leaf_items()),
            Node::Internal { .. } => {
                for c in taken.take_internal_children() {
                    self.collect_items(c.node, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariants (used by tests)
    // ------------------------------------------------------------------

    /// Verifies the structural invariants of the tree, panicking with a
    /// description on the first violation. Intended for tests.
    pub fn check_invariants(&self) {
        if self.len == 0 {
            return;
        }
        let mut counted = 0;
        self.check_node(self.root, self.height, true, &mut counted);
        assert_eq!(counted, self.len, "len() disagrees with stored items");
    }

    fn check_node(&self, ix: NodeIx, depth: usize, is_root: bool, counted: &mut usize) -> Aabb<D> {
        match self.node(ix) {
            Node::Leaf { items } => {
                assert_eq!(depth, 0, "leaf above leaf level");
                if !is_root {
                    assert!(
                        items.len() >= self.config.min_entries,
                        "leaf underflow: {} < {}",
                        items.len(),
                        self.config.min_entries
                    );
                }
                assert!(items.len() <= self.config.max_entries, "leaf overflow");
                *counted += items.len();
                fold_mbr(items.iter().map(|i| i.mbr)).expect("empty non-root leaf")
            }
            Node::Internal { mbrs, children } => {
                assert!(depth > 0, "internal node at leaf level");
                assert_eq!(
                    mbrs.len(),
                    children.len(),
                    "internal SoA arrays out of sync"
                );
                let min = if is_root { 2 } else { self.config.min_entries };
                assert!(
                    children.len() >= min,
                    "internal underflow: {} < {min}",
                    children.len()
                );
                assert!(
                    children.len() <= self.config.max_entries,
                    "internal overflow"
                );
                let mut acc: Option<Aabb<D>> = None;
                for (c_mbr, c_ix) in mbrs.iter().zip(children) {
                    let actual = self.check_node(*c_ix, depth - 1, false, counted);
                    assert_eq!(actual, *c_mbr, "stored child MBR differs from computed MBR");
                    acc = Some(match acc {
                        None => actual,
                        Some(a) => a.union(&actual),
                    });
                }
                acc.expect("internal node with no children")
            }
        }
    }
}

/// Result of a recursive insertion step.
enum InsertOutcome<T, const D: usize> {
    /// Inserted without structural change above this node.
    Done,
    /// The node split; the parent must adopt the new sibling.
    Split(Aabb<D>, NodeIx),
    /// R* forced reinsertion: these evicted items must be re-inserted
    /// from the root.
    Reinsert(Vec<Item<T, D>>),
}

/// Removes the `count` items whose centres lie farthest from the node's
/// centre (R* eviction order), returning them farthest-first.
fn evict_farthest<T, const D: usize>(items: &mut Vec<Item<T, D>>, count: usize) -> Vec<Item<T, D>> {
    debug_assert!(count < items.len());
    let node_mbr = fold_mbr(items.iter().map(|i| i.mbr)).expect("non-empty node");
    let center = node_mbr.center();
    let dist = |m: &Aabb<D>| {
        let c = m.center();
        let mut d = 0.0;
        for i in 0..D {
            let g = c[i] - center[i];
            d += g * g;
        }
        d
    };
    // Sort ascending by distance; split off the farthest `count`.
    items.sort_by(|a, b| dist(&a.mbr).total_cmp(&dist(&b.mbr)));
    let mut evicted = items.split_off(items.len() - count);
    evicted.reverse(); // farthest first, per the R* paper's "close reinsert"
    evicted
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree(n: u32) -> RTree<u32, 2> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = f64::from(i % 100);
            let y = f64::from(i / 100);
            t.insert(Aabb::from_point([x, y]), i);
        }
        t
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32, 2> = RTree::new();
        assert!(t.is_empty());
        assert!(t.search(&Aabb::new([-1e9, -1e9], [1e9, 1e9])).is_empty());
        assert!(t.nearest_k([0.0, 0.0], 5).is_empty());
        t.check_invariants();
    }

    #[test]
    fn insert_and_range_search() {
        let t = grid_tree(1000);
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        let hits = t.search(&Aabb::new([0.0, 0.0], [4.0, 1.0]));
        assert_eq!(hits.len(), 10); // 5 × 2 grid points
        let all = t.search(&Aabb::new([-1.0, -1.0], [1000.0, 1000.0]));
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn remove_single_item() {
        let mut t = grid_tree(50);
        let removed = t.remove(&Aabb::from_point([7.0, 0.0]), |&v| v == 7);
        assert_eq!(removed, Some(7));
        assert_eq!(t.len(), 49);
        t.check_invariants();
        assert!(t.search(&Aabb::from_point([7.0, 0.0])).is_empty());
        // Removing again finds nothing.
        assert_eq!(t.remove(&Aabb::from_point([7.0, 0.0]), |&v| v == 7), None);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut t = grid_tree(200);
        for i in 0..200u32 {
            let p = [f64::from(i % 100), f64::from(i / 100)];
            assert_eq!(
                t.remove(&Aabb::from_point(p), |&v| v == i),
                Some(i),
                "item {i}"
            );
            t.check_invariants();
        }
        assert!(t.is_empty());
        // The tree is fully usable afterwards.
        t.insert(Aabb::from_point([1.0, 1.0]), 42);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(&Aabb::from_point([1.0, 1.0])), vec![&42]);
    }

    #[test]
    fn duplicate_boxes_are_kept_separately() {
        let mut t: RTree<u32, 1> = RTree::new();
        for i in 0..20 {
            t.insert(Aabb::from_point([1.0]), i);
        }
        assert_eq!(t.search(&Aabb::from_point([1.0])).len(), 20);
        t.check_invariants();
        // Predicate-based removal picks the right duplicate.
        assert_eq!(t.remove(&Aabb::from_point([1.0]), |&v| v == 13), Some(13));
        assert_eq!(t.search(&Aabb::from_point([1.0])).len(), 19);
    }

    #[test]
    fn linear_split_config_works() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            split: SplitStrategy::Linear,
            ..RTreeConfig::default()
        });
        for i in 0..500u32 {
            t.insert(Aabb::from_point([f64::from(i % 50), f64::from(i / 50)]), i);
        }
        t.check_invariants();
        assert_eq!(t.search(&Aabb::new([0.0, 0.0], [49.0, 9.0])).len(), 500);
    }

    #[test]
    fn clear_resets() {
        let mut t = grid_tree(100);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().height, 1);
        t.insert(Aabb::from_point([0.0, 0.0]), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = grid_tree(10_000);
        let h = t.stats().height;
        // M = 16: height should be small.
        assert!((3..=7).contains(&h), "height {h}");
    }

    #[test]
    fn three_dimensional_segments() {
        // FoV-style degenerate boxes: a point in space, an interval in time.
        let mut t: RTree<&'static str, 3> = RTree::new();
        t.insert(Aabb::new([1.0, 2.0, 0.0], [1.0, 2.0, 10.0]), "a");
        t.insert(Aabb::new([1.0, 2.0, 20.0], [1.0, 2.0, 30.0]), "b");
        t.insert(Aabb::new([5.0, 5.0, 0.0], [5.0, 5.0, 100.0]), "c");
        // Query around (1, 2) in t ∈ [5, 25] finds a and b.
        let hits = t.search(&Aabb::new([0.0, 1.0, 5.0], [2.0, 3.0, 25.0]));
        assert_eq!(hits.len(), 2);
        // Time-disjoint query finds nothing.
        assert!(t
            .search(&Aabb::new([0.0, 1.0, 11.0], [2.0, 3.0, 19.0]))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_config_rejected() {
        let _: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            max_entries: 8,
            min_entries: 5,
            split: SplitStrategy::Quadratic,
            reinsert_fraction: 0.0,
        });
    }

    #[test]
    fn forced_reinsertion_preserves_correctness() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig::rstar());
        for i in 0..3000u32 {
            // Clustered insert order: the worst case reinsert targets.
            let cluster = f64::from(i % 7) * 200.0;
            let x = cluster + f64::from(i % 13);
            let y = f64::from(i % 11) * 3.0;
            t.insert(Aabb::from_point([x, y]), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 3000);
        let all = t.search(&Aabb::new([-1e6, -1e6], [1e6, 1e6]));
        assert_eq!(all.len(), 3000);
        // Spot query matches a naive filter.
        let q = Aabb::new([200.0, 0.0], [213.0, 12.0]);
        let got = t.search(&q).len();
        let want = (0..3000u32)
            .filter(|i| {
                let x = f64::from(i % 7) * 200.0 + f64::from(i % 13);
                let y = f64::from(i % 11) * 3.0;
                q.contains_point(&[x, y])
            })
            .count();
        assert_eq!(got, want);
    }

    #[test]
    fn forced_reinsertion_interleaves_with_removal() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig::rstar());
        for i in 0..500u32 {
            t.insert(Aabb::from_point([f64::from(i % 25), f64::from(i / 25)]), i);
        }
        for i in (0..500u32).step_by(3) {
            let p = [f64::from(i % 25), f64::from(i / 25)];
            assert_eq!(t.remove(&Aabb::from_point(p), |&v| v == i), Some(i));
        }
        t.check_invariants();
        assert_eq!(t.len(), 500 - 167);
    }

    #[test]
    #[should_panic(expected = "reinsert_fraction")]
    fn invalid_reinsert_fraction_rejected() {
        let _: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            reinsert_fraction: 0.6,
            ..RTreeConfig::default()
        });
    }
}
