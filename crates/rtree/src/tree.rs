//! The dynamic R-tree structure: insert, range search, k-NN, delete.

use std::collections::BinaryHeap;

use crate::mbr::Aabb;
use crate::split::{split, SplitStrategy};

/// Arena index of a node.
pub(crate) type NodeId = usize;

/// Tuning parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RTreeConfig {
    /// Maximum entries per node `M` (≥ 4).
    pub max_entries: usize,
    /// Minimum entries per non-root node `m` (`2 ≤ m ≤ M/2`).
    pub min_entries: usize,
    /// Node split algorithm.
    pub split: SplitStrategy,
    /// R*-style forced reinsertion: on the first leaf overflow of an
    /// insertion, evict this fraction of the node's entries (those
    /// farthest from the node centre) and re-insert them instead of
    /// splitting. `0.0` disables; the R*-tree paper recommends `0.3`.
    /// Must lie in `[0, 0.45]` so the remaining node keeps ≥ m entries.
    pub reinsert_fraction: f64,
}

impl Default for RTreeConfig {
    /// `M = 16`, `m = 6` (≈ 40 % fill), quadratic split, no forced
    /// reinsertion — a common all-round configuration.
    fn default() -> Self {
        RTreeConfig {
            max_entries: 16,
            min_entries: 6,
            split: SplitStrategy::Quadratic,
            reinsert_fraction: 0.0,
        }
    }
}

impl RTreeConfig {
    /// The full R*-tree configuration: R* split plus 30 % forced
    /// reinsertion.
    pub fn rstar() -> Self {
        RTreeConfig {
            split: SplitStrategy::RStar,
            reinsert_fraction: 0.3,
            ..RTreeConfig::default()
        }
    }

    /// Validates the parameter combination.
    fn validate(&self) {
        assert!(self.max_entries >= 4, "max_entries must be ≥ 4");
        assert!(
            self.min_entries >= 2 && 2 * self.min_entries <= self.max_entries,
            "min_entries must satisfy 2 ≤ m ≤ M/2 (got m = {}, M = {})",
            self.min_entries,
            self.max_entries
        );
        assert!(
            (0.0..=0.45).contains(&self.reinsert_fraction),
            "reinsert_fraction must be in [0, 0.45], got {}",
            self.reinsert_fraction
        );
    }
}

/// A leaf payload with its bounding box.
#[derive(Debug, Clone)]
pub(crate) struct Item<T, const D: usize> {
    pub(crate) mbr: Aabb<D>,
    pub(crate) value: T,
}

/// An internal child pointer with the child's bounding box.
#[derive(Debug, Clone, Copy)]
pub(crate) struct Child<const D: usize> {
    pub(crate) mbr: Aabb<D>,
    pub(crate) node: NodeId,
}

#[derive(Debug, Clone)]
pub(crate) enum Node<T, const D: usize> {
    Leaf(Vec<Item<T, D>>),
    Internal(Vec<Child<D>>),
}

/// Structural statistics, exposed for benchmarks and invariant checks.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RTreeStats {
    /// Number of stored items.
    pub len: usize,
    /// Tree height (1 = root is a leaf).
    pub height: usize,
    /// Live node count.
    pub nodes: usize,
}

/// Traversal counters accumulated by [`RTree::search_with_stats`].
///
/// An out-param rather than a return value so repeated searches (e.g. one
/// per time shard) can aggregate into a single struct without allocating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the traversal stack (internal + leaf).
    pub nodes_visited: u64,
    /// Leaf nodes whose items were examined.
    pub leaves_scanned: u64,
    /// Items whose boxes were intersection-tested.
    pub items_tested: u64,
    /// Items that intersected the query and were visited.
    pub items_matched: u64,
}

impl SearchStats {
    /// Adds another search's counters into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_scanned += other.leaves_scanned;
        self.items_tested += other.items_tested;
        self.items_matched += other.items_matched;
    }
}

/// A dynamic R-tree over `D`-dimensional boxes with payloads of type `T`.
///
/// See the [crate docs](crate) for an overview and example.
#[derive(Debug, Clone)]
pub struct RTree<T, const D: usize> {
    pub(crate) nodes: Vec<Node<T, D>>,
    pub(crate) free: Vec<NodeId>,
    pub(crate) root: NodeId,
    /// Depth of leaves below the root (0 = root is a leaf).
    pub(crate) height: usize,
    pub(crate) len: usize,
    pub(crate) config: RTreeConfig,
}

impl<T, const D: usize> Default for RTree<T, D> {
    fn default() -> Self {
        Self::new()
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// Creates an empty tree with the default configuration.
    pub fn new() -> Self {
        Self::with_config(RTreeConfig::default())
    }

    /// Creates an empty tree with a custom configuration.
    ///
    /// # Panics
    /// Panics on invalid configurations (see [`RTreeConfig`]).
    pub fn with_config(config: RTreeConfig) -> Self {
        config.validate();
        RTree {
            nodes: vec![Node::Leaf(Vec::new())],
            free: Vec::new(),
            root: 0,
            height: 0,
            len: 0,
            config,
        }
    }

    /// Number of stored items.
    #[inline]
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the tree is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// The active configuration.
    #[inline]
    pub fn config(&self) -> &RTreeConfig {
        &self.config
    }

    /// Structural statistics.
    pub fn stats(&self) -> RTreeStats {
        RTreeStats {
            len: self.len,
            height: self.height + 1,
            nodes: self.nodes.len() - self.free.len(),
        }
    }

    /// Removes all items, keeping the configuration.
    pub fn clear(&mut self) {
        self.nodes.clear();
        self.free.clear();
        self.nodes.push(Node::Leaf(Vec::new()));
        self.root = 0;
        self.height = 0;
        self.len = 0;
    }

    pub(crate) fn alloc(&mut self, node: Node<T, D>) -> NodeId {
        if let Some(id) = self.free.pop() {
            self.nodes[id] = node;
            id
        } else {
            self.nodes.push(node);
            self.nodes.len() - 1
        }
    }

    fn node_mbr(&self, id: NodeId) -> Aabb<D> {
        match &self.nodes[id] {
            Node::Leaf(items) => fold_mbr(items.iter().map(|i| i.mbr)),
            Node::Internal(children) => fold_mbr(children.iter().map(|c| c.mbr)),
        }
        .expect("node_mbr of empty node")
    }

    // ------------------------------------------------------------------
    // Insertion
    // ------------------------------------------------------------------

    /// Inserts a value with its bounding box.
    pub fn insert(&mut self, mbr: Aabb<D>, value: T) {
        let allow_reinsert = self.config.reinsert_fraction > 0.0;
        self.insert_impl(mbr, value, allow_reinsert);
        self.len += 1;
    }

    /// Insertion without length bookkeeping; handles root splits and the
    /// forced-reinsertion loop.
    fn insert_impl(&mut self, mbr: Aabb<D>, value: T, allow_reinsert: bool) {
        match self.insert_rec(self.root, &mbr, value, self.height, allow_reinsert) {
            InsertOutcome::Done => {}
            InsertOutcome::Split(sib_mbr, sibling) => {
                // Root split: grow the tree.
                let old_root_mbr = self.node_mbr(self.root);
                let new_root = Node::Internal(vec![
                    Child {
                        mbr: old_root_mbr,
                        node: self.root,
                    },
                    Child {
                        mbr: sib_mbr,
                        node: sibling,
                    },
                ]);
                self.root = self.alloc(new_root);
                self.height += 1;
            }
            InsertOutcome::Reinsert(evicted) => {
                // Re-insert with reinsertion disabled so one insert
                // triggers at most one eviction round.
                for item in evicted {
                    self.insert_impl(item.mbr, item.value, false);
                }
            }
        }
    }

    /// Recursive insert.
    fn insert_rec(
        &mut self,
        node: NodeId,
        mbr: &Aabb<D>,
        value: T,
        depth: usize,
        allow_reinsert: bool,
    ) -> InsertOutcome<T, D> {
        if depth == 0 {
            // Leaf level.
            let Node::Leaf(items) = &mut self.nodes[node] else {
                unreachable!("depth 0 must be a leaf");
            };
            items.push(Item { mbr: *mbr, value });
            if items.len() <= self.config.max_entries {
                return InsertOutcome::Done;
            }
            // R* OverflowTreatment: on the first overflow of this insert,
            // evict the farthest entries instead of splitting — unless the
            // leaf *is* the root (nowhere to re-route through).
            if allow_reinsert && node != self.root {
                let evict = ((items.len() as f64) * self.config.reinsert_fraction).ceil() as usize;
                let evict = evict.clamp(1, items.len() - self.config.min_entries);
                let evicted = evict_farthest(items, evict);
                return InsertOutcome::Reinsert(evicted);
            }
            let overflow = std::mem::take(items);
            let (a, _mbr_a, b, mbr_b) =
                split(self.config.split, overflow, self.config.min_entries, |i| {
                    i.mbr
                });
            self.nodes[node] = Node::Leaf(a);
            let sibling = self.alloc(Node::Leaf(b));
            return InsertOutcome::Split(mbr_b, sibling);
        }

        // Choose the child needing the least enlargement (ties: least area).
        let chosen = {
            let Node::Internal(children) = &self.nodes[node] else {
                unreachable!("positive depth must be internal");
            };
            let mut best = 0;
            let mut best_enl = f64::INFINITY;
            let mut best_area = f64::INFINITY;
            for (i, c) in children.iter().enumerate() {
                let enl = c.mbr.enlargement(mbr);
                let area = c.mbr.area();
                if enl < best_enl || (enl == best_enl && area < best_area) {
                    best = i;
                    best_enl = enl;
                    best_area = area;
                }
            }
            best
        };

        let child_id = match &self.nodes[node] {
            Node::Internal(children) => children[chosen].node,
            _ => unreachable!(),
        };

        let outcome = self.insert_rec(child_id, mbr, value, depth - 1, allow_reinsert);

        // Refresh the chosen child's MBR (it changed in every outcome:
        // grown by the insert, or shrunk by an eviction).
        let new_child_mbr = self.node_mbr(child_id);
        let Node::Internal(children) = &mut self.nodes[node] else {
            unreachable!()
        };
        children[chosen].mbr = new_child_mbr;

        match outcome {
            InsertOutcome::Done => InsertOutcome::Done,
            InsertOutcome::Reinsert(evicted) => InsertOutcome::Reinsert(evicted),
            InsertOutcome::Split(sib_mbr, sib_id) => {
                children.push(Child {
                    mbr: sib_mbr,
                    node: sib_id,
                });
                if children.len() > self.config.max_entries {
                    let overflow = std::mem::take(children);
                    let (a, _mbr_a, b, mbr_b) =
                        split(self.config.split, overflow, self.config.min_entries, |c| {
                            c.mbr
                        });
                    self.nodes[node] = Node::Internal(a);
                    let sibling = self.alloc(Node::Internal(b));
                    return InsertOutcome::Split(mbr_b, sibling);
                }
                InsertOutcome::Done
            }
        }
    }

    // ------------------------------------------------------------------
    // Queries
    // ------------------------------------------------------------------

    /// Collects references to all values whose box intersects `query`.
    pub fn search(&self, query: &Aabb<D>) -> Vec<&T> {
        let mut out = Vec::new();
        self.search_with(query, |_mbr, v| out.push(v));
        out
    }

    /// Collects `(box, value)` pairs intersecting `query`.
    pub fn search_entries(&self, query: &Aabb<D>) -> Vec<(Aabb<D>, &T)> {
        let mut out = Vec::new();
        self.search_with(query, |mbr, v| out.push((*mbr, v)));
        out
    }

    /// Visits every item whose box intersects `query` without allocating.
    pub fn search_with<'a>(&'a self, query: &Aabb<D>, mut visit: impl FnMut(&'a Aabb<D>, &'a T)) {
        if self.len == 0 {
            return;
        }
        // Explicit stack to avoid recursion overhead on deep trees.
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            match &self.nodes[id] {
                Node::Leaf(items) => {
                    for item in items {
                        if item.mbr.intersects(query) {
                            visit(&item.mbr, &item.value);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if c.mbr.intersects(query) {
                            stack.push(c.node);
                        }
                    }
                }
            }
        }
    }

    /// [`Self::search_with`] that additionally accumulates traversal
    /// counters into `stats`. A separate method (rather than a flag on
    /// `search_with`) so the uninstrumented path keeps zero overhead.
    pub fn search_with_stats<'a>(
        &'a self,
        query: &Aabb<D>,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&'a Aabb<D>, &'a T),
    ) {
        if self.len == 0 {
            return;
        }
        let mut stack = vec![self.root];
        while let Some(id) = stack.pop() {
            stats.nodes_visited += 1;
            match &self.nodes[id] {
                Node::Leaf(items) => {
                    stats.leaves_scanned += 1;
                    stats.items_tested += items.len() as u64;
                    for item in items {
                        if item.mbr.intersects(query) {
                            stats.items_matched += 1;
                            visit(&item.mbr, &item.value);
                        }
                    }
                }
                Node::Internal(children) => {
                    for c in children {
                        if c.mbr.intersects(query) {
                            stack.push(c.node);
                        }
                    }
                }
            }
        }
    }

    /// Returns the `k` stored values nearest to `point` (by MBR `MINDIST`),
    /// closest first, together with their squared distances.
    ///
    /// Uses best-first traversal with a priority queue, so it touches only
    /// the nodes whose boxes can contain a better candidate.
    pub fn nearest_k(&self, point: [f64; D], k: usize) -> Vec<(&T, f64)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }

        /// Max-heap entry ordered by negative distance = min-heap by distance.
        struct HeapEntry<'a, T, const D: usize> {
            dist_sq: f64,
            kind: Candidate<'a, T, D>,
        }
        enum Candidate<'a, T, const D: usize> {
            Node(NodeId),
            Item(&'a T),
        }
        impl<T, const D: usize> PartialEq for HeapEntry<'_, T, D> {
            fn eq(&self, other: &Self) -> bool {
                self.dist_sq == other.dist_sq
            }
        }
        impl<T, const D: usize> Eq for HeapEntry<'_, T, D> {}
        impl<T, const D: usize> PartialOrd for HeapEntry<'_, T, D> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T, const D: usize> Ord for HeapEntry<'_, T, D> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: smallest distance pops first.
                other.dist_sq.total_cmp(&self.dist_sq)
            }
        }

        let mut heap: BinaryHeap<HeapEntry<'_, T, D>> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist_sq: 0.0,
            kind: Candidate::Node(self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(entry) = heap.pop() {
            match entry.kind {
                Candidate::Item(v) => {
                    out.push((v, entry.dist_sq));
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(id) => match &self.nodes[id] {
                    Node::Leaf(items) => {
                        for item in items {
                            heap.push(HeapEntry {
                                dist_sq: item.mbr.min_dist_sq(&point),
                                kind: Candidate::Item(&item.value),
                            });
                        }
                    }
                    Node::Internal(children) => {
                        for c in children {
                            heap.push(HeapEntry {
                                dist_sq: c.mbr.min_dist_sq(&point),
                                kind: Candidate::Node(c.node),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// Like [`Self::nearest_k`], but only returns items whose `MINDIST`
    /// is at most `max_dist` (exclusive of anything farther). Useful when
    /// a miss is better than a far match.
    pub fn nearest_k_within(&self, point: [f64; D], k: usize, max_dist: f64) -> Vec<(&T, f64)> {
        let limit_sq = max_dist * max_dist;
        let mut hits = self.nearest_k(point, k);
        hits.retain(|(_, d)| *d <= limit_sq);
        hits
    }

    /// Iterates over all `(box, value)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (&Aabb<D>, &T)> {
        let mut stack = if self.len == 0 {
            vec![]
        } else {
            vec![self.root]
        };
        let mut current: std::slice::Iter<'_, Item<T, D>> = [].iter();
        std::iter::from_fn(move || loop {
            if let Some(item) = current.next() {
                return Some((&item.mbr, &item.value));
            }
            let id = stack.pop()?;
            match &self.nodes[id] {
                Node::Leaf(items) => current = items.iter(),
                Node::Internal(children) => stack.extend(children.iter().map(|c| c.node)),
            }
        })
    }

    // ------------------------------------------------------------------
    // Deletion
    // ------------------------------------------------------------------

    /// Removes and returns the first stored value whose box equals `mbr`
    /// and whose value satisfies `pred`. Underflowing nodes are dissolved
    /// and their remaining items reinserted (tree condensation).
    pub fn remove(&mut self, mbr: &Aabb<D>, mut pred: impl FnMut(&T) -> bool) -> Option<T> {
        let mut orphans: Vec<Item<T, D>> = Vec::new();
        let removed = self.remove_rec(self.root, mbr, &mut pred, self.height, &mut orphans)?;
        self.len -= 1;

        // Shrink the root while it is an internal node with one child.
        loop {
            let new_root = match &self.nodes[self.root] {
                Node::Internal(children) if children.len() == 1 => children[0].node,
                _ => break,
            };
            self.free.push(self.root);
            self.root = new_root;
            self.height -= 1;
        }
        // An empty internal root can only arise transiently; normalise an
        // empty tree back to a leaf root.
        if self.len == orphans.len() {
            self.free.push(self.root);
            self.root = self.alloc(Node::Leaf(Vec::new()));
            self.height = 0;
        }

        // Reinsert orphaned items.
        self.len -= orphans.len();
        for item in orphans {
            self.insert(item.mbr, item.value);
        }
        Some(removed)
    }

    /// Recursive removal. Returns the removed value; appends orphaned items
    /// of dissolved nodes to `orphans`.
    fn remove_rec(
        &mut self,
        node: NodeId,
        mbr: &Aabb<D>,
        pred: &mut impl FnMut(&T) -> bool,
        depth: usize,
        orphans: &mut Vec<Item<T, D>>,
    ) -> Option<T> {
        if depth == 0 {
            let Node::Leaf(items) = &mut self.nodes[node] else {
                unreachable!()
            };
            let idx = items.iter().position(|i| i.mbr == *mbr && pred(&i.value))?;
            return Some(items.swap_remove(idx).value);
        }

        let child_ids: Vec<(usize, NodeId, Aabb<D>)> = {
            let Node::Internal(children) = &self.nodes[node] else {
                unreachable!()
            };
            children
                .iter()
                .enumerate()
                .filter(|(_, c)| c.mbr.intersects(mbr))
                .map(|(i, c)| (i, c.node, c.mbr))
                .collect()
        };

        for (idx, child_id, _) in child_ids {
            if let Some(value) = self.remove_rec(child_id, mbr, pred, depth - 1, orphans) {
                // Check for underflow of the child.
                let child_len = match &self.nodes[child_id] {
                    Node::Leaf(items) => items.len(),
                    Node::Internal(children) => children.len(),
                };
                if child_len < self.config.min_entries {
                    // Dissolve the child: orphan all items beneath it.
                    let Node::Internal(children) = &mut self.nodes[node] else {
                        unreachable!()
                    };
                    children.swap_remove(idx);
                    self.collect_items(child_id, orphans);
                } else {
                    let new_mbr = self.node_mbr(child_id);
                    let Node::Internal(children) = &mut self.nodes[node] else {
                        unreachable!()
                    };
                    children[idx].mbr = new_mbr;
                }
                return Some(value);
            }
        }
        None
    }

    /// Moves every item stored under `node` into `out` and frees the nodes.
    fn collect_items(&mut self, node: NodeId, out: &mut Vec<Item<T, D>>) {
        let taken = std::mem::replace(&mut self.nodes[node], Node::Leaf(Vec::new()));
        self.free.push(node);
        match taken {
            Node::Leaf(items) => out.extend(items),
            Node::Internal(children) => {
                for c in children {
                    self.collect_items(c.node, out);
                }
            }
        }
    }

    // ------------------------------------------------------------------
    // Invariants (used by tests)
    // ------------------------------------------------------------------

    /// Verifies the structural invariants of the tree, panicking with a
    /// description on the first violation. Intended for tests.
    pub fn check_invariants(&self) {
        if self.len == 0 {
            return;
        }
        let mut counted = 0;
        self.check_node(self.root, self.height, true, &mut counted);
        assert_eq!(counted, self.len, "len() disagrees with stored items");
    }

    fn check_node(&self, id: NodeId, depth: usize, is_root: bool, counted: &mut usize) -> Aabb<D> {
        match &self.nodes[id] {
            Node::Leaf(items) => {
                assert_eq!(depth, 0, "leaf above leaf level");
                if !is_root {
                    assert!(
                        items.len() >= self.config.min_entries,
                        "leaf underflow: {} < {}",
                        items.len(),
                        self.config.min_entries
                    );
                }
                assert!(items.len() <= self.config.max_entries, "leaf overflow");
                *counted += items.len();
                fold_mbr(items.iter().map(|i| i.mbr)).expect("empty non-root leaf")
            }
            Node::Internal(children) => {
                assert!(depth > 0, "internal node at leaf level");
                let min = if is_root { 2 } else { self.config.min_entries };
                assert!(
                    children.len() >= min,
                    "internal underflow: {} < {min}",
                    children.len()
                );
                assert!(
                    children.len() <= self.config.max_entries,
                    "internal overflow"
                );
                let mut acc: Option<Aabb<D>> = None;
                for c in children {
                    let actual = self.check_node(c.node, depth - 1, false, counted);
                    assert_eq!(actual, c.mbr, "stored child MBR differs from computed MBR");
                    acc = Some(match acc {
                        None => actual,
                        Some(a) => a.union(&actual),
                    });
                }
                acc.expect("internal node with no children")
            }
        }
    }
}

/// Result of a recursive insertion step.
enum InsertOutcome<T, const D: usize> {
    /// Inserted without structural change above this node.
    Done,
    /// The node split; the parent must adopt the new sibling.
    Split(Aabb<D>, NodeId),
    /// R* forced reinsertion: these evicted items must be re-inserted
    /// from the root.
    Reinsert(Vec<Item<T, D>>),
}

/// Removes the `count` items whose centres lie farthest from the node's
/// centre (R* eviction order), returning them farthest-first.
fn evict_farthest<T, const D: usize>(items: &mut Vec<Item<T, D>>, count: usize) -> Vec<Item<T, D>> {
    debug_assert!(count < items.len());
    let node_mbr = fold_mbr(items.iter().map(|i| i.mbr)).expect("non-empty node");
    let center = node_mbr.center();
    let dist = |m: &Aabb<D>| {
        let c = m.center();
        let mut d = 0.0;
        for i in 0..D {
            let g = c[i] - center[i];
            d += g * g;
        }
        d
    };
    // Sort ascending by distance; split off the farthest `count`.
    items.sort_by(|a, b| dist(&a.mbr).total_cmp(&dist(&b.mbr)));
    let mut evicted = items.split_off(items.len() - count);
    evicted.reverse(); // farthest first, per the R* paper's "close reinsert"
    evicted
}

pub(crate) fn fold_mbr<const D: usize>(mut mbrs: impl Iterator<Item = Aabb<D>>) -> Option<Aabb<D>> {
    let first = mbrs.next()?;
    Some(mbrs.fold(first, |acc, m| acc.union(&m)))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree(n: u32) -> RTree<u32, 2> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = f64::from(i % 100);
            let y = f64::from(i / 100);
            t.insert(Aabb::from_point([x, y]), i);
        }
        t
    }

    #[test]
    fn empty_tree_queries() {
        let t: RTree<u32, 2> = RTree::new();
        assert!(t.is_empty());
        assert!(t.search(&Aabb::new([-1e9, -1e9], [1e9, 1e9])).is_empty());
        assert!(t.nearest_k([0.0, 0.0], 5).is_empty());
        t.check_invariants();
    }

    #[test]
    fn search_with_stats_matches_search_and_counts() {
        let t = grid_tree(1000);
        let query = Aabb::new([10.0, 2.0], [30.0, 6.0]);
        let plain = t.search(&query);

        let mut stats = SearchStats::default();
        let mut observed = Vec::new();
        t.search_with_stats(&query, &mut stats, |_mbr, v| observed.push(v));
        assert_eq!(observed, plain);
        assert_eq!(stats.items_matched, plain.len() as u64);
        assert!(stats.items_tested >= stats.items_matched);
        assert!(stats.nodes_visited >= stats.leaves_scanned);
        assert!(stats.leaves_scanned >= 1);
        // Selective queries must not scan the whole tree.
        assert!(stats.items_tested < t.len() as u64);

        // Out-param aggregates across calls.
        let before = stats;
        t.search_with_stats(&query, &mut stats, |_, _| {});
        assert_eq!(stats.items_matched, before.items_matched * 2);

        let empty: RTree<u32, 2> = RTree::new();
        let mut s = SearchStats::default();
        empty.search_with_stats(&query, &mut s, |_, _| {});
        assert_eq!(s, SearchStats::default());
    }

    #[test]
    fn insert_and_range_search() {
        let t = grid_tree(1000);
        t.check_invariants();
        assert_eq!(t.len(), 1000);
        let hits = t.search(&Aabb::new([0.0, 0.0], [4.0, 1.0]));
        assert_eq!(hits.len(), 10); // 5 × 2 grid points
        let all = t.search(&Aabb::new([-1.0, -1.0], [1000.0, 1000.0]));
        assert_eq!(all.len(), 1000);
    }

    #[test]
    fn search_entries_returns_boxes() {
        let t = grid_tree(10);
        let entries = t.search_entries(&Aabb::new([2.0, 0.0], [3.0, 0.0]));
        assert_eq!(entries.len(), 2);
        for (mbr, &v) in entries {
            assert_eq!(mbr.min[0], f64::from(v % 100));
        }
    }

    #[test]
    fn nearest_k_exact_order() {
        let t = grid_tree(100);
        let hits = t.nearest_k([5.2, 0.0], 3);
        let ids: Vec<u32> = hits.iter().map(|(v, _)| **v).collect();
        assert_eq!(ids, vec![5, 6, 4]);
        // Distances are non-decreasing.
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn nearest_k_within_cuts_far_matches() {
        let t = grid_tree(100);
        // Nearest to (50, 50): the grid only spans x<100, y<1, so all
        // points are ≥ 49 away vertically.
        let all = t.nearest_k([50.0, 50.0], 5);
        assert_eq!(all.len(), 5);
        assert!(t.nearest_k_within([50.0, 50.0], 5, 10.0).is_empty());
        let near = t.nearest_k_within([5.0, 0.0], 3, 1.5);
        assert_eq!(near.len(), 3);
        assert!(near.iter().all(|(_, d)| *d <= 1.5 * 1.5));
    }

    #[test]
    fn nearest_k_more_than_len() {
        let t = grid_tree(7);
        assert_eq!(t.nearest_k([0.0, 0.0], 100).len(), 7);
    }

    #[test]
    fn iter_visits_everything() {
        let t = grid_tree(333);
        let mut seen: Vec<u32> = t.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..333).collect::<Vec<_>>());
    }

    #[test]
    fn remove_single_item() {
        let mut t = grid_tree(50);
        let removed = t.remove(&Aabb::from_point([7.0, 0.0]), |&v| v == 7);
        assert_eq!(removed, Some(7));
        assert_eq!(t.len(), 49);
        t.check_invariants();
        assert!(t.search(&Aabb::from_point([7.0, 0.0])).is_empty());
        // Removing again finds nothing.
        assert_eq!(t.remove(&Aabb::from_point([7.0, 0.0]), |&v| v == 7), None);
    }

    #[test]
    fn remove_everything_then_reuse() {
        let mut t = grid_tree(200);
        for i in 0..200u32 {
            let p = [f64::from(i % 100), f64::from(i / 100)];
            assert_eq!(
                t.remove(&Aabb::from_point(p), |&v| v == i),
                Some(i),
                "item {i}"
            );
            t.check_invariants();
        }
        assert!(t.is_empty());
        // The tree is fully usable afterwards.
        t.insert(Aabb::from_point([1.0, 1.0]), 42);
        assert_eq!(t.len(), 1);
        assert_eq!(t.search(&Aabb::from_point([1.0, 1.0])), vec![&42]);
    }

    #[test]
    fn duplicate_boxes_are_kept_separately() {
        let mut t: RTree<u32, 1> = RTree::new();
        for i in 0..20 {
            t.insert(Aabb::from_point([1.0]), i);
        }
        assert_eq!(t.search(&Aabb::from_point([1.0])).len(), 20);
        t.check_invariants();
        // Predicate-based removal picks the right duplicate.
        assert_eq!(t.remove(&Aabb::from_point([1.0]), |&v| v == 13), Some(13));
        assert_eq!(t.search(&Aabb::from_point([1.0])).len(), 19);
    }

    #[test]
    fn linear_split_config_works() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            split: SplitStrategy::Linear,
            ..RTreeConfig::default()
        });
        for i in 0..500u32 {
            t.insert(Aabb::from_point([f64::from(i % 50), f64::from(i / 50)]), i);
        }
        t.check_invariants();
        assert_eq!(t.search(&Aabb::new([0.0, 0.0], [49.0, 9.0])).len(), 500);
    }

    #[test]
    fn clear_resets() {
        let mut t = grid_tree(100);
        t.clear();
        assert!(t.is_empty());
        assert_eq!(t.stats().height, 1);
        t.insert(Aabb::from_point([0.0, 0.0]), 1);
        assert_eq!(t.len(), 1);
    }

    #[test]
    fn height_grows_logarithmically() {
        let t = grid_tree(10_000);
        let h = t.stats().height;
        // M = 16: height should be small.
        assert!((3..=7).contains(&h), "height {h}");
    }

    #[test]
    fn three_dimensional_segments() {
        // FoV-style degenerate boxes: a point in space, an interval in time.
        let mut t: RTree<&'static str, 3> = RTree::new();
        t.insert(Aabb::new([1.0, 2.0, 0.0], [1.0, 2.0, 10.0]), "a");
        t.insert(Aabb::new([1.0, 2.0, 20.0], [1.0, 2.0, 30.0]), "b");
        t.insert(Aabb::new([5.0, 5.0, 0.0], [5.0, 5.0, 100.0]), "c");
        // Query around (1, 2) in t ∈ [5, 25] finds a and b.
        let hits = t.search(&Aabb::new([0.0, 1.0, 5.0], [2.0, 3.0, 25.0]));
        assert_eq!(hits.len(), 2);
        // Time-disjoint query finds nothing.
        assert!(t
            .search(&Aabb::new([0.0, 1.0, 11.0], [2.0, 3.0, 19.0]))
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "min_entries")]
    fn invalid_config_rejected() {
        let _: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            max_entries: 8,
            min_entries: 5,
            split: SplitStrategy::Quadratic,
            reinsert_fraction: 0.0,
        });
    }

    #[test]
    fn forced_reinsertion_preserves_correctness() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig::rstar());
        for i in 0..3000u32 {
            // Clustered insert order: the worst case reinsert targets.
            let cluster = f64::from(i % 7) * 200.0;
            let x = cluster + f64::from(i % 13);
            let y = f64::from(i % 11) * 3.0;
            t.insert(Aabb::from_point([x, y]), i);
        }
        t.check_invariants();
        assert_eq!(t.len(), 3000);
        let all = t.search(&Aabb::new([-1e6, -1e6], [1e6, 1e6]));
        assert_eq!(all.len(), 3000);
        // Spot query matches a naive filter.
        let q = Aabb::new([200.0, 0.0], [213.0, 12.0]);
        let got = t.search(&q).len();
        let want = (0..3000u32)
            .filter(|i| {
                let x = f64::from(i % 7) * 200.0 + f64::from(i % 13);
                let y = f64::from(i % 11) * 3.0;
                q.contains_point(&[x, y])
            })
            .count();
        assert_eq!(got, want);
    }

    #[test]
    fn forced_reinsertion_interleaves_with_removal() {
        let mut t: RTree<u32, 2> = RTree::with_config(RTreeConfig::rstar());
        for i in 0..500u32 {
            t.insert(Aabb::from_point([f64::from(i % 25), f64::from(i / 25)]), i);
        }
        for i in (0..500u32).step_by(3) {
            let p = [f64::from(i % 25), f64::from(i / 25)];
            assert_eq!(t.remove(&Aabb::from_point(p), |&v| v == i), Some(i));
        }
        t.check_invariants();
        assert_eq!(t.len(), 500 - 167);
    }

    #[test]
    #[should_panic(expected = "reinsert_fraction")]
    fn invalid_reinsert_fraction_rejected() {
        let _: RTree<u32, 2> = RTree::with_config(RTreeConfig {
            reinsert_fraction: 0.6,
            ..RTreeConfig::default()
        });
    }
}
