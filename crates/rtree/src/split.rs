//! Node splitting strategies (Guttman 1984, §3.5).
//!
//! When a node overflows, its `M + 1` entries are partitioned into two
//! groups, each of at least `m` entries. Three algorithms are provided:
//!
//! * [`SplitStrategy::Quadratic`] — Guttman's quadratic split: pick the
//!   pair of entries that would waste the most area together as seeds,
//!   then assign each remaining entry to the group whose MBR it enlarges
//!   least. The classic default.
//! * [`SplitStrategy::Linear`] — Guttman's linear split: pick seeds by
//!   the greatest normalised separation along any dimension, then assign
//!   greedily. Faster splits, slightly worse trees.
//! * [`SplitStrategy::RStar`] — the R*-tree topological split (Beckmann
//!   et al. 1990): axis by minimum margin sum, distribution by minimum
//!   overlap. Better-clustered nodes, costlier splits.
//!
//! All three feed the split-strategy ablation bench
//! (`benches/rtree.rs`).

use crate::mbr::Aabb;

/// How overflowing nodes are split. See the module docs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SplitStrategy {
    /// Guttman's quadratic-cost split (default).
    #[default]
    Quadratic,
    /// Guttman's linear-cost split.
    Linear,
    /// The R*-tree topological split (Beckmann et al. 1990): choose the
    /// split axis by minimum margin sum, then the distribution by minimum
    /// overlap. Produces better-clustered nodes at a higher split cost.
    RStar,
}

/// Splits `entries` (length ≥ 2) into two groups of at least `min_entries`
/// each, returning the groups and their MBRs.
///
/// `mbr_of` projects an entry to its bounding box.
pub fn split<E, const D: usize>(
    strategy: SplitStrategy,
    entries: Vec<E>,
    min_entries: usize,
    mbr_of: impl Fn(&E) -> Aabb<D>,
) -> (Vec<E>, Aabb<D>, Vec<E>, Aabb<D>) {
    debug_assert!(entries.len() >= 2);
    debug_assert!(entries.len() >= 2 * min_entries);
    let (seed_a, seed_b) = match strategy {
        SplitStrategy::Quadratic => pick_seeds_quadratic(&entries, &mbr_of),
        SplitStrategy::Linear => pick_seeds_linear(&entries, &mbr_of),
        SplitStrategy::RStar => return split_rstar(entries, min_entries, mbr_of),
    };

    let n = entries.len();
    let mut remaining: Vec<Option<E>> = entries.into_iter().map(Some).collect();
    let a0 = remaining[seed_a].take().expect("seed A present");
    let b0 = remaining[seed_b].take().expect("seed B present");
    let mut mbr_a = mbr_of(&a0);
    let mut mbr_b = mbr_of(&b0);
    let mut group_a = vec![a0];
    let mut group_b = vec![b0];

    let mut left = n - 2;
    while left > 0 {
        // If one group must absorb everything remaining to reach the
        // minimum, hand the rest over.
        if group_a.len() + left == min_entries {
            for slot in remaining.iter_mut() {
                if let Some(e) = slot.take() {
                    mbr_a = mbr_a.union(&mbr_of(&e));
                    group_a.push(e);
                }
            }
            break;
        }
        if group_b.len() + left == min_entries {
            for slot in remaining.iter_mut() {
                if let Some(e) = slot.take() {
                    mbr_b = mbr_b.union(&mbr_of(&e));
                    group_b.push(e);
                }
            }
            break;
        }

        // PickNext: the entry with the greatest preference for one group.
        let mut best_idx = usize::MAX;
        let mut best_pref = -1.0;
        let mut best_da = 0.0;
        let mut best_db = 0.0;
        for (i, slot) in remaining.iter().enumerate() {
            if let Some(e) = slot {
                let m = mbr_of(e);
                let da = mbr_a.enlargement(&m);
                let db = mbr_b.enlargement(&m);
                let pref = (da - db).abs();
                if pref > best_pref {
                    best_pref = pref;
                    best_idx = i;
                    best_da = da;
                    best_db = db;
                }
            }
        }
        let e = remaining[best_idx].take().expect("best entry present");
        let m = mbr_of(&e);
        // Resolve ties by smaller area, then smaller group.
        let to_a = if best_da < best_db {
            true
        } else if best_db < best_da {
            false
        } else if mbr_a.area() != mbr_b.area() {
            mbr_a.area() < mbr_b.area()
        } else {
            group_a.len() <= group_b.len()
        };
        if to_a {
            mbr_a = mbr_a.union(&m);
            group_a.push(e);
        } else {
            mbr_b = mbr_b.union(&m);
            group_b.push(e);
        }
        left -= 1;
    }

    (group_a, mbr_a, group_b, mbr_b)
}

/// The R*-tree topological split.
///
/// For every axis and both sort keys (lower bound, upper bound), every
/// legal distribution (first group of `k ∈ [m, n−m]` entries) is scored.
/// The axis minimising the **margin sum** over all its distributions is
/// chosen; along that axis, the distribution with the smallest **overlap**
/// (ties: smallest total area) wins.
fn split_rstar<E, const D: usize>(
    entries: Vec<E>,
    min_entries: usize,
    mbr_of: impl Fn(&E) -> Aabb<D>,
) -> (Vec<E>, Aabb<D>, Vec<E>, Aabb<D>) {
    let n = entries.len();
    let mbrs: Vec<Aabb<D>> = entries.iter().map(&mbr_of).collect();

    /// Per-(axis, sort-key) evaluation: margin sum plus the best
    /// distribution under the overlap/area criterion.
    struct AxisScore {
        order: Vec<usize>,
        margin_sum: f64,
        best_k: usize,
        best_overlap: f64,
        best_area: f64,
    }

    let evaluate = |order: Vec<usize>| -> AxisScore {
        // Prefix MBRs from the left, suffix MBRs from the right.
        let mut prefix: Vec<Aabb<D>> = Vec::with_capacity(n);
        let mut acc = mbrs[order[0]];
        for &i in &order {
            acc = acc.union(&mbrs[i]);
            prefix.push(acc);
        }
        let mut suffix: Vec<Aabb<D>> = vec![mbrs[order[n - 1]]; n];
        let mut acc = mbrs[order[n - 1]];
        for pos in (0..n - 1).rev() {
            acc = acc.union(&mbrs[order[pos]]);
            suffix[pos] = acc;
        }

        let mut margin_sum = 0.0;
        let mut best_k = min_entries;
        let mut best_overlap = f64::INFINITY;
        let mut best_area = f64::INFINITY;
        for k in min_entries..=(n - min_entries) {
            let (a, b) = (&prefix[k - 1], &suffix[k]);
            margin_sum += a.margin() + b.margin();
            let overlap = a.overlap_area(b);
            let area = a.area() + b.area();
            if overlap < best_overlap || (overlap == best_overlap && area < best_area) {
                best_overlap = overlap;
                best_area = area;
                best_k = k;
            }
        }
        AxisScore {
            order,
            margin_sum,
            best_k,
            best_overlap,
            best_area,
        }
    };

    let mut best: Option<AxisScore> = None;
    let mut best_axis_margin = f64::INFINITY;
    for d in 0..D {
        for by_upper in [false, true] {
            let mut order: Vec<usize> = (0..n).collect();
            order.sort_unstable_by(|&i, &j| {
                let (a, b) = (&mbrs[i], &mbrs[j]);
                if by_upper {
                    a.max[d]
                        .total_cmp(&b.max[d])
                        .then(a.min[d].total_cmp(&b.min[d]))
                } else {
                    a.min[d]
                        .total_cmp(&b.min[d])
                        .then(a.max[d].total_cmp(&b.max[d]))
                }
            });
            let score = evaluate(order);
            // Axis choice by margin sum; within an axis (and across its
            // two sort keys) keep the better overlap/area distribution.
            let replace = match &best {
                None => true,
                Some(b) => {
                    score.margin_sum < best_axis_margin
                        || (score.margin_sum == best_axis_margin
                            && (score.best_overlap, score.best_area)
                                < (b.best_overlap, b.best_area))
                }
            };
            if replace {
                best_axis_margin = best_axis_margin.min(score.margin_sum);
                best = Some(score);
            }
        }
    }
    let chosen = best.expect("at least one axis evaluated");

    // Materialise the two groups in the chosen order.
    let mut slots: Vec<Option<E>> = entries.into_iter().map(Some).collect();
    let mut group_a = Vec::with_capacity(chosen.best_k);
    let mut group_b = Vec::with_capacity(n - chosen.best_k);
    for (pos, &idx) in chosen.order.iter().enumerate() {
        let e = slots[idx].take().expect("each index visited once");
        if pos < chosen.best_k {
            group_a.push(e);
        } else {
            group_b.push(e);
        }
    }
    let mbr_a = group_a
        .iter()
        .map(&mbr_of)
        .reduce(|a, b| a.union(&b))
        .expect("group A non-empty");
    let mbr_b = group_b
        .iter()
        .map(&mbr_of)
        .reduce(|a, b| a.union(&b))
        .expect("group B non-empty");
    (group_a, mbr_a, group_b, mbr_b)
}

/// Quadratic PickSeeds: the pair wasting the most area when joined.
fn pick_seeds_quadratic<E, const D: usize>(
    entries: &[E],
    mbr_of: &impl Fn(&E) -> Aabb<D>,
) -> (usize, usize) {
    let mbrs: Vec<Aabb<D>> = entries.iter().map(mbr_of).collect();
    let mut best = (0, 1);
    let mut worst_waste = f64::NEG_INFINITY;
    for i in 0..mbrs.len() {
        for j in (i + 1)..mbrs.len() {
            let waste = mbrs[i].union(&mbrs[j]).area() - mbrs[i].area() - mbrs[j].area();
            if waste > worst_waste {
                worst_waste = waste;
                best = (i, j);
            }
        }
    }
    best
}

/// Linear PickSeeds: the pair with the greatest normalised separation
/// along any single dimension.
fn pick_seeds_linear<E, const D: usize>(
    entries: &[E],
    mbr_of: &impl Fn(&E) -> Aabb<D>,
) -> (usize, usize) {
    let mbrs: Vec<Aabb<D>> = entries.iter().map(mbr_of).collect();
    let mut best = (0, 1);
    let mut best_sep = f64::NEG_INFINITY;
    for d in 0..D {
        // Highest low side and lowest high side.
        let (mut hi_low_i, mut lo_high_i) = (0, 0);
        let (mut lo, mut hi) = (f64::INFINITY, f64::NEG_INFINITY);
        for (i, m) in mbrs.iter().enumerate() {
            if m.min[d] > mbrs[hi_low_i].min[d] {
                hi_low_i = i;
            }
            if m.max[d] < mbrs[lo_high_i].max[d] {
                lo_high_i = i;
            }
            lo = lo.min(m.min[d]);
            hi = hi.max(m.max[d]);
        }
        let width = (hi - lo).max(f64::MIN_POSITIVE);
        let sep = (mbrs[hi_low_i].min[d] - mbrs[lo_high_i].max[d]) / width;
        if sep > best_sep && hi_low_i != lo_high_i {
            best_sep = sep;
            best = (lo_high_i, hi_low_i);
        }
    }
    // All entries identical along every dimension: fall back to (0, 1).
    if best.0 == best.1 {
        best = (0, 1);
    }
    best
}

#[cfg(test)]
mod tests {
    use super::*;

    fn boxes(points: &[f64]) -> Vec<Aabb<1>> {
        points.iter().map(|&x| Aabb::from_point([x])).collect()
    }

    fn run(strategy: SplitStrategy, points: &[f64], min: usize) -> (Vec<Aabb<1>>, Vec<Aabb<1>>) {
        let (a, ma, b, mb) = split(strategy, boxes(points), min, |e| *e);
        // MBRs are consistent.
        let union = |g: &[Aabb<1>]| g.iter().fold(g[0], |acc, x| acc.union(x));
        assert_eq!(union(&a), ma);
        assert_eq!(union(&b), mb);
        (a, b)
    }

    #[test]
    fn quadratic_separates_clusters() {
        let (a, b) = run(
            SplitStrategy::Quadratic,
            &[0.0, 1.0, 2.0, 100.0, 101.0, 102.0],
            2,
        );
        assert_eq!(a.len() + b.len(), 6);
        // Each group is one cluster.
        let (lo, hi) = if a[0].min[0] < 50.0 {
            (&a, &b)
        } else {
            (&b, &a)
        };
        assert!(lo.iter().all(|m| m.min[0] < 50.0));
        assert!(hi.iter().all(|m| m.min[0] > 50.0));
    }

    #[test]
    fn rstar_separates_clusters() {
        let (a, b) = run(
            SplitStrategy::RStar,
            &[0.0, 1.0, 2.0, 100.0, 101.0, 102.0],
            2,
        );
        let (lo, hi) = if a[0].min[0] < 50.0 {
            (&a, &b)
        } else {
            (&b, &a)
        };
        assert!(lo.iter().all(|m| m.min[0] < 50.0));
        assert!(hi.iter().all(|m| m.min[0] > 50.0));
    }

    #[test]
    fn rstar_picks_low_overlap_distribution_in_2d() {
        // Two vertical strips of boxes: splitting along x gives zero
        // overlap; splitting along y would overlap heavily. R* must pick x.
        let mut boxes2: Vec<Aabb<2>> = Vec::new();
        for i in 0..4 {
            boxes2.push(Aabb::new([0.0, i as f64], [1.0, i as f64 + 1.0]));
            boxes2.push(Aabb::new([10.0, i as f64], [11.0, i as f64 + 1.0]));
        }
        let (a, ma, b, mb) = split(SplitStrategy::RStar, boxes2, 2, |e| *e);
        assert_eq!(a.len() + b.len(), 8);
        assert_eq!(ma.overlap_area(&mb), 0.0, "{ma:?} vs {mb:?}");
    }

    #[test]
    fn linear_separates_clusters() {
        let (a, b) = run(
            SplitStrategy::Linear,
            &[0.0, 1.0, 2.0, 100.0, 101.0, 102.0],
            2,
        );
        let (lo, hi) = if a[0].min[0] < 50.0 {
            (&a, &b)
        } else {
            (&b, &a)
        };
        assert!(lo.iter().all(|m| m.min[0] < 50.0));
        assert!(hi.iter().all(|m| m.min[0] > 50.0));
    }

    #[test]
    fn minimum_group_sizes_are_respected() {
        for strategy in [
            SplitStrategy::Quadratic,
            SplitStrategy::Linear,
            SplitStrategy::RStar,
        ] {
            // Adversarial: one far outlier tempts the split to put a lone
            // entry in its own group.
            let (a, b) = run(strategy, &[0.0, 0.1, 0.2, 0.3, 0.4, 1000.0], 3);
            assert!(
                a.len() >= 3 && b.len() >= 3,
                "{strategy:?}: {} vs {}",
                a.len(),
                b.len()
            );
        }
    }

    #[test]
    fn identical_entries_still_split() {
        for strategy in [
            SplitStrategy::Quadratic,
            SplitStrategy::Linear,
            SplitStrategy::RStar,
        ] {
            let (a, b) = run(strategy, &[5.0; 8], 3);
            assert_eq!(a.len() + b.len(), 8);
            assert!(a.len() >= 3 && b.len() >= 3);
        }
    }

    #[test]
    fn two_entries_split_into_singletons() {
        for strategy in [
            SplitStrategy::Quadratic,
            SplitStrategy::Linear,
            SplitStrategy::RStar,
        ] {
            let (a, _, b, _) = split(strategy, boxes(&[1.0, 2.0]), 1, |e| *e);
            assert_eq!((a.len(), b.len()), (1, 1));
        }
    }
}
