//! Read-side traversals: range search, k-NN, iteration.
//!
//! Range searches recurse over the arena in **reverse child order** —
//! the same visit sequence an explicit LIFO stack produces, kept so the
//! two formulations stay interchangeable without reordering results.
//! Recursion measured faster than a heap-allocated stack on the
//! `rtree_arena` ablation (the compiler keeps the per-level cursor in
//! registers and the depth of an R-tree is tiny), and it allocates
//! nothing. Depth is bounded by `log_m(n)` — under the default fan-out a
//! height of 12 already holds billions of items, so stack use is a
//! non-issue.

use std::collections::BinaryHeap;

use crate::mbr::Aabb;
use crate::node::{Node, NodeIx};
use crate::tree::RTree;

/// Traversal counters accumulated by [`RTree::search_with_stats`].
///
/// An out-param rather than a return value so repeated searches (e.g. one
/// per time shard) can aggregate into a single struct without allocating.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SearchStats {
    /// Nodes popped from the traversal stack (internal + leaf).
    pub nodes_visited: u64,
    /// Leaf nodes whose items were examined.
    pub leaves_scanned: u64,
    /// Items whose boxes were intersection-tested.
    pub items_tested: u64,
    /// Items that intersected the query and were visited.
    pub items_matched: u64,
}

impl SearchStats {
    /// Adds another search's counters into this one.
    pub fn merge(&mut self, other: &SearchStats) {
        self.nodes_visited += other.nodes_visited;
        self.leaves_scanned += other.leaves_scanned;
        self.items_tested += other.items_tested;
        self.items_matched += other.items_matched;
    }
}

impl<T, const D: usize> RTree<T, D> {
    /// Collects references to all values whose box intersects `query`.
    pub fn search(&self, query: &Aabb<D>) -> Vec<&T> {
        let mut out = Vec::new();
        self.search_with(query, |_mbr, v| out.push(v));
        out
    }

    /// Collects `(box, value)` pairs intersecting `query`.
    pub fn search_entries(&self, query: &Aabb<D>) -> Vec<(Aabb<D>, &T)> {
        let mut out = Vec::new();
        self.search_with(query, |mbr, v| out.push((*mbr, v)));
        out
    }

    /// Visits every item whose box intersects `query` without allocating.
    pub fn search_with<'a>(&'a self, query: &Aabb<D>, mut visit: impl FnMut(&'a Aabb<D>, &'a T)) {
        if self.len == 0 {
            return;
        }
        self.search_rec(self.root, query, &mut visit);
    }

    fn search_rec<'a>(
        &'a self,
        ix: NodeIx,
        query: &Aabb<D>,
        visit: &mut impl FnMut(&'a Aabb<D>, &'a T),
    ) {
        match self.node(ix) {
            Node::Leaf { items } => {
                for item in items {
                    if item.mbr.intersects(query) {
                        visit(&item.mbr, &item.value);
                    }
                }
            }
            Node::Internal { mbrs, children } => {
                for (mbr, child) in mbrs.iter().zip(children).rev() {
                    if mbr.intersects(query) {
                        self.search_rec(*child, query, visit);
                    }
                }
            }
        }
    }

    /// [`Self::search_with`] that additionally accumulates traversal
    /// counters into `stats`. A separate method (rather than a flag on
    /// `search_with`) so the uninstrumented path keeps zero overhead.
    pub fn search_with_stats<'a>(
        &'a self,
        query: &Aabb<D>,
        stats: &mut SearchStats,
        mut visit: impl FnMut(&'a Aabb<D>, &'a T),
    ) {
        if self.len == 0 {
            return;
        }
        self.search_stats_rec(self.root, query, stats, &mut visit);
    }

    fn search_stats_rec<'a>(
        &'a self,
        ix: NodeIx,
        query: &Aabb<D>,
        stats: &mut SearchStats,
        visit: &mut impl FnMut(&'a Aabb<D>, &'a T),
    ) {
        stats.nodes_visited += 1;
        match self.node(ix) {
            Node::Leaf { items } => {
                stats.leaves_scanned += 1;
                stats.items_tested += items.len() as u64;
                for item in items {
                    if item.mbr.intersects(query) {
                        stats.items_matched += 1;
                        visit(&item.mbr, &item.value);
                    }
                }
            }
            Node::Internal { mbrs, children } => {
                for (mbr, child) in mbrs.iter().zip(children).rev() {
                    if mbr.intersects(query) {
                        self.search_stats_rec(*child, query, stats, visit);
                    }
                }
            }
        }
    }

    /// Returns the `k` stored values nearest to `point` (by MBR `MINDIST`),
    /// closest first, together with their squared distances.
    ///
    /// Uses best-first traversal with a priority queue, so it touches only
    /// the nodes whose boxes can contain a better candidate.
    pub fn nearest_k(&self, point: [f64; D], k: usize) -> Vec<(&T, f64)> {
        if k == 0 || self.len == 0 {
            return Vec::new();
        }

        /// Max-heap entry ordered by negative distance = min-heap by distance.
        struct HeapEntry<'a, T, const D: usize> {
            dist_sq: f64,
            kind: Candidate<'a, T, D>,
        }
        enum Candidate<'a, T, const D: usize> {
            Node(NodeIx),
            Item(&'a T),
        }
        impl<T, const D: usize> PartialEq for HeapEntry<'_, T, D> {
            fn eq(&self, other: &Self) -> bool {
                self.dist_sq == other.dist_sq
            }
        }
        impl<T, const D: usize> Eq for HeapEntry<'_, T, D> {}
        impl<T, const D: usize> PartialOrd for HeapEntry<'_, T, D> {
            fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
                Some(self.cmp(other))
            }
        }
        impl<T, const D: usize> Ord for HeapEntry<'_, T, D> {
            fn cmp(&self, other: &Self) -> std::cmp::Ordering {
                // Reverse: smallest distance pops first.
                other.dist_sq.total_cmp(&self.dist_sq)
            }
        }

        let mut heap: BinaryHeap<HeapEntry<'_, T, D>> = BinaryHeap::new();
        heap.push(HeapEntry {
            dist_sq: 0.0,
            kind: Candidate::Node(self.root),
        });
        let mut out = Vec::with_capacity(k);
        while let Some(entry) = heap.pop() {
            match entry.kind {
                Candidate::Item(v) => {
                    out.push((v, entry.dist_sq));
                    if out.len() == k {
                        break;
                    }
                }
                Candidate::Node(ix) => match self.node(ix) {
                    Node::Leaf { items } => {
                        for item in items {
                            heap.push(HeapEntry {
                                dist_sq: item.mbr.min_dist_sq(&point),
                                kind: Candidate::Item(&item.value),
                            });
                        }
                    }
                    Node::Internal { mbrs, children } => {
                        for (mbr, child) in mbrs.iter().zip(children) {
                            heap.push(HeapEntry {
                                dist_sq: mbr.min_dist_sq(&point),
                                kind: Candidate::Node(*child),
                            });
                        }
                    }
                },
            }
        }
        out
    }

    /// Like [`Self::nearest_k`], but only returns items whose `MINDIST`
    /// is at most `max_dist` (exclusive of anything farther). Useful when
    /// a miss is better than a far match.
    pub fn nearest_k_within(&self, point: [f64; D], k: usize, max_dist: f64) -> Vec<(&T, f64)> {
        let limit_sq = max_dist * max_dist;
        let mut hits = self.nearest_k(point, k);
        hits.retain(|(_, d)| *d <= limit_sq);
        hits
    }

    /// Iterates over all `(box, value)` pairs in arbitrary order.
    ///
    /// Owns its stack (rather than borrowing the thread scratch) because
    /// the iterator can outlive any scoped borrow.
    pub fn iter(&self) -> impl Iterator<Item = (&Aabb<D>, &T)> {
        let mut stack = if self.len == 0 {
            vec![]
        } else {
            vec![self.root]
        };
        let mut leaf: Option<&[crate::node::Item<T, D>]> = None;
        let mut pos = 0;
        std::iter::from_fn(move || loop {
            if let Some(items) = leaf {
                if pos < items.len() {
                    let i = pos;
                    pos += 1;
                    return Some((&items[i].mbr, &items[i].value));
                }
                leaf = None;
            }
            let ix = stack.pop()?;
            match self.node(ix) {
                Node::Leaf { items } => {
                    leaf = Some(items);
                    pos = 0;
                }
                Node::Internal { children, .. } => stack.extend(children.iter().copied()),
            }
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn grid_tree(n: u32) -> RTree<u32, 2> {
        let mut t = RTree::new();
        for i in 0..n {
            let x = f64::from(i % 100);
            let y = f64::from(i / 100);
            t.insert(Aabb::from_point([x, y]), i);
        }
        t
    }

    #[test]
    fn search_with_stats_matches_search_and_counts() {
        let t = grid_tree(1000);
        let query = Aabb::new([10.0, 2.0], [30.0, 6.0]);
        let plain = t.search(&query);

        let mut stats = SearchStats::default();
        let mut observed = Vec::new();
        t.search_with_stats(&query, &mut stats, |_mbr, v| observed.push(v));
        assert_eq!(observed, plain);
        assert_eq!(stats.items_matched, plain.len() as u64);
        assert!(stats.items_tested >= stats.items_matched);
        assert!(stats.nodes_visited >= stats.leaves_scanned);
        assert!(stats.leaves_scanned >= 1);
        // Selective queries must not scan the whole tree.
        assert!(stats.items_tested < t.len() as u64);

        // Out-param aggregates across calls.
        let before = stats;
        t.search_with_stats(&query, &mut stats, |_, _| {});
        assert_eq!(stats.items_matched, before.items_matched * 2);

        let empty: RTree<u32, 2> = RTree::new();
        let mut s = SearchStats::default();
        empty.search_with_stats(&query, &mut s, |_, _| {});
        assert_eq!(s, SearchStats::default());
    }

    #[test]
    fn search_entries_returns_boxes() {
        let t = grid_tree(10);
        let entries = t.search_entries(&Aabb::new([2.0, 0.0], [3.0, 0.0]));
        assert_eq!(entries.len(), 2);
        for (mbr, &v) in entries {
            assert_eq!(mbr.min[0], f64::from(v % 100));
        }
    }

    #[test]
    fn reentrant_search_from_visit_callback() {
        // A visit callback that runs a second search on the same tree must
        // see correct results even though both share the thread scratch.
        let t = grid_tree(1000);
        let outer_q = Aabb::new([0.0, 0.0], [4.0, 1.0]);
        let inner_q = Aabb::new([50.0, 5.0], [54.0, 6.0]);
        let inner_expect = t.search(&inner_q).len();
        let mut outer = 0usize;
        t.search_with(&outer_q, |_, _| {
            outer += 1;
            assert_eq!(t.search(&inner_q).len(), inner_expect);
        });
        assert_eq!(outer, t.search(&outer_q).len());
    }

    #[test]
    fn nearest_k_exact_order() {
        let t = grid_tree(100);
        let hits = t.nearest_k([5.2, 0.0], 3);
        let ids: Vec<u32> = hits.iter().map(|(v, _)| **v).collect();
        assert_eq!(ids, vec![5, 6, 4]);
        // Distances are non-decreasing.
        for w in hits.windows(2) {
            assert!(w[0].1 <= w[1].1);
        }
    }

    #[test]
    fn nearest_k_within_cuts_far_matches() {
        let t = grid_tree(100);
        // Nearest to (50, 50): the grid only spans x<100, y<1, so all
        // points are ≥ 49 away vertically.
        let all = t.nearest_k([50.0, 50.0], 5);
        assert_eq!(all.len(), 5);
        assert!(t.nearest_k_within([50.0, 50.0], 5, 10.0).is_empty());
        let near = t.nearest_k_within([5.0, 0.0], 3, 1.5);
        assert_eq!(near.len(), 3);
        assert!(near.iter().all(|(_, d)| *d <= 1.5 * 1.5));
    }

    #[test]
    fn nearest_k_more_than_len() {
        let t = grid_tree(7);
        assert_eq!(t.nearest_k([0.0, 0.0], 100).len(), 7);
    }

    #[test]
    fn iter_visits_everything() {
        let t = grid_tree(333);
        let mut seen: Vec<u32> = t.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        assert_eq!(seen, (0..333).collect::<Vec<_>>());
    }
}
