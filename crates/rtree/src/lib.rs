//! A from-scratch N-dimensional R-tree (Guttman 1984), built for SWAG's
//! spatio-temporal FoV index (paper §V).
//!
//! The tree stores axis-aligned bounding boxes ([`Aabb`]) with arbitrary
//! payloads and supports:
//!
//! * dynamic insertion with **quadratic** or **linear** node splitting
//!   ([`RTree::insert`], [`SplitStrategy`]);
//! * **range queries** — all items whose box intersects a query box
//!   ([`RTree::search`], [`RTree::search_with`]);
//! * **k-nearest-neighbour** queries via best-first traversal
//!   ([`RTree::nearest_k`]);
//! * **deletion** with tree condensation and reinsertion
//!   ([`RTree::remove`]);
//! * **Sort-Tile-Recursive bulk loading** ([`RTree::bulk_load`]).
//!
//! Nodes live in a flat arena (`Vec<Node>`) addressed by `NonZeroUsize`
//! index handles; within each node the entry boxes form a dense
//! struct-of-arrays slice scanned by every traversal, with payloads in a
//! parallel vector touched only on a match. Range searches reuse a
//! per-thread traversal stack, so steady-state queries do not allocate.
//!
//! The dimension is a const generic: SWAG uses `D = 3`
//! (`[longitude, latitude, time]`), but the tree is dimension-agnostic and
//! tested in 1-4 dimensions.
//!
//! ```
//! use swag_rtree::{Aabb, RTree};
//!
//! let mut tree: RTree<u32, 2> = RTree::new();
//! for i in 0..100u32 {
//!     let x = f64::from(i % 10);
//!     let y = f64::from(i / 10);
//!     tree.insert(Aabb::from_point([x, y]), i);
//! }
//! let hits = tree.search(&Aabb::new([0.0, 0.0], [2.0, 1.0]));
//! assert_eq!(hits.len(), 6); // the 3×2 grid corner
//! let (nearest, _) = tree.nearest_k([4.2, 4.2], 1)[0];
//! assert_eq!(*nearest, 44);
//! ```

pub mod bulk;
pub mod mbr;
mod node;
pub mod search;
pub mod split;
pub mod tree;

pub use mbr::Aabb;
pub use search::SearchStats;
pub use split::SplitStrategy;
pub use tree::{RTree, RTreeConfig, RTreeStats};
