//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building a tree from a known data set is much faster than repeated
//! insertion and produces better-packed nodes: items are sorted by the
//! centre of their box along the first dimension, tiled into slabs, and the
//! procedure recurses over the remaining dimensions. The same tiling then
//! builds each upper level from the level below.
//!
//! Group sizes are distributed evenly, which guarantees every non-root node
//! holds at least `⌈M/2⌉ ≥ m` entries, so the bulk-loaded tree satisfies the
//! same invariants as an incrementally built one
//! ([`RTree::check_invariants`]).

use crate::mbr::Aabb;
use crate::tree::{fold_mbr, Child, Item, Node, RTree, RTreeConfig};

impl<T, const D: usize> RTree<T, D> {
    /// Builds a tree from `items` using STR packing and the default
    /// configuration.
    pub fn bulk_load(items: Vec<(Aabb<D>, T)>) -> Self {
        Self::bulk_load_with_config(RTreeConfig::default(), items)
    }

    /// Builds a tree from `items` using STR packing.
    pub fn bulk_load_with_config(config: RTreeConfig, items: Vec<(Aabb<D>, T)>) -> Self {
        let mut tree = RTree::with_config(config);
        if items.is_empty() {
            return tree;
        }
        let n = items.len();
        tree.nodes.clear();
        let cap = config.max_entries;

        // Leaf level.
        let leaf_items: Vec<Item<T, D>> = items
            .into_iter()
            .map(|(mbr, value)| Item { mbr, value })
            .collect();
        let mut groups = Vec::new();
        tile(
            leaf_items,
            0,
            cap,
            &|i: &Item<T, D>| i.mbr.center(),
            &mut groups,
        );
        let mut level: Vec<Child<D>> = groups
            .into_iter()
            .map(|g| {
                let mbr = fold_mbr(g.iter().map(|i| i.mbr)).expect("non-empty group");
                let node = tree.alloc(Node::Leaf(g));
                Child { mbr, node }
            })
            .collect();

        // Upper levels.
        let mut height = 0;
        while level.len() > 1 {
            let mut groups = Vec::new();
            tile(level, 0, cap, &|c: &Child<D>| c.mbr.center(), &mut groups);
            level = groups
                .into_iter()
                .map(|g| {
                    let mbr = fold_mbr(g.iter().map(|c| c.mbr)).expect("non-empty group");
                    let node = tree.alloc(Node::Internal(g));
                    Child { mbr, node }
                })
                .collect();
            height += 1;
        }

        tree.root = level[0].node;
        tree.height = height;
        tree.len = n;
        tree
    }
}

impl<T: Clone, const D: usize> RTree<T, D> {
    /// Builds a new tree containing this tree's items plus `more`,
    /// re-packed with STR under the same configuration.
    ///
    /// This is the batch counterpart of repeated [`RTree::insert`]: when a
    /// shard accumulates a publish-interval's worth of new items, one STR
    /// re-pack of old + new is cheaper and better-packed than inserting
    /// them one by one, and it leaves `self` untouched (snapshot-friendly).
    pub fn bulk_extend(&self, more: Vec<(Aabb<D>, T)>) -> Self {
        let mut items: Vec<(Aabb<D>, T)> = Vec::with_capacity(self.len() + more.len());
        items.extend(self.iter().map(|(mbr, value)| (*mbr, value.clone())));
        items.extend(more);
        Self::bulk_load_with_config(self.config, items)
    }
}

/// Recursively tiles `entries` into groups of at most `cap`, each group
/// holding at least `⌈cap/2⌉` entries whenever more than one group is
/// produced.
fn tile<E, const D: usize>(
    mut entries: Vec<E>,
    dim: usize,
    cap: usize,
    center: &impl Fn(&E) -> [f64; D],
    out: &mut Vec<Vec<E>>,
) {
    let n = entries.len();
    if n <= cap {
        out.push(entries);
        return;
    }
    let total_groups = n.div_ceil(cap);
    entries.sort_unstable_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));

    if dim + 1 == D {
        even_chunks(entries, total_groups, out);
    } else {
        // Number of slabs along this dimension: the (D−dim)-th root of the
        // group count, rounded up.
        let k = (D - dim) as f64;
        let slabs = (total_groups as f64).powf(1.0 / k).ceil() as usize;
        let slabs = slabs.clamp(1, total_groups);
        let mut slab_vec = Vec::new();
        even_chunks(entries, slabs, &mut slab_vec);
        for slab in slab_vec {
            tile(slab, dim + 1, cap, center, out);
        }
    }
}

/// Splits `entries` into `g` contiguous chunks whose sizes differ by at
/// most one.
fn even_chunks<E>(entries: Vec<E>, g: usize, out: &mut Vec<Vec<E>>) {
    let n = entries.len();
    debug_assert!(g >= 1 && g <= n);
    let base = n / g;
    let extra = n % g;
    let mut iter = entries.into_iter();
    for i in 0..g {
        let size = base + usize::from(i < extra);
        out.push(iter.by_ref().take(size).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitStrategy;

    fn points(n: u32) -> Vec<(Aabb<2>, u32)> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 100);
                let y = f64::from(i / 100);
                (Aabb::from_point([x, y]), i)
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let t: RTree<u32, 2> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn small_bulk_load_is_single_leaf() {
        let t = RTree::bulk_load(points(10));
        assert_eq!(t.len(), 10);
        assert_eq!(t.stats().height, 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_load_invariants_hold_across_sizes() {
        for n in [1u32, 15, 16, 17, 100, 1000, 4097] {
            let t = RTree::bulk_load(points(n));
            assert_eq!(t.len(), n as usize, "n = {n}");
            t.check_invariants();
        }
    }

    #[test]
    fn bulk_load_equals_incremental_results() {
        let data = points(2000);
        let bulk = RTree::bulk_load(data.clone());
        let mut incr: RTree<u32, 2> = RTree::new();
        for (mbr, v) in data {
            incr.insert(mbr, v);
        }
        for query in [
            Aabb::new([0.0, 0.0], [10.0, 10.0]),
            Aabb::new([50.0, 5.0], [70.0, 15.0]),
            Aabb::new([-5.0, -5.0], [-1.0, -1.0]),
            Aabb::new([0.0, 0.0], [100.0, 100.0]),
        ] {
            let mut a: Vec<u32> = bulk.search(&query).into_iter().copied().collect();
            let mut b: Vec<u32> = incr.search(&query).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_is_shallower_or_equal() {
        let data = points(5000);
        let bulk = RTree::bulk_load(data.clone());
        let mut incr: RTree<u32, 2> = RTree::new();
        for (mbr, v) in data {
            incr.insert(mbr, v);
        }
        assert!(bulk.stats().height <= incr.stats().height);
        // STR packs tighter: fewer nodes.
        assert!(bulk.stats().nodes <= incr.stats().nodes);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_removes() {
        let mut t = RTree::bulk_load(points(500));
        t.insert(Aabb::from_point([512.0, 512.0]), 9999);
        assert_eq!(t.len(), 501);
        t.check_invariants();
        assert_eq!(
            t.remove(&Aabb::from_point([512.0, 512.0]), |&v| v == 9999),
            Some(9999)
        );
        t.check_invariants();
    }

    #[test]
    fn bulk_extend_merges_old_and_new() {
        let data = points(300);
        let (old, new) = data.split_at(200);
        let base = RTree::bulk_load(old.to_vec());
        let merged = base.bulk_extend(new.to_vec());
        assert_eq!(merged.len(), 300);
        merged.check_invariants();
        // Base is untouched (snapshot semantics).
        assert_eq!(base.len(), 200);
        let full = RTree::bulk_load(data.clone());
        let query = Aabb::new([0.0, 0.0], [100.0, 100.0]);
        let mut a: Vec<u32> = merged.search(&query).into_iter().copied().collect();
        let mut b: Vec<u32> = full.search(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_extend_from_empty() {
        let empty: RTree<u32, 2> = RTree::new();
        let t = empty.bulk_extend(points(50));
        assert_eq!(t.len(), 50);
        t.check_invariants();
    }

    #[test]
    fn bulk_load_with_linear_config() {
        let t = RTree::bulk_load_with_config(
            RTreeConfig {
                max_entries: 8,
                min_entries: 3,
                split: SplitStrategy::Linear,
                reinsert_fraction: 0.0,
            },
            points(777),
        );
        assert_eq!(t.len(), 777);
        t.check_invariants();
    }
}
