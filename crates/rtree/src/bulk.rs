//! Sort-Tile-Recursive (STR) bulk loading.
//!
//! Building a tree from a known data set is much faster than repeated
//! insertion and produces better-packed nodes: items are sorted by the
//! centre of their box along the first dimension, tiled into slabs, and the
//! procedure recurses over the remaining dimensions. The same tiling then
//! builds each upper level from the level below.
//!
//! Group sizes are distributed evenly, which guarantees every non-root node
//! holds at least `⌈M/2⌉ ≥ m` entries, so the bulk-loaded tree satisfies the
//! same invariants as an incrementally built one
//! ([`RTree::check_invariants`]).

use swag_exec::Executor;

use crate::mbr::Aabb;
use crate::node::{fold_mbr, Child, Item, Node};
use crate::tree::{RTree, RTreeConfig};

/// Below this many entries a parallel leaf tiling is pure overhead.
const PAR_TILE_MIN: usize = 2048;

impl<T, const D: usize> RTree<T, D> {
    /// Builds a tree from `items` using STR packing and the default
    /// configuration.
    pub fn bulk_load(items: Vec<(Aabb<D>, T)>) -> Self {
        Self::bulk_load_with_config(RTreeConfig::default(), items)
    }

    /// Builds a tree from `items` using STR packing.
    pub fn bulk_load_with_config(config: RTreeConfig, items: Vec<(Aabb<D>, T)>) -> Self {
        let mut tree = RTree::with_config(config);
        let Some(entries) = leaf_items(&mut tree, items) else {
            return tree;
        };
        let n = entries.len();
        let mut groups = Vec::new();
        tile(
            entries,
            0,
            config.max_entries,
            &|i: &Item<T, D>| i.mbr.center(),
            &mut groups,
        );
        pack_levels(&mut tree, n, groups);
        tree
    }
}

impl<T: Send, const D: usize> RTree<T, D> {
    /// [`RTree::bulk_load`] with the leaf tiling fanned out on `exec`.
    ///
    /// Produces a tree *identical* to the serial build: the top-level
    /// sort runs on the caller, and each slab is then tiled
    /// independently — the same work the serial recursion does, merely
    /// claimed by different workers — so group boundaries, node layout,
    /// and traversal order match exactly.
    pub fn bulk_load_par(exec: &Executor, items: Vec<(Aabb<D>, T)>) -> Self {
        Self::bulk_load_with_config_par(exec, RTreeConfig::default(), items)
    }

    /// [`RTree::bulk_load_with_config`] with the leaf tiling on `exec`.
    pub fn bulk_load_with_config_par(
        exec: &Executor,
        config: RTreeConfig,
        items: Vec<(Aabb<D>, T)>,
    ) -> Self {
        let mut tree = RTree::with_config(config);
        let Some(entries) = leaf_items(&mut tree, items) else {
            return tree;
        };
        let n = entries.len();
        let cap = config.max_entries;
        let mut groups = Vec::new();
        let center = |i: &Item<T, D>| i.mbr.center();
        if exec.is_serial() || n < PAR_TILE_MIN {
            tile(entries, 0, cap, &center, &mut groups);
        } else {
            tile_par(exec, entries, cap, &center, &mut groups);
        }
        pack_levels(&mut tree, n, groups);
        tree
    }
}

/// Converts `items` to leaf items ready for tiling, clearing any nodes
/// `tree` may hold. Returns `None` when there is nothing to load.
fn leaf_items<T, const D: usize>(
    tree: &mut RTree<T, D>,
    items: Vec<(Aabb<D>, T)>,
) -> Option<Vec<Item<T, D>>> {
    if items.is_empty() {
        return None;
    }
    tree.nodes.clear();
    Some(
        items
            .into_iter()
            .map(|(mbr, value)| Item { mbr, value })
            .collect(),
    )
}

/// Builds leaf nodes from `groups` and packs the upper levels serially
/// (they are a `max_entries`-th the size of the level below, so the
/// leaf tiling dominates the build).
fn pack_levels<T, const D: usize>(tree: &mut RTree<T, D>, n: usize, groups: Vec<Vec<Item<T, D>>>) {
    let cap = tree.config.max_entries;
    let mut level: Vec<Child<D>> = groups
        .into_iter()
        .map(|g| {
            let mbr = fold_mbr(g.iter().map(|i| i.mbr)).expect("non-empty group");
            let node = tree.alloc(Node::leaf_from(g));
            Child { mbr, node }
        })
        .collect();

    let mut height = 0;
    while level.len() > 1 {
        let mut groups = Vec::new();
        tile(level, 0, cap, &|c: &Child<D>| c.mbr.center(), &mut groups);
        level = groups
            .into_iter()
            .map(|g| {
                let mbr = fold_mbr(g.iter().map(|c| c.mbr)).expect("non-empty group");
                let node = tree.alloc(Node::internal_from(g));
                Child { mbr, node }
            })
            .collect();
        height += 1;
    }

    tree.root = level[0].node;
    tree.height = height;
    tree.len = n;
}

impl<T: Clone, const D: usize> RTree<T, D> {
    /// Builds a new tree containing this tree's items plus `more`,
    /// re-packed with STR under the same configuration.
    ///
    /// This is the batch counterpart of repeated [`RTree::insert`]: when a
    /// shard accumulates a publish-interval's worth of new items, one STR
    /// re-pack of old + new is cheaper and better-packed than inserting
    /// them one by one, and it leaves `self` untouched (snapshot-friendly).
    pub fn bulk_extend(&self, more: Vec<(Aabb<D>, T)>) -> Self {
        let mut items: Vec<(Aabb<D>, T)> = Vec::with_capacity(self.len() + more.len());
        items.extend(self.iter().map(|(mbr, value)| (*mbr, value.clone())));
        items.extend(more);
        Self::bulk_load_with_config(self.config, items)
    }
}

impl<T: Clone + Send, const D: usize> RTree<T, D> {
    /// [`RTree::bulk_extend`] with the re-pack's leaf tiling on `exec`.
    /// Produces a tree identical to the serial re-pack.
    pub fn bulk_extend_par(&self, exec: &Executor, more: Vec<(Aabb<D>, T)>) -> Self {
        let mut items: Vec<(Aabb<D>, T)> = Vec::with_capacity(self.len() + more.len());
        items.extend(self.iter().map(|(mbr, value)| (*mbr, value.clone())));
        items.extend(more);
        Self::bulk_load_with_config_par(exec, self.config, items)
    }
}

/// Recursively tiles `entries` into groups of at most `cap`, each group
/// holding at least `⌈cap/2⌉` entries whenever more than one group is
/// produced.
fn tile<E, const D: usize>(
    mut entries: Vec<E>,
    dim: usize,
    cap: usize,
    center: &impl Fn(&E) -> [f64; D],
    out: &mut Vec<Vec<E>>,
) {
    let n = entries.len();
    if n <= cap {
        out.push(entries);
        return;
    }
    let total_groups = n.div_ceil(cap);
    entries.sort_unstable_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));

    if dim + 1 == D {
        even_chunks(entries, total_groups, out);
    } else {
        // Number of slabs along this dimension: the (D−dim)-th root of the
        // group count, rounded up.
        let k = (D - dim) as f64;
        let slabs = (total_groups as f64).powf(1.0 / k).ceil() as usize;
        let slabs = slabs.clamp(1, total_groups);
        let mut slab_vec = Vec::new();
        even_chunks(entries, slabs, &mut slab_vec);
        for slab in slab_vec {
            tile(slab, dim + 1, cap, center, out);
        }
    }
}

/// Top-level tiling with the slab recursion fanned out on `exec`.
///
/// Deterministically identical to [`tile`] at `dim = 0`: the full sort
/// happens here on one thread, slab boundaries come from the same
/// [`even_chunks`] arithmetic, and each slab is tiled by the ordinary
/// serial recursion — workers merely claim different slabs, and the
/// output concatenates slab results in slab order.
fn tile_par<E: Send, const D: usize>(
    exec: &Executor,
    mut entries: Vec<E>,
    cap: usize,
    center: &(impl Fn(&E) -> [f64; D] + Sync),
    out: &mut Vec<Vec<E>>,
) {
    let n = entries.len();
    if n <= cap || D < 2 {
        return tile(entries, 0, cap, center, out);
    }
    let total_groups = n.div_ceil(cap);
    entries.sort_unstable_by(|a, b| center(a)[0].total_cmp(&center(b)[0]));

    let k = D as f64;
    let slabs = (total_groups as f64).powf(1.0 / k).ceil() as usize;
    let slabs = slabs.clamp(1, total_groups);
    let mut slab_vec = Vec::new();
    even_chunks(entries, slabs, &mut slab_vec);
    let tiled = exec.par_map_owned(slab_vec, |slab| {
        let mut local = Vec::new();
        tile(slab, 1, cap, center, &mut local);
        local
    });
    for mut local in tiled {
        out.append(&mut local);
    }
}

/// Splits `entries` into `g` contiguous chunks whose sizes differ by at
/// most one.
fn even_chunks<E>(entries: Vec<E>, g: usize, out: &mut Vec<Vec<E>>) {
    let n = entries.len();
    debug_assert!(g >= 1 && g <= n);
    let base = n / g;
    let extra = n % g;
    let mut iter = entries.into_iter();
    for i in 0..g {
        let size = base + usize::from(i < extra);
        out.push(iter.by_ref().take(size).collect());
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::split::SplitStrategy;

    fn points(n: u32) -> Vec<(Aabb<2>, u32)> {
        (0..n)
            .map(|i| {
                let x = f64::from(i % 100);
                let y = f64::from(i / 100);
                (Aabb::from_point([x, y]), i)
            })
            .collect()
    }

    #[test]
    fn empty_bulk_load() {
        let t: RTree<u32, 2> = RTree::bulk_load(vec![]);
        assert!(t.is_empty());
        t.check_invariants();
    }

    #[test]
    fn small_bulk_load_is_single_leaf() {
        let t = RTree::bulk_load(points(10));
        assert_eq!(t.len(), 10);
        assert_eq!(t.stats().height, 1);
        t.check_invariants();
    }

    #[test]
    fn bulk_load_invariants_hold_across_sizes() {
        for n in [1u32, 15, 16, 17, 100, 1000, 4097] {
            let t = RTree::bulk_load(points(n));
            assert_eq!(t.len(), n as usize, "n = {n}");
            t.check_invariants();
        }
    }

    #[test]
    fn bulk_load_equals_incremental_results() {
        let data = points(2000);
        let bulk = RTree::bulk_load(data.clone());
        let mut incr: RTree<u32, 2> = RTree::new();
        for (mbr, v) in data {
            incr.insert(mbr, v);
        }
        for query in [
            Aabb::new([0.0, 0.0], [10.0, 10.0]),
            Aabb::new([50.0, 5.0], [70.0, 15.0]),
            Aabb::new([-5.0, -5.0], [-1.0, -1.0]),
            Aabb::new([0.0, 0.0], [100.0, 100.0]),
        ] {
            let mut a: Vec<u32> = bulk.search(&query).into_iter().copied().collect();
            let mut b: Vec<u32> = incr.search(&query).into_iter().copied().collect();
            a.sort_unstable();
            b.sort_unstable();
            assert_eq!(a, b);
        }
    }

    #[test]
    fn bulk_load_is_shallower_or_equal() {
        let data = points(5000);
        let bulk = RTree::bulk_load(data.clone());
        let mut incr: RTree<u32, 2> = RTree::new();
        for (mbr, v) in data {
            incr.insert(mbr, v);
        }
        assert!(bulk.stats().height <= incr.stats().height);
        // STR packs tighter: fewer nodes.
        assert!(bulk.stats().nodes <= incr.stats().nodes);
    }

    #[test]
    fn bulk_loaded_tree_accepts_inserts_and_removes() {
        let mut t = RTree::bulk_load(points(500));
        t.insert(Aabb::from_point([512.0, 512.0]), 9999);
        assert_eq!(t.len(), 501);
        t.check_invariants();
        assert_eq!(
            t.remove(&Aabb::from_point([512.0, 512.0]), |&v| v == 9999),
            Some(9999)
        );
        t.check_invariants();
    }

    #[test]
    fn bulk_extend_merges_old_and_new() {
        let data = points(300);
        let (old, new) = data.split_at(200);
        let base = RTree::bulk_load(old.to_vec());
        let merged = base.bulk_extend(new.to_vec());
        assert_eq!(merged.len(), 300);
        merged.check_invariants();
        // Base is untouched (snapshot semantics).
        assert_eq!(base.len(), 200);
        let full = RTree::bulk_load(data.clone());
        let query = Aabb::new([0.0, 0.0], [100.0, 100.0]);
        let mut a: Vec<u32> = merged.search(&query).into_iter().copied().collect();
        let mut b: Vec<u32> = full.search(&query).into_iter().copied().collect();
        a.sort_unstable();
        b.sort_unstable();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_extend_from_empty() {
        let empty: RTree<u32, 2> = RTree::new();
        let t = empty.bulk_extend(points(50));
        assert_eq!(t.len(), 50);
        t.check_invariants();
    }

    #[test]
    fn parallel_bulk_load_builds_identical_tree() {
        use swag_exec::{ExecConfig, Executor};
        let exec = Executor::new(ExecConfig::with_threads(4));
        // Both above and below the PAR_TILE_MIN cutoff.
        for n in [100u32, 5000] {
            let data = points(n);
            let serial = RTree::bulk_load(data.clone());
            let parallel = RTree::bulk_load_par(&exec, data);
            parallel.check_invariants();
            assert_eq!(serial.len(), parallel.len());
            assert_eq!(serial.stats().height, parallel.stats().height);
            assert_eq!(serial.stats().nodes, parallel.stats().nodes);
            // Identical structure ⇒ identical traversal order.
            let a: Vec<(Aabb<2>, u32)> = serial.iter().map(|(m, v)| (*m, *v)).collect();
            let b: Vec<(Aabb<2>, u32)> = parallel.iter().map(|(m, v)| (*m, *v)).collect();
            assert_eq!(a, b, "n = {n}");
        }
    }

    #[test]
    fn parallel_bulk_extend_matches_serial() {
        use swag_exec::{ExecConfig, Executor};
        let exec = Executor::new(ExecConfig::with_threads(3));
        let data = points(4000);
        let (old, new) = data.split_at(1000);
        let base = RTree::bulk_load(old.to_vec());
        let serial = base.bulk_extend(new.to_vec());
        let parallel = base.bulk_extend_par(&exec, new.to_vec());
        parallel.check_invariants();
        let a: Vec<(Aabb<2>, u32)> = serial.iter().map(|(m, v)| (*m, *v)).collect();
        let b: Vec<(Aabb<2>, u32)> = parallel.iter().map(|(m, v)| (*m, *v)).collect();
        assert_eq!(a, b);
    }

    #[test]
    fn bulk_load_with_linear_config() {
        let t = RTree::bulk_load_with_config(
            RTreeConfig {
                max_entries: 8,
                min_entries: 3,
                split: SplitStrategy::Linear,
                reinsert_fraction: 0.0,
            },
            points(777),
        );
        assert_eq!(t.len(), 777);
        t.check_invariants();
    }
}
