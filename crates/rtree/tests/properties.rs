//! Property-based tests: the R-tree must agree with a naive linear scan on
//! every query, under arbitrary interleavings of inserts and removes, and
//! regardless of build method (incremental vs. STR bulk load).

use proptest::prelude::*;
use swag_rtree::{Aabb, RTree, RTreeConfig, SplitStrategy};

fn arb_box3() -> impl Strategy<Value = Aabb<3>> {
    (
        [-100.0f64..100.0, -100.0f64..100.0, 0.0f64..1000.0],
        [0.0f64..20.0, 0.0f64..20.0, 0.0f64..50.0],
    )
        .prop_map(|(min, ext)| Aabb::new(min, [min[0] + ext[0], min[1] + ext[1], min[2] + ext[2]]))
}

fn arb_config() -> impl Strategy<Value = RTreeConfig> {
    (4usize..32, 0u8..3, prop::bool::ANY).prop_map(|(max, strat, reinsert)| RTreeConfig {
        max_entries: max,
        min_entries: (max / 2).max(2),
        split: match strat {
            0 => SplitStrategy::Quadratic,
            1 => SplitStrategy::Linear,
            _ => SplitStrategy::RStar,
        },
        reinsert_fraction: if reinsert { 0.3 } else { 0.0 },
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn range_query_matches_naive(
        config in arb_config(),
        boxes in prop::collection::vec(arb_box3(), 0..300),
        query in arb_box3(),
    ) {
        let mut tree: RTree<usize, 3> = RTree::with_config(config);
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i);
        }
        tree.check_invariants();

        let mut got: Vec<usize> = tree.search(&query).into_iter().copied().collect();
        got.sort_unstable();
        let expected: Vec<usize> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn bulk_load_matches_naive(
        config in arb_config(),
        boxes in prop::collection::vec(arb_box3(), 0..300),
        query in arb_box3(),
    ) {
        let data: Vec<(Aabb<3>, usize)> =
            boxes.iter().enumerate().map(|(i, b)| (*b, i)).collect();
        let tree = RTree::bulk_load_with_config(config, data);
        tree.check_invariants();

        let mut got: Vec<usize> = tree.search(&query).into_iter().copied().collect();
        got.sort_unstable();
        let expected: Vec<usize> = boxes
            .iter()
            .enumerate()
            .filter(|(_, b)| b.intersects(&query))
            .map(|(i, _)| i)
            .collect();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn nearest_k_matches_naive(
        boxes in prop::collection::vec(arb_box3(), 1..200),
        point in [-120.0f64..120.0, -120.0f64..120.0, -10.0f64..1010.0],
        k in 1usize..20,
    ) {
        let mut tree: RTree<usize, 3> = RTree::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i);
        }
        let got = tree.nearest_k(point, k);

        let mut expected: Vec<(usize, f64)> = boxes
            .iter()
            .enumerate()
            .map(|(i, b)| (i, b.min_dist_sq(&point)))
            .collect();
        expected.sort_by(|a, b| a.1.total_cmp(&b.1));
        expected.truncate(k);

        prop_assert_eq!(got.len(), expected.len());
        // Distances must match exactly (ties may reorder ids).
        for (g, e) in got.iter().zip(&expected) {
            prop_assert!((g.1 - e.1).abs() < 1e-9, "{} vs {}", g.1, e.1);
        }
    }

    #[test]
    fn interleaved_insert_remove_consistent(
        ops in prop::collection::vec((arb_box3(), prop::bool::ANY), 1..300),
        query in arb_box3(),
    ) {
        // Model: a Vec of live (box, id); removals target a pseudo-random
        // live element.
        let mut tree: RTree<usize, 3> = RTree::new();
        let mut live: Vec<(Aabb<3>, usize)> = Vec::new();
        let mut next_id = 0usize;
        for (b, is_insert) in ops {
            if is_insert || live.is_empty() {
                tree.insert(b, next_id);
                live.push((b, next_id));
                next_id += 1;
            } else {
                let idx = next_id % live.len();
                let (mbr, id) = live.swap_remove(idx);
                let removed = tree.remove(&mbr, |&v| v == id);
                prop_assert_eq!(removed, Some(id));
            }
        }
        tree.check_invariants();
        prop_assert_eq!(tree.len(), live.len());

        let mut got: Vec<usize> = tree.search(&query).into_iter().copied().collect();
        got.sort_unstable();
        let mut expected: Vec<usize> = live
            .iter()
            .filter(|(b, _)| b.intersects(&query))
            .map(|(_, i)| *i)
            .collect();
        expected.sort_unstable();
        prop_assert_eq!(got, expected);
    }

    #[test]
    fn iter_yields_every_item(boxes in prop::collection::vec(arb_box3(), 0..200)) {
        let mut tree: RTree<usize, 3> = RTree::new();
        for (i, b) in boxes.iter().enumerate() {
            tree.insert(*b, i);
        }
        let mut seen: Vec<usize> = tree.iter().map(|(_, &v)| v).collect();
        seen.sort_unstable();
        prop_assert_eq!(seen, (0..boxes.len()).collect::<Vec<_>>());
    }
}
