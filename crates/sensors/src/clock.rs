//! Per-device clock models.
//!
//! The paper (§VI-A) argues that explicit client/server clock
//! synchronisation is unnecessary: COTS devices reach sub-second agreement
//! with NTP/SNTP, and retrieval is insensitive to millisecond-level skew.
//! This model lets experiments *quantify* that claim: each device stamps
//! frames with `device_time = true_time + offset + drift`.

/// An affine clock model: constant offset plus linear drift.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DeviceClock {
    /// Fixed offset from global time, seconds (the NTP residual).
    pub offset_s: f64,
    /// Frequency error in parts per million (1 ppm ≈ 86 ms/day).
    pub drift_ppm: f64,
}

impl DeviceClock {
    /// A perfectly synchronised clock.
    pub const PERFECT: DeviceClock = DeviceClock {
        offset_s: 0.0,
        drift_ppm: 0.0,
    };

    /// A typical NTP-synchronised phone: tens of milliseconds of offset,
    /// a few ppm of drift.
    pub fn ntp_synced(offset_ms: f64) -> Self {
        DeviceClock {
            offset_s: offset_ms / 1000.0,
            drift_ppm: 2.0,
        }
    }

    /// Converts a global timestamp to this device's local timestamp.
    #[inline]
    pub fn device_time(&self, true_time_s: f64) -> f64 {
        true_time_s + self.offset_s + true_time_s * self.drift_ppm * 1e-6
    }

    /// Converts a device timestamp back to (approximate) global time.
    #[inline]
    pub fn true_time(&self, device_time_s: f64) -> f64 {
        (device_time_s - self.offset_s) / (1.0 + self.drift_ppm * 1e-6)
    }
}

impl Default for DeviceClock {
    fn default() -> Self {
        DeviceClock::PERFECT
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_clock_is_identity() {
        assert_eq!(DeviceClock::PERFECT.device_time(123.456), 123.456);
        assert_eq!(DeviceClock::PERFECT.true_time(123.456), 123.456);
    }

    #[test]
    fn offset_shifts_timestamps() {
        let c = DeviceClock {
            offset_s: 0.2,
            drift_ppm: 0.0,
        };
        assert!((c.device_time(100.0) - 100.2).abs() < 1e-12);
    }

    #[test]
    fn drift_accumulates() {
        let c = DeviceClock {
            offset_s: 0.0,
            drift_ppm: 10.0,
        };
        // 10 ppm over a day ≈ 0.864 s.
        let day = 86_400.0;
        assert!((c.device_time(day) - day - 0.864).abs() < 1e-9);
    }

    #[test]
    fn round_trip_inverts() {
        let c = DeviceClock::ntp_synced(35.0);
        for t in [0.0, 1.0, 1e6, 3.7e7] {
            assert!((c.true_time(c.device_time(t)) - t).abs() < 1e-6);
        }
    }

    #[test]
    fn ntp_skew_is_subsecond() {
        let c = DeviceClock::ntp_synced(80.0);
        // Over an hour, total error stays well below a second — the
        // paper's justification for skipping explicit synchronisation.
        let err = (c.device_time(3600.0) - 3600.0).abs();
        assert!(err < 0.1, "error {err}");
    }
}
