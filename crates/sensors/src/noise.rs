//! Sensor noise models.
//!
//! Consumer GPS fixes wander by metres and phone compasses by several
//! degrees; the gap between the theoretical and the measured similarity
//! curves in the paper's Fig. 4 comes from exactly this noise. The model
//! here is zero-mean Gaussian jitter on position (isotropic, metres) and
//! azimuth (degrees), plus an optional per-sample dropout probability
//! (missed GPS fixes).

use rand::Rng;

/// Gaussian sensor noise parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SensorNoise {
    /// GPS position standard deviation per axis, metres.
    pub gps_sigma_m: f64,
    /// Compass standard deviation, degrees.
    pub compass_sigma_deg: f64,
    /// Probability that a sample is dropped entirely (missed fix), `[0, 1)`.
    pub dropout_prob: f64,
}

impl SensorNoise {
    /// Noise-free sensors (for theory curves).
    pub const NONE: SensorNoise = SensorNoise {
        gps_sigma_m: 0.0,
        compass_sigma_deg: 0.0,
        dropout_prob: 0.0,
    };

    /// Typical smartphone sensors: ~3 m GPS, ~5° compass, 1 % dropout.
    pub fn smartphone() -> Self {
        SensorNoise {
            gps_sigma_m: 3.0,
            compass_sigma_deg: 5.0,
            dropout_prob: 0.01,
        }
    }

    /// Whether this sample should be dropped.
    pub fn drops(&self, rng: &mut impl Rng) -> bool {
        self.dropout_prob > 0.0 && rng.random::<f64>() < self.dropout_prob
    }

    /// A Gaussian position perturbation `(dx, dy)` in metres.
    pub fn position_jitter(&self, rng: &mut impl Rng) -> (f64, f64) {
        if self.gps_sigma_m == 0.0 {
            return (0.0, 0.0);
        }
        let (a, b) = gaussian_pair(rng);
        (a * self.gps_sigma_m, b * self.gps_sigma_m)
    }

    /// A Gaussian azimuth perturbation in degrees.
    pub fn azimuth_jitter(&self, rng: &mut impl Rng) -> f64 {
        if self.compass_sigma_deg == 0.0 {
            return 0.0;
        }
        gaussian_pair(rng).0 * self.compass_sigma_deg
    }
}

impl Default for SensorNoise {
    fn default() -> Self {
        SensorNoise::smartphone()
    }
}

/// Two independent standard-normal samples (Box–Muller transform; `rand`
/// ships no distributions and `rand_distr` is outside the sanctioned
/// dependency set).
fn gaussian_pair(rng: &mut impl Rng) -> (f64, f64) {
    // Avoid ln(0).
    let u1: f64 = rng.random::<f64>().max(f64::MIN_POSITIVE);
    let u2: f64 = rng.random::<f64>();
    let r = (-2.0 * u1.ln()).sqrt();
    let phi = 2.0 * std::f64::consts::PI * u2;
    (r * phi.cos(), r * phi.sin())
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn none_is_exactly_zero() {
        let mut rng = StdRng::seed_from_u64(1);
        let n = SensorNoise::NONE;
        assert_eq!(n.position_jitter(&mut rng), (0.0, 0.0));
        assert_eq!(n.azimuth_jitter(&mut rng), 0.0);
        assert!(!n.drops(&mut rng));
    }

    #[test]
    fn gaussian_moments_are_plausible() {
        let mut rng = StdRng::seed_from_u64(42);
        let n = 100_000;
        let (mut sum, mut sum_sq) = (0.0, 0.0);
        for _ in 0..n {
            let (a, _) = gaussian_pair(&mut rng);
            sum += a;
            sum_sq += a * a;
        }
        let mean = sum / n as f64;
        let var = sum_sq / n as f64 - mean * mean;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var - 1.0).abs() < 0.03, "variance {var}");
    }

    #[test]
    fn jitter_scales_with_sigma() {
        let mut rng = StdRng::seed_from_u64(7);
        let noise = SensorNoise {
            gps_sigma_m: 10.0,
            compass_sigma_deg: 2.0,
            dropout_prob: 0.0,
        };
        let n = 20_000;
        let mut sum_sq = 0.0;
        for _ in 0..n {
            let (dx, _) = noise.position_jitter(&mut rng);
            sum_sq += dx * dx;
        }
        let std = (sum_sq / n as f64).sqrt();
        assert!((std - 10.0).abs() < 0.3, "std {std}");
    }

    #[test]
    fn dropout_rate_matches_probability() {
        let mut rng = StdRng::seed_from_u64(5);
        let noise = SensorNoise {
            gps_sigma_m: 0.0,
            compass_sigma_deg: 0.0,
            dropout_prob: 0.25,
        };
        let n = 40_000;
        let drops = (0..n).filter(|_| noise.drops(&mut rng)).count();
        let rate = drops as f64 / n as f64;
        assert!((rate - 0.25).abs() < 0.01, "rate {rate}");
    }

    #[test]
    fn deterministic_under_seed() {
        let noise = SensorNoise::smartphone();
        let mut a = StdRng::seed_from_u64(99);
        let mut b = StdRng::seed_from_u64(99);
        for _ in 0..100 {
            assert_eq!(noise.position_jitter(&mut a), noise.position_jitter(&mut b));
        }
    }
}
