//! Parametric mobility models: camera pose as a function of time.
//!
//! Poses are expressed in a local east-north metre frame (see
//! [`swag_geo::LocalFrame`]); the trace generator lifts them to geographic
//! coordinates. Models are pure functions of time, so traces are exactly
//! reproducible and independent of the sampling rate.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag_geo::{normalize_deg, Vec2};

/// A camera pose: position in local metres and compass azimuth in degrees.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Pose {
    /// Position in the local east-north frame, metres.
    pub position: Vec2,
    /// Camera azimuth, degrees clockwise from north.
    pub azimuth_deg: f64,
}

/// Where the camera looks while the device moves.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Look {
    /// Along the direction of travel (dash-cam style).
    Heading,
    /// At a fixed offset from the direction of travel; `90` films out of
    /// the right-side window.
    HeadingOffset(f64),
    /// A fixed compass azimuth regardless of motion.
    Fixed(f64),
}

impl Look {
    fn azimuth(&self, heading_deg: f64) -> f64 {
        match *self {
            Look::Heading => normalize_deg(heading_deg),
            Look::HeadingOffset(off) => normalize_deg(heading_deg + off),
            Look::Fixed(az) => normalize_deg(az),
        }
    }
}

/// A mobility model. All variants are deterministic; the randomised
/// constructors ([`Mobility::manhattan`], [`Mobility::random_waypoint`])
/// pre-generate their paths from a seed.
#[derive(Debug, Clone, PartialEq)]
pub enum Mobility {
    /// Standing still while rotating at a constant rate (paper Fig. 5(a)).
    StationaryRotate {
        /// Fixed position.
        position: Vec2,
        /// Azimuth at `t = 0`, degrees.
        start_azimuth_deg: f64,
        /// Rotation rate, degrees per second (negative = counter-clockwise).
        rate_deg_per_s: f64,
    },
    /// Constant-velocity straight-line motion (paper Fig. 4, Fig. 5(b)).
    StraightLine {
        /// Position at `t = 0`.
        start: Vec2,
        /// Direction of travel, degrees.
        heading_deg: f64,
        /// Speed, metres per second.
        speed_mps: f64,
        /// Camera direction policy.
        look: Look,
    },
    /// Constant-speed travel along a polyline.
    Waypoints {
        /// The polyline vertices (≥ 1). The camera stops at the last one.
        path: Vec<Vec2>,
        /// Speed, metres per second.
        speed_mps: f64,
        /// Camera direction policy.
        look: Look,
    },
    /// Standing still with a fixed pose for some duration — the building
    /// block of stop-and-go traces.
    Pause {
        /// Held position.
        position: Vec2,
        /// Held azimuth, degrees.
        azimuth_deg: f64,
    },
    /// A sequence of phases, each running for a fixed duration before the
    /// next takes over (a walk, then a pause, then a pan, ...).
    Phased(Vec<Phase>),
    /// Constant-speed travel along a circular arc.
    Arc {
        /// Arc centre.
        center: Vec2,
        /// Arc radius, metres.
        radius_m: f64,
        /// Position angle (compass bearing from centre) at `t = 0`.
        start_angle_deg: f64,
        /// Angular rate, degrees per second (positive = clockwise).
        rate_deg_per_s: f64,
        /// Camera direction policy (heading = tangent).
        look: Look,
    },
}

/// One phase of a [`Mobility::Phased`] model.
#[derive(Debug, Clone, PartialEq)]
pub struct Phase {
    /// The model driving this phase (evaluated with phase-local time).
    pub model: Mobility,
    /// How long the phase lasts, seconds.
    pub duration_s: f64,
}

impl Mobility {
    /// The pose at time `t ≥ 0` seconds.
    pub fn pose(&self, t: f64) -> Pose {
        match self {
            Mobility::Pause {
                position,
                azimuth_deg,
            } => Pose {
                position: *position,
                azimuth_deg: normalize_deg(*azimuth_deg),
            },
            Mobility::Phased(phases) => {
                assert!(!phases.is_empty(), "phased mobility needs phases");
                let mut remaining = t;
                for phase in phases {
                    if remaining < phase.duration_s {
                        return phase.model.pose(remaining);
                    }
                    remaining -= phase.duration_s;
                }
                // Past the end: hold the final phase's last pose.
                let last = phases.last().expect("non-empty");
                last.model.pose(last.duration_s)
            }
            Mobility::StationaryRotate {
                position,
                start_azimuth_deg,
                rate_deg_per_s,
            } => Pose {
                position: *position,
                azimuth_deg: normalize_deg(start_azimuth_deg + rate_deg_per_s * t),
            },
            Mobility::StraightLine {
                start,
                heading_deg,
                speed_mps,
                look,
            } => Pose {
                position: *start + Vec2::from_azimuth_deg(*heading_deg) * (speed_mps * t),
                azimuth_deg: look.azimuth(*heading_deg),
            },
            Mobility::Waypoints {
                path,
                speed_mps,
                look,
            } => polyline_pose(path, speed_mps * t, look),
            Mobility::Arc {
                center,
                radius_m,
                start_angle_deg,
                rate_deg_per_s,
                look,
            } => {
                let angle = start_angle_deg + rate_deg_per_s * t;
                let position = *center + Vec2::from_azimuth_deg(angle) * *radius_m;
                // Tangent heading: +90° for clockwise travel, −90° otherwise.
                let heading = if *rate_deg_per_s >= 0.0 {
                    angle + 90.0
                } else {
                    angle - 90.0
                };
                Pose {
                    position,
                    azimuth_deg: look.azimuth(heading),
                }
            }
        }
    }

    /// An L-shaped ride: travel `leg_m` metres along `heading_deg`, turn by
    /// `turn_deg` (positive = right), travel `leg_m` more — the paper's
    /// "riding a bike in a residential area and turning right" scenario
    /// (Fig. 5(c)).
    pub fn bike_turn(
        start: Vec2,
        heading_deg: f64,
        leg_m: f64,
        turn_deg: f64,
        speed_mps: f64,
    ) -> Self {
        let corner = start + Vec2::from_azimuth_deg(heading_deg) * leg_m;
        let end = corner + Vec2::from_azimuth_deg(heading_deg + turn_deg) * leg_m;
        Mobility::Waypoints {
            path: vec![start, corner, end],
            speed_mps,
            look: Look::Heading,
        }
    }

    /// A random walk on a Manhattan street grid: `legs` moves of
    /// `block_len_m` metres, each continuing straight or turning ±90° with
    /// equal probability. Deterministic for a given seed.
    pub fn manhattan(
        seed: u64,
        start: Vec2,
        block_len_m: f64,
        legs: usize,
        speed_mps: f64,
    ) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut heading: i32 = rng.random_range(0..4) * 90;
        let mut path = vec![start];
        let mut pos = start;
        for _ in 0..legs {
            match rng.random_range(0..3) {
                0 => heading += 90,
                1 => heading -= 90,
                _ => {}
            }
            pos += Vec2::from_azimuth_deg(f64::from(heading)) * block_len_m;
            path.push(pos);
        }
        Mobility::Waypoints {
            path,
            speed_mps,
            look: Look::Heading,
        }
    }

    /// Random-waypoint motion inside the square `[-extent_m, extent_m]²`:
    /// `legs` uniformly random destinations visited at constant speed.
    /// Deterministic for a given seed.
    pub fn random_waypoint(seed: u64, extent_m: f64, legs: usize, speed_mps: f64) -> Self {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut path = Vec::with_capacity(legs + 1);
        for _ in 0..=legs {
            path.push(Vec2::new(
                rng.random_range(-extent_m..=extent_m),
                rng.random_range(-extent_m..=extent_m),
            ));
        }
        Mobility::Waypoints {
            path,
            speed_mps,
            look: Look::Heading,
        }
    }

    /// Time to traverse the whole path, where meaningful. `None` for
    /// unbounded models (rotation, straight line, arc, pause).
    pub fn natural_duration_s(&self) -> Option<f64> {
        match self {
            Mobility::Waypoints {
                path, speed_mps, ..
            } => {
                let len: f64 = path.windows(2).map(|w| w[0].distance(w[1])).sum();
                Some(len / speed_mps)
            }
            Mobility::Phased(phases) => Some(phases.iter().map(|p| p.duration_s).sum()),
            _ => None,
        }
    }

    /// A stop-and-go walk: walk `walk_s` seconds at `speed_mps` along
    /// `heading_deg`, pause `pause_s` seconds, repeated `cycles` times —
    /// the footage pattern of someone filming points of interest.
    pub fn stop_and_go(
        start: Vec2,
        heading_deg: f64,
        speed_mps: f64,
        walk_s: f64,
        pause_s: f64,
        cycles: usize,
    ) -> Self {
        let mut phases = Vec::with_capacity(cycles * 2);
        let mut pos = start;
        for _ in 0..cycles {
            phases.push(Phase {
                model: Mobility::StraightLine {
                    start: pos,
                    heading_deg,
                    speed_mps,
                    look: Look::Heading,
                },
                duration_s: walk_s,
            });
            pos += Vec2::from_azimuth_deg(heading_deg) * (speed_mps * walk_s);
            phases.push(Phase {
                model: Mobility::Pause {
                    position: pos,
                    azimuth_deg: heading_deg,
                },
                duration_s: pause_s,
            });
        }
        Mobility::Phased(phases)
    }
}

/// Position and heading after travelling `dist` metres along a polyline.
fn polyline_pose(path: &[Vec2], dist: f64, look: &Look) -> Pose {
    assert!(!path.is_empty(), "waypoint path must not be empty");
    if path.len() == 1 {
        return Pose {
            position: path[0],
            azimuth_deg: look.azimuth(0.0),
        };
    }
    let mut remaining = dist.max(0.0);
    let mut heading = (path[1] - path[0]).azimuth_deg();
    for w in path.windows(2) {
        let seg = w[1] - w[0];
        let len = seg.norm();
        if len < 1e-12 {
            continue;
        }
        heading = seg.azimuth_deg();
        if remaining <= len {
            return Pose {
                position: w[0] + seg * (remaining / len),
                azimuth_deg: look.azimuth(heading),
            };
        }
        remaining -= len;
    }
    // Past the end: park at the final vertex keeping the last heading.
    Pose {
        position: *path.last().expect("non-empty path"),
        azimuth_deg: look.azimuth(heading),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn close(a: f64, b: f64) -> bool {
        (a - b).abs() < 1e-9
    }

    #[test]
    fn rotation_advances_azimuth() {
        let m = Mobility::StationaryRotate {
            position: Vec2::new(1.0, 2.0),
            start_azimuth_deg: 350.0,
            rate_deg_per_s: 5.0,
        };
        let p = m.pose(4.0);
        assert_eq!(p.position, Vec2::new(1.0, 2.0));
        assert!(close(p.azimuth_deg, 10.0)); // wraps through 360
    }

    #[test]
    fn straight_line_with_side_look() {
        let m = Mobility::StraightLine {
            start: Vec2::ZERO,
            heading_deg: 0.0,
            speed_mps: 2.0,
            look: Look::HeadingOffset(90.0),
        };
        let p = m.pose(3.0);
        assert!(close(p.position.y, 6.0) && close(p.position.x, 0.0));
        assert!(close(p.azimuth_deg, 90.0));
    }

    #[test]
    fn waypoints_interpolate_and_park() {
        let m = Mobility::Waypoints {
            path: vec![Vec2::ZERO, Vec2::new(0.0, 10.0), Vec2::new(10.0, 10.0)],
            speed_mps: 1.0,
            look: Look::Heading,
        };
        assert_eq!(m.natural_duration_s(), Some(20.0));
        let mid = m.pose(5.0);
        assert!(close(mid.position.y, 5.0) && close(mid.azimuth_deg, 0.0));
        let after_turn = m.pose(15.0);
        assert!(close(after_turn.position.x, 5.0) && close(after_turn.position.y, 10.0));
        assert!(close(after_turn.azimuth_deg, 90.0));
        // Past the end.
        let parked = m.pose(100.0);
        assert_eq!(parked.position, Vec2::new(10.0, 10.0));
        assert!(close(parked.azimuth_deg, 90.0));
    }

    #[test]
    fn bike_turn_changes_heading_by_turn_angle() {
        let m = Mobility::bike_turn(Vec2::ZERO, 0.0, 50.0, 90.0, 5.0);
        let before = m.pose(4.0); // 20 m in
        let after = m.pose(16.0); // 80 m in, past the corner
        assert!(close(before.azimuth_deg, 0.0));
        assert!(close(after.azimuth_deg, 90.0));
    }

    #[test]
    fn arc_moves_on_circle_with_tangent_heading() {
        let m = Mobility::Arc {
            center: Vec2::ZERO,
            radius_m: 10.0,
            start_angle_deg: 0.0,
            rate_deg_per_s: 9.0,
            look: Look::Heading,
        };
        let p = m.pose(10.0); // 90° around: due east of the centre
        assert!(close(p.position.x, 10.0) && p.position.y.abs() < 1e-9);
        assert!(close(p.azimuth_deg, 180.0)); // tangent, clockwise
        assert!(close(m.pose(33.3).position.norm(), 10.0));
    }

    #[test]
    fn manhattan_headings_are_cardinal() {
        let m = Mobility::manhattan(7, Vec2::ZERO, 100.0, 12, 1.4);
        let Mobility::Waypoints { path, .. } = &m else {
            panic!("manhattan must build waypoints");
        };
        assert_eq!(path.len(), 13);
        for w in path.windows(2) {
            let az = (w[1] - w[0]).azimuth_deg();
            let snapped = (az / 90.0).round() * 90.0;
            assert!(close(az, snapped % 360.0), "non-cardinal heading {az}");
        }
    }

    #[test]
    fn pause_holds_still() {
        let m = Mobility::Pause {
            position: Vec2::new(3.0, 4.0),
            azimuth_deg: 370.0,
        };
        for t in [0.0, 1.0, 100.0] {
            let p = m.pose(t);
            assert_eq!(p.position, Vec2::new(3.0, 4.0));
            assert!(close(p.azimuth_deg, 10.0));
        }
        assert_eq!(m.natural_duration_s(), None);
    }

    #[test]
    fn phased_switches_at_boundaries_and_holds_after_end() {
        let m = Mobility::Phased(vec![
            Phase {
                model: Mobility::StraightLine {
                    start: Vec2::ZERO,
                    heading_deg: 0.0,
                    speed_mps: 2.0,
                    look: Look::Heading,
                },
                duration_s: 5.0,
            },
            Phase {
                model: Mobility::StationaryRotate {
                    position: Vec2::new(0.0, 10.0),
                    start_azimuth_deg: 0.0,
                    rate_deg_per_s: 10.0,
                },
                duration_s: 9.0,
            },
        ]);
        assert_eq!(m.natural_duration_s(), Some(14.0));
        // Mid phase 1: walked 6 m north.
        assert!(close(m.pose(3.0).position.y, 6.0));
        // Mid phase 2 (phase-local t = 4): rotated to 40°.
        let p = m.pose(9.0);
        assert_eq!(p.position, Vec2::new(0.0, 10.0));
        assert!(close(p.azimuth_deg, 40.0));
        // Past the end: holds the final pose (90°).
        assert!(close(m.pose(100.0).azimuth_deg, 90.0));
    }

    #[test]
    fn stop_and_go_pauses_where_it_stopped() {
        let m = Mobility::stop_and_go(Vec2::ZERO, 0.0, 2.0, 5.0, 3.0, 2);
        assert_eq!(m.natural_duration_s(), Some(16.0));
        // During the first pause (t = 5..8) the camera sits at 10 m north.
        for t in [5.5, 7.9] {
            assert!(close(m.pose(t).position.y, 10.0), "t = {t}");
        }
        // Second walk resumes from there.
        assert!(close(m.pose(10.0).position.y, 14.0));
        // Final position after both cycles: 20 m.
        assert!(close(m.pose(16.0).position.y, 20.0));
    }

    #[test]
    fn seeded_models_are_reproducible() {
        assert_eq!(
            Mobility::manhattan(42, Vec2::ZERO, 80.0, 20, 1.0),
            Mobility::manhattan(42, Vec2::ZERO, 80.0, 20, 1.0)
        );
        assert_eq!(
            Mobility::random_waypoint(9, 500.0, 5, 1.0),
            Mobility::random_waypoint(9, 500.0, 5, 1.0)
        );
        assert_ne!(
            Mobility::random_waypoint(9, 500.0, 5, 1.0),
            Mobility::random_waypoint(10, 500.0, 5, 1.0)
        );
    }

    #[test]
    fn random_waypoint_stays_in_bounds() {
        let m = Mobility::random_waypoint(3, 250.0, 30, 2.0);
        let dur = m.natural_duration_s().unwrap();
        for i in 0..100 {
            let p = m.pose(dur * i as f64 / 99.0);
            assert!(p.position.x.abs() <= 250.0 + 1e-9);
            assert!(p.position.y.abs() <= 250.0 + 1e-9);
        }
    }
}
