//! Sensor and trajectory simulation substrate.
//!
//! The paper evaluates its system with traces recorded on an HTC One
//! (GPS + compass while walking, driving and riding). This crate replaces
//! the phone: it synthesises `(t, p, θ)` frame records from parametric
//! **mobility models** ([`Mobility`]), perturbs them with configurable
//! **sensor noise** ([`SensorNoise`]), and stamps them with a per-device
//! **clock model** ([`DeviceClock`], matching the paper's NTP discussion in
//! §VI-A).
//!
//! The [`scenarios`] module provides the exact trace shapes used by the
//! paper's evaluation (walks with `θ_p = 0°`/`90°`, an in-place rotation, a
//! drive down a street, a bike ride with a turn, and citywide random
//! representative FoVs for the index benchmarks).
//!
//! Everything is deterministic given a seed.

pub mod clock;
pub mod mobility;
pub mod noise;
pub mod scenarios;
pub mod trace;

pub use clock::DeviceClock;
pub use mobility::{Look, Mobility, Phase, Pose};
pub use noise::SensorNoise;
pub use trace::{generate_trace, generate_trace_mixed_rate, TraceConfig};
