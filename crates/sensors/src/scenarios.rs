//! The exact trace shapes used by the paper's evaluation (§VI-B), plus the
//! citywide random workload used for the index/retrieval benchmarks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use swag_core::{Fov, RepFov, TimedFov};
use swag_geo::{LatLon, LocalFrame, Vec2};

use crate::clock::DeviceClock;
use crate::mobility::{Look, Mobility};
use crate::noise::SensorNoise;
use crate::trace::{generate_trace, TraceConfig};

/// Default reference point for all scenarios (Tsinghua campus, Beijing —
/// roughly where the paper's traces were recorded).
pub fn default_origin() -> LatLon {
    LatLon::new(40.0, 116.32)
}

/// Fig. 4 (top): walking forward while filming ahead — translation with
/// `θ_p = 0°` (parallel).
pub fn walk_parallel(duration_s: f64, noise: &SensorNoise, seed: u64) -> Vec<TimedFov> {
    let mobility = Mobility::StraightLine {
        start: Vec2::ZERO,
        heading_deg: 0.0,
        speed_mps: 1.4,
        look: Look::Heading,
    };
    sample(&mobility, duration_s, noise, seed)
}

/// Fig. 4 (bottom): walking while filming out of the side — translation
/// with `θ_p = 90°` (perpendicular).
pub fn walk_perpendicular(duration_s: f64, noise: &SensorNoise, seed: u64) -> Vec<TimedFov> {
    let mobility = Mobility::StraightLine {
        start: Vec2::ZERO,
        heading_deg: 0.0,
        speed_mps: 1.4,
        look: Look::HeadingOffset(90.0),
    };
    sample(&mobility, duration_s, noise, seed)
}

/// Fig. 5(a): standing still and rotating the camera.
pub fn rotate_in_place(
    duration_s: f64,
    rate_deg_per_s: f64,
    noise: &SensorNoise,
    seed: u64,
) -> Vec<TimedFov> {
    let mobility = Mobility::StationaryRotate {
        position: Vec2::ZERO,
        start_azimuth_deg: 0.0,
        rate_deg_per_s,
    };
    sample(&mobility, duration_s, noise, seed)
}

/// Fig. 5(b): driving down the street filming the view ahead
/// (`R = 100 m` in the paper's setup).
pub fn drive_straight(
    duration_s: f64,
    speed_mps: f64,
    noise: &SensorNoise,
    seed: u64,
) -> Vec<TimedFov> {
    let mobility = Mobility::StraightLine {
        start: Vec2::ZERO,
        heading_deg: 0.0,
        speed_mps,
        look: Look::Heading,
    };
    sample(&mobility, duration_s, noise, seed)
}

/// Fig. 5(c): riding a bike through a residential area and turning right
/// halfway.
pub fn bike_ride_with_turn(
    leg_m: f64,
    speed_mps: f64,
    noise: &SensorNoise,
    seed: u64,
) -> Vec<TimedFov> {
    let mobility = Mobility::bike_turn(Vec2::ZERO, 0.0, leg_m, 90.0, speed_mps);
    let duration = mobility.natural_duration_s().expect("bike path is bounded");
    sample(&mobility, duration, noise, seed)
}

/// A random city stroll (Manhattan grid), useful as a "realistic" mixed
/// workload for segmentation experiments.
pub fn city_walk(seed: u64, legs: usize, noise: &SensorNoise) -> Vec<TimedFov> {
    let mobility = Mobility::manhattan(seed, Vec2::ZERO, 100.0, legs, 1.4);
    let duration = mobility.natural_duration_s().expect("grid path is bounded");
    sample(&mobility, duration, noise, seed.wrapping_add(1))
}

fn sample(mobility: &Mobility, duration_s: f64, noise: &SensorNoise, seed: u64) -> Vec<TimedFov> {
    let frame = LocalFrame::new(default_origin());
    let cfg = TraceConfig::new(25.0, duration_s);
    let mut rng = StdRng::seed_from_u64(seed);
    generate_trace(
        mobility,
        &frame,
        &cfg,
        noise,
        &DeviceClock::PERFECT,
        &mut rng,
    )
}

/// Parameters for the citywide random representative-FoV workload
/// ("we randomly simulate citywide representative FoVs", §VI-B-2).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CitywideConfig {
    /// Half-extent of the square city area, metres (e.g. 10 km ⇒ 20 km side).
    pub extent_m: f64,
    /// Time window covered by the segments, seconds.
    pub time_window_s: f64,
    /// Minimum segment duration, seconds.
    pub min_segment_s: f64,
    /// Maximum segment duration, seconds.
    pub max_segment_s: f64,
}

impl Default for CitywideConfig {
    fn default() -> Self {
        CitywideConfig {
            extent_m: 10_000.0,
            time_window_s: 86_400.0, // one day of footage
            min_segment_s: 2.0,
            max_segment_s: 60.0,
        }
    }
}

/// Generates `n` random citywide representative FoVs: uniform positions in
/// the square, uniform azimuths, uniform start times, log-ish segment
/// durations. Deterministic for a given seed.
pub fn citywide_rep_fovs(n: usize, cfg: &CitywideConfig, seed: u64) -> Vec<RepFov> {
    let frame = LocalFrame::new(default_origin());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pos = Vec2::new(
                rng.random_range(-cfg.extent_m..=cfg.extent_m),
                rng.random_range(-cfg.extent_m..=cfg.extent_m),
            );
            let theta = rng.random_range(0.0..360.0);
            let dur = rng.random_range(cfg.min_segment_s..=cfg.max_segment_s);
            let t0 = rng.random_range(0.0..cfg.time_window_s);
            RepFov::new(t0, t0 + dur, Fov::new(frame.from_local(pos), theta))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::{segment_video, CameraProfile};

    #[test]
    fn walk_scenarios_have_expected_geometry() {
        let par = walk_parallel(10.0, &SensorNoise::NONE, 0);
        let perp = walk_perpendicular(10.0, &SensorNoise::NONE, 0);
        assert_eq!(par.len(), perp.len());
        // Parallel: camera looks north and moves north.
        assert_eq!(par.last().unwrap().fov.theta, 0.0);
        // Perpendicular: camera looks east while moving north.
        assert_eq!(perp.last().unwrap().fov.theta, 90.0);
        // Positions coincide (same path).
        let (a, b) = (par.last().unwrap().fov.p, perp.last().unwrap().fov.p);
        assert!(a.distance_m(b) < 1e-6);
    }

    #[test]
    fn rotation_scenario_sweeps_azimuth() {
        let trace = rotate_in_place(36.0, 10.0, &SensorNoise::NONE, 0);
        let last = trace.last().unwrap();
        // 36 s at 10°/s = full circle.
        assert!(last.fov.theta < 1.0 || last.fov.theta > 359.0);
        // Position never moves.
        let p0 = trace[0].fov.p;
        assert!(trace.iter().all(|f| f.fov.p.distance_m(p0) < 1e-6));
    }

    #[test]
    fn bike_turn_produces_multiple_segments() {
        let trace = bike_ride_with_turn(80.0, 4.0, &SensorNoise::NONE, 0);
        let cam = CameraProfile::smartphone();
        let segs = segment_video(&trace, &cam, 0.5);
        // The 90° turn guarantees at least one cut.
        assert!(segs.len() >= 2, "got {} segments", segs.len());
    }

    #[test]
    fn citywide_workload_is_deterministic_and_in_bounds() {
        let cfg = CitywideConfig::default();
        let a = citywide_rep_fovs(500, &cfg, 7);
        let b = citywide_rep_fovs(500, &cfg, 7);
        assert_eq!(a, b);
        let frame = LocalFrame::new(default_origin());
        for rep in &a {
            let local = frame.to_local(rep.fov.p);
            assert!(local.x.abs() <= cfg.extent_m + 1.0);
            assert!(local.y.abs() <= cfg.extent_m + 1.0);
            assert!(rep.duration() >= cfg.min_segment_s && rep.duration() <= cfg.max_segment_s);
            assert!(rep.t_start >= 0.0 && rep.t_start <= cfg.time_window_s);
        }
    }

    #[test]
    fn city_walk_is_plausible() {
        let trace = city_walk(3, 6, &SensorNoise::smartphone());
        assert!(trace.len() > 1000); // 600 m at 1.4 m/s, 25 fps
        assert!(trace.windows(2).all(|w| w[1].t > w[0].t));
    }
}
