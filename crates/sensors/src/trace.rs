//! Trace generation: mobility model → timestamped FoV sequence.

use rand::Rng;
use swag_core::{Fov, TimedFov};
use swag_geo::LocalFrame;

use crate::clock::DeviceClock;
use crate::mobility::Mobility;
use crate::noise::SensorNoise;

/// Sampling parameters of a recording session.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct TraceConfig {
    /// Sensor sampling rate (one FoV per video frame), Hz.
    pub fps: f64,
    /// Recording duration, seconds.
    pub duration_s: f64,
    /// Global time at which recording starts, seconds.
    pub start_time_s: f64,
}

impl TraceConfig {
    /// `fps` Hz for `duration_s` seconds starting at global time 0.
    pub fn new(fps: f64, duration_s: f64) -> Self {
        assert!(fps > 0.0, "fps must be positive");
        assert!(duration_s >= 0.0, "duration must be non-negative");
        TraceConfig {
            fps,
            duration_s,
            start_time_s: 0.0,
        }
    }

    /// Returns a copy starting at `t0` global seconds.
    pub fn starting_at(mut self, t0: f64) -> Self {
        self.start_time_s = t0;
        self
    }

    /// Number of samples the trace will contain before dropout.
    pub fn sample_count(&self) -> usize {
        (self.duration_s * self.fps).floor() as usize + 1
    }
}

/// Samples a mobility model into a sequence of `(t, p, θ)` frame records —
/// what the client's background process collects while recording
/// (paper §II-C).
///
/// Local poses are lifted to geographic coordinates through `frame`,
/// perturbed by `noise`, and stamped with `clock`. Deterministic given the
/// RNG state.
pub fn generate_trace(
    mobility: &Mobility,
    frame: &LocalFrame,
    cfg: &TraceConfig,
    noise: &SensorNoise,
    clock: &DeviceClock,
    rng: &mut impl Rng,
) -> Vec<TimedFov> {
    let n = cfg.sample_count();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t_rel = i as f64 / cfg.fps;
        if noise.drops(rng) {
            continue;
        }
        let pose = mobility.pose(t_rel);
        let (dx, dy) = noise.position_jitter(rng);
        let jittered = pose.position + swag_geo::Vec2::new(dx, dy);
        let theta = pose.azimuth_deg + noise.azimuth_jitter(rng);
        let t_global = cfg.start_time_s + t_rel;
        out.push(TimedFov::new(
            clock.device_time(t_global),
            Fov::new(frame.from_local(jittered), theta),
        ));
    }
    out
}

/// Samples a mobility model the way a real phone does: GPS fixes at
/// `gps_hz` (typically 1 Hz), compass at full frame rate. Per-frame
/// positions are interpolated between GPS fixes
/// ([`swag_core::interpolate_trace`]-style), so the output has the same
/// shape as [`generate_trace`] but realistic position granularity.
pub fn generate_trace_mixed_rate(
    mobility: &Mobility,
    frame: &LocalFrame,
    cfg: &TraceConfig,
    gps_hz: f64,
    noise: &SensorNoise,
    clock: &DeviceClock,
    rng: &mut impl Rng,
) -> Vec<TimedFov> {
    assert!(
        gps_hz > 0.0 && gps_hz <= cfg.fps,
        "gps_hz must be in (0, fps]"
    );
    // Noisy GPS fixes at the slow rate (device-time stamped).
    let n_fix = (cfg.duration_s * gps_hz).floor() as usize + 1;
    let fixes: Vec<TimedFov> = (0..n_fix)
        .map(|i| {
            let t_rel = i as f64 / gps_hz;
            let pose = mobility.pose(t_rel);
            let (dx, dy) = noise.position_jitter(rng);
            TimedFov::new(
                clock.device_time(cfg.start_time_s + t_rel),
                Fov::new(
                    frame.from_local(pose.position + swag_geo::Vec2::new(dx, dy)),
                    pose.azimuth_deg,
                ),
            )
        })
        .collect();

    // Per-frame records: interpolated position, fresh compass sample.
    let n = cfg.sample_count();
    let mut out = Vec::with_capacity(n);
    for i in 0..n {
        let t_rel = i as f64 / cfg.fps;
        if noise.drops(rng) {
            continue;
        }
        let t_dev = clock.device_time(cfg.start_time_s + t_rel);
        let p = swag_core::sample_at(&fixes, t_dev).p;
        let theta = mobility.pose(t_rel).azimuth_deg + noise.azimuth_jitter(rng);
        out.push(TimedFov::new(t_dev, Fov::new(p, theta)));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::mobility::Look;
    use rand::rngs::StdRng;
    use rand::SeedableRng;
    use swag_geo::{LatLon, Vec2};

    fn frame() -> LocalFrame {
        LocalFrame::new(LatLon::new(40.0, 116.32))
    }

    fn walker() -> Mobility {
        Mobility::StraightLine {
            start: Vec2::ZERO,
            heading_deg: 0.0,
            speed_mps: 1.4,
            look: Look::Heading,
        }
    }

    #[test]
    fn noise_free_trace_is_exact() {
        let cfg = TraceConfig::new(25.0, 4.0);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = generate_trace(
            &walker(),
            &frame(),
            &cfg,
            &SensorNoise::NONE,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        assert_eq!(trace.len(), 101);
        assert_eq!(trace[0].t, 0.0);
        assert!((trace[100].t - 4.0).abs() < 1e-9);
        // Position after 4 s of 1.4 m/s: 5.6 m north.
        let end = frame().to_local(trace[100].fov.p);
        assert!((end.y - 5.6).abs() < 1e-6 && end.x.abs() < 1e-6);
        assert_eq!(trace[50].fov.theta, 0.0);
    }

    #[test]
    fn timestamps_are_strictly_increasing() {
        let cfg = TraceConfig::new(30.0, 10.0).starting_at(1000.0);
        let mut rng = StdRng::seed_from_u64(3);
        let trace = generate_trace(
            &walker(),
            &frame(),
            &cfg,
            &SensorNoise::smartphone(),
            &DeviceClock::ntp_synced(40.0),
            &mut rng,
        );
        assert!(trace.windows(2).all(|w| w[1].t > w[0].t));
        assert!(trace[0].t >= 1000.0);
    }

    #[test]
    fn dropout_shortens_trace() {
        let cfg = TraceConfig::new(25.0, 40.0);
        let noise = SensorNoise {
            gps_sigma_m: 0.0,
            compass_sigma_deg: 0.0,
            dropout_prob: 0.5,
        };
        let mut rng = StdRng::seed_from_u64(11);
        let trace = generate_trace(
            &walker(),
            &frame(),
            &cfg,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let expected = cfg.sample_count();
        assert!(trace.len() < expected * 6 / 10);
        assert!(trace.len() > expected * 4 / 10);
    }

    #[test]
    fn noise_perturbs_but_stays_bounded() {
        let cfg = TraceConfig::new(25.0, 10.0);
        let noise = SensorNoise {
            gps_sigma_m: 3.0,
            compass_sigma_deg: 5.0,
            dropout_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(17);
        let trace = generate_trace(
            &walker(),
            &frame(),
            &cfg,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let f = frame();
        let mut max_err = 0.0f64;
        for (i, tf) in trace.iter().enumerate() {
            let truth = walker().pose(i as f64 / 25.0).position;
            let err = (f.to_local(tf.fov.p) - truth).norm();
            max_err = max_err.max(err);
        }
        assert!(max_err > 0.5, "noise had no effect");
        assert!(max_err < 20.0, "noise implausibly large: {max_err}");
    }

    #[test]
    fn same_seed_same_trace() {
        let cfg = TraceConfig::new(25.0, 5.0);
        let make = |seed| {
            let mut rng = StdRng::seed_from_u64(seed);
            generate_trace(
                &walker(),
                &frame(),
                &cfg,
                &SensorNoise::smartphone(),
                &DeviceClock::PERFECT,
                &mut rng,
            )
        };
        assert_eq!(make(5), make(5));
        assert_ne!(make(5), make(6));
    }

    #[test]
    fn mixed_rate_trace_tracks_truth_between_fixes() {
        let cfg = TraceConfig::new(25.0, 20.0);
        let mut rng = StdRng::seed_from_u64(2);
        let trace = generate_trace_mixed_rate(
            &walker(),
            &frame(),
            &cfg,
            1.0, // 1 Hz GPS
            &SensorNoise::NONE,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        assert_eq!(trace.len(), cfg.sample_count());
        // Noise-free interpolation of constant-velocity motion is exact.
        let f = frame();
        for (i, tf) in trace.iter().enumerate() {
            let truth = walker().pose(i as f64 / 25.0).position;
            assert!(
                (f.to_local(tf.fov.p) - truth).norm() < 0.01,
                "frame {i} drifted"
            );
        }
    }

    #[test]
    fn mixed_rate_position_error_stays_bounded_under_noise() {
        let cfg = TraceConfig::new(25.0, 30.0);
        let noise = SensorNoise {
            gps_sigma_m: 3.0,
            compass_sigma_deg: 0.0,
            dropout_prob: 0.0,
        };
        let mut rng = StdRng::seed_from_u64(4);
        let trace = generate_trace_mixed_rate(
            &walker(),
            &frame(),
            &cfg,
            1.0,
            &noise,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let f = frame();
        let max_err = trace
            .iter()
            .enumerate()
            .map(|(i, tf)| (f.to_local(tf.fov.p) - walker().pose(i as f64 / 25.0).position).norm())
            .fold(0.0f64, f64::max);
        assert!(max_err > 0.1, "noise had no effect");
        assert!(max_err < 15.0, "implausible error {max_err}");
    }

    #[test]
    #[should_panic(expected = "gps_hz")]
    fn mixed_rate_rejects_gps_faster_than_video() {
        let cfg = TraceConfig::new(25.0, 1.0);
        let mut rng = StdRng::seed_from_u64(0);
        generate_trace_mixed_rate(
            &walker(),
            &frame(),
            &cfg,
            100.0,
            &SensorNoise::NONE,
            &DeviceClock::PERFECT,
            &mut rng,
        );
    }

    #[test]
    fn zero_duration_gives_one_sample() {
        let cfg = TraceConfig::new(25.0, 0.0);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = generate_trace(
            &walker(),
            &frame(),
            &cfg,
            &SensorNoise::NONE,
            &DeviceClock::PERFECT,
            &mut rng,
        );
        assert_eq!(trace.len(), 1);
    }
}
