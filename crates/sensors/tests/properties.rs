//! Property tests for the sensor substrate: mobility continuity,
//! trace determinism, noise statistics.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use swag_geo::{LatLon, LocalFrame, Vec2};
use swag_sensors::{
    generate_trace, generate_trace_mixed_rate, DeviceClock, Look, Mobility, SensorNoise,
    TraceConfig,
};

fn frame() -> LocalFrame {
    LocalFrame::new(LatLon::new(40.0, 116.32))
}

fn arb_mobility() -> impl Strategy<Value = Mobility> {
    prop_oneof![
        (any::<u64>(), 2usize..12)
            .prop_map(|(seed, legs)| Mobility::random_waypoint(seed, 300.0, legs, 1.4)),
        (any::<u64>(), 2usize..12).prop_map(|(seed, legs)| Mobility::manhattan(
            seed,
            Vec2::ZERO,
            80.0,
            legs,
            1.4
        )),
        (0.0f64..360.0, 0.5f64..10.0).prop_map(|(heading, speed)| Mobility::StraightLine {
            start: Vec2::ZERO,
            heading_deg: heading,
            speed_mps: speed,
            look: Look::Heading,
        }),
        (0.0f64..360.0, -30.0f64..30.0).prop_map(|(start, rate)| Mobility::StationaryRotate {
            position: Vec2::ZERO,
            start_azimuth_deg: start,
            rate_deg_per_s: rate,
        }),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn poses_are_continuous_in_time(m in arb_mobility(), t in 0.0f64..300.0) {
        // A 10 ms step never teleports the camera more than its speed
        // allows (bounded here by 10 m/s plus slack for corner rounding).
        let a = m.pose(t);
        let b = m.pose(t + 0.01);
        prop_assert!(a.position.distance(b.position) < 0.2,
            "jump of {} m in 10 ms", a.position.distance(b.position));
    }

    #[test]
    fn pose_is_deterministic(m in arb_mobility(), t in 0.0f64..500.0) {
        prop_assert_eq!(m.pose(t), m.pose(t));
    }

    #[test]
    fn traces_have_monotone_time_and_valid_azimuths(
        m in arb_mobility(),
        seed in any::<u64>(),
        duration in 1.0f64..30.0,
    ) {
        let cfg = TraceConfig::new(25.0, duration);
        let mut rng = StdRng::seed_from_u64(seed);
        let trace = generate_trace(
            &m, &frame(), &cfg, &SensorNoise::smartphone(), &DeviceClock::PERFECT, &mut rng,
        );
        prop_assert!(trace.windows(2).all(|w| w[1].t > w[0].t));
        prop_assert!(trace.iter().all(|f| (0.0..360.0).contains(&f.fov.theta)));
    }

    #[test]
    fn noise_free_trace_matches_model_exactly(
        m in arb_mobility(),
        duration in 1.0f64..20.0,
    ) {
        let cfg = TraceConfig::new(25.0, duration);
        let mut rng = StdRng::seed_from_u64(0);
        let trace = generate_trace(
            &m, &frame(), &cfg, &SensorNoise::NONE, &DeviceClock::PERFECT, &mut rng,
        );
        let f = frame();
        for (i, tf) in trace.iter().enumerate() {
            let truth = m.pose(i as f64 / 25.0);
            prop_assert!((f.to_local(tf.fov.p) - truth.position).norm() < 1e-3);
        }
    }

    #[test]
    fn mixed_rate_equals_full_rate_for_linear_motion(
        heading in 0.0f64..360.0,
        speed in 0.5f64..5.0,
    ) {
        // Constant-velocity motion is exactly recoverable from 1 Hz fixes.
        let m = Mobility::StraightLine {
            start: Vec2::ZERO,
            heading_deg: heading,
            speed_mps: speed,
            look: Look::Heading,
        };
        let cfg = TraceConfig::new(25.0, 10.0);
        let mut rng = StdRng::seed_from_u64(1);
        let mixed = generate_trace_mixed_rate(
            &m, &frame(), &cfg, 1.0, &SensorNoise::NONE, &DeviceClock::PERFECT, &mut rng,
        );
        let mut rng = StdRng::seed_from_u64(1);
        let full = generate_trace(
            &m, &frame(), &cfg, &SensorNoise::NONE, &DeviceClock::PERFECT, &mut rng,
        );
        prop_assert_eq!(mixed.len(), full.len());
        for (a, b) in mixed.iter().zip(&full) {
            prop_assert!(a.fov.p.distance_m(b.fov.p) < 0.01);
        }
    }

    #[test]
    fn clock_round_trips(offset_ms in -500.0f64..500.0, t in 0.0f64..1e7) {
        let c = DeviceClock::ntp_synced(offset_ms);
        prop_assert!((c.true_time(c.device_time(t)) - t).abs() < 1e-6);
    }
}
