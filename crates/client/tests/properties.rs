//! Property tests for the client pipeline: streaming/offline agreement,
//! wire-format round trips, architecture-cost monotonicity.

use proptest::prelude::*;
use swag_client::{compare_architectures, ClientPipeline, CrowdScenario, Uploader, VideoProfile};
use swag_core::{
    abstract_segment, segment_video, AveragingRule, CameraProfile, DescriptorCodec, Fov, TimedFov,
};
use swag_geo::LatLon;

fn arb_trace() -> impl Strategy<Value = Vec<TimedFov>> {
    prop::collection::vec((-8.0f64..8.0, 0.0f64..4.0), 1..250).prop_map(|steps| {
        let mut pos = LatLon::new(40.0, 116.32);
        let mut theta = 0.0f64;
        steps
            .iter()
            .enumerate()
            .map(|(i, (dth, step))| {
                theta += dth;
                pos = pos.offset(theta, *step);
                TimedFov::new(i as f64 * 0.04, Fov::new(pos, theta))
            })
            .collect()
    })
}

proptest! {
    #[test]
    fn pipeline_equals_offline_segmentation(trace in arb_trace(), thresh in 0.0f64..=1.0) {
        let cam = CameraProfile::smartphone();
        let result = ClientPipeline::process_trace(cam, thresh, &trace);
        let offline = segment_video(&trace, &cam, thresh);
        prop_assert_eq!(result.segment_count(), offline.len());
        prop_assert_eq!(result.frames, trace.len() as u64);
        for (rep, seg) in result.reps.iter().zip(&offline) {
            let expected = abstract_segment(seg, AveragingRule::Circular);
            prop_assert!((rep.t_start - expected.t_start).abs() < 1e-12);
            prop_assert!((rep.t_end - expected.t_end).abs() < 1e-12);
            prop_assert!(rep.fov.p.distance_m(expected.fov.p) < 1e-9);
        }
    }

    #[test]
    fn smoothed_pipeline_never_loses_frames(
        trace in arb_trace(),
        thresh in 0.1f64..0.9,
        alpha in 0.05f64..1.0,
    ) {
        let cam = CameraProfile::smartphone();
        let result = ClientPipeline::process_trace_smoothed(cam, thresh, alpha, &trace);
        prop_assert_eq!(result.frames, trace.len() as u64);
        // Segments partition the timeline.
        for w in result.reps.windows(2) {
            prop_assert!(w[0].t_end <= w[1].t_start + 1e-12);
        }
    }

    #[test]
    fn upload_wire_size_matches_formula(trace in arb_trace(), thresh in 0.2f64..0.8) {
        let cam = CameraProfile::smartphone();
        let result = ClientPipeline::process_trace(cam, thresh, &trace);
        let n = result.reps.len();
        let mut uploader = Uploader::new(7);
        let (wire, batch) = uploader.upload(result.reps).unwrap();
        prop_assert_eq!(wire.len(), DescriptorCodec::batch_size(n));
        let decoded = DescriptorCodec::decode_batch(wire).unwrap();
        prop_assert_eq!(decoded.reps.len(), batch.reps.len());
        prop_assert_eq!(uploader.traffic().messages_up, 1);
    }

    #[test]
    fn architecture_costs_scale_sanely(
        providers in 1usize..500,
        minutes in 1.0f64..120.0,
        hits in 0usize..50,
    ) {
        let s = CrowdScenario {
            providers,
            video_seconds_per_provider: minutes * 60.0,
            video_profile: VideoProfile::P720,
            fps: 25.0,
            segments_per_provider: 40,
            hit_segments_per_query: hits,
            mean_segment_s: 8.0,
            cv_match_cost_per_frame_s: 1e-4,
            fov_query_cost_s: 1e-6,
            query_bytes: 64,
        };
        let [dc, qc, cf] = compare_architectures(&s);
        // Content-free always has the (weakly) smallest upfront and
        // server cost among upload-based designs.
        prop_assert!(cf.upfront_upload_bytes <= dc.upfront_upload_bytes);
        prop_assert!(cf.per_query_server_cpu_s <= dc.per_query_server_cpu_s);
        // Query-centric moves all CPU to clients.
        prop_assert_eq!(qc.per_query_server_cpu_s, 0.0);
        prop_assert!(qc.per_query_client_cpu_s >= dc.per_query_server_cpu_s - 1e-9);
        // Everyone ships the same hit clips.
        let fetch = s.hit_segments_per_query as u64
            * s.video_profile.encoded_bytes(s.mean_segment_s);
        for a in [&dc, &qc, &cf] {
            prop_assert!(a.per_query_bytes >= fetch);
        }
    }
}
