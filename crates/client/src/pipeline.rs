//! The real-time recording pipeline: sensor stream → segments →
//! representative FoVs.

use std::sync::Arc;

use swag_core::{
    abstract_segment, AveragingRule, CameraProfile, FovSmoother, RepFov, Segment, Segmenter,
    TimedFov,
};
use swag_obs::{Counter, FlightRecorder, Histogram, Registry};

/// Metric handles for an instrumented pipeline (`swag_client_*`).
#[derive(Debug, Clone)]
struct PipelineObs {
    frames: Arc<Counter>,
    segments: Arc<Counter>,
    segment_duration_ms: Arc<Histogram>,
}

/// Output of one recording session.
#[derive(Debug, Clone, PartialEq)]
pub struct RecordingResult {
    /// One representative FoV per detected segment, in time order.
    pub reps: Vec<RepFov>,
    /// Total frames processed.
    pub frames: u64,
}

impl RecordingResult {
    /// Number of segments.
    pub fn segment_count(&self) -> usize {
        self.reps.len()
    }
}

/// Streaming client pipeline: feed frame records while recording, call
/// [`finish`](ClientPipeline::finish) when the user stops the camera.
///
/// Segments are abstracted *as they close*, so memory stays proportional
/// to the current segment, not the whole video.
#[derive(Debug, Clone)]
pub struct ClientPipeline {
    segmenter: Segmenter,
    rule: AveragingRule,
    smoother: Option<FovSmoother>,
    reps: Vec<RepFov>,
    obs: Option<PipelineObs>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl ClientPipeline {
    /// Creates a pipeline with the paper's defaults (circular averaging,
    /// no smoothing).
    pub fn new(cam: CameraProfile, thresh: f64) -> Self {
        Self::with_rule(cam, thresh, AveragingRule::Circular)
    }

    /// Creates a pipeline with an explicit averaging rule.
    pub fn with_rule(cam: CameraProfile, thresh: f64, rule: AveragingRule) -> Self {
        ClientPipeline {
            segmenter: Segmenter::new(cam, thresh),
            rule,
            smoother: None,
            reps: Vec::new(),
            obs: None,
            recorder: None,
        }
    }

    /// Enables EMA sensor smoothing ahead of the segmenter (see
    /// [`FovSmoother`]); suppresses spurious cuts from GPS/compass jitter.
    pub fn with_smoothing(mut self, alpha: f64) -> Self {
        self.smoother = Some(FovSmoother::new(alpha));
        self
    }

    /// Wires frame/segment counters (`swag_client_*`) to `registry`.
    pub fn with_observability(mut self, registry: &Registry) -> Self {
        self.obs = Some(PipelineObs {
            frames: registry.counter("swag_client_frames_total"),
            segments: registry.counter("swag_client_segments_total"),
            segment_duration_ms: registry.histogram("swag_client_segment_duration_ms"),
        });
        self
    }

    /// Records an `abstract_segment` span on `recorder` each time a
    /// segment closes, so client-side abstraction shows up in the same
    /// causal trace as upload planning and server-side query handling.
    pub fn with_flight_recorder(mut self, recorder: Arc<FlightRecorder>) -> Self {
        self.recorder = Some(recorder);
        self
    }

    /// Consumes one frame record.
    pub fn push(&mut self, frame: TimedFov) {
        let frame = match &mut self.smoother {
            Some(s) => s.push(frame),
            None => frame,
        };
        if let Some(obs) = &self.obs {
            obs.frames.inc();
        }
        if let Some(segment) = self.segmenter.push(frame) {
            let rep = self.traced_abstract(&segment);
            self.observe_segment(&rep);
            self.reps.push(rep);
        }
    }

    /// Abstracts one closed segment, recording an `abstract_segment` span
    /// (detail = frames in the segment) when a flight recorder is wired.
    fn traced_abstract(&self, segment: &Segment) -> RepFov {
        let mut span = self.recorder.as_ref().map(|r| r.span("abstract_segment"));
        if let Some(span) = &mut span {
            span.set_detail(segment.len() as u64);
        }
        abstract_segment(segment, self.rule)
    }

    fn observe_segment(&self, rep: &RepFov) {
        if let Some(obs) = &self.obs {
            obs.segments.inc();
            obs.segment_duration_ms
                .record(((rep.t_end - rep.t_start).max(0.0) * 1000.0) as u64);
        }
    }

    /// Segments finalised so far (excludes the in-progress one).
    pub fn completed(&self) -> &[RepFov] {
        &self.reps
    }

    /// Stops recording, flushing the final segment.
    pub fn finish(mut self) -> RecordingResult {
        let frames = self.segmenter.frames_seen();
        let replacement = Segmenter::new(*self.segmenter.camera(), self.segmenter.thresh());
        let segmenter = std::mem::replace(&mut self.segmenter, replacement);
        if let Some(segment) = segmenter.finish() {
            let rep = self.traced_abstract(&segment);
            self.observe_segment(&rep);
            self.reps.push(rep);
        }
        RecordingResult {
            reps: self.reps,
            frames,
        }
    }

    /// Convenience: run a whole pre-recorded trace through the pipeline.
    pub fn process_trace(cam: CameraProfile, thresh: f64, trace: &[TimedFov]) -> RecordingResult {
        let mut p = ClientPipeline::new(cam, thresh);
        for &f in trace {
            p.push(f);
        }
        p.finish()
    }

    /// [`Self::process_trace`] with EMA smoothing enabled.
    pub fn process_trace_smoothed(
        cam: CameraProfile,
        thresh: f64,
        alpha: f64,
        trace: &[TimedFov],
    ) -> RecordingResult {
        let mut p = ClientPipeline::new(cam, thresh).with_smoothing(alpha);
        for &f in trace {
            p.push(f);
        }
        p.finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::{segment_video, Fov};
    use swag_geo::LatLon;

    fn cam() -> CameraProfile {
        CameraProfile::smartphone()
    }

    fn rotating_trace(n: usize, deg_per_frame: f64) -> Vec<TimedFov> {
        (0..n)
            .map(|i| {
                TimedFov::new(
                    i as f64 / 25.0,
                    Fov::new(LatLon::new(40.0, 116.32), deg_per_frame * i as f64),
                )
            })
            .collect()
    }

    #[test]
    fn pipeline_matches_offline_segmentation() {
        let trace = rotating_trace(500, 0.8);
        let result = ClientPipeline::process_trace(cam(), 0.5, &trace);
        let offline = segment_video(&trace, &cam(), 0.5);
        assert_eq!(result.segment_count(), offline.len());
        assert_eq!(result.frames, 500);
        for (rep, seg) in result.reps.iter().zip(&offline) {
            assert_eq!(rep.t_start, seg.start_t());
            assert_eq!(rep.t_end, seg.end_t());
        }
    }

    #[test]
    fn completed_lags_finish_by_one_segment() {
        let trace = rotating_trace(100, 1.0);
        let mut p = ClientPipeline::new(cam(), 0.5);
        for &f in &trace {
            p.push(f);
        }
        let mid_count = p.completed().len();
        let result = p.finish();
        assert_eq!(result.segment_count(), mid_count + 1);
    }

    #[test]
    fn empty_recording() {
        let p = ClientPipeline::new(cam(), 0.5);
        let r = p.finish();
        assert_eq!(r.segment_count(), 0);
        assert_eq!(r.frames, 0);
    }

    #[test]
    fn smoothing_reduces_segments_on_noisy_trace() {
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        use swag_sensors::{generate_trace, DeviceClock, Look, Mobility, SensorNoise, TraceConfig};

        let frame = swag_geo::LocalFrame::new(LatLon::new(40.0, 116.32));
        let mobility = Mobility::StraightLine {
            start: swag_geo::Vec2::ZERO,
            heading_deg: 0.0,
            speed_mps: 1.4,
            look: Look::Heading,
        };
        let mut rng = StdRng::seed_from_u64(8);
        let trace = generate_trace(
            &mobility,
            &frame,
            &TraceConfig::new(25.0, 60.0),
            &SensorNoise {
                gps_sigma_m: 5.0,
                compass_sigma_deg: 8.0,
                dropout_prob: 0.0,
            },
            &DeviceClock::PERFECT,
            &mut rng,
        );
        let raw = ClientPipeline::process_trace(cam(), 0.6, &trace);
        let smoothed = ClientPipeline::process_trace_smoothed(cam(), 0.6, 0.15, &trace);
        assert!(
            smoothed.segment_count() * 2 <= raw.segment_count(),
            "smoothing did not help: {} vs {}",
            smoothed.segment_count(),
            raw.segment_count()
        );
        assert_eq!(smoothed.frames, raw.frames);
    }

    #[test]
    fn observability_counts_frames_and_segments() {
        let reg = Registry::new();
        let trace = rotating_trace(500, 0.8);
        let mut p = ClientPipeline::new(cam(), 0.5).with_observability(&reg);
        for &f in &trace {
            p.push(f);
        }
        let result = p.finish();
        assert_eq!(reg.counter("swag_client_frames_total").get(), 500);
        assert_eq!(
            reg.counter("swag_client_segments_total").get(),
            result.segment_count() as u64
        );
        let durations = reg.histogram("swag_client_segment_duration_ms").snapshot();
        assert_eq!(durations.count, result.segment_count() as u64);
        assert!(durations.max > 0);
    }

    #[test]
    fn flight_recorder_spans_one_per_segment() {
        use swag_obs::{FlightRecorder, SpanEventKind};

        let recorder = Arc::new(FlightRecorder::new(4096));
        recorder.enable();
        let trace = rotating_trace(500, 0.8);
        let mut p = ClientPipeline::new(cam(), 0.5).with_flight_recorder(recorder.clone());
        for &f in &trace {
            p.push(f);
        }
        let result = p.finish();
        assert!(result.segment_count() > 1);
        let events = recorder.dump();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::End && e.label == "abstract_segment")
            .collect();
        assert_eq!(ends.len(), result.segment_count(), "one span per segment");
        // Span details report per-segment frame counts summing to the trace.
        assert_eq!(ends.iter().map(|e| e.detail).sum::<u64>(), 500);
        // Disabled recorder records nothing and does not change results.
        let quiet = Arc::new(FlightRecorder::new(64));
        let mut p2 = ClientPipeline::new(cam(), 0.5).with_flight_recorder(quiet.clone());
        for &f in &trace {
            p2.push(f);
        }
        assert_eq!(p2.finish().reps, result.reps);
        assert!(quiet.dump().is_empty());
    }

    #[test]
    fn reps_are_time_ordered_and_disjoint() {
        let trace = rotating_trace(1000, 0.6);
        let result = ClientPipeline::process_trace(cam(), 0.6, &trace);
        assert!(result.segment_count() > 2);
        for w in result.reps.windows(2) {
            assert!(w[0].t_end < w[1].t_start);
        }
    }
}
