//! Video size models for the traffic comparison.
//!
//! The client never uploads video at ingest time; these models quantify
//! what uploading it *would* cost — the baseline the paper's "negligible
//! networking traffic" claim is measured against.

use serde::{Deserialize, Serialize};

/// An encoded-video profile: resolution label and H.264-class bitrate.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct VideoProfile {
    /// Human-readable resolution label.
    pub label: &'static str,
    /// Encoded bitrate, bits per second.
    pub bitrate_bps: f64,
}

impl VideoProfile {
    /// 426×240 @ ~0.7 Mbps.
    pub const P240: VideoProfile = VideoProfile {
        label: "240p",
        bitrate_bps: 0.7e6,
    };
    /// 640×360 @ ~1 Mbps.
    pub const P360: VideoProfile = VideoProfile {
        label: "360p",
        bitrate_bps: 1.0e6,
    };
    /// 854×480 @ ~2.5 Mbps.
    pub const P480: VideoProfile = VideoProfile {
        label: "480p",
        bitrate_bps: 2.5e6,
    };
    /// 1280×720 @ ~5 Mbps.
    pub const P720: VideoProfile = VideoProfile {
        label: "720p",
        bitrate_bps: 5.0e6,
    };
    /// 1920×1080 @ ~8 Mbps.
    pub const P1080: VideoProfile = VideoProfile {
        label: "1080p",
        bitrate_bps: 8.0e6,
    };

    /// All presets, ascending.
    pub const ALL: [VideoProfile; 5] = [
        VideoProfile::P240,
        VideoProfile::P360,
        VideoProfile::P480,
        VideoProfile::P720,
        VideoProfile::P1080,
    ];

    /// Encoded size of `duration_s` seconds of video, bytes.
    pub fn encoded_bytes(&self, duration_s: f64) -> u64 {
        (self.bitrate_bps * duration_s / 8.0).round() as u64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encoded_size_scales_with_duration() {
        let p = VideoProfile::P720;
        assert_eq!(p.encoded_bytes(8.0), 5_000_000);
        assert_eq!(p.encoded_bytes(0.0), 0);
    }

    #[test]
    fn profiles_ascend() {
        let sizes: Vec<u64> = VideoProfile::ALL
            .iter()
            .map(|p| p.encoded_bytes(60.0))
            .collect();
        assert!(sizes.windows(2).all(|w| w[0] < w[1]));
    }
}
