//! SWAG client pipeline.
//!
//! Implements the provider side of the system (paper §II-C): while the
//! camera records, a background process collects `(t, p, θ)` records,
//! segments the video in real time (Algorithm 1), abstracts each segment
//! into a representative FoV, and — when recording stops — uploads the
//! batch of descriptors to the server. Raw video never leaves the device
//! at ingest time; the traffic comparison against raw-video upload is what
//! the `tab-traffic` experiment measures.

pub mod architectures;
pub mod pipeline;
pub mod upload;
pub mod video;

pub use architectures::{compare_architectures, ArchitectureCost, CrowdScenario};
pub use pipeline::{ClientPipeline, RecordingResult};
pub use upload::Uploader;
pub use video::VideoProfile;
