//! Cost models of the three crowd-sourced retrieval architectures the
//! paper contrasts in §I.
//!
//! * **Data-centric** — providers upload raw video once; the server runs
//!   content matching per query.
//! * **Query-centric** — the server broadcasts each query; every provider
//!   runs content matching locally on its own footage and returns hits.
//! * **Content-free (SWAG)** — providers upload FoV descriptors once; the
//!   server answers queries from the spatio-temporal index.
//!
//! All three must ship the *matched* clips to the querier, so that fetch
//! is common; they differ in upfront upload volume, per-query traffic, and
//! where/how much CPU each query burns. The CV and index costs are
//! parameters so measured values (from `tab-desc`/`fig6c`) can be
//! plugged in.

use swag_core::DescriptorCodec;

use crate::video::VideoProfile;

/// A crowd-sourcing deployment to be costed.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CrowdScenario {
    /// Number of contributing devices.
    pub providers: usize,
    /// Footage held per provider, seconds.
    pub video_seconds_per_provider: f64,
    /// Encoding of that footage.
    pub video_profile: VideoProfile,
    /// Video frame rate (CV matching cost scales with frames).
    pub fps: f64,
    /// Segments per provider after FoV segmentation.
    pub segments_per_provider: usize,
    /// Matched segments returned per query.
    pub hit_segments_per_query: usize,
    /// Mean matched-segment duration, seconds.
    pub mean_segment_s: f64,
    /// Measured cost of one CV frame comparison, seconds
    /// (e.g. frame differencing at the deployed resolution).
    pub cv_match_cost_per_frame_s: f64,
    /// Measured cost of one FoV index query, seconds.
    pub fov_query_cost_s: f64,
    /// Size of one query message, bytes.
    pub query_bytes: usize,
}

impl CrowdScenario {
    /// Total frames held by one provider.
    fn frames_per_provider(&self) -> f64 {
        self.video_seconds_per_provider * self.fps
    }

    /// Bytes of the matched clips a querier downloads per query.
    fn fetched_clip_bytes(&self) -> u64 {
        self.hit_segments_per_query as u64 * self.video_profile.encoded_bytes(self.mean_segment_s)
    }
}

/// Cost profile of one architecture under a scenario.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ArchitectureCost {
    /// Architecture label.
    pub name: &'static str,
    /// Bytes every provider collectively uploads before any query.
    pub upfront_upload_bytes: u64,
    /// Bytes moved per query (broadcasts, responses, clip fetches).
    pub per_query_bytes: u64,
    /// CPU seconds burned on provider devices per query.
    pub per_query_client_cpu_s: f64,
    /// CPU seconds burned on the server per query.
    pub per_query_server_cpu_s: f64,
}

/// Data-centric architecture (§I): "clients uploading their mobile videos
/// to the data center".
pub fn data_centric(s: &CrowdScenario) -> ArchitectureCost {
    ArchitectureCost {
        name: "data-centric",
        upfront_upload_bytes: s.providers as u64
            * s.video_profile.encoded_bytes(s.video_seconds_per_provider),
        per_query_bytes: s.query_bytes as u64 + s.fetched_clip_bytes(),
        per_query_client_cpu_s: 0.0,
        // The server content-matches the query against every stored frame.
        per_query_server_cpu_s: s.providers as f64
            * s.frames_per_provider()
            * s.cv_match_cost_per_frame_s,
    }
}

/// Query-centric architecture (§I): "cloud server only distributes
/// queries … clients perform the content retrieval algorithm locally".
pub fn query_centric(s: &CrowdScenario) -> ArchitectureCost {
    ArchitectureCost {
        name: "query-centric",
        upfront_upload_bytes: 0,
        // Broadcast to every provider, then fetch the hits.
        per_query_bytes: (s.providers * s.query_bytes) as u64 + s.fetched_clip_bytes(),
        // Every provider scans its own footage for every query.
        per_query_client_cpu_s: s.providers as f64
            * s.frames_per_provider()
            * s.cv_match_cost_per_frame_s,
        per_query_server_cpu_s: 0.0,
    }
}

/// SWAG's content-free architecture (§II): descriptors up once, index
/// lookups per query, only matched clips ever move.
pub fn content_free(s: &CrowdScenario) -> ArchitectureCost {
    ArchitectureCost {
        name: "content-free (SWAG)",
        upfront_upload_bytes: s.providers as u64
            * DescriptorCodec::batch_size(s.segments_per_provider) as u64,
        per_query_bytes: s.query_bytes as u64 + s.fetched_clip_bytes(),
        per_query_client_cpu_s: 0.0,
        per_query_server_cpu_s: s.fov_query_cost_s,
    }
}

/// All three architectures, costed side by side.
pub fn compare_architectures(s: &CrowdScenario) -> [ArchitectureCost; 3] {
    [data_centric(s), query_centric(s), content_free(s)]
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scenario() -> CrowdScenario {
        CrowdScenario {
            providers: 100,
            video_seconds_per_provider: 600.0,
            video_profile: VideoProfile::P720,
            fps: 25.0,
            segments_per_provider: 80,
            hit_segments_per_query: 10,
            mean_segment_s: 8.0,
            cv_match_cost_per_frame_s: 180e-6, // measured frame-diff @240p
            fov_query_cost_s: 5e-6,            // measured fig6c @50k
            query_bytes: 64,
        }
    }

    #[test]
    fn content_free_upfront_is_orders_of_magnitude_smaller() {
        let s = scenario();
        let dc = data_centric(&s);
        let cf = content_free(&s);
        assert!(
            dc.upfront_upload_bytes > 10_000 * cf.upfront_upload_bytes,
            "{} vs {}",
            dc.upfront_upload_bytes,
            cf.upfront_upload_bytes
        );
    }

    #[test]
    fn query_centric_has_no_upfront_but_burns_client_cpu() {
        let s = scenario();
        let qc = query_centric(&s);
        assert_eq!(qc.upfront_upload_bytes, 0);
        assert!(qc.per_query_client_cpu_s > 100.0); // 1.5 M frames × 180 µs
                                                    // ...while SWAG's whole query is microseconds on the server.
        assert!(content_free(&s).per_query_server_cpu_s < 1e-3);
    }

    #[test]
    fn clip_fetch_is_common_to_all() {
        let s = scenario();
        let [dc, qc, cf] = compare_architectures(&s);
        let fetch =
            s.hit_segments_per_query as u64 * s.video_profile.encoded_bytes(s.mean_segment_s);
        for a in [&dc, &qc, &cf] {
            assert!(a.per_query_bytes >= fetch, "{}", a.name);
        }
        // The query-centric broadcast dominates the tiny query messages.
        assert!(qc.per_query_bytes > dc.per_query_bytes);
        assert_eq!(dc.per_query_bytes, cf.per_query_bytes);
    }

    #[test]
    fn server_cpu_ordering() {
        let s = scenario();
        let [dc, qc, cf] = compare_architectures(&s);
        assert!(dc.per_query_server_cpu_s > cf.per_query_server_cpu_s * 1000.0);
        assert_eq!(qc.per_query_server_cpu_s, 0.0);
    }

    #[test]
    fn costs_scale_with_providers() {
        let mut s = scenario();
        let base = data_centric(&s);
        s.providers *= 2;
        let doubled = data_centric(&s);
        assert_eq!(doubled.upfront_upload_bytes, 2 * base.upfront_upload_bytes);
        let qc_doubled = query_centric(&s);
        assert!(
            (qc_doubled.per_query_client_cpu_s
                - 2.0 * query_centric(&scenario()).per_query_client_cpu_s)
                .abs()
                < 1e-9
        );
    }
}
