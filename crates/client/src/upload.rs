//! Descriptor upload: batching, encoding, traffic accounting.

use std::sync::Arc;

use bytes::Bytes;
use swag_core::descriptor::CodecError;
use swag_core::{DescriptorCodec, RepFov, UploadBatch};
use swag_net::{NetworkLink, TrafficMeter};
use swag_obs::{Counter, FlightRecorder, Registry};

use crate::video::VideoProfile;

/// Metric handles for an instrumented uploader (`swag_client_*`).
#[derive(Debug, Clone)]
struct UploadObs {
    batches: Arc<Counter>,
    descriptor_bytes: Arc<Counter>,
}

/// Builds and accounts descriptor uploads for one provider device.
#[derive(Debug, Clone)]
pub struct Uploader {
    provider_id: u64,
    next_video_id: u64,
    meter: TrafficMeter,
    obs: Option<UploadObs>,
    recorder: Option<Arc<FlightRecorder>>,
}

impl Uploader {
    /// Creates an uploader for a provider.
    pub fn new(provider_id: u64) -> Self {
        Uploader {
            provider_id,
            next_video_id: 0,
            meter: TrafficMeter::new(),
            obs: None,
            recorder: None,
        }
    }

    /// Wires upload counters (`swag_client_upload_*`) to `registry`.
    pub fn attach_observability(&mut self, registry: &Registry) {
        self.obs = Some(UploadObs {
            batches: registry.counter("swag_client_upload_batches_total"),
            descriptor_bytes: registry.counter("swag_client_descriptor_bytes_total"),
        });
    }

    /// Records an `upload_encode` span on `recorder` around every
    /// [`upload`](Uploader::upload) call (detail = wire bytes produced),
    /// tying descriptor encoding into the end-to-end causal trace.
    pub fn attach_flight_recorder(&mut self, recorder: Arc<FlightRecorder>) {
        self.recorder = Some(recorder);
    }

    /// The provider id.
    pub fn provider_id(&self) -> u64 {
        self.provider_id
    }

    /// Packages a recording's representative FoVs as an upload message,
    /// recording its size in the traffic meter. Returns the wire bytes and
    /// the logical batch.
    ///
    /// Errors with [`CodecError::OutOfRange`] if a record cannot be
    /// represented on the wire (nothing is metered in that case; the
    /// video id is not consumed).
    pub fn upload(&mut self, reps: Vec<RepFov>) -> Result<(Bytes, UploadBatch), CodecError> {
        let mut span = self.recorder.as_ref().map(|r| r.span("upload_encode"));
        let batch = UploadBatch {
            provider_id: self.provider_id,
            video_id: self.next_video_id,
            reps,
        };
        let bytes = DescriptorCodec::encode_batch(&batch)?;
        if let Some(span) = &mut span {
            span.set_detail(bytes.len() as u64);
        }
        self.next_video_id += 1;
        self.meter.record_up(bytes.len());
        if let Some(obs) = &self.obs {
            obs.batches.inc();
            obs.descriptor_bytes.add(bytes.len() as u64);
        }
        Ok((bytes, batch))
    }

    /// Accumulated traffic.
    pub fn traffic(&self) -> &TrafficMeter {
        &self.meter
    }

    /// Expected wall-clock time to push this device's accumulated uploads
    /// over a link.
    pub fn upload_time_s(&self, link: &NetworkLink) -> f64 {
        link.transfer_time_s(self.meter.bytes_up as usize)
    }

    /// Ratio of raw-video bytes to descriptor bytes for a recording of
    /// `duration_s` seconds — the headline traffic-saving factor.
    pub fn savings_factor(descriptor_bytes: usize, profile: VideoProfile, duration_s: f64) -> f64 {
        profile.encoded_bytes(duration_s) as f64 / descriptor_bytes.max(1) as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_core::Fov;
    use swag_geo::LatLon;

    fn reps(n: usize) -> Vec<RepFov> {
        (0..n)
            .map(|i| {
                RepFov::new(
                    i as f64 * 10.0,
                    i as f64 * 10.0 + 8.0,
                    Fov::new(LatLon::new(40.0, 116.32), 25.0),
                )
            })
            .collect()
    }

    #[test]
    fn upload_meters_bytes_and_increments_video_id() {
        let mut u = Uploader::new(9);
        let (bytes1, batch1) = u.upload(reps(10)).unwrap();
        let (bytes2, batch2) = u.upload(reps(3)).unwrap();
        assert_eq!(batch1.video_id, 0);
        assert_eq!(batch2.video_id, 1);
        assert_eq!(batch1.provider_id, 9);
        assert_eq!(u.traffic().bytes_up as usize, bytes1.len() + bytes2.len());
        assert_eq!(u.traffic().messages_up, 2);
    }

    #[test]
    fn observability_tracks_descriptor_bytes() {
        let reg = Registry::new();
        let mut u = Uploader::new(4);
        u.attach_observability(&reg);
        let (b1, _) = u.upload(reps(5)).unwrap();
        let (b2, _) = u.upload(reps(2)).unwrap();
        assert_eq!(reg.counter("swag_client_upload_batches_total").get(), 2);
        assert_eq!(
            reg.counter("swag_client_descriptor_bytes_total").get(),
            (b1.len() + b2.len()) as u64
        );
    }

    #[test]
    fn flight_recorder_span_reports_wire_bytes() {
        use swag_obs::{FlightRecorder, SpanEventKind};

        let recorder = Arc::new(FlightRecorder::new(64));
        recorder.enable();
        let mut u = Uploader::new(7);
        u.attach_flight_recorder(recorder.clone());
        let (bytes, _) = u.upload(reps(6)).unwrap();
        let events = recorder.dump();
        let ends: Vec<_> = events
            .iter()
            .filter(|e| e.kind == SpanEventKind::End && e.label == "upload_encode")
            .collect();
        assert_eq!(ends.len(), 1);
        assert_eq!(ends[0].detail, bytes.len() as u64);
    }

    #[test]
    fn wire_round_trip_preserves_count() {
        let mut u = Uploader::new(1);
        let (bytes, batch) = u.upload(reps(7)).unwrap();
        let decoded = DescriptorCodec::decode_batch(bytes).unwrap();
        assert_eq!(decoded.reps.len(), batch.reps.len());
        assert_eq!(decoded.provider_id, 1);
    }

    #[test]
    fn descriptor_upload_is_orders_of_magnitude_smaller_than_video() {
        // A 10-minute recording segmented into 100 segments.
        let mut u = Uploader::new(2);
        let (bytes, _) = u.upload(reps(100)).unwrap();
        let factor = Uploader::savings_factor(bytes.len(), VideoProfile::P720, 600.0);
        assert!(factor > 10_000.0, "savings factor only {factor}");
    }

    #[test]
    fn upload_time_is_subsecond_on_cellular() {
        let mut u = Uploader::new(3);
        u.upload(reps(1000)).unwrap(); // a very long recording's descriptors
        let t = u.upload_time_s(&NetworkLink::cellular_3g());
        assert!(t < 1.0, "descriptor upload took {t}s");
    }
}
