//! Sector geometry for rank-based retrieval (paper §V-B).
//!
//! A camera's viewable scene is the circular sector with apex `p`, axis
//! `θ`, half-angle `α` and radius `R`. Retrieval needs two predicates on
//! that sector:
//!
//! * does it **contain** a point (used by accuracy ground truth), and
//! * does it **intersect** the querier's circular area (the *covering* test
//!   the paper's filtering mechanism approximates with a distance sort and
//!   direction filter).

use swag_geo::{angle_diff_deg, LatLon, Vec2};

use crate::fov::{CameraProfile, Fov};

/// Whether the FoV's view sector contains a geographic point.
pub fn sector_contains(fov: &Fov, cam: &CameraProfile, point: LatLon) -> bool {
    let d = fov.p.displacement_to(point);
    let dist = d.norm();
    if dist > cam.view_radius_m {
        return false;
    }
    if dist < 1e-9 {
        return true; // the apex itself
    }
    angle_diff_deg(d.azimuth_deg(), fov.theta) <= cam.half_angle_deg
}

/// Whether the FoV's view sector intersects the disc of radius `radius_m`
/// centred at `center` — i.e. whether this video segment can **cover** any
/// part of the query area.
///
/// Exact for `α < 90°` (the sector is convex): the nearest sector point to
/// the disc centre lies on the axis ray, on the bounding arc, or on one of
/// the two straight edges.
pub fn sector_intersects_circle(
    fov: &Fov,
    cam: &CameraProfile,
    center: LatLon,
    radius_m: f64,
) -> bool {
    debug_assert!(radius_m >= 0.0);
    let c = fov.p.displacement_to(center);
    let dist = c.norm();

    // Disc covers the apex.
    if dist <= radius_m {
        return true;
    }

    let bearing = c.azimuth_deg();
    if angle_diff_deg(bearing, fov.theta) <= cam.half_angle_deg {
        // Centre lies inside the cone of directions: the nearest sector
        // point sits on the ray towards the centre, clipped at radius R.
        return dist - cam.view_radius_m <= radius_m;
    }

    // Centre lies outside the cone: nearest point is on one of the two
    // straight edges.
    let (lo, hi) = fov.coverage_deg(cam);
    let edge_a = Vec2::from_azimuth_deg(lo) * cam.view_radius_m;
    let edge_b = Vec2::from_azimuth_deg(hi) * cam.view_radius_m;
    let d = point_segment_distance(c, Vec2::ZERO, edge_a).min(point_segment_distance(
        c,
        Vec2::ZERO,
        edge_b,
    ));
    d <= radius_m
}

/// Whether the FoV is oriented towards `target` — the paper's direction
/// filter (§V-B step 3) that discards retrieved FoVs with an "improper
/// direction".
///
/// `tolerance_deg` widens the accepted cone beyond `α` to absorb sensor
/// noise; pass `0.0` for the strict test.
pub fn points_toward(fov: &Fov, cam: &CameraProfile, target: LatLon, tolerance_deg: f64) -> bool {
    let d = fov.p.displacement_to(target);
    if d.norm() < 1e-9 {
        return true; // standing on the target: any direction shows it
    }
    angle_diff_deg(d.azimuth_deg(), fov.theta) <= cam.half_angle_deg + tolerance_deg
}

/// Euclidean distance from point `p` to the segment `a..b`.
fn point_segment_distance(p: Vec2, a: Vec2, b: Vec2) -> f64 {
    let ab = b - a;
    let len_sq = ab.norm_sq();
    if len_sq < 1e-18 {
        return p.distance(a);
    }
    let t = ((p - a).dot(ab) / len_sq).clamp(0.0, 1.0);
    p.distance(a + ab * t)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cam() -> CameraProfile {
        CameraProfile::new(30.0, 100.0)
    }

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn north_fov() -> Fov {
        Fov::new(origin(), 0.0)
    }

    #[test]
    fn contains_point_on_axis_inside_radius() {
        let f = north_fov();
        assert!(sector_contains(&f, &cam(), origin().offset(0.0, 50.0)));
        assert!(sector_contains(&f, &cam(), origin().offset(0.0, 99.0)));
        assert!(!sector_contains(&f, &cam(), origin().offset(0.0, 101.0)));
    }

    #[test]
    fn contains_respects_half_angle() {
        let f = north_fov();
        assert!(sector_contains(&f, &cam(), origin().offset(29.0, 50.0)));
        assert!(!sector_contains(&f, &cam(), origin().offset(31.0, 50.0)));
        // Behind the camera.
        assert!(!sector_contains(&f, &cam(), origin().offset(180.0, 10.0)));
    }

    #[test]
    fn contains_apex() {
        assert!(sector_contains(&north_fov(), &cam(), origin()));
    }

    #[test]
    fn circle_on_axis_intersections() {
        let f = north_fov();
        // Disc fully inside the sector.
        assert!(sector_intersects_circle(
            &f,
            &cam(),
            origin().offset(0.0, 50.0),
            10.0
        ));
        // Disc just beyond the arc but within its radius.
        assert!(sector_intersects_circle(
            &f,
            &cam(),
            origin().offset(0.0, 105.0),
            10.0
        ));
        // Disc far beyond reach.
        assert!(!sector_intersects_circle(
            &f,
            &cam(),
            origin().offset(0.0, 150.0),
            10.0
        ));
    }

    #[test]
    fn circle_covering_apex_intersects_even_from_behind() {
        let f = north_fov();
        assert!(sector_intersects_circle(
            &f,
            &cam(),
            origin().offset(180.0, 5.0),
            10.0
        ));
        assert!(!sector_intersects_circle(
            &f,
            &cam(),
            origin().offset(180.0, 50.0),
            10.0
        ));
    }

    #[test]
    fn circle_near_edge_intersects_via_edge_distance() {
        let f = north_fov();
        // A disc centred 40° off-axis at 50 m: the edge ray is at 30°, so
        // the gap is roughly 50·sin(10°) ≈ 8.7 m.
        let c = origin().offset(40.0, 50.0);
        assert!(sector_intersects_circle(&f, &cam(), c, 10.0));
        assert!(!sector_intersects_circle(&f, &cam(), c, 5.0));
    }

    #[test]
    fn intersect_is_consistent_with_contains() {
        let f = north_fov();
        // Any contained point intersects with any radius.
        for (b, d) in [(0.0, 30.0), (25.0, 80.0), (-20.0, 10.0)] {
            let p = origin().offset(b, d);
            if sector_contains(&f, &cam(), p) {
                assert!(sector_intersects_circle(&f, &cam(), p, 0.001));
            }
        }
    }

    #[test]
    fn points_toward_filter() {
        let f = north_fov();
        let c = cam();
        assert!(points_toward(&f, &c, origin().offset(0.0, 500.0), 0.0));
        assert!(points_toward(&f, &c, origin().offset(29.0, 500.0), 0.0));
        assert!(!points_toward(&f, &c, origin().offset(45.0, 500.0), 0.0));
        // Tolerance widens the cone.
        assert!(points_toward(&f, &c, origin().offset(45.0, 500.0), 20.0));
        // Standing on the target always passes.
        assert!(points_toward(&f, &c, origin(), 0.0));
    }

    #[test]
    fn point_segment_distance_basics() {
        let a = Vec2::new(0.0, 0.0);
        let b = Vec2::new(10.0, 0.0);
        assert!((point_segment_distance(Vec2::new(5.0, 3.0), a, b) - 3.0).abs() < 1e-12);
        assert!((point_segment_distance(Vec2::new(-4.0, 0.0), a, b) - 4.0).abs() < 1e-12);
        assert!((point_segment_distance(Vec2::new(13.0, 4.0), a, b) - 5.0).abs() < 1e-12);
        // Degenerate segment.
        assert!((point_segment_distance(Vec2::new(3.0, 4.0), a, a) - 5.0).abs() < 1e-12);
    }
}
