//! Upsampling sparse sensor fixes to per-frame FoVs.
//!
//! Real devices deliver GPS fixes at ~1 Hz while video runs at 25-30 fps;
//! the `(t_i, p_i, θ_i)` record the paper attaches to *every* frame
//! (§II-C) therefore has to be interpolated from sparser fixes. This
//! module provides that step: linear interpolation of positions (in the
//! local metric frame, so speeds are preserved) and shortest-arc
//! interpolation of azimuths, evaluated at arbitrary frame timestamps.

use swag_geo::{normalize_deg, signed_deg};

use crate::fov::{Fov, TimedFov};

/// Interpolates a sparse, time-ordered fix sequence at time `t`.
///
/// * Before the first fix / after the last: clamps to the boundary fix.
/// * Between fixes: linear position, shortest-arc azimuth.
///
/// # Panics
/// Panics if `fixes` is empty or not strictly increasing in time.
pub fn sample_at(fixes: &[TimedFov], t: f64) -> Fov {
    assert!(
        !fixes.is_empty(),
        "cannot interpolate an empty fix sequence"
    );
    debug_assert!(
        fixes.windows(2).all(|w| w[1].t > w[0].t),
        "fixes must be strictly increasing in time"
    );
    if t <= fixes[0].t {
        return fixes[0].fov;
    }
    if t >= fixes[fixes.len() - 1].t {
        return fixes[fixes.len() - 1].fov;
    }
    // Binary search for the bracketing pair.
    let hi = fixes.partition_point(|f| f.t <= t);
    let (a, b) = (&fixes[hi - 1], &fixes[hi]);
    let w = (t - a.t) / (b.t - a.t);

    let disp = a.fov.p.displacement_to(b.fov.p);
    let p = a.fov.p.offset_by(disp * w);
    let theta = normalize_deg(a.fov.theta + w * signed_deg(b.fov.theta - a.fov.theta));
    Fov::new(p, theta)
}

/// Expands sparse fixes to one FoV per frame at `fps`, covering the fix
/// sequence's time span (inclusive of both ends).
///
/// This is the client-side preprocessing that turns 1 Hz GPS + compass
/// fixes into the per-frame records Algorithm 1 consumes.
///
/// ```
/// use swag_core::{interpolate_trace, Fov, TimedFov};
/// use swag_geo::LatLon;
///
/// let origin = LatLon::new(40.0, 116.32);
/// let fixes = vec![
///     TimedFov::new(0.0, Fov::new(origin, 0.0)),
///     TimedFov::new(1.0, Fov::new(origin.offset(0.0, 1.4), 0.0)), // 1 s later
/// ];
/// let frames = interpolate_trace(&fixes, 25.0);
/// assert_eq!(frames.len(), 26); // 25 fps over one second, inclusive
/// ```
pub fn interpolate_trace(fixes: &[TimedFov], fps: f64) -> Vec<TimedFov> {
    assert!(fps > 0.0, "fps must be positive");
    if fixes.is_empty() {
        return Vec::new();
    }
    let (t0, t1) = (fixes[0].t, fixes[fixes.len() - 1].t);
    let n = ((t1 - t0) * fps).floor() as usize + 1;
    (0..n)
        .map(|i| {
            let t = t0 + i as f64 / fps;
            TimedFov::new(t, sample_at(fixes, t))
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_geo::LatLon;

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn fix(t: f64, north_m: f64, theta: f64) -> TimedFov {
        TimedFov::new(t, Fov::new(origin().offset(0.0, north_m), theta))
    }

    #[test]
    fn exact_fix_times_return_fixes() {
        let fixes = vec![
            fix(0.0, 0.0, 10.0),
            fix(1.0, 10.0, 20.0),
            fix(2.0, 30.0, 40.0),
        ];
        for f in &fixes {
            let s = sample_at(&fixes, f.t);
            assert!(s.p.distance_m(f.fov.p) < 1e-6);
            assert!((s.theta - f.fov.theta).abs() < 1e-9);
        }
    }

    #[test]
    fn midpoint_is_halfway() {
        let fixes = vec![fix(0.0, 0.0, 10.0), fix(2.0, 20.0, 30.0)];
        let mid = sample_at(&fixes, 1.0);
        assert!((origin().distance_m(mid.p) - 10.0).abs() < 0.01);
        assert!((mid.theta - 20.0).abs() < 1e-9);
    }

    #[test]
    fn clamps_outside_the_span() {
        let fixes = vec![fix(1.0, 0.0, 0.0), fix(2.0, 10.0, 90.0)];
        assert_eq!(sample_at(&fixes, 0.0), fixes[0].fov);
        assert_eq!(sample_at(&fixes, 5.0), fixes[1].fov);
    }

    #[test]
    fn azimuth_takes_the_short_way_round() {
        let fixes = vec![fix(0.0, 0.0, 350.0), fix(1.0, 0.0, 10.0)];
        let mid = sample_at(&fixes, 0.5);
        // Shortest arc through north, not through 180°.
        assert!(
            mid.theta < 1e-9 || mid.theta > 359.0,
            "interpolated through the wrong side: {}",
            mid.theta
        );
    }

    #[test]
    fn interpolate_trace_has_frame_rate_density() {
        let fixes: Vec<TimedFov> = (0..=10)
            .map(|i| fix(f64::from(i), f64::from(i) * 1.4, 0.0))
            .collect();
        let frames = interpolate_trace(&fixes, 25.0);
        assert_eq!(frames.len(), 251); // 10 s at 25 fps, inclusive
        assert!(frames.windows(2).all(|w| w[1].t > w[0].t));
        // Positions advance monotonically north at walking pace.
        let d_total = frames[0].fov.p.distance_m(frames[250].fov.p);
        assert!((d_total - 14.0).abs() < 0.05);
    }

    #[test]
    fn interpolated_speed_is_piecewise_constant() {
        let fixes = vec![fix(0.0, 0.0, 0.0), fix(1.0, 2.0, 0.0), fix(2.0, 10.0, 0.0)];
        let frames = interpolate_trace(&fixes, 10.0);
        // First second: 0.2 m per 0.1 s step; second second: 0.8 m.
        let step = |i: usize| frames[i].fov.p.distance_m(frames[i + 1].fov.p);
        assert!((step(2) - 0.2).abs() < 0.01);
        assert!((step(15) - 0.8).abs() < 0.01);
    }

    #[test]
    fn single_fix_trace() {
        let fixes = vec![fix(3.0, 5.0, 45.0)];
        assert_eq!(sample_at(&fixes, 0.0), fixes[0].fov);
        let frames = interpolate_trace(&fixes, 25.0);
        assert_eq!(frames.len(), 1);
        assert_eq!(frames[0].t, 3.0);
    }

    #[test]
    #[should_panic(expected = "empty fix sequence")]
    fn empty_fixes_panic() {
        sample_at(&[], 0.0);
    }

    #[test]
    fn segmentation_on_interpolated_trace_matches_dense_truth() {
        use crate::segmentation::segment_video;
        use crate::CameraProfile;
        // Dense ground truth: rotation at 5°/s sampled at 25 fps.
        let dense: Vec<TimedFov> = (0..500)
            .map(|i| {
                let t = f64::from(i) / 25.0;
                TimedFov::new(t, Fov::new(origin(), normalize_deg(5.0 * t)))
            })
            .collect();
        // Sparse fixes at 1 Hz, interpolated back to 25 fps.
        let sparse: Vec<TimedFov> = dense.iter().step_by(25).copied().collect();
        let upsampled = interpolate_trace(&sparse, 25.0);
        let cam = CameraProfile::smartphone();
        let segs_dense = segment_video(&dense, &cam, 0.5).len();
        let segs_upsampled = segment_video(&upsampled, &cam, 0.5).len();
        // Smooth motion: interpolation reproduces the segmentation.
        assert_eq!(segs_dense, segs_upsampled);
    }
}
