//! SWAG core: the content-free Field-of-View (FoV) video descriptor.
//!
//! This crate implements the primary contribution of *"Scan Without a
//! Glance: Towards Content-Free Crowd-Sourced Mobile Video Retrieval
//! System"* (ICPP 2015):
//!
//! * the **FoV model** — each video frame is described by the camera pose
//!   `f = (p, θ)` instead of its pixels ([`fov`]);
//! * the **similarity measurement** over FoVs, decomposing camera motion
//!   into a rotation and a translation component ([`similarity`](mod@similarity),
//!   paper §III);
//! * the **real-time video segmentation** algorithm (paper §IV, Alg. 1) and
//!   **segment abstraction** into representative FoVs ([`segmentation`],
//!   [`abstraction`]);
//! * the supporting **sector geometry** used by rank-based retrieval
//!   ([`sector`], paper §V-B) and a compact **wire codec** for descriptors
//!   ([`descriptor`]).
//!
//! The crate is deliberately free of any indexing, networking or CV code —
//! those live in the substrate crates (`swag-rtree`, `swag-server`,
//! `swag-client`, `swag-net`, `swag-vision`).
//!
//! # Quickstart
//!
//! ```
//! use swag_core::{CameraProfile, Fov, TimedFov, Segmenter};
//! use swag_geo::LatLon;
//!
//! let camera = CameraProfile::default();
//! // A phone panning right while walking north: one FoV sample per frame.
//! let frames: Vec<TimedFov> = (0..100)
//!     .map(|i| {
//!         let t = i as f64 / 25.0; // 25 fps
//!         let pos = LatLon::new(40.0, 116.32).offset(0.0, 1.4 * t);
//!         TimedFov::new(t, Fov::new(pos, 3.0 * t))
//!     })
//!     .collect();
//!
//! // Segment in real time with the paper's Algorithm 1.
//! let mut seg = Segmenter::new(camera, 0.5);
//! let mut segments = Vec::new();
//! for f in frames {
//!     segments.extend(seg.push(f));
//! }
//! segments.extend(seg.finish());
//! assert!(!segments.is_empty());
//!
//! // Each segment is abstracted into a single representative FoV.
//! let reps: Vec<_> = segments.iter().map(|s| s.abstract_default()).collect();
//! assert_eq!(reps.len(), segments.len());
//! ```

pub mod abstraction;
pub mod descriptor;
pub mod fov;
pub mod interpolation;
pub mod sector;
pub mod segmentation;
pub mod similarity;
pub mod smoothing;
pub mod trace_io;

pub use abstraction::{abstract_segment, AveragingRule, RepFov};
pub use descriptor::{DescriptorCodec, UploadBatch};
pub use fov::{CameraProfile, Fov, TimedFov};
pub use interpolation::{interpolate_trace, sample_at};
pub use sector::{points_toward, sector_contains, sector_intersects_circle};
pub use segmentation::{segment_video, Segment, Segmenter};
pub use similarity::{
    similarity, similarity_parts, similarity_parts_trig, similarity_trig, vector_model_similarity,
    CamTrig, SimilarityBreakdown,
};
pub use smoothing::FovSmoother;
pub use trace_io::{read_reps_csv, read_trace_csv, write_reps_csv, write_trace_csv, TraceIoError};
