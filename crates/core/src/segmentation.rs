//! Real-time FoV-based video segmentation (paper §IV-A, Algorithm 1).
//!
//! While recording, each incoming frame record `(t_i, p_i, θ_i)` is compared
//! against the **initial FoV** `f_s` of the current segment. When
//! `Sim(f_s, f_i) < thresh` the current segment is closed and a new one is
//! started at `f_i`. The decision is O(1) per frame — a single similarity
//! evaluation — so the algorithm runs comfortably inside a capture loop.
//!
//! Two entry points are provided:
//!
//! * [`Segmenter`] — the streaming state machine used by the client while
//!   recording;
//! * [`segment_video`] — the offline batch edition (Algorithm 1 verbatim),
//!   used by tests and benchmarks.
//!
//! A property test asserts the two produce identical segmentations.

use serde::{Deserialize, Serialize};

use crate::fov::{CameraProfile, Fov, TimedFov};
use crate::similarity::{similarity_trig, CamTrig};

/// A contiguous run of video frames whose FoVs stay similar to the
/// segment's initial FoV.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Segment {
    /// The member frames, in capture order. Never empty.
    pub fovs: Vec<TimedFov>,
}

impl Segment {
    /// Segment start time `t_s` (timestamp of the first frame).
    #[inline]
    pub fn start_t(&self) -> f64 {
        self.fovs[0].t
    }

    /// Segment end time `t_e` (timestamp of the last frame).
    #[inline]
    pub fn end_t(&self) -> f64 {
        self.fovs[self.fovs.len() - 1].t
    }

    /// Duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.end_t() - self.start_t()
    }

    /// Number of frames.
    #[inline]
    pub fn len(&self) -> usize {
        self.fovs.len()
    }

    /// Whether the segment has no frames (never true for segments produced
    /// by this module).
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.fovs.is_empty()
    }

    /// Abstracts the segment with the default (circular-mean) averaging
    /// rule. See [`crate::abstraction::abstract_segment`].
    pub fn abstract_default(&self) -> crate::abstraction::RepFov {
        crate::abstraction::abstract_segment(self, crate::abstraction::AveragingRule::Circular)
    }
}

/// Streaming segmenter: the client-side real-time edition of Algorithm 1.
///
/// Feed frames with [`push`](Segmenter::push); each call returns the
/// just-closed segment if the new frame triggered a cut. Call
/// [`finish`](Segmenter::finish) when recording stops to flush the final
/// segment.
#[derive(Debug, Clone)]
pub struct Segmenter {
    cam: CameraProfile,
    /// Camera trigonometry, precomputed once — the per-frame similarity
    /// check is the segmenter's entire hot path.
    trig: CamTrig,
    thresh: f64,
    /// Optional upper bound on segment duration, seconds.
    max_segment_s: Option<f64>,
    /// Initial FoV `f_s` of the current segment.
    anchor: Option<Fov>,
    current: Vec<TimedFov>,
    /// Total frames consumed (for statistics).
    frames_seen: u64,
    /// Segments emitted so far (excluding the one pending in `finish`).
    segments_emitted: u64,
}

impl Segmenter {
    /// Creates a segmenter with the given camera profile and similarity
    /// threshold `thresh ∈ [0, 1]`.
    ///
    /// Larger thresholds cut sooner and produce denser segmentations
    /// (paper §VII).
    ///
    /// # Panics
    /// Panics if `thresh` is outside `[0, 1]` or not finite.
    pub fn new(cam: CameraProfile, thresh: f64) -> Self {
        assert!(
            thresh.is_finite() && (0.0..=1.0).contains(&thresh),
            "segmentation threshold must be in [0, 1], got {thresh}"
        );
        Segmenter {
            cam,
            trig: CamTrig::new(&cam),
            thresh,
            max_segment_s: None,
            anchor: None,
            current: Vec::new(),
            frames_seen: 0,
            segments_emitted: 0,
        }
    }

    /// Bounds segment duration: a segment is force-closed once the next
    /// frame would stretch it past `max_segment_s` seconds, even while the
    /// FoV stays similar. A stationary camera otherwise produces one
    /// unbounded segment, which hurts retrieval granularity and the §VII
    /// temporal-utility accounting.
    ///
    /// # Panics
    /// Panics if `max_segment_s` is not positive.
    pub fn with_max_segment_s(mut self, max_segment_s: f64) -> Self {
        assert!(
            max_segment_s > 0.0,
            "max segment duration must be positive, got {max_segment_s}"
        );
        self.max_segment_s = Some(max_segment_s);
        self
    }

    /// The configured threshold.
    #[inline]
    pub fn thresh(&self) -> f64 {
        self.thresh
    }

    /// The camera profile used for similarity evaluation.
    #[inline]
    pub fn camera(&self) -> &CameraProfile {
        &self.cam
    }

    /// Number of frames consumed so far.
    #[inline]
    pub fn frames_seen(&self) -> u64 {
        self.frames_seen
    }

    /// Consumes one frame record; returns the segment that was closed by
    /// this frame, if any.
    pub fn push(&mut self, frame: TimedFov) -> Option<Segment> {
        self.frames_seen += 1;
        match self.anchor {
            None => {
                self.anchor = Some(frame.fov);
                self.current.push(frame);
                None
            }
            Some(anchor) => {
                let over_duration = self
                    .max_segment_s
                    .is_some_and(|max| frame.t - self.current[0].t > max);
                if over_duration || similarity_trig(&anchor, &frame.fov, &self.trig) < self.thresh {
                    // Close the current segment and restart at this frame.
                    let done = Segment {
                        fovs: std::mem::take(&mut self.current),
                    };
                    self.anchor = Some(frame.fov);
                    self.current.push(frame);
                    self.segments_emitted += 1;
                    Some(done)
                } else {
                    self.current.push(frame);
                    None
                }
            }
        }
    }

    /// Flushes the in-progress segment when recording stops. Returns `None`
    /// if no frames were ever pushed.
    pub fn finish(mut self) -> Option<Segment> {
        if self.current.is_empty() {
            None
        } else {
            Some(Segment {
                fovs: std::mem::take(&mut self.current),
            })
        }
    }
}

/// Offline batch segmentation: the paper's Algorithm 1 applied to a whole
/// FoV sequence at once.
///
/// Returns an empty vector for an empty input. The concatenation of the
/// returned segments' frames equals the input sequence.
pub fn segment_video(frames: &[TimedFov], cam: &CameraProfile, thresh: f64) -> Vec<Segment> {
    let mut seg = Segmenter::new(*cam, thresh);
    let mut out = Vec::new();
    for &f in frames {
        if let Some(s) = seg.push(f) {
            out.push(s);
        }
    }
    if let Some(s) = seg.finish() {
        out.push(s);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_geo::LatLon;

    fn cam() -> CameraProfile {
        CameraProfile::smartphone()
    }

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    /// A stationary camera rotating at `deg_per_frame`.
    fn rotating_trace(n: usize, deg_per_frame: f64) -> Vec<TimedFov> {
        (0..n)
            .map(|i| {
                TimedFov::new(
                    i as f64 / 25.0,
                    Fov::new(origin(), deg_per_frame * i as f64),
                )
            })
            .collect()
    }

    #[test]
    fn empty_input_gives_no_segments() {
        assert!(segment_video(&[], &cam(), 0.5).is_empty());
        assert!(Segmenter::new(cam(), 0.5).finish().is_none());
    }

    #[test]
    fn single_frame_gives_single_segment() {
        let frames = rotating_trace(1, 0.0);
        let segs = segment_video(&frames, &cam(), 0.5);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 1);
        assert_eq!(segs[0].start_t(), segs[0].end_t());
    }

    #[test]
    fn stationary_camera_never_cuts() {
        let frames = rotating_trace(500, 0.0);
        let segs = segment_video(&frames, &cam(), 0.99);
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].len(), 500);
    }

    #[test]
    fn rotation_cuts_at_predictable_angle() {
        // Sim_R = (2α − δθ)/2α < 0.5  ⇔  δθ > α = 25°.
        // At 1°/frame the anchor is at 0°, so the first cut happens at
        // frame 26 (δθ = 26°), giving segments of 26 frames.
        let frames = rotating_trace(100, 1.0);
        let segs = segment_video(&frames, &cam(), 0.5);
        assert_eq!(segs[0].len(), 26);
        assert_eq!(segs[1].len(), 26);
        // Frame sequence is preserved and partitioned.
        let total: usize = segs.iter().map(Segment::len).sum();
        assert_eq!(total, 100);
    }

    #[test]
    fn segments_partition_input_in_order() {
        let frames = rotating_trace(237, 0.7);
        let segs = segment_video(&frames, &cam(), 0.6);
        let rebuilt: Vec<TimedFov> = segs.iter().flat_map(|s| s.fovs.iter().copied()).collect();
        assert_eq!(rebuilt, frames);
        // Segment boundaries are monotone in time.
        for w in segs.windows(2) {
            assert!(w[0].end_t() < w[1].start_t());
        }
    }

    #[test]
    fn higher_threshold_cuts_more_densely() {
        // §VII: "when threshold gets bigger, the segmentation of video
        // would be denser."
        let frames = rotating_trace(400, 0.5);
        let loose = segment_video(&frames, &cam(), 0.3).len();
        let tight = segment_video(&frames, &cam(), 0.8).len();
        assert!(tight > loose, "tight {tight} loose {loose}");
    }

    #[test]
    fn threshold_zero_never_cuts() {
        // Sim ≥ 0 always, so Sim < 0 never holds.
        let frames = rotating_trace(300, 5.0);
        let segs = segment_video(&frames, &cam(), 0.0);
        assert_eq!(segs.len(), 1);
    }

    #[test]
    fn streaming_matches_offline() {
        let frames = rotating_trace(321, 0.9);
        let offline = segment_video(&frames, &cam(), 0.55);

        let mut seg = Segmenter::new(cam(), 0.55);
        let mut online = Vec::new();
        for &f in &frames {
            online.extend(seg.push(f));
        }
        online.extend(seg.finish());
        assert_eq!(online, offline);
    }

    #[test]
    fn walking_translation_eventually_cuts() {
        // Walk north at 1.4 m/s looking north: Sim_∥ decays slowly but the
        // anchor similarity eventually crosses a strict threshold.
        let frames: Vec<TimedFov> = (0..2000)
            .map(|i| {
                let t = i as f64 / 25.0;
                TimedFov::new(t, Fov::new(origin().offset(0.0, 1.4 * t), 0.0))
            })
            .collect();
        let segs = segment_video(&frames, &cam(), 0.7);
        assert!(segs.len() > 1);
    }

    #[test]
    #[should_panic(expected = "threshold")]
    fn rejects_out_of_range_threshold() {
        Segmenter::new(cam(), 1.5);
    }

    #[test]
    fn max_duration_bounds_stationary_segments() {
        // A stationary camera: without a bound, one giant segment.
        let frames = rotating_trace(500, 0.0); // 20 s at 25 fps
        let unbounded = segment_video(&frames, &cam(), 0.9);
        assert_eq!(unbounded.len(), 1);

        let mut seg = Segmenter::new(cam(), 0.9).with_max_segment_s(5.0);
        let mut out = Vec::new();
        for &f in &frames {
            out.extend(seg.push(f));
        }
        out.extend(seg.finish());
        assert!(out.len() >= 3, "got {} segments", out.len());
        for s in &out {
            assert!(s.duration() <= 5.0 + 0.05, "segment of {} s", s.duration());
        }
        // Still a partition.
        let total: usize = out.iter().map(Segment::len).sum();
        assert_eq!(total, 500);
    }

    #[test]
    #[should_panic(expected = "max segment duration")]
    fn rejects_non_positive_max_duration() {
        let _ = Segmenter::new(cam(), 0.5).with_max_segment_s(0.0);
    }
}
