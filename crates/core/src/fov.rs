//! The Field-of-View model (paper §II-B).
//!
//! An FoV is the 2-tuple `f = (p, θ)`: the camera's GPS position and its
//! compass azimuth. Together with the camera's fixed half viewing angle `α`
//! and an empirical view radius `R` it describes the conical (sector-shaped)
//! area visible in a frame.

use serde::{Deserialize, Serialize};
use swag_geo::{angle_diff_deg, normalize_deg, LatLon};

/// Static per-camera parameters: the half viewing angle `α` (so the full
/// viewing angle is `𝒜 = 2α`) and the empirical view radius `R`.
///
/// The paper suggests choosing `R` per environment — e.g. ~20 m in
/// residential areas and ~100 m on highways (§V-B step 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct CameraProfile {
    /// Half viewing angle `α`, degrees, in `(0, 90)`.
    pub half_angle_deg: f64,
    /// Empirical radius of view `R`, metres, positive.
    pub view_radius_m: f64,
}

/// Empirical view radius for residential areas (paper §V-B).
pub const RESIDENTIAL_RADIUS_M: f64 = 20.0;
/// Empirical view radius for highways (paper §V-B).
pub const HIGHWAY_RADIUS_M: f64 = 100.0;

impl CameraProfile {
    /// Creates a camera profile.
    ///
    /// # Panics
    /// Panics if `half_angle_deg ∉ (0, 90)` or `view_radius_m ≤ 0`.
    pub fn new(half_angle_deg: f64, view_radius_m: f64) -> Self {
        assert!(
            half_angle_deg > 0.0 && half_angle_deg < 90.0,
            "half viewing angle must be in (0, 90) degrees, got {half_angle_deg}"
        );
        assert!(
            view_radius_m > 0.0,
            "view radius must be positive, got {view_radius_m}"
        );
        CameraProfile {
            half_angle_deg,
            view_radius_m,
        }
    }

    /// A typical smartphone camera in an urban setting: 50° viewing angle
    /// (`α = 25°`), 100 m radius of view.
    ///
    /// `α = 25° < arctan(1/2)` keeps the paper's `Sim_∥ ≥ Sim_⊥` ordering
    /// valid at every translation distance (see `DESIGN.md`).
    pub fn smartphone() -> Self {
        CameraProfile::new(25.0, HIGHWAY_RADIUS_M)
    }

    /// Smartphone camera tuned for residential areas (`R = 20 m`).
    pub fn residential() -> Self {
        CameraProfile::new(25.0, RESIDENTIAL_RADIUS_M)
    }

    /// Full viewing angle `𝒜 = 2α` in degrees.
    #[inline]
    pub fn viewing_angle_deg(&self) -> f64 {
        2.0 * self.half_angle_deg
    }

    /// `α` in radians.
    #[inline]
    pub fn alpha_rad(&self) -> f64 {
        self.half_angle_deg.to_radians()
    }

    /// The translation distance at which the perpendicular similarity
    /// reaches zero: `2R·sin α` (paper §III Case 2, statement 2).
    #[inline]
    pub fn perp_cutoff_m(&self) -> f64 {
        2.0 * self.view_radius_m * self.alpha_rad().sin()
    }
}

impl Default for CameraProfile {
    fn default() -> Self {
        CameraProfile::smartphone()
    }
}

/// A Field of View: camera position and compass azimuth (paper eq. 1).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct Fov {
    /// Camera position `p`.
    pub p: LatLon,
    /// Camera azimuth `θ`, degrees clockwise from north, in `[0, 360)`.
    pub theta: f64,
}

impl Fov {
    /// Creates an FoV, normalising the azimuth to `[0, 360)`.
    pub fn new(p: LatLon, theta_deg: f64) -> Self {
        Fov {
            p,
            theta: normalize_deg(theta_deg),
        }
    }

    /// The covered angle range `Θ = (θ − α, θ + α)` as `(low, high)` in
    /// degrees (not normalised; `high − low = 2α`).
    pub fn coverage_deg(&self, cam: &CameraProfile) -> (f64, f64) {
        (
            self.theta - cam.half_angle_deg,
            self.theta + cam.half_angle_deg,
        )
    }

    /// Whether a compass direction falls inside the covered angle range.
    #[inline]
    pub fn covers_direction(&self, direction_deg: f64, cam: &CameraProfile) -> bool {
        angle_diff_deg(self.theta, direction_deg) <= cam.half_angle_deg
    }

    /// Position difference `δ_p` to another FoV, in metres (paper eq. 2).
    #[inline]
    pub fn delta_p_m(&self, other: &Fov) -> f64 {
        self.p.distance_m(other.p)
    }

    /// Orientation difference `δ_θ` to another FoV, degrees in `[0, 180]`
    /// (paper eq. 2).
    #[inline]
    pub fn delta_theta_deg(&self, other: &Fov) -> f64 {
        angle_diff_deg(self.theta, other.theta)
    }
}

/// An FoV stamped with the capture time of its video frame, in seconds.
///
/// This is the `(t_i, p_i, θ_i)` record the client collects per frame
/// (paper §II-C).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct TimedFov {
    /// Capture timestamp in seconds (device clock).
    pub t: f64,
    /// The frame's FoV.
    pub fov: Fov,
}

impl TimedFov {
    /// Creates a timestamped FoV.
    pub fn new(t: f64, fov: Fov) -> Self {
        TimedFov { t, fov }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    #[test]
    fn azimuth_is_normalised() {
        assert_eq!(Fov::new(p(), 370.0).theta, 10.0);
        assert_eq!(Fov::new(p(), -90.0).theta, 270.0);
    }

    #[test]
    fn coverage_width_is_viewing_angle() {
        let cam = CameraProfile::new(30.0, 50.0);
        let f = Fov::new(p(), 100.0);
        let (lo, hi) = f.coverage_deg(&cam);
        assert_eq!(hi - lo, cam.viewing_angle_deg());
        assert_eq!((lo, hi), (70.0, 130.0));
    }

    #[test]
    fn covers_direction_with_wrap() {
        let cam = CameraProfile::new(30.0, 50.0);
        let f = Fov::new(p(), 350.0);
        assert!(f.covers_direction(10.0, &cam));
        assert!(f.covers_direction(320.0, &cam));
        assert!(!f.covers_direction(25.0, &cam));
        assert!(!f.covers_direction(180.0, &cam));
    }

    #[test]
    fn deltas_match_paper_eq2() {
        let f1 = Fov::new(p(), 10.0);
        let f2 = Fov::new(p().offset(90.0, 30.0), 350.0);
        assert!((f1.delta_p_m(&f2) - 30.0).abs() < 0.01);
        assert!((f1.delta_theta_deg(&f2) - 20.0).abs() < 1e-9);
    }

    #[test]
    fn perp_cutoff_formula() {
        let cam = CameraProfile::new(30.0, 100.0);
        assert!((cam.perp_cutoff_m() - 100.0).abs() < 1e-9); // 2·100·sin30 = 100
    }

    #[test]
    #[should_panic(expected = "half viewing angle")]
    fn rejects_bad_half_angle() {
        CameraProfile::new(90.0, 10.0);
    }

    #[test]
    #[should_panic(expected = "view radius")]
    fn rejects_bad_radius() {
        CameraProfile::new(25.0, 0.0);
    }
}
