//! Compact wire codec for representative-FoV descriptors.
//!
//! The paper's headline claim is that FoV descriptors have "negligible data
//! size" compared to content descriptors. This module makes that size
//! concrete: one representative FoV serialises to
//! [`RECORD_SIZE`](DescriptorCodec::RECORD_SIZE) = **22 bytes**:
//!
//! | field | encoding | size |
//! |---|---|---|
//! | latitude | `i32`, 10⁻⁷ degrees (≈ 1.1 cm) | 4 |
//! | longitude | `i32`, 10⁻⁷ degrees | 4 |
//! | azimuth | `u16`, 360°/65536 (≈ 0.0055°) | 2 |
//! | start time | `u64`, milliseconds | 8 |
//! | duration | `u32`, milliseconds (≤ ~49 days) | 4 |
//!
//! Batches frame a provider/video header in front of the records so a whole
//! recording session uploads as one message.

use bytes::{Buf, BufMut, Bytes, BytesMut};
use serde::{Deserialize, Serialize};
use swag_geo::LatLon;

use crate::abstraction::RepFov;
use crate::fov::Fov;

/// Errors produced while encoding or decoding descriptor messages.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CodecError {
    /// The buffer ended before a complete record/header was read.
    Truncated,
    /// The magic bytes did not match [`DescriptorCodec::MAGIC`].
    BadMagic(u16),
    /// Unknown format version.
    BadVersion(u8),
    /// The declared record count disagrees with the buffer length.
    LengthMismatch { declared: u32, available: usize },
    /// A record field cannot be represented in the wire format (negative
    /// start time, duration beyond ~49 days, non-finite or out-of-range
    /// coordinate). The field name says which.
    OutOfRange(&'static str),
}

impl std::fmt::Display for CodecError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            CodecError::Truncated => write!(f, "descriptor message truncated"),
            CodecError::BadMagic(m) => write!(f, "bad magic 0x{m:04x}"),
            CodecError::BadVersion(v) => write!(f, "unsupported descriptor version {v}"),
            CodecError::LengthMismatch {
                declared,
                available,
            } => write!(
                f,
                "declared {declared} records but only {available} bytes of payload"
            ),
            CodecError::OutOfRange(field) => {
                write!(f, "record field '{field}' not representable on the wire")
            }
        }
    }
}

impl std::error::Error for CodecError {}

/// A batch of representative FoVs uploaded after one recording session
/// (paper §II-C: "the set of FoV will be uploaded to the cloud server").
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct UploadBatch {
    /// Identifier of the contributing device/user.
    pub provider_id: u64,
    /// Identifier of the recorded video on the provider's device.
    pub video_id: u64,
    /// One representative FoV per video segment, in time order.
    pub reps: Vec<RepFov>,
}

/// Encoder/decoder for the compact descriptor wire format.
#[derive(Debug, Clone, Copy, Default)]
pub struct DescriptorCodec;

impl DescriptorCodec {
    /// Bytes per representative-FoV record.
    pub const RECORD_SIZE: usize = 22;
    /// Bytes of batch framing (magic, version, provider, video, count).
    pub const HEADER_SIZE: usize = 2 + 1 + 8 + 8 + 4;
    /// Message magic: "Fv".
    pub const MAGIC: u16 = 0x4676;
    /// Current format version.
    pub const VERSION: u8 = 1;

    const LATLON_SCALE: f64 = 1e7;
    const THETA_SCALE: f64 = 65536.0 / 360.0;

    /// Appends one record to `buf`.
    ///
    /// Errors with [`CodecError::OutOfRange`] when a field cannot be
    /// represented: negative or non-finite start time, duration over
    /// `u32::MAX` ms (~49 days), non-finite azimuth, or a coordinate
    /// outside the `i32` fixed-point range. Nothing is written on error.
    pub fn encode_rep(rep: &RepFov, buf: &mut BytesMut) -> Result<(), CodecError> {
        let lat = rep.fov.p.lat * Self::LATLON_SCALE;
        if !lat.is_finite() || lat.round() < i32::MIN as f64 || lat.round() > i32::MAX as f64 {
            return Err(CodecError::OutOfRange("lat"));
        }
        let lng = rep.fov.p.lng * Self::LATLON_SCALE;
        if !lng.is_finite() || lng.round() < i32::MIN as f64 || lng.round() > i32::MAX as f64 {
            return Err(CodecError::OutOfRange("lng"));
        }
        if !rep.fov.theta.is_finite() {
            return Err(CodecError::OutOfRange("theta"));
        }
        let start_ms = (rep.t_start * 1000.0).round();
        if !(0.0..=u64::MAX as f64).contains(&start_ms) {
            return Err(CodecError::OutOfRange("t_start"));
        }
        let dur_ms = ((rep.t_end - rep.t_start) * 1000.0).round();
        if !(0.0..=u32::MAX as f64).contains(&dur_ms) {
            return Err(CodecError::OutOfRange("duration"));
        }
        buf.put_i32_le(lat.round() as i32);
        buf.put_i32_le(lng.round() as i32);
        let theta = rep.fov.theta.rem_euclid(360.0);
        buf.put_u16_le(((theta * Self::THETA_SCALE).round() as u32 % 65536) as u16);
        buf.put_u64_le(start_ms as u64);
        buf.put_u32_le(dur_ms as u32);
        Ok(())
    }

    /// Reads one record from `buf`.
    pub fn decode_rep(buf: &mut impl Buf) -> Result<RepFov, CodecError> {
        if buf.remaining() < Self::RECORD_SIZE {
            return Err(CodecError::Truncated);
        }
        let lat = buf.get_i32_le() as f64 / Self::LATLON_SCALE;
        let lng = buf.get_i32_le() as f64 / Self::LATLON_SCALE;
        let theta = buf.get_u16_le() as f64 / Self::THETA_SCALE;
        let start = buf.get_u64_le() as f64 / 1000.0;
        let dur = buf.get_u32_le() as f64 / 1000.0;
        Ok(RepFov::new(
            start,
            start + dur,
            Fov::new(LatLon::new(lat, lng), theta),
        ))
    }

    /// Serialises a whole upload batch.
    ///
    /// Errors with [`CodecError::OutOfRange`] if any record is not
    /// representable (see [`Self::encode_rep`]).
    pub fn encode_batch(batch: &UploadBatch) -> Result<Bytes, CodecError> {
        let mut buf =
            BytesMut::with_capacity(Self::HEADER_SIZE + batch.reps.len() * Self::RECORD_SIZE);
        buf.put_u16_le(Self::MAGIC);
        buf.put_u8(Self::VERSION);
        buf.put_u64_le(batch.provider_id);
        buf.put_u64_le(batch.video_id);
        buf.put_u32_le(batch.reps.len() as u32);
        for rep in &batch.reps {
            Self::encode_rep(rep, &mut buf)?;
        }
        Ok(buf.freeze())
    }

    /// Parses an upload batch.
    pub fn decode_batch(mut buf: impl Buf) -> Result<UploadBatch, CodecError> {
        if buf.remaining() < Self::HEADER_SIZE {
            return Err(CodecError::Truncated);
        }
        let magic = buf.get_u16_le();
        if magic != Self::MAGIC {
            return Err(CodecError::BadMagic(magic));
        }
        let version = buf.get_u8();
        if version != Self::VERSION {
            return Err(CodecError::BadVersion(version));
        }
        let provider_id = buf.get_u64_le();
        let video_id = buf.get_u64_le();
        let count = buf.get_u32_le();
        let available = buf.remaining();
        if available != count as usize * Self::RECORD_SIZE {
            return Err(CodecError::LengthMismatch {
                declared: count,
                available,
            });
        }
        let mut reps = Vec::with_capacity(count as usize);
        for _ in 0..count {
            reps.push(Self::decode_rep(&mut buf)?);
        }
        Ok(UploadBatch {
            provider_id,
            video_id,
            reps,
        })
    }

    /// Size in bytes of an encoded batch with `n` records.
    #[inline]
    pub fn batch_size(n: usize) -> usize {
        Self::HEADER_SIZE + n * Self::RECORD_SIZE
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn rep(lat: f64, lng: f64, theta: f64, t0: f64, t1: f64) -> RepFov {
        RepFov::new(t0, t1, Fov::new(LatLon::new(lat, lng), theta))
    }

    #[test]
    fn record_round_trip_within_quantisation() {
        let r = rep(
            40.123456789,
            116.987654321,
            123.456,
            1_000_000.123,
            1_000_060.789,
        );
        let mut buf = BytesMut::new();
        DescriptorCodec::encode_rep(&r, &mut buf).unwrap();
        assert_eq!(buf.len(), DescriptorCodec::RECORD_SIZE);
        let d = DescriptorCodec::decode_rep(&mut buf.freeze()).unwrap();
        assert!((d.fov.p.lat - r.fov.p.lat).abs() < 1e-7);
        assert!((d.fov.p.lng - r.fov.p.lng).abs() < 1e-7);
        assert!((d.fov.theta - r.fov.theta).abs() < 0.006);
        assert!((d.t_start - r.t_start).abs() < 0.001);
        assert!((d.duration() - r.duration()).abs() < 0.002);
    }

    #[test]
    fn azimuth_near_360_wraps_cleanly() {
        let r = rep(0.0, 0.0, 359.9999, 0.0, 1.0);
        let mut buf = BytesMut::new();
        DescriptorCodec::encode_rep(&r, &mut buf).unwrap();
        let d = DescriptorCodec::decode_rep(&mut buf.freeze()).unwrap();
        // 359.9999 rounds to code 65536 ≡ 0 → decodes as 0°.
        assert!(d.fov.theta < 0.006 || (360.0 - d.fov.theta) < 0.006);
    }

    #[test]
    fn batch_round_trip() {
        let batch = UploadBatch {
            provider_id: 7,
            video_id: 99,
            reps: (0..10)
                .map(|i| {
                    rep(
                        40.0 + i as f64 * 1e-4,
                        116.3,
                        i as f64 * 10.0,
                        i as f64,
                        i as f64 + 0.5,
                    )
                })
                .collect(),
        };
        let bytes = DescriptorCodec::encode_batch(&batch).unwrap();
        assert_eq!(bytes.len(), DescriptorCodec::batch_size(10));
        let decoded = DescriptorCodec::decode_batch(bytes).unwrap();
        assert_eq!(decoded.provider_id, 7);
        assert_eq!(decoded.video_id, 99);
        assert_eq!(decoded.reps.len(), 10);
    }

    #[test]
    fn empty_batch_round_trips() {
        let batch = UploadBatch {
            provider_id: 1,
            video_id: 2,
            reps: vec![],
        };
        let bytes = DescriptorCodec::encode_batch(&batch).unwrap();
        assert_eq!(bytes.len(), DescriptorCodec::HEADER_SIZE);
        let decoded = DescriptorCodec::decode_batch(bytes).unwrap();
        assert!(decoded.reps.is_empty());
    }

    #[test]
    fn decode_rejects_garbage() {
        assert_eq!(
            DescriptorCodec::decode_batch(&b"xx"[..]).unwrap_err(),
            CodecError::Truncated
        );
        let mut buf = BytesMut::new();
        buf.put_u16_le(0xdead);
        buf.put_u8(1);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        assert!(matches!(
            DescriptorCodec::decode_batch(buf.freeze()).unwrap_err(),
            CodecError::BadMagic(0xdead)
        ));
    }

    #[test]
    fn decode_rejects_bad_version() {
        let mut buf = BytesMut::new();
        buf.put_u16_le(DescriptorCodec::MAGIC);
        buf.put_u8(42);
        buf.put_u64_le(0);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        assert_eq!(
            DescriptorCodec::decode_batch(buf.freeze()).unwrap_err(),
            CodecError::BadVersion(42)
        );
    }

    #[test]
    fn decode_rejects_length_mismatch() {
        let batch = UploadBatch {
            provider_id: 1,
            video_id: 2,
            reps: vec![rep(0.0, 0.0, 0.0, 0.0, 1.0)],
        };
        let bytes = DescriptorCodec::encode_batch(&batch).unwrap();
        // Chop the last byte off.
        let truncated = bytes.slice(0..bytes.len() - 1);
        assert!(matches!(
            DescriptorCodec::decode_batch(truncated).unwrap_err(),
            CodecError::LengthMismatch { declared: 1, .. }
        ));
    }

    #[test]
    fn negative_start_time_is_rejected_not_clamped() {
        // Regression: this used to clamp to t=0 silently, so a pre-epoch
        // record round-tripped to a different instant with no error.
        let r = rep(40.0, 116.3, 0.0, -5.0, 1.0);
        let mut buf = BytesMut::new();
        assert_eq!(
            DescriptorCodec::encode_rep(&r, &mut buf).unwrap_err(),
            CodecError::OutOfRange("t_start")
        );
        assert!(buf.is_empty(), "failed encode must write nothing");
    }

    #[test]
    fn overlong_duration_is_rejected_not_truncated() {
        // Regression: durations over u32::MAX ms used to saturate, so a
        // ~50-day segment silently shrank to ~49.7 days.
        let days_50 = 50.0 * 86_400.0;
        let r = rep(40.0, 116.3, 0.0, 0.0, days_50);
        let mut buf = BytesMut::new();
        assert_eq!(
            DescriptorCodec::encode_rep(&r, &mut buf).unwrap_err(),
            CodecError::OutOfRange("duration")
        );
    }

    #[test]
    fn non_finite_fields_are_rejected() {
        for (r, field) in [
            (rep(f64::NAN, 0.0, 0.0, 0.0, 1.0), "lat"),
            (rep(0.0, f64::INFINITY, 0.0, 0.0, 1.0), "lng"),
        ] {
            let mut buf = BytesMut::new();
            assert_eq!(
                DescriptorCodec::encode_rep(&r, &mut buf).unwrap_err(),
                CodecError::OutOfRange(field)
            );
        }
    }

    #[test]
    fn batch_with_one_bad_record_errors() {
        let batch = UploadBatch {
            provider_id: 1,
            video_id: 2,
            reps: vec![
                rep(40.0, 116.3, 0.0, 0.0, 1.0),
                rep(40.0, 116.3, 0.0, -1.0, 1.0),
            ],
        };
        assert_eq!(
            DescriptorCodec::encode_batch(&batch).unwrap_err(),
            CodecError::OutOfRange("t_start")
        );
    }

    #[test]
    #[allow(clippy::assertions_on_constants)] // documents the size relation
    fn record_size_is_tiny_compared_to_video() {
        // One second of 720p H.264 at a conservative 2 Mbps is 250 kB;
        // the claim "descriptors are much smaller" should hold by orders
        // of magnitude.
        assert!(DescriptorCodec::RECORD_SIZE < 250_000 / 1000);
    }
}
