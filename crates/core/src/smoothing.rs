//! Sensor smoothing for FoV streams.
//!
//! Raw GPS/compass samples jitter by metres and degrees (the gap between
//! theory and practice in the paper's Fig. 4). Left unfiltered, that
//! jitter makes `Sim(f_s, f_i)` cross the segmentation threshold
//! spuriously and inflates the segment count — and with it upload size and
//! index load. This module provides a streaming exponential moving average
//! over positions and (circularly) over azimuths, suitable for running
//! between the sensor callback and the [`crate::Segmenter`].
//!
//! The filter is causal and O(1) per sample, preserving the real-time
//! property of the client pipeline.

use swag_geo::{normalize_deg, signed_deg, LatLon, Vec2};

use crate::fov::{Fov, TimedFov};

/// Streaming exponential smoother for FoV samples.
///
/// `alpha ∈ (0, 1]` is the update weight: 1 = no smoothing, small values
/// smooth aggressively but lag behind real motion.
///
/// ```
/// use swag_core::{Fov, FovSmoother, TimedFov};
/// use swag_geo::LatLon;
///
/// let mut smoother = FovSmoother::smartphone();
/// let origin = LatLon::new(40.0, 116.32);
/// smoother.push(TimedFov::new(0.0, Fov::new(origin, 0.0)));
/// // A wild GPS outlier 40 m off gets pulled most of the way back.
/// let noisy = TimedFov::new(0.04, Fov::new(origin.offset(90.0, 40.0), 0.0));
/// let smoothed = smoother.push(noisy);
/// assert!(smoothed.fov.p.distance_m(origin) < 11.0);
/// ```
#[derive(Debug, Clone)]
pub struct FovSmoother {
    alpha: f64,
    state: Option<SmootherState>,
}

#[derive(Debug, Clone, Copy)]
struct SmootherState {
    /// Smoothed position, kept as an anchor plus metric offset so the
    /// filter is exact under the planar model.
    anchor: LatLon,
    offset: Vec2,
    /// Smoothed azimuth, degrees.
    theta: f64,
}

impl FovSmoother {
    /// Creates a smoother.
    ///
    /// # Panics
    /// Panics if `alpha ∉ (0, 1]`.
    pub fn new(alpha: f64) -> Self {
        assert!(
            alpha > 0.0 && alpha <= 1.0,
            "smoothing alpha must be in (0, 1], got {alpha}"
        );
        FovSmoother { alpha, state: None }
    }

    /// A good default for 25 Hz smartphone streams (`alpha = 0.25`:
    /// ~150 ms effective lag, ~2× noise-σ reduction).
    pub fn smartphone() -> Self {
        FovSmoother::new(0.25)
    }

    /// The configured update weight.
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// Consumes one raw sample, returning the smoothed sample (same
    /// timestamp). The first sample passes through unchanged.
    pub fn push(&mut self, sample: TimedFov) -> TimedFov {
        let state = match &mut self.state {
            None => {
                self.state = Some(SmootherState {
                    anchor: sample.fov.p,
                    offset: Vec2::ZERO,
                    theta: sample.fov.theta,
                });
                return sample;
            }
            Some(s) => s,
        };
        // Position EMA in the local metric frame of the anchor.
        let raw = state.anchor.displacement_to(sample.fov.p);
        state.offset = state.offset.lerp(raw, self.alpha);
        // Circular EMA on the azimuth: step along the signed shortest arc.
        let delta = signed_deg(sample.fov.theta - state.theta);
        state.theta = normalize_deg(state.theta + self.alpha * delta);

        TimedFov::new(
            sample.t,
            Fov::new(state.anchor.offset_by(state.offset), state.theta),
        )
    }

    /// Resets the filter (e.g. when a new recording starts).
    pub fn reset(&mut self) {
        self.state = None;
    }

    /// Smooths a whole pre-recorded trace.
    pub fn smooth_trace(alpha: f64, trace: &[TimedFov]) -> Vec<TimedFov> {
        let mut s = FovSmoother::new(alpha);
        trace.iter().map(|&f| s.push(f)).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    #[test]
    fn first_sample_passes_through() {
        let mut s = FovSmoother::new(0.3);
        let sample = TimedFov::new(1.0, Fov::new(origin(), 45.0));
        assert_eq!(s.push(sample), sample);
    }

    #[test]
    fn alpha_one_is_identity() {
        let mut s = FovSmoother::new(1.0);
        for i in 0..20 {
            let sample = TimedFov::new(
                f64::from(i),
                Fov::new(
                    origin().offset(f64::from(i) * 10.0, 5.0),
                    f64::from(i) * 17.0,
                ),
            );
            let out = s.push(sample);
            // Sub-0.1 mm: the anchor-frame round trip is not bit-exact.
            assert!(out.fov.p.distance_m(sample.fov.p) < 1e-4);
            assert!(swag_geo::angle_diff_deg(out.fov.theta, sample.fov.theta) < 1e-9);
        }
    }

    #[test]
    fn constant_input_converges_to_input() {
        let mut s = FovSmoother::new(0.2);
        let target = Fov::new(origin().offset(90.0, 100.0), 222.0);
        let mut last = TimedFov::new(0.0, Fov::new(origin(), 0.0));
        s.push(last);
        for i in 1..200 {
            last = s.push(TimedFov::new(f64::from(i), target));
        }
        assert!(last.fov.p.distance_m(target.p) < 0.01);
        assert!(swag_geo::angle_diff_deg(last.fov.theta, target.theta) < 0.01);
    }

    #[test]
    fn smoothing_reduces_jitter_variance() {
        // Alternate ±5 m / ±8° around a fixed pose.
        let trace: Vec<TimedFov> = (0..400)
            .map(|i| {
                let sign = if i % 2 == 0 { 1.0 } else { -1.0 };
                TimedFov::new(
                    f64::from(i) * 0.04,
                    Fov::new(origin().offset(90.0, 5.0 * sign), normalize_deg(8.0 * sign)),
                )
            })
            .collect();
        let smoothed = FovSmoother::smooth_trace(0.2, &trace);
        let spread = |t: &[TimedFov]| -> f64 {
            t.iter()
                .skip(50)
                .map(|f| f.fov.p.distance_m(origin()))
                .sum::<f64>()
                / (t.len() - 50) as f64
        };
        assert!(spread(&smoothed) < 0.4 * spread(&trace));
    }

    #[test]
    fn azimuth_smoothing_crosses_north_correctly() {
        // Jitter around 0°: samples alternate 355° / 5°. A naive linear
        // EMA would drift towards 180°; the circular EMA must stay near 0.
        let mut s = FovSmoother::new(0.3);
        let mut last = 0.0;
        for i in 0..100 {
            let theta = if i % 2 == 0 { 355.0 } else { 5.0 };
            last = s
                .push(TimedFov::new(f64::from(i), Fov::new(origin(), theta)))
                .fov
                .theta;
        }
        assert!(
            swag_geo::angle_diff_deg(last, 0.0) < 6.0,
            "smoothed azimuth drifted to {last}"
        );
    }

    #[test]
    fn reset_restarts_the_filter() {
        let mut s = FovSmoother::new(0.1);
        s.push(TimedFov::new(0.0, Fov::new(origin(), 0.0)));
        s.reset();
        let fresh = TimedFov::new(1.0, Fov::new(origin().offset(0.0, 500.0), 90.0));
        assert_eq!(s.push(fresh), fresh);
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn rejects_zero_alpha() {
        FovSmoother::new(0.0);
    }
}
