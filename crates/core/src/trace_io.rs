//! CSV import/export of FoV traces and representative FoVs.
//!
//! The interchange format for sensor recordings is deliberately plain —
//! one header line, then one `t,lat,lng,theta` row per frame record — so
//! that real GPX/sensor-log exports can be converted with a one-liner and
//! fed to the pipeline (see the `swag` CLI).

use std::io::{BufRead, Write};

use crate::abstraction::RepFov;
use crate::fov::{Fov, TimedFov};
use swag_geo::LatLon;

/// Errors produced while parsing trace CSV.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TraceIoError {
    /// Underlying I/O failure (message only, to stay `PartialEq`).
    Io(String),
    /// A malformed line, with its 1-based line number.
    Parse { line: usize, message: String },
}

impl std::fmt::Display for TraceIoError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            TraceIoError::Io(m) => write!(f, "trace I/O error: {m}"),
            TraceIoError::Parse { line, message } => {
                write!(f, "trace parse error on line {line}: {message}")
            }
        }
    }
}

impl std::error::Error for TraceIoError {}

impl From<std::io::Error> for TraceIoError {
    fn from(e: std::io::Error) -> Self {
        TraceIoError::Io(e.to_string())
    }
}

/// Header of the frame-record format.
pub const TRACE_HEADER: &str = "t,lat,lng,theta";
/// Header of the representative-FoV format.
pub const REP_HEADER: &str = "t_start,t_end,lat,lng,theta";

/// Writes a trace as CSV (`t,lat,lng,theta`).
pub fn write_trace_csv(w: &mut impl Write, trace: &[TimedFov]) -> Result<(), TraceIoError> {
    writeln!(w, "{TRACE_HEADER}")?;
    for f in trace {
        writeln!(
            w,
            "{:.3},{:.7},{:.7},{:.3}",
            f.t, f.fov.p.lat, f.fov.p.lng, f.fov.theta
        )?;
    }
    Ok(())
}

/// Reads a trace from CSV. The header line is required; blank lines and
/// `#` comments are skipped.
pub fn read_trace_csv(r: impl BufRead) -> Result<Vec<TimedFov>, TraceIoError> {
    let mut out = Vec::new();
    let mut saw_header = false;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !saw_header {
            if trimmed != TRACE_HEADER {
                return Err(TraceIoError::Parse {
                    line: line_no,
                    message: format!("expected header '{TRACE_HEADER}', got '{trimmed}'"),
                });
            }
            saw_header = true;
            continue;
        }
        let fields = parse_fields::<4>(trimmed, line_no)?;
        out.push(TimedFov::new(
            fields[0],
            Fov::new(LatLon::new(fields[1], fields[2]), fields[3]),
        ));
    }
    if !saw_header {
        return Err(TraceIoError::Parse {
            line: 0,
            message: "empty input (missing header)".into(),
        });
    }
    Ok(out)
}

/// Writes representative FoVs as CSV (`t_start,t_end,lat,lng,theta`).
pub fn write_reps_csv(w: &mut impl Write, reps: &[RepFov]) -> Result<(), TraceIoError> {
    writeln!(w, "{REP_HEADER}")?;
    for rep in reps {
        writeln!(
            w,
            "{:.3},{:.3},{:.7},{:.7},{:.3}",
            rep.t_start, rep.t_end, rep.fov.p.lat, rep.fov.p.lng, rep.fov.theta
        )?;
    }
    Ok(())
}

/// Reads representative FoVs from CSV.
pub fn read_reps_csv(r: impl BufRead) -> Result<Vec<RepFov>, TraceIoError> {
    let mut out = Vec::new();
    let mut saw_header = false;
    for (idx, line) in r.lines().enumerate() {
        let line = line?;
        let line_no = idx + 1;
        let trimmed = line.trim();
        if trimmed.is_empty() || trimmed.starts_with('#') {
            continue;
        }
        if !saw_header {
            if trimmed != REP_HEADER {
                return Err(TraceIoError::Parse {
                    line: line_no,
                    message: format!("expected header '{REP_HEADER}', got '{trimmed}'"),
                });
            }
            saw_header = true;
            continue;
        }
        let fields = parse_fields::<5>(trimmed, line_no)?;
        if fields[1] < fields[0] {
            return Err(TraceIoError::Parse {
                line: line_no,
                message: format!("t_end {} precedes t_start {}", fields[1], fields[0]),
            });
        }
        out.push(RepFov::new(
            fields[0],
            fields[1],
            Fov::new(LatLon::new(fields[2], fields[3]), fields[4]),
        ));
    }
    if !saw_header {
        return Err(TraceIoError::Parse {
            line: 0,
            message: "empty input (missing header)".into(),
        });
    }
    Ok(out)
}

fn parse_fields<const N: usize>(line: &str, line_no: usize) -> Result<[f64; N], TraceIoError> {
    let mut out = [0.0; N];
    let mut it = line.split(',');
    for (i, slot) in out.iter_mut().enumerate() {
        let raw = it.next().ok_or_else(|| TraceIoError::Parse {
            line: line_no,
            message: format!("expected {N} fields, found {i}"),
        })?;
        *slot = raw.trim().parse::<f64>().map_err(|e| TraceIoError::Parse {
            line: line_no,
            message: format!("field {}: {e}", i + 1),
        })?;
        if !slot.is_finite() {
            return Err(TraceIoError::Parse {
                line: line_no,
                message: format!("field {} is not finite", i + 1),
            });
        }
    }
    if it.next().is_some() {
        return Err(TraceIoError::Parse {
            line: line_no,
            message: format!("more than {N} fields"),
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Vec<TimedFov> {
        (0..10)
            .map(|i| {
                TimedFov::new(
                    f64::from(i) * 0.04,
                    Fov::new(
                        LatLon::new(40.0 + f64::from(i) * 1e-5, 116.32),
                        f64::from(i) * 3.0,
                    ),
                )
            })
            .collect()
    }

    #[test]
    fn trace_round_trip() {
        let trace = sample_trace();
        let mut buf = Vec::new();
        write_trace_csv(&mut buf, &trace).unwrap();
        let back = read_trace_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), trace.len());
        for (a, b) in back.iter().zip(&trace) {
            assert!((a.t - b.t).abs() < 1e-3);
            assert!(a.fov.p.distance_m(b.fov.p) < 0.02);
            assert!((a.fov.theta - b.fov.theta).abs() < 1e-3);
        }
    }

    #[test]
    fn reps_round_trip() {
        let reps = vec![
            RepFov::new(0.0, 5.5, Fov::new(LatLon::new(40.0, 116.32), 10.0)),
            RepFov::new(6.0, 9.25, Fov::new(LatLon::new(40.001, 116.321), 350.0)),
        ];
        let mut buf = Vec::new();
        write_reps_csv(&mut buf, &reps).unwrap();
        let back = read_reps_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), 2);
        assert!((back[1].t_end - 9.25).abs() < 1e-3);
        assert!((back[1].fov.theta - 350.0).abs() < 1e-3);
    }

    #[test]
    fn comments_and_blank_lines_are_skipped() {
        let csv = "# exported by some tool\n\nt,lat,lng,theta\n0.0,40.0,116.3,90.0\n\n# trailing\n1.0,40.0,116.3,91.0\n";
        let trace = read_trace_csv(csv.as_bytes()).unwrap();
        assert_eq!(trace.len(), 2);
    }

    #[test]
    fn missing_header_is_an_error() {
        let err = read_trace_csv("0.0,40.0,116.3,90.0\n".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 1, .. }));
        let err = read_trace_csv("".as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 0, .. }));
    }

    #[test]
    fn malformed_rows_report_line_numbers() {
        let csv = "t,lat,lng,theta\n0.0,40.0,116.3,90.0\nnot,a,number,here\n";
        let err = read_trace_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 3, .. }), "{err}");

        let csv = "t,lat,lng,theta\n0.0,40.0,116.3\n";
        let err = read_trace_csv(csv.as_bytes()).unwrap_err();
        assert!(matches!(err, TraceIoError::Parse { line: 2, .. }));

        let csv = "t,lat,lng,theta\n0.0,40.0,116.3,90.0,extra\n";
        assert!(read_trace_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn non_finite_values_rejected() {
        let csv = "t,lat,lng,theta\nNaN,40.0,116.3,90.0\n";
        assert!(read_trace_csv(csv.as_bytes()).is_err());
        let csv = "t,lat,lng,theta\n0.0,inf,116.3,90.0\n";
        assert!(read_trace_csv(csv.as_bytes()).is_err());
    }

    #[test]
    fn inverted_rep_interval_rejected() {
        let csv = "t_start,t_end,lat,lng,theta\n5.0,1.0,40.0,116.3,0.0\n";
        assert!(read_reps_csv(csv.as_bytes()).is_err());
    }
}
