//! The FoV similarity measurement (paper §III).
//!
//! Following Newtonian mechanics, the motion between two camera poses is
//! decomposed into a **rotation** by `δ_θ` and a **translation** by distance
//! `δ_p` in direction `θ_p`; the similarity is the product of the two
//! component similarities (paper eq. 10):
//!
//! ```text
//! Sim(f₁, f₂) = Sim_R(δ_θ) × Sim_T(δ_p, θ_p)
//! ```
//!
//! * `Sim_R` (eq. 4) is the normalised overlap of the two covered angle
//!   ranges: linear in `δ_θ`, zero once `δ_θ ≥ 2α`.
//! * `Sim_T` (eq. 9) interpolates between the two extreme translation cases:
//!   parallel to the view direction (`Sim_∥`, slow decay, never reaches 0)
//!   and perpendicular to it (`Sim_⊥`, fast decay, exactly 0 at
//!   `d = 2R·sin α`).
//!
//! ### Reconstruction notes (see `DESIGN.md`)
//!
//! The paper's eq. 6 for the perpendicular case is typeset unreadably and
//! its eq. 7 normalisation contradicts `Sim(d = 0) = 1`. We use
//! geometrically derived, boundary-consistent forms:
//!
//! * `Sim_∥(d) = φ_∥ / α` with `φ_∥ = arctan(R sin α / (d + R cos α))`
//!   (eq. 5 as printed, normalisation fixed);
//! * `Sim_⊥(d) = (2α − arcsin(d cos α / R)) / 2α` for `d ≤ 2R sin α`,
//!   else 0 — the widest bundle of rays from the translated camera that
//!   still intersects the original sector. Exact for `α ≤ 45°`.
//!
//! The translation direction `θ_p` in the combined case (eq. 10) is
//! measured against the **circular midpoint** of the two orientations, which
//! keeps the measurement symmetric (`Sim(f₁,f₂) = Sim(f₂,f₁)`); the paper
//! leaves this reference ambiguous.

use serde::{Deserialize, Serialize};
use swag_geo::{angle_diff_deg, normalize_deg, signed_deg};

use crate::fov::{CameraProfile, Fov};

/// Precomputed trigonometry of one [`CameraProfile`].
///
/// Every similarity component needs some combination of `sin α`, `cos α`,
/// `R·sin α`, `R·cos α` and `2R·sin α`; evaluating them per call makes the
/// transcendental functions dominate the hot path (the segmenter runs one
/// similarity per captured frame, the linear-scan baseline one per stored
/// segment). Build a `CamTrig` once per camera and use the `*_trig`
/// variants — [`similarity_parts`] and the [`Segmenter`](crate::Segmenter)
/// do this internally.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CamTrig {
    /// Half viewing angle `α` in radians.
    pub alpha_rad: f64,
    /// `sin α`.
    pub sin_alpha: f64,
    /// `cos α`.
    pub cos_alpha: f64,
    /// `R·sin α` — numerator of the eq. 5 arctangent.
    pub r_sin_alpha: f64,
    /// `R·cos α` — denominator offset of the eq. 5 arctangent.
    pub r_cos_alpha: f64,
    /// `2R·sin α` — the perpendicular cutoff distance
    /// ([`CameraProfile::perp_cutoff_m`]).
    pub perp_cutoff_m: f64,
    /// `cos α / R` — scale of the eq. 6 arcsine argument.
    pub cos_alpha_over_r: f64,
    /// Full viewing angle `𝒜 = 2α` in degrees, for `Sim_R`.
    pub full_angle_deg: f64,
}

impl CamTrig {
    /// Precomputes the trigonometry of `cam`.
    pub fn new(cam: &CameraProfile) -> Self {
        let alpha = cam.alpha_rad();
        let (sin_alpha, cos_alpha) = alpha.sin_cos();
        let r = cam.view_radius_m;
        CamTrig {
            alpha_rad: alpha,
            sin_alpha,
            cos_alpha,
            r_sin_alpha: r * sin_alpha,
            r_cos_alpha: r * cos_alpha,
            perp_cutoff_m: 2.0 * r * sin_alpha,
            cos_alpha_over_r: cos_alpha / r,
            full_angle_deg: cam.viewing_angle_deg(),
        }
    }
}

impl From<&CameraProfile> for CamTrig {
    fn from(cam: &CameraProfile) -> Self {
        CamTrig::new(cam)
    }
}

/// Rotation similarity `Sim_R` (paper eq. 4): the fractional overlap of two
/// covered angle ranges whose centres differ by `delta_theta_deg`.
///
/// `delta_theta_deg` must be an unsigned angular difference in `[0, 180]`
/// (use [`Fov::delta_theta_deg`]).
#[inline]
pub fn sim_rotation(delta_theta_deg: f64, cam: &CameraProfile) -> f64 {
    let full = cam.viewing_angle_deg();
    if delta_theta_deg >= full {
        0.0
    } else {
        (full - delta_theta_deg) / full
    }
}

/// [`sim_rotation`] on precomputed trigonometry.
#[inline]
pub fn sim_rotation_trig(delta_theta_deg: f64, trig: &CamTrig) -> f64 {
    let full = trig.full_angle_deg;
    if delta_theta_deg >= full {
        0.0
    } else {
        (full - delta_theta_deg) / full
    }
}

/// Narrowed half viewing angle `φ_∥` after a parallel (forward) translation
/// of `d` metres (paper eq. 5), in radians.
#[inline]
pub fn phi_parallel_rad(d: f64, cam: &CameraProfile) -> f64 {
    phi_parallel_rad_trig(d, &CamTrig::new(cam))
}

/// [`phi_parallel_rad`] on precomputed trigonometry.
#[inline]
pub fn phi_parallel_rad_trig(d: f64, trig: &CamTrig) -> f64 {
    trig.r_sin_alpha.atan2(d + trig.r_cos_alpha)
}

/// Parallel-translation similarity `Sim_∥` (paper eqs. 5 & 7).
///
/// Decays slowly with `d` and stays strictly positive for any finite
/// distance (§III Case 2, statement 2).
#[inline]
pub fn sim_parallel(d: f64, cam: &CameraProfile) -> f64 {
    sim_parallel_trig(d, &CamTrig::new(cam))
}

/// [`sim_parallel`] on precomputed trigonometry.
#[inline]
pub fn sim_parallel_trig(d: f64, trig: &CamTrig) -> f64 {
    debug_assert!(d >= 0.0);
    phi_parallel_rad_trig(d, trig) / trig.alpha_rad
}

/// Perpendicular-translation similarity `Sim_⊥` (paper eq. 6,
/// reconstructed — see module docs).
///
/// Decays faster than `Sim_∥` and reaches exactly 0 at `d = 2R·sin α`
/// ([`CameraProfile::perp_cutoff_m`]).
#[inline]
pub fn sim_perp(d: f64, cam: &CameraProfile) -> f64 {
    sim_perp_trig(d, &CamTrig::new(cam))
}

/// [`sim_perp`] on precomputed trigonometry.
#[inline]
pub fn sim_perp_trig(d: f64, trig: &CamTrig) -> f64 {
    debug_assert!(d >= 0.0);
    if d >= trig.perp_cutoff_m {
        return 0.0;
    }
    let a = trig.alpha_rad;
    let arg = (d * trig.cos_alpha_over_r).clamp(-1.0, 1.0);
    ((2.0 * a - arg.asin()) / (2.0 * a)).max(0.0)
}

/// Translation similarity `Sim_T` (paper eq. 9): linear interpolation
/// between the parallel and perpendicular extremes by the translation
/// direction.
///
/// `theta_p_deg` is the angle between the translation direction and the
/// view direction; any value is accepted and folded into `[0°, 90°]` by
/// symmetry (forward/backward and left/right are equivalent under the
/// paper's model).
pub fn sim_translation(d: f64, theta_p_deg: f64, cam: &CameraProfile) -> f64 {
    sim_translation_trig(d, theta_p_deg, &CamTrig::new(cam))
}

/// [`sim_translation`] on precomputed trigonometry.
pub fn sim_translation_trig(d: f64, theta_p_deg: f64, trig: &CamTrig) -> f64 {
    let folded = fold_to_quadrant(theta_p_deg);
    let w = folded / 90.0;
    (1.0 - w) * sim_parallel_trig(d, trig) + w * sim_perp_trig(d, trig)
}

/// Folds an arbitrary angle into `[0, 90]` using the mirror symmetries of
/// the translation model.
#[inline]
fn fold_to_quadrant(theta_deg: f64) -> f64 {
    let e = angle_diff_deg(theta_deg, 0.0); // [0, 180]
    if e > 90.0 {
        180.0 - e
    } else {
        e
    }
}

/// Intermediate quantities of one similarity evaluation, for diagnostics,
/// figures and tests.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimilarityBreakdown {
    /// Translation distance `δ_p` in metres.
    pub delta_p_m: f64,
    /// Rotation `δ_θ` in degrees, `[0, 180]`.
    pub delta_theta_deg: f64,
    /// Translation direction relative to the (midpoint) view direction,
    /// folded to `[0, 90]` degrees.
    pub theta_p_deg: f64,
    /// `Sim_R` component.
    pub sim_rotation: f64,
    /// `Sim_∥` at `δ_p`.
    pub sim_parallel: f64,
    /// `Sim_⊥` at `δ_p`.
    pub sim_perp: f64,
    /// Combined translation similarity `Sim_T`.
    pub sim_translation: f64,
    /// Final similarity `Sim = Sim_R × Sim_T`.
    pub sim: f64,
}

/// Full FoV similarity `Sim(f₁, f₂) = Sim_R × Sim_T` (paper eq. 10),
/// returning every intermediate component.
///
/// Computes the camera trigonometry once; callers evaluating many pairs
/// against the same camera should precompute a [`CamTrig`] and use
/// [`similarity_parts_trig`] directly.
pub fn similarity_parts(f1: &Fov, f2: &Fov, cam: &CameraProfile) -> SimilarityBreakdown {
    similarity_parts_trig(f1, f2, &CamTrig::new(cam))
}

/// [`similarity_parts`] on precomputed trigonometry.
pub fn similarity_parts_trig(f1: &Fov, f2: &Fov, trig: &CamTrig) -> SimilarityBreakdown {
    let delta_theta = f1.delta_theta_deg(f2);
    let disp = f1.p.displacement_to(f2.p);
    let delta_p = disp.norm();
    let sim_r = sim_rotation_trig(delta_theta, trig);

    // Reference view direction: circular midpoint of the two orientations.
    let mid = normalize_deg(f1.theta + 0.5 * signed_deg(f2.theta - f1.theta));

    let (theta_p, sim_par, sim_prp, sim_t) = if delta_p < 1e-9 {
        (0.0, 1.0, 1.0, 1.0)
    } else {
        let bearing = disp.azimuth_deg();
        let rel = fold_to_quadrant(angle_diff_deg(bearing, mid));
        // Sim_T interpolates the two extremes already computed here — blend
        // directly instead of calling `sim_translation_trig` (which would
        // re-evaluate both).
        let par = sim_parallel_trig(delta_p, trig);
        let prp = sim_perp_trig(delta_p, trig);
        let w = rel / 90.0;
        (rel, par, prp, (1.0 - w) * par + w * prp)
    };

    SimilarityBreakdown {
        delta_p_m: delta_p,
        delta_theta_deg: delta_theta,
        theta_p_deg: theta_p,
        sim_rotation: sim_r,
        sim_parallel: sim_par,
        sim_perp: sim_prp,
        sim_translation: sim_t,
        sim: sim_r * sim_t,
    }
}

/// Full FoV similarity `Sim(f₁, f₂)` in `[0, 1]` (paper eq. 10).
///
/// `1` iff the FoVs are identical; decreases with both position and
/// orientation differences; symmetric in its arguments.
///
/// ```
/// use swag_core::{similarity, CameraProfile, Fov};
/// use swag_geo::LatLon;
///
/// let cam = CameraProfile::smartphone();
/// let here = Fov::new(LatLon::new(40.0, 116.32), 0.0);
/// assert_eq!(similarity(&here, &here, &cam), 1.0);
///
/// // 30 m forward along the view direction: still quite similar.
/// let ahead = Fov::new(here.p.offset(0.0, 30.0), 0.0);
/// // Rotated past the whole viewing angle: nothing shared.
/// let away = Fov::new(here.p, 90.0);
/// assert!(similarity(&here, &ahead, &cam) > 0.7);
/// assert_eq!(similarity(&here, &away, &cam), 0.0);
/// ```
#[inline]
pub fn similarity(f1: &Fov, f2: &Fov, cam: &CameraProfile) -> f64 {
    similarity_parts(f1, f2, cam).sim
}

/// [`similarity`] on precomputed trigonometry.
#[inline]
pub fn similarity_trig(f1: &Fov, f2: &Fov, trig: &CamTrig) -> f64 {
    similarity_parts_trig(f1, f2, trig).sim
}

/// The *vector-model* similarity of prior geo-video work (Kim et al.,
/// MMSys 2010 — reference [23] of the paper): the FoV is treated as a
/// vector of magnitude `R` along `θ`, and similarity is a weighted linear
/// blend of normalised position and orientation agreement:
///
/// ```text
/// Sim_vec = ½·max(0, 1 − δ_p/2R) + ½·(1 − δ_θ/180°)
/// ```
///
/// Kept as the baseline for the similarity-model ablation: unlike the
/// paper's transformation model it ignores the *direction* of travel
/// (parallel motion decays exactly as fast as perpendicular motion) and
/// never reaches 0 while orientations roughly agree.
pub fn vector_model_similarity(f1: &Fov, f2: &Fov, cam: &CameraProfile) -> f64 {
    let dp = f1.delta_p_m(f2);
    let dth = f1.delta_theta_deg(f2);
    let pos = (1.0 - dp / (2.0 * cam.view_radius_m)).max(0.0);
    let dir = 1.0 - dth / 180.0;
    0.5 * pos + 0.5 * dir
}

#[cfg(test)]
mod tests {
    use super::*;
    use swag_geo::LatLon;

    fn cam() -> CameraProfile {
        CameraProfile::smartphone() // α = 25°, R = 100 m
    }

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    #[test]
    fn rotation_similarity_shape() {
        let c = cam();
        assert_eq!(sim_rotation(0.0, &c), 1.0);
        // Linear: half overlap at δθ = α.
        assert!((sim_rotation(25.0, &c) - 0.5).abs() < 1e-12);
        assert_eq!(sim_rotation(50.0, &c), 0.0);
        assert_eq!(sim_rotation(120.0, &c), 0.0);
    }

    #[test]
    fn parallel_similarity_boundaries() {
        let c = cam();
        assert!((sim_parallel(0.0, &c) - 1.0).abs() < 1e-12);
        // Strictly positive even at extreme distances.
        assert!(sim_parallel(100_000.0, &c) > 0.0);
        // Monotone decreasing.
        let mut last = 1.0;
        for d in (0..100).map(|i| i as f64 * 10.0) {
            let s = sim_parallel(d, &c);
            assert!(s <= last + 1e-12);
            last = s;
        }
    }

    #[test]
    fn perp_similarity_boundaries() {
        let c = cam();
        assert!((sim_perp(0.0, &c) - 1.0).abs() < 1e-12);
        let cutoff = c.perp_cutoff_m();
        assert!((sim_perp(cutoff, &c)).abs() < 1e-9);
        assert_eq!(sim_perp(cutoff + 1.0, &c), 0.0);
        // Continuous approach to zero just before the cutoff.
        assert!(sim_perp(cutoff - 0.1, &c) < 0.01);
    }

    #[test]
    fn parallel_dominates_perp_for_default_alpha() {
        // Paper eq. 8: Sim_∥ ≥ Sim_⊥, equality iff d = 0.
        let c = cam();
        assert!((sim_parallel(0.0, &c) - sim_perp(0.0, &c)).abs() < 1e-12);
        for i in 1..=300 {
            let d = i as f64;
            assert!(
                sim_parallel(d, &c) >= sim_perp(d, &c) - 1e-12,
                "violated at d = {d}"
            );
        }
    }

    #[test]
    fn translation_interpolates_between_extremes() {
        let c = cam();
        let d = 40.0;
        let t0 = sim_translation(d, 0.0, &c);
        let t45 = sim_translation(d, 45.0, &c);
        let t90 = sim_translation(d, 90.0, &c);
        assert!((t0 - sim_parallel(d, &c)).abs() < 1e-12);
        assert!((t90 - sim_perp(d, &c)).abs() < 1e-12);
        assert!(t90 <= t45 && t45 <= t0);
        // Folding symmetries: backward = forward, left = right.
        assert!((sim_translation(d, 180.0, &c) - t0).abs() < 1e-12);
        assert!((sim_translation(d, 270.0, &c) - t90).abs() < 1e-12);
        assert!((sim_translation(d, 135.0, &c) - t45).abs() < 1e-12);
    }

    #[test]
    fn identical_fovs_have_similarity_one() {
        let f = Fov::new(origin(), 123.0);
        assert!((similarity(&f, &f, &cam()) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn pure_rotation_matches_sim_r() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        for dt in [0.0, 10.0, 25.0, 49.0, 60.0, 180.0] {
            let f2 = Fov::new(origin(), dt);
            let s = similarity(&f1, &f2, &c);
            assert!((s - sim_rotation(dt, &c)).abs() < 1e-12, "δθ = {dt}: {s}");
        }
    }

    #[test]
    fn pure_parallel_translation_matches_sim_parallel() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        // Move north (the view direction).
        let f2 = Fov::new(origin().offset(0.0, 50.0), 0.0);
        let parts = similarity_parts(&f1, &f2, &c);
        assert!(parts.theta_p_deg < 0.1);
        assert!((parts.sim - sim_parallel(parts.delta_p_m, &c)).abs() < 1e-6);
    }

    #[test]
    fn pure_perpendicular_translation_matches_sim_perp() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        // Move east while looking north.
        let f2 = Fov::new(origin().offset(90.0, 50.0), 0.0);
        let parts = similarity_parts(&f1, &f2, &c);
        assert!((parts.theta_p_deg - 90.0).abs() < 0.1);
        assert!((parts.sim - sim_perp(parts.delta_p_m, &c)).abs() < 1e-6);
    }

    #[test]
    fn similarity_is_symmetric() {
        let c = cam();
        let f1 = Fov::new(origin(), 33.0);
        let f2 = Fov::new(origin().offset(75.0, 42.0), 350.0);
        let a = similarity(&f1, &f2, &c);
        let b = similarity(&f2, &f1, &c);
        assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn similarity_decreases_with_rotation() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        let mut last = 1.0;
        for dt in (0..=50).map(|i| i as f64) {
            let s = similarity(&f1, &Fov::new(origin(), dt), &c);
            assert!(s <= last + 1e-12, "δθ = {dt}");
            last = s;
        }
    }

    #[test]
    fn combined_motion_is_product() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        let f2 = Fov::new(origin().offset(45.0, 30.0), 20.0);
        let parts = similarity_parts(&f1, &f2, &c);
        assert!((parts.sim - parts.sim_rotation * parts.sim_translation).abs() < 1e-12);
        assert!(parts.sim < parts.sim_rotation);
        assert!(parts.sim < parts.sim_translation);
    }

    #[test]
    fn vector_model_baseline_properties() {
        let c = cam();
        let f1 = Fov::new(origin(), 0.0);
        // Identity.
        assert_eq!(vector_model_similarity(&f1, &f1, &c), 1.0);
        // Symmetric.
        let f2 = Fov::new(origin().offset(70.0, 40.0), 120.0);
        assert!(
            (vector_model_similarity(&f1, &f2, &c) - vector_model_similarity(&f2, &f1, &c)).abs()
                < 1e-9
        );
        // Bounded.
        let far = Fov::new(origin().offset(0.0, 10_000.0), 180.0);
        let s = vector_model_similarity(&f1, &far, &c);
        assert!((0.0..=1.0).contains(&s));
        // The model's documented blind spot: it cannot tell parallel from
        // perpendicular translation.
        let fwd = Fov::new(origin().offset(0.0, 50.0), 0.0);
        let side = Fov::new(origin().offset(90.0, 50.0), 0.0);
        assert!(
            (vector_model_similarity(&f1, &fwd, &c) - vector_model_similarity(&f1, &side, &c))
                .abs()
                < 1e-6
        );
        // ...whereas the paper's model does.
        assert!(similarity(&f1, &fwd, &c) > similarity(&f1, &side, &c));
    }

    #[test]
    fn cached_trig_matches_profile_math() {
        // The precomputed-trig fast path must agree with the per-call
        // profile math it replaces, component by component.
        for (alpha, r) in [(25.0, 100.0), (30.0, 50.0), (45.0, 200.0), (10.0, 15.0)] {
            let c = CameraProfile::new(alpha, r);
            let t = CamTrig::new(&c);
            assert_eq!(t.perp_cutoff_m, c.perp_cutoff_m());
            assert_eq!(t.full_angle_deg, c.viewing_angle_deg());
            for d in [0.0, 0.5, 7.0, 33.3, 99.0, 150.0, 1000.0] {
                assert_eq!(sim_parallel_trig(d, &t), sim_parallel(d, &c));
                assert!((sim_perp_trig(d, &t) - sim_perp(d, &c)).abs() < 1e-12);
                for th in [0.0, 17.0, 45.0, 90.0, 135.0, 260.0] {
                    assert!(
                        (sim_translation_trig(d, th, &t) - sim_translation(d, th, &c)).abs()
                            < 1e-12
                    );
                }
            }
        }
    }

    #[test]
    fn trig_full_similarity_matches_profile_path() {
        let c = cam();
        let t = CamTrig::new(&c);
        let f1 = Fov::new(origin(), 33.0);
        for (az, d, th) in [(0.0, 0.0, 33.0), (45.0, 30.0, 20.0), (200.0, 80.0, 310.0)] {
            let f2 = Fov::new(origin().offset(az, d), th);
            let a = similarity_parts(&f1, &f2, &c);
            let b = similarity_parts_trig(&f1, &f2, &t);
            assert_eq!(a, b);
            assert_eq!(similarity_trig(&f1, &f2, &t), a.sim);
        }
    }

    #[test]
    fn larger_radius_decays_slower() {
        // §VII discussion: similarity decreases slower when R grows.
        let near = CameraProfile::new(25.0, 20.0);
        let far = CameraProfile::new(25.0, 100.0);
        for d in [5.0, 10.0, 15.0] {
            assert!(sim_perp(d, &far) > sim_perp(d, &near), "d = {d}");
            assert!(sim_parallel(d, &far) > sim_parallel(d, &near), "d = {d}");
        }
    }
}
