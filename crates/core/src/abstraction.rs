//! Segment abstraction (paper §IV-B, eq. 11).
//!
//! Each segment is condensed into a single **representative FoV**: the
//! average position and orientation of its member frames, together with the
//! segment's time interval `[t_s, t_e]`. Only representative FoVs are
//! uploaded to the server, which minimises client traffic and keeps the
//! index compact.
//!
//! The paper's eq. 11 averages orientations arithmetically, which breaks at
//! the 0°/360° wrap (the mean of `{350°, 10°}` would be `180°` — the exact
//! opposite direction). We default to the circular mean and keep the
//! arithmetic rule behind [`AveragingRule::Arithmetic`] for the ablation.

use serde::{Deserialize, Serialize};
use swag_geo::angle::arithmetic_mean_deg;
use swag_geo::{circular_mean_deg, LatLon};

use crate::fov::Fov;
use crate::segmentation::Segment;

/// How segment orientations are averaged into the representative azimuth.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum AveragingRule {
    /// Paper-faithful arithmetic mean of `θ` values (eq. 11). Wraps
    /// incorrectly across 0°/360°.
    Arithmetic,
    /// Circular (directional) mean — the default. Falls back to the first
    /// frame's orientation when the directions cancel exactly.
    Circular,
}

/// A representative FoV: one uploaded record per video segment
/// (paper §IV-B).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct RepFov {
    /// Segment start time `t_s`, seconds.
    pub t_start: f64,
    /// Segment end time `t_e`, seconds.
    pub t_end: f64,
    /// The averaged FoV `f_r = (p̄, θ̄)`.
    pub fov: Fov,
}

impl RepFov {
    /// Creates a representative FoV record.
    ///
    /// # Panics
    /// Panics if `t_end < t_start`.
    pub fn new(t_start: f64, t_end: f64, fov: Fov) -> Self {
        assert!(
            t_end >= t_start,
            "segment end time {t_end} precedes start time {t_start}"
        );
        RepFov {
            t_start,
            t_end,
            fov,
        }
    }

    /// Segment duration in seconds.
    #[inline]
    pub fn duration(&self) -> f64 {
        self.t_end - self.t_start
    }

    /// Whether the segment's time interval overlaps `[t_start, t_end]`.
    #[inline]
    pub fn overlaps_time(&self, t_start: f64, t_end: f64) -> bool {
        self.t_start <= t_end && t_start <= self.t_end
    }
}

/// Extracts the representative FoV of a segment (paper eq. 11):
/// `p̄ = Σp / |s|`, `θ̄ = mean of θ` under the chosen rule, with the
/// segment's `[t_s, t_e]` interval attached.
///
/// # Panics
/// Panics if the segment is empty (segments produced by
/// [`crate::segmentation`] never are).
pub fn abstract_segment(segment: &Segment, rule: AveragingRule) -> RepFov {
    assert!(!segment.is_empty(), "cannot abstract an empty segment");
    let n = segment.fovs.len() as f64;

    let (mut lat, mut lng) = (0.0f64, 0.0f64);
    let mut thetas = Vec::with_capacity(segment.fovs.len());
    for f in &segment.fovs {
        lat += f.fov.p.lat;
        lng += f.fov.p.lng;
        thetas.push(f.fov.theta);
    }
    let p_bar = LatLon::new(lat / n, lng / n);

    let theta_bar = match rule {
        AveragingRule::Arithmetic => {
            arithmetic_mean_deg(&thetas).expect("segment verified non-empty")
        }
        AveragingRule::Circular => circular_mean_deg(&thetas).unwrap_or(segment.fovs[0].fov.theta),
    };

    RepFov::new(
        segment.start_t(),
        segment.end_t(),
        Fov::new(p_bar, theta_bar),
    )
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::fov::TimedFov;

    fn origin() -> LatLon {
        LatLon::new(40.0, 116.32)
    }

    fn seg(fovs: Vec<TimedFov>) -> Segment {
        Segment { fovs }
    }

    #[test]
    fn single_frame_segment_is_identity() {
        let f = Fov::new(origin(), 42.0);
        let s = seg(vec![TimedFov::new(3.0, f)]);
        let r = abstract_segment(&s, AveragingRule::Circular);
        assert_eq!(r.t_start, 3.0);
        assert_eq!(r.t_end, 3.0);
        assert_eq!(r.fov, f);
    }

    #[test]
    fn positions_average_arithmetically() {
        let a = Fov::new(LatLon::new(40.0, 116.0), 10.0);
        let b = Fov::new(LatLon::new(40.002, 116.004), 20.0);
        let s = seg(vec![TimedFov::new(0.0, a), TimedFov::new(1.0, b)]);
        let r = abstract_segment(&s, AveragingRule::Circular);
        assert!((r.fov.p.lat - 40.001).abs() < 1e-12);
        assert!((r.fov.p.lng - 116.002).abs() < 1e-12);
        assert!((r.fov.theta - 15.0).abs() < 1e-9);
        assert_eq!((r.t_start, r.t_end), (0.0, 1.0));
    }

    #[test]
    fn circular_mean_survives_wraparound() {
        let s = seg(vec![
            TimedFov::new(0.0, Fov::new(origin(), 350.0)),
            TimedFov::new(1.0, Fov::new(origin(), 10.0)),
        ]);
        let circular = abstract_segment(&s, AveragingRule::Circular);
        assert!(circular.fov.theta < 1e-6 || circular.fov.theta > 359.999);

        // The paper-faithful rule points the representative FoV backwards.
        let arithmetic = abstract_segment(&s, AveragingRule::Arithmetic);
        assert!((arithmetic.fov.theta - 180.0).abs() < 1e-9);
    }

    #[test]
    fn cancelling_directions_fall_back_to_first_frame() {
        let s = seg(vec![
            TimedFov::new(0.0, Fov::new(origin(), 0.0)),
            TimedFov::new(1.0, Fov::new(origin(), 180.0)),
        ]);
        let r = abstract_segment(&s, AveragingRule::Circular);
        assert_eq!(r.fov.theta, 0.0);
    }

    #[test]
    fn time_overlap_predicate() {
        let r = RepFov::new(10.0, 20.0, Fov::new(origin(), 0.0));
        assert!(r.overlaps_time(15.0, 25.0));
        assert!(r.overlaps_time(0.0, 10.0)); // touching counts
        assert!(r.overlaps_time(20.0, 30.0));
        assert!(!r.overlaps_time(20.1, 30.0));
        assert!(!r.overlaps_time(0.0, 9.9));
        assert_eq!(r.duration(), 10.0);
    }

    #[test]
    #[should_panic(expected = "empty segment")]
    fn empty_segment_panics() {
        abstract_segment(&seg(vec![]), AveragingRule::Circular);
    }

    #[test]
    #[should_panic(expected = "precedes")]
    fn inverted_interval_panics() {
        RepFov::new(2.0, 1.0, Fov::new(origin(), 0.0));
    }
}
