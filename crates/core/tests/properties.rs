//! Property-based tests for the FoV similarity measurement, segmentation
//! and descriptor codec.

use bytes::BytesMut;
use proptest::prelude::*;
use swag_core::similarity::{sim_parallel, sim_perp, sim_rotation, sim_translation};
use swag_core::{
    abstract_segment, sector_contains, sector_intersects_circle, segment_video, similarity,
    AveragingRule, CameraProfile, DescriptorCodec, Fov, RepFov, Segment, Segmenter, TimedFov,
};
use swag_geo::LatLon;

fn arb_camera() -> impl Strategy<Value = CameraProfile> {
    (5.0f64..44.0, 5.0f64..500.0).prop_map(|(a, r)| CameraProfile::new(a, r))
}

fn arb_fov_near(lat: f64, lng: f64) -> impl Strategy<Value = Fov> {
    (-500.0f64..500.0, -500.0f64..500.0, 0.0f64..360.0).prop_map(move |(dx, dy, theta)| {
        Fov::new(
            LatLon::new(lat, lng).offset_by(swag_geo::Vec2::new(dx, dy)),
            theta,
        )
    })
}

proptest! {
    #[test]
    fn similarity_in_unit_interval(
        cam in arb_camera(),
        f1 in arb_fov_near(40.0, 116.32),
        f2 in arb_fov_near(40.0, 116.32),
    ) {
        let s = similarity(&f1, &f2, &cam);
        prop_assert!((0.0..=1.0 + 1e-12).contains(&s), "sim = {s}");
    }

    #[test]
    fn similarity_symmetric(
        cam in arb_camera(),
        f1 in arb_fov_near(40.0, 116.32),
        f2 in arb_fov_near(40.0, 116.32),
    ) {
        let a = similarity(&f1, &f2, &cam);
        let b = similarity(&f2, &f1, &cam);
        prop_assert!((a - b).abs() < 1e-9, "{a} vs {b}");
    }

    #[test]
    fn self_similarity_is_one(cam in arb_camera(), f in arb_fov_near(40.0, 116.32)) {
        prop_assert!((similarity(&f, &f, &cam) - 1.0).abs() < 1e-9);
    }

    #[test]
    fn rotation_monotone_decreasing(cam in arb_camera(), a in 0.0f64..180.0, b in 0.0f64..180.0) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sim_rotation(lo, &cam) >= sim_rotation(hi, &cam) - 1e-12);
    }

    #[test]
    fn translation_monotone_decreasing_in_distance(
        cam in arb_camera(),
        a in 0.0f64..2000.0,
        b in 0.0f64..2000.0,
        theta_p in 0.0f64..90.0,
    ) {
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(
            sim_translation(lo, theta_p, &cam) >= sim_translation(hi, theta_p, &cam) - 1e-12
        );
    }

    #[test]
    fn translation_monotone_in_direction(
        cam in arb_camera(),
        d in 0.0f64..2000.0,
        a in 0.0f64..90.0,
        b in 0.0f64..90.0,
    ) {
        // More perpendicular ⇒ not more similar (for α ≤ 44° the parallel
        // component dominates; the interpolation is linear in θ_p so
        // monotonicity follows from Sim_∥ ≥ Sim_⊥... which requires
        // α < arctan(1/2) in general. Restrict to that regime.
        prop_assume!(cam.half_angle_deg < 26.0);
        let (lo, hi) = if a <= b { (a, b) } else { (b, a) };
        prop_assert!(sim_translation(d, lo, &cam) >= sim_translation(d, hi, &cam) - 1e-9);
    }

    #[test]
    fn perp_zero_beyond_cutoff(cam in arb_camera(), extra in 0.0f64..1000.0) {
        prop_assert_eq!(sim_perp(cam.perp_cutoff_m() + extra, &cam), 0.0);
    }

    #[test]
    fn parallel_always_positive(cam in arb_camera(), d in 0.0f64..1e6) {
        prop_assert!(sim_parallel(d, &cam) > 0.0);
    }

    #[test]
    fn streaming_equals_offline(
        thetas in prop::collection::vec(0.0f64..360.0, 1..200),
        thresh in 0.0f64..1.0,
    ) {
        let cam = CameraProfile::smartphone();
        let frames: Vec<TimedFov> = thetas
            .iter()
            .enumerate()
            .map(|(i, &th)| TimedFov::new(i as f64 * 0.04, Fov::new(LatLon::new(40.0, 116.32), th)))
            .collect();
        let offline = segment_video(&frames, &cam, thresh);

        let mut seg = Segmenter::new(cam, thresh);
        let mut online = Vec::new();
        for &f in &frames {
            online.extend(seg.push(f));
        }
        online.extend(seg.finish());
        prop_assert_eq!(online, offline);
    }

    #[test]
    fn segmentation_partitions_input(
        steps in prop::collection::vec((-10.0f64..10.0, -5.0f64..5.0), 1..300),
        thresh in 0.0f64..=1.0,
    ) {
        let cam = CameraProfile::smartphone();
        let mut pos = LatLon::new(40.0, 116.32);
        let mut theta = 0.0;
        let mut frames = Vec::with_capacity(steps.len());
        for (i, (dth, step)) in steps.iter().enumerate() {
            theta += dth;
            pos = pos.offset(theta, *step);
            frames.push(TimedFov::new(i as f64 * 0.04, Fov::new(pos, theta)));
        }
        let segs = segment_video(&frames, &cam, thresh);
        let rebuilt: Vec<TimedFov> = segs.iter().flat_map(|s| s.fovs.iter().copied()).collect();
        prop_assert_eq!(rebuilt, frames);
        for s in &segs {
            prop_assert!(!s.is_empty());
            prop_assert!(s.end_t() >= s.start_t());
        }
    }

    #[test]
    fn within_segment_similarity_respects_threshold(
        steps in prop::collection::vec((-10.0f64..10.0, 0.0f64..5.0), 2..200),
        thresh in 0.1f64..0.9,
    ) {
        // Every frame in a segment is ≥ thresh similar to the segment's
        // first frame — the defining invariant of Algorithm 1.
        let cam = CameraProfile::smartphone();
        let mut pos = LatLon::new(40.0, 116.32);
        let mut theta = 0.0;
        let mut frames = Vec::new();
        for (i, (dth, step)) in steps.iter().enumerate() {
            theta += dth;
            pos = pos.offset(theta, *step);
            frames.push(TimedFov::new(i as f64 * 0.04, Fov::new(pos, theta)));
        }
        for s in segment_video(&frames, &cam, thresh) {
            let anchor = s.fovs[0].fov;
            for f in &s.fovs {
                prop_assert!(similarity(&anchor, &f.fov, &cam) >= thresh);
            }
        }
    }

    #[test]
    fn representative_fov_is_centroid(
        offsets in prop::collection::vec((-50.0f64..50.0, -50.0f64..50.0, -20.0f64..20.0), 1..50),
    ) {
        let base = LatLon::new(40.0, 116.32);
        let fovs: Vec<TimedFov> = offsets
            .iter()
            .enumerate()
            .map(|(i, (dx, dy, dth))| {
                TimedFov::new(
                    i as f64,
                    Fov::new(base.offset_by(swag_geo::Vec2::new(*dx, *dy)), 90.0 + dth),
                )
            })
            .collect();
        let seg = Segment { fovs: fovs.clone() };
        let rep = abstract_segment(&seg, AveragingRule::Circular);
        // Representative position is inside the bounding box of members.
        let lats: Vec<f64> = fovs.iter().map(|f| f.fov.p.lat).collect();
        let lngs: Vec<f64> = fovs.iter().map(|f| f.fov.p.lng).collect();
        let eps = 1e-12;
        prop_assert!(rep.fov.p.lat >= lats.iter().cloned().fold(f64::INFINITY, f64::min) - eps);
        prop_assert!(rep.fov.p.lat <= lats.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + eps);
        prop_assert!(rep.fov.p.lng >= lngs.iter().cloned().fold(f64::INFINITY, f64::min) - eps);
        prop_assert!(rep.fov.p.lng <= lngs.iter().cloned().fold(f64::NEG_INFINITY, f64::max) + eps);
        // Orientation stays within the (non-wrapping) spread of members.
        prop_assert!(rep.fov.theta >= 60.0 && rep.fov.theta <= 120.0);
        prop_assert_eq!(rep.t_start, 0.0);
    }

    #[test]
    fn codec_round_trip(
        lat in -80.0f64..80.0,
        lng in -179.0f64..179.0,
        theta in 0.0f64..360.0,
        t0 in 0.0f64..1e9,
        dur in 0.0f64..86_400.0,
    ) {
        let rep = RepFov::new(t0, t0 + dur, Fov::new(LatLon::new(lat, lng), theta));
        let mut buf = BytesMut::new();
        DescriptorCodec::encode_rep(&rep, &mut buf).unwrap();
        let d = DescriptorCodec::decode_rep(&mut buf.freeze()).unwrap();
        prop_assert!((d.fov.p.lat - rep.fov.p.lat).abs() < 1e-6);
        prop_assert!((d.fov.p.lng - rep.fov.p.lng).abs() < 1e-6);
        prop_assert!(swag_geo::angle_diff_deg(d.fov.theta, rep.fov.theta) < 0.006);
        prop_assert!((d.t_start - rep.t_start).abs() < 0.002);
        prop_assert!((d.duration() - rep.duration()).abs() < 0.002);
    }

    #[test]
    fn decoder_never_panics_on_arbitrary_bytes(bytes in prop::collection::vec(any::<u8>(), 0..600)) {
        // Malformed wire input must produce errors, not panics.
        let _ = DescriptorCodec::decode_batch(&bytes[..]);
        let mut cursor = &bytes[..];
        let _ = DescriptorCodec::decode_rep(&mut cursor);
    }

    #[test]
    fn trace_csv_reader_never_panics(text in "\\PC{0,400}") {
        let _ = swag_core::read_trace_csv(text.as_bytes());
        let _ = swag_core::read_reps_csv(text.as_bytes());
    }

    #[test]
    fn contained_point_implies_sector_intersection(
        cam in arb_camera(),
        f in arb_fov_near(40.0, 116.32),
        bearing in 0.0f64..360.0,
        dist in 0.0f64..600.0,
        radius in 0.1f64..100.0,
    ) {
        let p = f.p.offset(bearing, dist);
        if sector_contains(&f, &cam, p) {
            prop_assert!(sector_intersects_circle(&f, &cam, p, radius));
        }
    }

    #[test]
    fn far_away_circle_never_intersects(
        cam in arb_camera(),
        f in arb_fov_near(40.0, 116.32),
        bearing in 0.0f64..360.0,
        radius in 0.1f64..100.0,
    ) {
        // Place the disc strictly farther than R + radius from the apex.
        let dist = cam.view_radius_m + radius + 10.0;
        let p = f.p.offset(bearing, dist);
        prop_assert!(!sector_intersects_circle(&f, &cam, p, radius));
    }

    /// Every record inside the wire format's documented bounds encodes and
    /// round-trips within quantisation error; nothing in the bounded
    /// domain is rejected.
    #[test]
    fn codec_round_trip_over_full_encodable_domain(
        lat in -90.0f64..=90.0,
        lng in -180.0f64..=180.0,
        theta in 0.0f64..360.0,
        t0 in 0.0f64..4.0e9,                 // beyond year 2096 in seconds
        dur in 0.0f64..(u32::MAX as f64 / 1000.0 - 1.0),
    ) {
        let rep = RepFov::new(t0, t0 + dur, Fov::new(LatLon::new(lat, lng), theta));
        let mut buf = BytesMut::new();
        DescriptorCodec::encode_rep(&rep, &mut buf).unwrap();
        let d = DescriptorCodec::decode_rep(&mut buf.freeze()).unwrap();
        prop_assert!((d.fov.p.lat - rep.fov.p.lat).abs() < 1e-6);
        prop_assert!((d.fov.p.lng - rep.fov.p.lng).abs() < 1e-6);
        prop_assert!((d.t_start - rep.t_start).abs() < 0.002);
        prop_assert!((d.duration() - rep.duration()).abs() < 0.002);
    }

    /// Records outside the encodable bounds error instead of silently
    /// clamping (regression for the old clamp-to-zero / saturate paths).
    #[test]
    fn codec_rejects_unencodable_records(
        t0 in -1.0e6f64..-0.001,
        extra_days in 50.0f64..500.0,
    ) {
        let neg = RepFov::new(t0, t0.abs(), Fov::new(LatLon::new(40.0, 116.3), 0.0));
        let mut buf = BytesMut::new();
        prop_assert_eq!(
            DescriptorCodec::encode_rep(&neg, &mut buf).unwrap_err(),
            swag_core::descriptor::CodecError::OutOfRange("t_start")
        );
        prop_assert!(buf.is_empty());

        let long = RepFov::new(0.0, extra_days * 86_400.0, Fov::new(LatLon::new(40.0, 116.3), 0.0));
        prop_assert_eq!(
            DescriptorCodec::encode_rep(&long, &mut buf).unwrap_err(),
            swag_core::descriptor::CodecError::OutOfRange("duration")
        );
    }
}
