//! Criterion benches for descriptor extraction, matching and codec
//! (backs the `tab-desc` table and the wire-format costs).

use bytes::BytesMut;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swag_core::{
    abstract_segment, AveragingRule, CameraProfile, DescriptorCodec, Fov, RepFov, Segment,
    TimedFov, UploadBatch,
};
use swag_geo::{LatLon, Vec2};
use swag_vision::{ColorHistogram, GridDescriptor, Renderer, Resolution, World};

fn bench_fov_descriptor(c: &mut Criterion) {
    let seg = Segment {
        fovs: (0..25)
            .map(|i| {
                TimedFov::new(
                    f64::from(i) / 25.0,
                    Fov::new(LatLon::new(40.0, 116.32), f64::from(i)),
                )
            })
            .collect(),
    };
    c.bench_function("descriptor/fov_extract_25f_segment", |b| {
        b.iter(|| black_box(abstract_segment(black_box(&seg), AveragingRule::Circular)))
    });
}

fn bench_content_descriptors(c: &mut Criterion) {
    let world = World::random_city(3, 300.0, 300);
    let renderer = Renderer::new(&world, 25.0, 100.0);
    let mut group = c.benchmark_group("descriptor/content_extract");
    group.sample_size(10);
    for res in [Resolution::P240, Resolution::P720] {
        let img = renderer.render(Vec2::ZERO, 0.0, res);
        group.bench_with_input(BenchmarkId::new("histogram", res.label()), &res, |b, _| {
            b.iter(|| black_box(ColorHistogram::from_frame(black_box(&img), 8)))
        });
        group.bench_with_input(BenchmarkId::new("grid_sift", res.label()), &res, |b, _| {
            b.iter(|| black_box(GridDescriptor::extract(black_box(&img), 4)))
        });
    }
    group.finish();
}

fn bench_codec(c: &mut Criterion) {
    let batch = UploadBatch {
        provider_id: 1,
        video_id: 2,
        reps: (0..1000)
            .map(|i| {
                RepFov::new(
                    f64::from(i),
                    f64::from(i) + 5.0,
                    Fov::new(LatLon::new(40.0, 116.32), f64::from(i % 360)),
                )
            })
            .collect(),
    };
    let wire = DescriptorCodec::encode_batch(&batch).unwrap();
    let mut group = c.benchmark_group("descriptor/codec");
    group.throughput(Throughput::Bytes(wire.len() as u64));
    group.bench_function("encode_1000", |b| {
        b.iter(|| black_box(DescriptorCodec::encode_batch(black_box(&batch))))
    });
    group.bench_function("decode_1000", |b| {
        b.iter(|| black_box(DescriptorCodec::decode_batch(black_box(wire.clone()))).unwrap())
    });
    group.bench_function("encode_single_record", |b| {
        let rep = batch.reps[0];
        b.iter(|| {
            let mut buf = BytesMut::with_capacity(DescriptorCodec::RECORD_SIZE);
            DescriptorCodec::encode_rep(black_box(&rep), &mut buf).unwrap();
            black_box(buf)
        })
    });
    group.finish();
    let _ = CameraProfile::smartphone();
}

criterion_group!(
    benches,
    bench_fov_descriptor,
    bench_content_descriptors,
    bench_codec
);
criterion_main!(benches);
