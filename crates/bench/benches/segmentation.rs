//! Criterion benches for video segmentation: FoV (Algorithm 1) vs CV
//! anchor differencing (backs Fig. 6(a)).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swag_core::{segment_video, CameraProfile, Segmenter};
use swag_sensors::scenarios;
use swag_sensors::SensorNoise;
use swag_vision::segmentation::cv_segment_video;
use swag_vision::{Frame, Renderer, Resolution, World};

fn bench_fov_segmentation(c: &mut Criterion) {
    let cam = CameraProfile::smartphone();
    let trace = scenarios::city_walk(5, 4, &SensorNoise::smartphone());
    let mut group = c.benchmark_group("segmentation/fov");
    group.throughput(Throughput::Elements(trace.len() as u64));
    group.bench_function("offline_full_trace", |b| {
        b.iter(|| black_box(segment_video(black_box(&trace), &cam, 0.5)))
    });
    group.bench_function("streaming_per_frame", |b| {
        let mut seg = Segmenter::new(cam, 0.5);
        let mut i = 0;
        b.iter(|| {
            black_box(seg.push(trace[i % trace.len()]));
            i += 1;
        })
    });
    group.finish();
}

fn bench_cv_segmentation(c: &mut Criterion) {
    let world = World::random_city(9, 300.0, 300);
    let renderer = Renderer::new(&world, 25.0, 100.0);
    let trace = scenarios::city_walk(5, 1, &SensorNoise::NONE);
    let mut group = c.benchmark_group("segmentation/cv");
    group.sample_size(10);
    for res in [Resolution::P240, Resolution::P720] {
        // 2 s of video (50 frames), pre-rendered.
        let frames: Vec<Frame> = trace
            .iter()
            .take(50)
            .map(|tf| {
                let frame = swag_geo::LocalFrame::new(scenarios::default_origin());
                renderer.render(frame.to_local(tf.fov.p), tf.fov.theta, res)
            })
            .collect();
        group.throughput(Throughput::Elements(frames.len() as u64));
        group.bench_with_input(BenchmarkId::new("50_frames", res.label()), &res, |b, _| {
            b.iter(|| black_box(cv_segment_video(black_box(&frames), 0.8)))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fov_segmentation, bench_cv_segmentation);
criterion_main!(benches);
