//! Arena-layout ablation: range traversal over `swag_rtree`'s flat-arena
//! tree vs. an idealized boxed-pointer reference with the same STR
//! packing.
//!
//! The reference is a *minimal* direct-recursion tree — every node its
//! own heap allocation, entries interleaved `(box, payload)`, nothing
//! else — built with a line-for-line replica of the arena's STR tiling
//! so the two trees are node-for-node isomorphic (asserted, along with
//! per-query work counts, before benching). It serves as a traversal
//! ceiling for the arena's handle-indirected layout: this bench is what
//! drove leaf entries to inline AoS and the traversal to recursion, and
//! it tracks whatever gap remains. The arena's other wins (no per-node
//! allocations on build/drop, O(1) slot reuse, dense node headers) are
//! not measured here.
//!
//! CI runs this as a smoke test
//! (`cargo bench -p swag-bench --bench rtree_arena -- --test`).

use criterion::{criterion_group, criterion_main, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use swag_rtree::{Aabb, RTree};

// Matches `RTreeConfig::default().max_entries` so both trees share
// fan-out and grouping; only memory layout differs.
const MAX_ENTRIES: usize = 16;

fn random_boxes(n: usize, seed: u64) -> Vec<(Aabb<3>, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let min = [
                rng.random_range(-1e4..1e4),
                rng.random_range(-1e4..1e4),
                rng.random_range(0.0..86_400.0),
            ];
            let b = Aabb::new(min, [min[0], min[1], min[2] + rng.random_range(1.0..60.0)]);
            (b, i as u32)
        })
        .collect()
}

/// Boxed-pointer reference tree: one heap allocation per node, entries
/// interleaved `(box, payload)` — the layout the arena rewrite replaced.
///
/// Bulk-loaded with a line-for-line replica of `swag_rtree`'s STR tiling
/// (same sort keys, same slab arithmetic, same even-chunk grouping), so
/// both trees are node-for-node isomorphic: every traversal makes the
/// same intersection tests in the same order and only the memory layout
/// differs.
enum BoxedNode {
    Leaf(Vec<(Aabb<3>, u32)>),
    Inner(Vec<(Aabb<3>, Box<BoxedNode>)>),
}

/// Replica of `swag_rtree`'s recursive STR tiling: sort by the centre
/// along `dim`, cut into the (D−dim)-th root of the group count slabs,
/// recurse; the last dimension chunks evenly into leaf-sized groups.
fn tile<E>(
    mut entries: Vec<E>,
    dim: usize,
    center: &impl Fn(&E) -> [f64; 3],
    out: &mut Vec<Vec<E>>,
) {
    let n = entries.len();
    if n <= MAX_ENTRIES {
        out.push(entries);
        return;
    }
    let total_groups = n.div_ceil(MAX_ENTRIES);
    entries.sort_unstable_by(|a, b| center(a)[dim].total_cmp(&center(b)[dim]));
    if dim + 1 == 3 {
        even_chunks(entries, total_groups, out);
    } else {
        let k = (3 - dim) as f64;
        let slabs = (total_groups as f64).powf(1.0 / k).ceil() as usize;
        let slabs = slabs.clamp(1, total_groups);
        let mut slab_vec = Vec::new();
        even_chunks(entries, slabs, &mut slab_vec);
        for slab in slab_vec {
            tile(slab, dim + 1, center, out);
        }
    }
}

/// Splits `entries` into `g` contiguous chunks whose sizes differ by at
/// most one (identical to the arena loader's grouping).
fn even_chunks<E>(entries: Vec<E>, g: usize, out: &mut Vec<Vec<E>>) {
    let n = entries.len();
    let base = n / g;
    let extra = n % g;
    let mut iter = entries.into_iter();
    for i in 0..g {
        let size = base + usize::from(i < extra);
        out.push(iter.by_ref().take(size).collect());
    }
}

fn fold_mbr(mbrs: impl Iterator<Item = Aabb<3>>) -> Aabb<3> {
    let mut mbrs = mbrs;
    let first = mbrs.next().expect("non-empty group");
    mbrs.fold(first, |acc, m| acc.union(&m))
}

impl BoxedNode {
    fn bulk_load(items: Vec<(Aabb<3>, u32)>) -> BoxedNode {
        let mut groups = Vec::new();
        tile(items, 0, &|e: &(Aabb<3>, u32)| e.0.center(), &mut groups);
        let mut level: Vec<(Aabb<3>, Box<BoxedNode>)> = groups
            .into_iter()
            .map(|g| {
                let mbr = fold_mbr(g.iter().map(|e| e.0));
                (mbr, Box::new(BoxedNode::Leaf(g)))
            })
            .collect();
        while level.len() > 1 {
            let mut groups = Vec::new();
            tile(
                level,
                0,
                &|e: &(Aabb<3>, Box<BoxedNode>)| e.0.center(),
                &mut groups,
            );
            level = groups
                .into_iter()
                .map(|g| {
                    let mbr = fold_mbr(g.iter().map(|e| e.0));
                    (mbr, Box::new(BoxedNode::Inner(g)))
                })
                .collect();
        }
        *level.into_iter().next().expect("non-empty input").1
    }

    /// Counts visited nodes and leaf-item intersection tests — compared
    /// against the arena's `SearchStats` to prove both trees do the same
    /// traversal work, not just return the same answers.
    fn count_work(&self, query: &Aabb<3>, nodes: &mut u64, leaf_tests: &mut u64) {
        *nodes += 1;
        match self {
            BoxedNode::Leaf(items) => *leaf_tests += items.len() as u64,
            BoxedNode::Inner(children) => {
                for (mbr, child) in children {
                    if mbr.intersects(query) {
                        child.count_work(query, nodes, leaf_tests);
                    }
                }
            }
        }
    }

    fn search(&self, query: &Aabb<3>, out: &mut Vec<u32>) {
        match self {
            BoxedNode::Leaf(items) => {
                for (mbr, v) in items {
                    if mbr.intersects(query) {
                        out.push(*v);
                    }
                }
            }
            BoxedNode::Inner(children) => {
                for (mbr, child) in children {
                    if mbr.intersects(query) {
                        child.search(query, out);
                    }
                }
            }
        }
    }
}

fn bench_traversal(c: &mut Criterion) {
    let data = random_boxes(50_000, 7);
    let arena: RTree<u32, 3> = RTree::bulk_load(data.clone());
    let boxed = BoxedNode::bulk_load(data);

    // A mix of selectivities: narrow probes touch a handful of leaves,
    // wide ones walk a large fraction of the tree.
    let queries = [
        Aabb::new([-200.0, -200.0, 0.0], [200.0, 200.0, 3_600.0]),
        Aabb::new([-2_000.0, -2_000.0, 0.0], [2_000.0, 2_000.0, 21_600.0]),
        Aabb::new([-1e4, -1e4, 0.0], [1e4, 1e4, 86_400.0]),
    ];

    // Both sides stream matches into a reused buffer so the comparison
    // times traversal, not result-vector allocation.
    let mut group = c.benchmark_group("rtree_arena/range_50k");
    group.bench_function("flat_arena", |b| {
        let mut out: Vec<u32> = Vec::new();
        b.iter(|| {
            let mut n = 0usize;
            for q in &queries {
                out.clear();
                arena.search_with(black_box(q), |_mbr, v| out.push(*v));
                n += out.len();
            }
            black_box(n)
        })
    });
    group.bench_function("boxed_pointers", |b| {
        let mut out = Vec::new();
        b.iter(|| {
            let mut n = 0usize;
            for q in &queries {
                out.clear();
                boxed.search(black_box(q), &mut out);
                n += out.len();
            }
            black_box(n)
        })
    });
    group.finish();
}

/// Sanity: both trees answer every query with the same id multiset (the
/// bench must compare equal work, not just equal shapes).
fn assert_equivalent() {
    let data = random_boxes(5_000, 11);
    let arena: RTree<u32, 3> = RTree::bulk_load(data.clone());
    let boxed = BoxedNode::bulk_load(data);
    let q = Aabb::new([-3_000.0, -3_000.0, 0.0], [3_000.0, 3_000.0, 43_200.0]);
    let mut a: Vec<u32> = arena.search(&q).into_iter().copied().collect();
    let mut b = Vec::new();
    boxed.search(&q, &mut b);
    a.sort_unstable();
    b.sort_unstable();
    assert_eq!(a, b, "arena and boxed reference disagree on a range query");

    // Structural isomorphism: the traversals must do identical work.
    let mut stats = swag_rtree::SearchStats::default();
    arena.search_with_stats(&q, &mut stats, |_, _| {});
    let (mut nodes, mut leaf_tests) = (0u64, 0u64);
    boxed.count_work(&q, &mut nodes, &mut leaf_tests);
    assert_eq!(stats.nodes_visited, nodes, "visited-node counts differ");
    assert_eq!(stats.items_tested, leaf_tests, "leaf test counts differ");
}

fn benches(c: &mut Criterion) {
    assert_equivalent();
    bench_traversal(c);
}

criterion_group!(arena, benches);
criterion_main!(arena);
