//! Criterion benches for the FoV similarity measurement vs CV similarity
//! (backs Fig. 4/5 and the abstract's "significantly faster to match").

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use std::hint::black_box;
use swag_core::similarity::{
    sim_parallel, sim_parallel_trig, sim_perp, sim_perp_trig, sim_rotation, sim_rotation_trig,
};
use swag_core::{similarity, similarity_parts, similarity_trig, CamTrig, CameraProfile, Fov};
use swag_geo::{LatLon, Vec2};
use swag_vision::{frame_diff_similarity, Renderer, Resolution, World};

fn bench_fov_similarity(c: &mut Criterion) {
    let cam = CameraProfile::smartphone();
    let f1 = Fov::new(LatLon::new(40.0, 116.32), 10.0);
    let f2 = Fov::new(LatLon::new(40.0004, 116.3206), 43.0);

    c.bench_function("similarity/fov_full", |b| {
        b.iter(|| black_box(similarity(black_box(&f1), black_box(&f2), &cam)))
    });
    c.bench_function("similarity/fov_breakdown", |b| {
        b.iter(|| black_box(similarity_parts(black_box(&f1), black_box(&f2), &cam)))
    });
    c.bench_function("similarity/components", |b| {
        b.iter(|| {
            black_box(sim_rotation(black_box(33.0), &cam));
            black_box(sim_parallel(black_box(42.0), &cam));
            black_box(sim_perp(black_box(42.0), &cam));
        })
    });

    // The cached-trig fast path: camera trigonometry hoisted out of the
    // per-call hot loop. Compare against the groups above.
    let trig = CamTrig::new(&cam);
    c.bench_function("similarity/fov_full_trig", |b| {
        b.iter(|| black_box(similarity_trig(black_box(&f1), black_box(&f2), &trig)))
    });
    c.bench_function("similarity/components_trig", |b| {
        b.iter(|| {
            black_box(sim_rotation_trig(black_box(33.0), &trig));
            black_box(sim_parallel_trig(black_box(42.0), &trig));
            black_box(sim_perp_trig(black_box(42.0), &trig));
        })
    });
}

fn bench_cv_similarity(c: &mut Criterion) {
    let world = World::random_city(3, 300.0, 300);
    let renderer = Renderer::new(&world, 25.0, 100.0);
    let mut group = c.benchmark_group("similarity/cv_frame_diff");
    group.sample_size(20);
    for res in [Resolution::P240, Resolution::P480, Resolution::P1080] {
        let a = renderer.render(Vec2::ZERO, 0.0, res);
        let b2 = renderer.render(Vec2::new(3.0, 3.0), 5.0, res);
        group.bench_with_input(BenchmarkId::from_parameter(res.label()), &res, |b, _| {
            b.iter(|| black_box(frame_diff_similarity(black_box(&a), black_box(&b2))))
        });
    }
    group.finish();
}

criterion_group!(benches, bench_fov_similarity, bench_cv_similarity);
criterion_main!(benches);
