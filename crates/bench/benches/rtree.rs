//! Criterion micro-benches for the R-tree substrate, including the
//! split-strategy and bulk-load ablations called out in `DESIGN.md`.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use swag_rtree::{Aabb, RTree, RTreeConfig, SplitStrategy};

fn random_boxes(n: usize, seed: u64) -> Vec<(Aabb<3>, u32)> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|i| {
            let min = [
                rng.random_range(-1e4..1e4),
                rng.random_range(-1e4..1e4),
                rng.random_range(0.0..86_400.0),
            ];
            let b = Aabb::new(min, [min[0], min[1], min[2] + rng.random_range(1.0..60.0)]);
            (b, i as u32)
        })
        .collect()
}

fn bench_split_strategies(c: &mut Criterion) {
    let data = random_boxes(10_000, 1);
    let mut group = c.benchmark_group("rtree/build_10k");
    group.sample_size(10);
    for (name, strategy) in [
        ("quadratic", SplitStrategy::Quadratic),
        ("linear", SplitStrategy::Linear),
        ("rstar", SplitStrategy::RStar),
    ] {
        group.bench_with_input(BenchmarkId::from_parameter(name), &strategy, |b, &s| {
            b.iter_batched(
                || data.clone(),
                |data| {
                    let mut t: RTree<u32, 3> = RTree::with_config(RTreeConfig {
                        split: s,
                        ..RTreeConfig::default()
                    });
                    for (mbr, v) in data {
                        t.insert(mbr, v);
                    }
                    black_box(t)
                },
                BatchSize::LargeInput,
            )
        });
    }
    group.bench_function("bulk_str", |b| {
        b.iter_batched(
            || data.clone(),
            |data| black_box(RTree::bulk_load(data)),
            BatchSize::LargeInput,
        )
    });
    group.finish();
}

fn bench_queries(c: &mut Criterion) {
    let data = random_boxes(50_000, 2);
    let incremental: RTree<u32, 3> = {
        let mut t = RTree::new();
        for (mbr, v) in data.clone() {
            t.insert(mbr, v);
        }
        t
    };
    let bulk = RTree::bulk_load(data);
    let query = Aabb::new([-500.0, -500.0, 0.0], [500.0, 500.0, 7200.0]);

    let mut group = c.benchmark_group("rtree/query_50k");
    group.bench_function("range_incremental", |b| {
        b.iter(|| black_box(incremental.search(black_box(&query))))
    });
    group.bench_function("range_bulk_loaded", |b| {
        b.iter(|| black_box(bulk.search(black_box(&query))))
    });
    group.bench_function("knn_10", |b| {
        b.iter(|| black_box(bulk.nearest_k(black_box([0.0, 0.0, 43_200.0]), 10)))
    });
    group.finish();
}

fn bench_delete(c: &mut Criterion) {
    let data = random_boxes(10_000, 3);
    c.bench_function("rtree/delete_then_reinsert", |b| {
        let mut t = RTree::bulk_load(data.clone());
        let mut i = 0usize;
        b.iter(|| {
            let (mbr, v) = data[i % data.len()];
            i += 1;
            let removed = t.remove(&mbr, |&x| x == v);
            debug_assert!(removed.is_some());
            t.insert(mbr, v);
        })
    });
}

criterion_group!(benches, bench_split_strategies, bench_queries, bench_delete);
criterion_main!(benches);
