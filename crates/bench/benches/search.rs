//! Criterion benches for query latency: R-tree vs linear scan, plus the
//! full rank-based retrieval path (backs Fig. 6(c) and the <100 ms claim).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::hint::black_box;
use swag_core::CameraProfile;
use swag_geo::{LocalFrame, Vec2};
use swag_sensors::scenarios::{self, citywide_rep_fovs, CitywideConfig};
use swag_server::{CloudServer, FovIndex, IndexKind, Query, QueryOptions, SegmentId, SegmentRef};

fn queries(cfg: &CitywideConfig, n: usize, seed: u64) -> Vec<Query> {
    let frame = LocalFrame::new(scenarios::default_origin());
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n)
        .map(|_| {
            let pos = frame.from_local(Vec2::new(
                rng.random_range(-cfg.extent_m..cfg.extent_m),
                rng.random_range(-cfg.extent_m..cfg.extent_m),
            ));
            let t0 = rng.random_range(0.0..cfg.time_window_s - 3600.0);
            Query::new(t0, t0 + 3600.0, pos, 200.0)
        })
        .collect()
}

fn bench_index_search(c: &mut Criterion) {
    let cfg = CitywideConfig::default();
    let qs = queries(&cfg, 64, 7);
    let mut group = c.benchmark_group("search/candidates");
    for n in [1_000usize, 10_000, 50_000] {
        let reps = citywide_rep_fovs(n, &cfg, 42);
        let mut rtree = FovIndex::new(IndexKind::RTree);
        let mut linear = FovIndex::new(IndexKind::Linear);
        for (i, rep) in reps.iter().enumerate() {
            rtree.insert(rep, SegmentId(i as u32));
            linear.insert(rep, SegmentId(i as u32));
        }
        group.bench_with_input(BenchmarkId::new("rtree", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(rtree.candidates(q))
            })
        });
        group.bench_with_input(BenchmarkId::new("linear", n), &n, |b, _| {
            let mut i = 0;
            b.iter(|| {
                let q = &qs[i % qs.len()];
                i += 1;
                black_box(linear.candidates(q))
            })
        });
    }
    group.finish();
}

fn bench_full_retrieval(c: &mut Criterion) {
    // The whole server path: index lookup + direction filter + rank +
    // top-N, at the paper's "tens of thousands of segments" scale.
    let cfg = CitywideConfig::default();
    let cam = CameraProfile::smartphone();
    let server = CloudServer::new(cam);
    for (i, rep) in citywide_rep_fovs(50_000, &cfg, 42).iter().enumerate() {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: (i / 100) as u64,
                video_id: 0,
                segment_idx: (i % 100) as u32,
            },
        );
    }
    let qs = queries(&cfg, 64, 11);
    let opts = QueryOptions::default();
    c.bench_function("search/full_retrieval_50k", |b| {
        let mut i = 0;
        b.iter(|| {
            let q = &qs[i % qs.len()];
            i += 1;
            black_box(server.query(q, &opts))
        })
    });
}

fn bench_batch_query(c: &mut Criterion) {
    let cfg = CitywideConfig::default();
    let cam = CameraProfile::smartphone();
    let server = CloudServer::new(cam);
    for (i, rep) in citywide_rep_fovs(20_000, &cfg, 4).iter().enumerate() {
        server.ingest_one(
            *rep,
            SegmentRef {
                provider_id: (i / 100) as u64,
                video_id: 0,
                segment_idx: (i % 100) as u32,
            },
        );
    }
    let qs = queries(&cfg, 256, 13);
    let opts = QueryOptions::default();
    let mut group = c.benchmark_group("search/batch_256_queries_20k");
    group.sample_size(20);
    for threads in [1usize, 2, 4, 8] {
        group.bench_with_input(BenchmarkId::from_parameter(threads), &threads, |b, &t| {
            b.iter(|| black_box(server.query_batch(&qs, &opts, t)))
        });
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_index_search,
    bench_full_retrieval,
    bench_batch_query
);
criterion_main!(benches);
