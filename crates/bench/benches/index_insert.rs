//! Criterion benches for index construction (backs Fig. 6(b)).

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion, Throughput};
use std::hint::black_box;
use swag_core::RepFov;
use swag_sensors::scenarios::{citywide_rep_fovs, CitywideConfig};
use swag_server::{FovIndex, IndexKind, SegmentId};

fn bench_insert(c: &mut Criterion) {
    let cfg = CitywideConfig::default();
    let mut group = c.benchmark_group("index/insert");
    group.sample_size(10);
    for n in [1_000usize, 10_000, 20_000] {
        let reps = citywide_rep_fovs(n, &cfg, 42);
        group.throughput(Throughput::Elements(n as u64));
        group.bench_with_input(BenchmarkId::new("incremental", n), &n, |b, _| {
            b.iter_batched(
                || reps.clone(),
                |reps| {
                    let mut index = FovIndex::new(IndexKind::RTree);
                    for (i, rep) in reps.iter().enumerate() {
                        index.insert(rep, SegmentId(i as u32));
                    }
                    black_box(index)
                },
                BatchSize::LargeInput,
            )
        });
        group.bench_with_input(BenchmarkId::new("bulk_str", n), &n, |b, _| {
            b.iter_batched(
                || {
                    reps.iter()
                        .enumerate()
                        .map(|(i, r)| (*r, SegmentId(i as u32)))
                        .collect::<Vec<(RepFov, SegmentId)>>()
                },
                |items| black_box(FovIndex::bulk_load(items)),
                BatchSize::LargeInput,
            )
        });
    }
    group.finish();
}

criterion_group!(benches, bench_insert);
criterion_main!(benches);
