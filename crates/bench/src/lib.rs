//! Shared infrastructure for the SWAG benchmark harness: workload
//! builders, timing helpers, statistics and CSV output.
//!
//! The `figures` binary (`cargo run --release -p swag-bench --bin figures
//! -- <id>`) regenerates every figure and table of the paper's evaluation;
//! the Criterion benches (`cargo bench`) back the timing figures with
//! statistically robust measurements. See `DESIGN.md` §3 for the
//! experiment index.

use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

/// Pearson correlation coefficient of two equal-length samples.
pub fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    assert_eq!(xs.len(), ys.len());
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let (mut cov, mut vx, mut vy) = (0.0, 0.0, 0.0);
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    cov / (vx.sqrt() * vy.sqrt()).max(1e-12)
}

/// Times `iters` executions of `f`, returning the mean per-call duration.
pub fn time_per_call(iters: usize, mut f: impl FnMut()) -> Duration {
    assert!(iters > 0);
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    start.elapsed() / iters as u32
}

/// A simple result table that prints aligned to stdout and saves as CSV.
pub struct ResultTable {
    name: String,
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl ResultTable {
    /// Creates a table with an experiment id (used as the CSV file stem).
    pub fn new(name: &str, header: &[&str]) -> Self {
        ResultTable {
            name: name.to_string(),
            header: header.iter().map(|s| s.to_string()).collect(),
            rows: Vec::new(),
        }
    }

    /// Appends a row (stringified cells).
    pub fn row(&mut self, cells: Vec<String>) {
        assert_eq!(cells.len(), self.header.len(), "row arity mismatch");
        self.rows.push(cells);
    }

    /// Prints the table aligned to stdout.
    pub fn print(&self) {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let line = |cells: &[String]| {
            cells
                .iter()
                .zip(&widths)
                .map(|(c, w)| format!("{c:>w$}"))
                .collect::<Vec<_>>()
                .join("  ")
        };
        println!("\n== {} ==", self.name);
        println!("{}", line(&self.header));
        println!(
            "{}",
            "-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1))
        );
        for row in &self.rows {
            println!("{}", line(row));
        }
    }

    /// Writes the table as `experiments/<name>.csv` relative to `dir`.
    pub fn save_csv(&self, dir: &Path) -> std::io::Result<PathBuf> {
        fs::create_dir_all(dir)?;
        let path = dir.join(format!("{}.csv", self.name));
        let mut f = fs::File::create(&path)?;
        writeln!(f, "{}", self.header.join(","))?;
        for row in &self.rows {
            writeln!(f, "{}", row.join(","))?;
        }
        Ok(path)
    }
}

/// The default output directory for experiment CSVs: `experiments/` in the
/// workspace root (falling back to the current directory).
pub fn experiments_dir() -> PathBuf {
    // CARGO_MANIFEST_DIR = crates/bench; the workspace root is two up.
    let mut p = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    p.pop();
    p.pop();
    p.push("experiments");
    p
}

/// Formats a byte count in adaptive human units.
pub fn fmt_bytes(bytes: u64) -> String {
    let b = bytes as f64;
    if b < 1e3 {
        format!("{bytes} B")
    } else if b < 1e6 {
        format!("{:.1} kB", b / 1e3)
    } else if b < 1e9 {
        format!("{:.1} MB", b / 1e6)
    } else {
        format!("{:.2} GB", b / 1e9)
    }
}

/// Formats a duration in adaptive human units.
pub fn fmt_duration(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} µs", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pearson_of_perfect_line_is_one() {
        let xs = [1.0, 2.0, 3.0, 4.0];
        let ys = [2.0, 4.0, 6.0, 8.0];
        assert!((pearson(&xs, &ys) - 1.0).abs() < 1e-12);
        let neg = [8.0, 6.0, 4.0, 2.0];
        assert!((pearson(&xs, &neg) + 1.0).abs() < 1e-12);
    }

    #[test]
    fn table_round_trips_to_csv() {
        let mut t = ResultTable::new("unit-test-table", &["a", "b"]);
        t.row(vec!["1".into(), "2".into()]);
        let dir = std::env::temp_dir().join("swag-bench-test");
        let path = t.save_csv(&dir).unwrap();
        let content = std::fs::read_to_string(path).unwrap();
        assert_eq!(content, "a,b\n1,2\n");
    }

    #[test]
    fn fmt_bytes_units() {
        assert_eq!(fmt_bytes(12), "12 B");
        assert_eq!(fmt_bytes(2_500), "2.5 kB");
        assert_eq!(fmt_bytes(3_000_000), "3.0 MB");
        assert_eq!(fmt_bytes(37_500_000_000), "37.50 GB");
    }

    #[test]
    fn fmt_duration_units() {
        assert_eq!(fmt_duration(Duration::from_nanos(500)), "500 ns");
        assert!(fmt_duration(Duration::from_micros(1500)).ends_with("ms"));
        assert!(fmt_duration(Duration::from_secs(2)).ends_with(" s"));
    }

    #[test]
    fn time_per_call_is_positive() {
        let d = time_per_call(10, || {
            std::hint::black_box((0..100).sum::<u64>());
        });
        assert!(d.as_nanos() > 0);
    }
}
