//! Durability overhead + recovery guard.
//!
//! Replays the same monotone ingest workload against two servers:
//!
//! * **memory** — `CloudServer::with_config`, no durability: ingest is
//!   the in-memory delta append plus periodic epoch folds;
//! * **wal** — `CloudServer::open` on a fresh data dir: every ingest
//!   additionally frames the record into the segment WAL (group-commit
//!   fsync on the default 2 ms interval), and every epoch publish
//!   triggers an incremental snapshot + WAL rotation in the background.
//!
//! The gate is a throughput *ratio*, not an absolute number: the
//! WAL-on path must sustain at least [`MIN_RATIO`] of memory-only
//! ingest throughput (correctness-only in `--smoke`, where the workload
//! is too small for a stable ratio). A second, ungated measurement
//! times recovery: reopen the data dir and replay snapshot + WAL back
//! into a live server, asserting the recovered state answers a
//! full-window query with the same result digest as the server that
//! wrote it.
//!
//! Writes `BENCH_durability.json` at the workspace root.
//!
//! Usage: `cargo run --release -p swag-bench --bin durability_bench [-- --smoke]`

use std::hint::black_box;
use std::io::Write as _;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

use swag_bench::fmt_duration;
use swag_core::{CameraProfile, DescriptorCodec, Fov, RepFov};
use swag_geo::LatLon;
use swag_server::{result_digest, CloudServer, Query, QueryOptions, SegmentRef, ServerConfig};

/// WAL-on ingest must keep at least this fraction of memory-only
/// throughput (the group-commit fsync amortises the disk cost).
const MIN_RATIO: f64 = 0.7;

struct Workload {
    segments: usize,
    rounds: usize,
    smoke: bool,
}

impl Workload {
    fn from_args() -> Workload {
        let mut w = Workload {
            segments: 40_000,
            rounds: 5,
            smoke: false,
        };
        for arg in std::env::args().skip(1) {
            match arg.as_str() {
                "--smoke" => {
                    w.smoke = true;
                    w.segments = 4_000;
                    w.rounds = 2;
                }
                other => panic!("unknown argument {other:?} (expected --smoke)"),
            }
        }
        w
    }
}

fn center() -> LatLon {
    LatLon::new(40.0, 116.32)
}

fn tmp_dir() -> PathBuf {
    static N: AtomicU64 = AtomicU64::new(0);
    let d = std::env::temp_dir().join(format!(
        "swag-durability-bench-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    std::fs::create_dir_all(&d).expect("create bench data dir");
    d
}

/// Deterministic ingest stream, canonicalised through the upload
/// descriptor codec so the WAL round-trip is bit-exact and the digest
/// comparison below is meaningful (the codec is idempotent past one
/// pass; see the durability tests for the same trick). Start times are
/// monotone in `i` — snapshot recovery rebuilds the store bucket-major,
/// so only a time-ordered stream keeps recovered `SegmentId`s (which
/// the result digest covers) identical to the writing server's.
fn records(n: usize) -> Vec<(RepFov, SegmentRef)> {
    let step = 3600.0 / n as f64;
    (0..n)
        .map(|i| {
            let bearing = (i as f64 * 0.618_033_988_75 * 360.0) % 360.0;
            let dist = 600.0 * (((i % 997) as f64 + 1.0) / 997.0).sqrt();
            let t0 = i as f64 * step;
            let rep = RepFov::new(
                t0,
                t0 + 8.0,
                Fov::new(center().offset(bearing, dist), (i % 360) as f64),
            );
            let mut buf = bytes::BytesMut::new();
            DescriptorCodec::encode_rep(&rep, &mut buf).expect("encode rep");
            let rep = DescriptorCodec::decode_rep(&mut buf.freeze()).expect("decode rep");
            let source = SegmentRef {
                provider_id: (i / 100) as u64,
                video_id: 0,
                segment_idx: i as u32,
            };
            (rep, source)
        })
        .collect()
}

fn wide_opts() -> QueryOptions {
    QueryOptions {
        top_n: usize::MAX,
        direction_filter: false,
        ..QueryOptions::default()
    }
}

fn digest(server: &CloudServer) -> u64 {
    let q = Query::new(0.0, 1e9, center(), 5_000.0);
    result_digest(&server.query(&q, &wide_opts()))
}

/// One timed ingest pass; returns elapsed nanoseconds.
fn ingest_round(server: &CloudServer, items: &[(RepFov, SegmentRef)]) -> u64 {
    let start = Instant::now();
    for &(rep, source) in items {
        server.ingest_one(rep, source);
    }
    black_box(server.stats().segments);
    start.elapsed().as_nanos() as u64
}

fn median(xs: &mut [u64]) -> u64 {
    xs.sort_unstable();
    xs[xs.len() / 2]
}

fn main() {
    let w = Workload::from_args();
    let cam = CameraProfile::smartphone();
    let items = records(w.segments);
    let config = ServerConfig::default();

    // Interleave subjects per round so machine drift hits both equally;
    // fresh servers (and fresh data dirs) per round so each round does
    // identical work. Round 0 is warm-up. The last durable round's dir
    // is kept for the recovery measurement.
    let mut t_memory = Vec::with_capacity(w.rounds);
    let mut t_wal = Vec::with_capacity(w.rounds);
    let mut last_dir: Option<PathBuf> = None;
    let mut wrote_digest = 0u64;
    for round in 0..=w.rounds {
        let memory = CloudServer::with_config(cam, config);
        let ns = ingest_round(&memory, &items);

        let dir = tmp_dir();
        let durable = CloudServer::open(&dir, cam, config).expect("open fresh data dir");
        let ns2 = ingest_round(&durable, &items);
        durable.quiesce();
        if round > 0 {
            t_memory.push(ns);
            t_wal.push(ns2);
        }
        if round == w.rounds {
            wrote_digest = digest(&durable);
            assert_eq!(
                wrote_digest,
                digest(&memory),
                "durable and memory-only servers diverged on the same ingest stream"
            );
            last_dir = Some(dir);
        } else {
            std::fs::remove_dir_all(&dir).ok();
        }
    }

    let med_memory = median(&mut t_memory);
    let med_wal = median(&mut t_wal);
    let per_s = |ns: u64| w.segments as f64 / (ns as f64 / 1e9);
    let ratio = med_memory as f64 / med_wal as f64;

    // Recovery: reopen the surviving data dir and replay snapshot + WAL
    // back into a live server. The recovered state must answer the wide
    // query with the digest the writing server produced.
    let dir = last_dir.expect("a durable round ran");
    let recover_start = Instant::now();
    let recovered = CloudServer::open(&dir, cam, config).expect("recover data dir");
    let recovery_ns = recover_start.elapsed().as_nanos() as u64;
    assert_eq!(
        recovered.stats().segments,
        w.segments,
        "recovery lost records"
    );
    assert_eq!(
        digest(&recovered),
        wrote_digest,
        "recovered state diverged from the server that wrote it"
    );
    let stats = recovered
        .durability_stats()
        .expect("recovered server is durable");
    std::fs::remove_dir_all(&dir).ok();

    let min_ratio = if w.smoke { 0.0 } else { MIN_RATIO };
    let pass = ratio >= min_ratio;

    println!(
        "durable ingest over {} segments x {} rounds{}",
        w.segments,
        w.rounds,
        if w.smoke { " [smoke]" } else { "" }
    );
    println!(
        "  memory    median {:>10} / round  ({:>9.0} ingests/s)",
        fmt_duration(std::time::Duration::from_nanos(med_memory)),
        per_s(med_memory)
    );
    println!(
        "  wal       median {:>10} / round  ({:>9.0} ingests/s, {:.2}x of memory)",
        fmt_duration(std::time::Duration::from_nanos(med_wal)),
        per_s(med_wal),
        ratio
    );
    println!(
        "  recovery  {:>10} for {} segments (wal seq {}, {} cold runs on disk)",
        fmt_duration(std::time::Duration::from_nanos(recovery_ns)),
        w.segments,
        stats.wal_seq,
        stats.cold_runs,
    );

    let json = format!(
        concat!(
            "{{\n",
            "  \"segments\": {},\n",
            "  \"rounds\": {},\n",
            "  \"smoke\": {},\n",
            "  \"median_round_ns\": {{\"memory\": {}, \"wal\": {}}},\n",
            "  \"ingests_per_s\": {{\"memory\": {:.0}, \"wal\": {:.0}}},\n",
            "  \"throughput_ratio\": {:.3},\n",
            "  \"min_ratio\": {},\n",
            "  \"recovery_ns\": {},\n",
            "  \"recovered_segments\": {},\n",
            "  \"identical_results\": true,\n",
            "  \"pass\": {}\n",
            "}}\n"
        ),
        w.segments,
        w.rounds,
        w.smoke,
        med_memory,
        med_wal,
        per_s(med_memory),
        per_s(med_wal),
        ratio,
        min_ratio,
        recovery_ns,
        w.segments,
        pass
    );
    let mut path = PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    path.pop();
    path.pop();
    path.push("BENCH_durability.json");
    std::fs::File::create(&path)
        .and_then(|mut f| f.write_all(json.as_bytes()))
        .expect("cannot write BENCH_durability.json");
    println!("wrote {}", path.display());

    if !pass {
        eprintln!("FAIL: WAL-on ingest ratio {ratio:.3} below {min_ratio}");
        std::process::exit(1);
    }
}
